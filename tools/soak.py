#!/usr/bin/env python
"""Deterministic soak & differential-oracle run: ``python tools/soak.py``.

Replays a seeded NEXMark-style workload (see :mod:`repro.workloads`)
for N phases through the differential variant bank — serial single-shard
reference, partitioned shards 1/2/4, static vs rebalanced routing — and
checks the soak invariants (produced ⊆ true, phase recall,
byte-identity across variants, analytic memory caps) per phase.  By
default both executors are soaked: the in-process serial bank and the
multiprocessing bank on the blocks transport.

``--store tiered`` adds tiered window-store twins to the bank: the join
state lives in a bounded hot object tier plus columnar cold segments
(``--hot-budget`` / ``--bucket-span-ms``), the identity oracle proves
the output stays byte-identical to the in-memory store, and the
hot-tier check asserts per-stream hot residency under the configured
budget (plus analytic slack).

``--chaos`` adds a supervised twin of the top shard count running under
the seeded fault plan (:func:`repro.faults.chaos_plan` — SIGKILLs,
crashes, hangs, checkpoint corruption, migration-barrier crashes): the
identity oracle must not be able to tell its recovered output from a
clean run, and the recovery check asserts the faults actually fired.

Examples::

    python tools/soak.py --phases 3 --seed 7
    python tools/soak.py --phases 5 --executor serial --shards 1,2,4,8
    python tools/soak.py --phases 3 --executor process --transport objects
    python tools/soak.py --phases 3 --window-s 4.0 --store tiered --hot-budget 256
    python tools/soak.py --chaos --seed 7 --phases 2 --phase-duration-ms 4000

The phase report is printed and written to ``results/soak_report.txt``
(CI uploads it as an artifact).  Exit status 0 iff every check of every
run passed.
"""

from __future__ import annotations

import argparse
import os
import sys
import time

# Self-bootstrapping src layout: works from a checkout without install.
_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:
    try:
        import repro  # noqa: F401
    except ImportError:
        sys.path.insert(0, _SRC)

from repro.experiments.report import print_and_save  # noqa: E402
from repro.join.store import TieredStoreConfig  # noqa: E402
from repro.parallel.shard import TRANSPORT_BLOCKS, TRANSPORT_OBJECTS  # noqa: E402
from repro.workloads.soak import SoakConfig, run_soak  # noqa: E402


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python tools/soak.py",
        description="Deterministic soak + differential-oracle harness.",
    )
    parser.add_argument("--phases", type=int, default=3,
                        help="number of workload phases (default: 3)")
    parser.add_argument("--seed", type=int, default=7,
                        help="workload seed (default: 7)")
    parser.add_argument("--phase-duration-ms", type=int, default=8_000,
                        help="phase length in ms (default: 8000)")
    parser.add_argument(
        "--executor",
        choices=("both", "serial", "process"),
        default="both",
        help="executor(s) to soak (default: both)",
    )
    parser.add_argument(
        "--transport",
        choices=(TRANSPORT_BLOCKS, TRANSPORT_OBJECTS),
        default=TRANSPORT_BLOCKS,
        help="process-executor wire format (default: blocks)",
    )
    parser.add_argument(
        "--shards",
        default="1,2,4",
        help="comma-separated shard counts of the bank (default: 1,2,4)",
    )
    parser.add_argument("--window-s", type=float, default=1.0,
                        help="join window size in seconds (default: 1.0)")
    parser.add_argument("--bid-channels", type=int, default=2,
                        help="NEXMark bid ingest channels (default: 2)")
    parser.add_argument("--recall", type=float, default=0.95,
                        help="per-phase recall requirement (default: 0.95)")
    parser.add_argument(
        "--store",
        choices=("memory", "tiered"),
        default="memory",
        help="window-store bank: 'tiered' adds tiered-store twins and "
             "arms the hot-tier residency check (default: memory)",
    )
    parser.add_argument(
        "--hot-budget", type=int, default=None, metavar="N",
        help="tiered store hot-tier budget in tuples (implies --store "
             "tiered; default: the TieredStoreConfig default)",
    )
    parser.add_argument(
        "--bucket-span-ms", type=int, default=None, metavar="MS",
        help="tiered store cold-bucket span in ms (implies --store "
             "tiered; default: the TieredStoreConfig default)",
    )
    parser.add_argument(
        "--chaos", action="store_true",
        help="add a supervised chaos twin running under the seeded "
             "fault plan (crashes, SIGKILLs, hangs, checkpoint "
             "corruption) and arm the recovery check; forces the "
             "process bank only (worker faults need worker processes)",
    )
    parser.add_argument(
        "--tree", action="store_true",
        help="add a tree-of-binary-joins twin (paper Sec. V) to the "
             "bank; the identity oracle then differentially proves the "
             "tree decomposition result-identical to the m-way operator",
    )
    parser.add_argument("--out", default="soak_report",
                        help="report name under results/ (default: soak_report)")
    return parser


def store_spec(args) -> "TieredStoreConfig | None":
    """The tiered-store config the CLI flags denote, or ``None``."""
    if (
        args.store != "tiered"
        and args.hot_budget is None
        and args.bucket_span_ms is None
    ):
        return None
    overrides = {}
    if args.hot_budget is not None:
        overrides["hot_budget"] = args.hot_budget
    if args.bucket_span_ms is not None:
        overrides["bucket_span_ms"] = args.bucket_span_ms
    return TieredStoreConfig(**overrides)


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    try:
        shard_counts = tuple(
            int(part) for part in args.shards.split(",") if part.strip()
        )
    except ValueError:
        print(f"error: --shards must be comma-separated ints, got {args.shards!r}",
              file=sys.stderr)
        return 2
    if not any(n > 1 for n in shard_counts):
        # A single-variant bank still soaks subset/recall/memory, but
        # there is nothing to differentially compare — say so instead of
        # letting a vacuous identity check read as exercised.
        print(
            "warning: no shard count > 1; the byte-identity oracle will "
            "not run (see the report's checks list)",
            file=sys.stderr,
        )
    executors = (
        ("serial", "process") if args.executor == "both" else (args.executor,)
    )
    if args.chaos and len(executors) > 1:
        # One chaos bank is enough: the faults live in worker processes,
        # and the serial reference rides inside the bank anyway.
        print(
            "note: --chaos runs a single bank (executor=process); the "
            "serial reference is part of it",
            file=sys.stderr,
        )
        executors = ("process",)
    store = store_spec(args)
    sections = []
    all_passed = True
    for executor in executors:
        config = SoakConfig(
            phases=args.phases,
            seed=args.seed,
            phase_duration_ms=args.phase_duration_ms,
            shard_counts=shard_counts,
            executor=executor,
            transport=args.transport,
            window_s=args.window_s,
            recall_requirement=args.recall,
            bid_channels=args.bid_channels,
            store=store,
            chaos=args.chaos,
            tree=args.tree,
        )
        started = time.perf_counter()
        report = run_soak(config)
        elapsed = time.perf_counter() - started
        all_passed = all_passed and report.passed
        sections.append(report.render())
        sections.append(f"(executor={executor}: {elapsed:.1f}s wall)\n")
    print_and_save(args.out, "\n".join(sections))
    return 0 if all_passed else 1


if __name__ == "__main__":
    sys.exit(main())
