#!/usr/bin/env python
"""Distributed runtime smoke: ``python tools/distributed_smoke.py``.

Boots two localhost :class:`~repro.distributed.runtime.NodeServer`
processes and drives the socket-distributed executor through the two
scenarios CI cares about, checking each differentially against the
single-machine pipe executor on the same seeded workload:

1. **elastic node join** — a third NodeServer is started mid-stream,
   registered via ``executor.add_node``, and ``pipeline.grow`` migrates
   a shard onto it through the drain/handoff barrier; the result
   sequence and summed :class:`JoinStatistics` must be byte-identical
   to a pipe run growing at the same tuple index, and the grown shard
   must really land on the late node.
2. **supervised crash recovery** — a seeded fault plan severs shard
   0's socket mid-run; supervision must respawn it (``respawns >= 1``,
   so the check cannot pass vacuously) and the recovered output must be
   indistinguishable from an undisturbed supervised pipe run.

Exit status 0 iff every check passed.  This is a smoke, not a soak:
``tools/soak.py`` owns the long differential bank, this script proves
the distributed topology end-to-end in seconds.
"""

from __future__ import annotations

import argparse
import os
import random
import sys
import time

# Self-bootstrapping src layout: works from a checkout without install.
_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:
    try:
        import repro  # noqa: F401
    except ImportError:
        sys.path.insert(0, _SRC)

from repro import (  # noqa: E402
    FixedKPolicy,
    PipelineConfig,
    ZipfValueSampler,
    equi_join_chain,
    from_tuple_specs,
    seconds,
)
from repro.distributed import NodeServer  # noqa: E402
from repro.faults import FaultPlan, FaultSpec, KIND_SOCKET_DROP  # noqa: E402
from repro.parallel import PartitionedPipeline, SupervisionConfig  # noqa: E402

BATCH_SIZE = 16  # fault plans are batch-indexed; small batches make them fire

SUPERVISION = SupervisionConfig(
    heartbeat_interval=4,
    heartbeat_timeout_s=5.0,
    checkpoint_interval=8,
    max_respawns=4,
    backoff_base_s=0.01,
)


def build_dataset(num_tuples: int, seed: int):
    """Seeded 3-stream disordered workload (same shape as the tests)."""
    rng = random.Random(seed)
    sampler = ZipfValueSampler(list(range(1, 49)), 1.1, rng)
    events = []
    for i in range(num_tuples):
        delay = 0 if rng.random() < 0.8 else rng.randint(1, 300)
        events.append((i % 3, i * 9, delay, sampler.sample()))
    order = sorted(
        range(num_tuples), key=lambda i: (events[i][1] + events[i][2], i)
    )
    specs = [(events[i][0], events[i][1], {"a1": events[i][3]}) for i in order]
    return from_tuple_specs(specs, num_streams=3, name=f"smoke-{seed}")


def build_config(dataset) -> PipelineConfig:
    k = dataset.max_delay()
    return PipelineConfig(
        window_sizes_ms=[seconds(1)] * 3,
        condition=equi_join_chain("a1", 3),
        gamma=0.95,
        period_ms=seconds(10),
        interval_ms=seconds(1),
        policy=FixedKPolicy(k),
        initial_k_ms=k,
    )


def drive(dataset, config, shards, grow_at=None, grow_node=None, **kwargs):
    """Per-tuple feed with an optional mid-stream grow; returns the
    exact result sequence, summed statistics, and the pipeline."""
    pipeline = PartitionedPipeline(config, shards, **kwargs)
    out = []
    with pipeline:
        for i, t in enumerate(dataset.arrivals()):
            if grow_at is not None and i == grow_at:
                if grow_node is not None:
                    pipeline.executor.add_node(grow_node)
                out.extend(pipeline.grow())
            out.extend(pipeline.process(t))
        out.extend(pipeline.flush())
        stats = pipeline.join_statistics()
    return [(r.ts, r.key()) for r in out], stats, pipeline


def check_node_join(dataset, config, nodes, grow_at) -> list:
    """Mid-stream node join: grow onto a NodeServer started mid-run."""
    checks = []
    ref_sequence, ref_stats, _ = drive(
        dataset, config, 3, grow_at=grow_at, executor="process",
        slots_per_shard=4,
    )
    process, address = NodeServer.spawn()
    try:
        sequence, stats, pipeline = drive(
            dataset, config, 3, grow_at=grow_at, grow_node=address,
            executor="process", transport="socket", nodes=list(nodes),
            slots_per_shard=4,
        )
        checks.append(
            ("grown shard placed on the late node",
             pipeline.executor._node_of[3] == 2)
        )
    finally:
        process.terminate()
        process.join(5)
    checks.append(("node-join sequence identical", sequence == ref_sequence))
    checks.append(("node-join statistics identical", stats == ref_stats))
    return checks


def check_crash_recovery(dataset, config, nodes) -> list:
    """Supervised socket run with an injected socket drop on shard 0."""
    checks = []
    ref_sequence, ref_stats, _ = drive(
        dataset, config, 2, executor="supervised", batch_size=BATCH_SIZE,
        supervision=SUPERVISION,
    )
    plan = FaultPlan((FaultSpec(0, KIND_SOCKET_DROP, at=5),))
    sequence, stats, pipeline = drive(
        dataset, config, 2, executor="supervised", batch_size=BATCH_SIZE,
        supervision=SUPERVISION, transport="socket", nodes=list(nodes),
        fault_plan=plan,
    )
    checks.append(
        ("crash fired and was recovered", pipeline.executor.respawns >= 1)
    )
    checks.append(("recovered sequence identical", sequence == ref_sequence))
    checks.append(("recovered statistics identical", stats == ref_stats))
    return checks


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python tools/distributed_smoke.py",
        description="Two-NodeServer distributed identity smoke.",
    )
    parser.add_argument("--tuples", type=int, default=600,
                        help="workload size (default: 600)")
    parser.add_argument("--seed", type=int, default=7,
                        help="workload seed (default: 7)")
    parser.add_argument("--grow-at", type=int, default=300,
                        help="tuple index of the elastic grow (default: 300)")
    args = parser.parse_args(argv)

    dataset = build_dataset(args.tuples, args.seed)
    config = build_config(dataset)
    started = time.perf_counter()
    spawned = [NodeServer.spawn() for _ in range(2)]
    nodes = [address for _, address in spawned]
    try:
        checks = check_node_join(dataset, config, nodes, args.grow_at)
        checks += check_crash_recovery(dataset, config, nodes)
    finally:
        for process, _ in spawned:
            process.terminate()
            process.join(5)
    elapsed = time.perf_counter() - started

    width = max(len(name) for name, _ in checks)
    for name, passed in checks:
        print(f"  {name:<{width}}  {'PASS' if passed else 'FAIL'}")
    failed = [name for name, passed in checks if not passed]
    verdict = "FAILED" if failed else "passed"
    print(f"distributed smoke {verdict} "
          f"({len(checks) - len(failed)}/{len(checks)} checks, "
          f"{args.tuples} tuples, {elapsed:.1f}s wall)")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
