#!/usr/bin/env python
"""repro-lint CLI: the engine's AST-based contract & determinism gate.

Runs every registered rule of :mod:`repro.analysis.rules` over the given
files/directories (default: ``src``) and prints one line per finding::

    src/repro/foo.py:12:4: determinism: builtin hash() is randomized ...

Examples::

    python tools/lint.py src                  # the CI lint gate
    python tools/lint.py src tools            # include the tool scripts
    python tools/lint.py --select determinism,flush-contract src
    python tools/lint.py --list-rules

Suppress a finding with a pragma on the flagged line
(``# repro-lint: disable=<rule>[,<rule>...]``) or file-wide with
``# repro-lint: disable-file=<rule>``; see ``docs/STATIC_ANALYSIS.md``.

Exit status 0 when clean, 1 when any finding survives suppression.
Used by the CI ``lint`` job and by ``tests/test_lint.py``, so the tier-1
suite catches contract drift locally too.
"""

from __future__ import annotations

import argparse
import os
import sys

# Self-bootstrapping src layout: works from a checkout without install.
_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:
    try:
        import repro  # noqa: F401
    except ImportError:
        sys.path.insert(0, _SRC)

from repro.analysis import all_rules, analyze_paths  # noqa: E402


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-lint", description=__doc__.splitlines()[0]
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files and/or directories to lint (default: src)",
    )
    parser.add_argument(
        "--select",
        metavar="RULES",
        help="comma-separated rule names to run (default: all)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print every registered rule and exit",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.name}: {rule.summary}")
        return 0

    selected = (
        [name.strip() for name in args.select.split(",") if name.strip()]
        if args.select
        else None
    )
    try:
        findings = analyze_paths(args.paths, selected)
    except (ValueError, OSError) as exc:
        print(f"repro-lint: {exc}", file=sys.stderr)
        return 2
    for finding in findings:
        print(finding.format())
    checked = sum(1 for _ in all_rules()) if selected is None else len(selected)
    status = "FAIL" if findings else "ok"
    print(
        f"[{status}] repro-lint: {len(findings)} finding(s), "
        f"{checked} rule(s), paths: {', '.join(args.paths)}",
        file=sys.stderr,
    )
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
