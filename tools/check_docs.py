#!/usr/bin/env python
"""Docs gate: keep the markdown documentation from silently rotting.

Checks, for ``README.md`` and every ``docs/*.md``:

1. **Fenced Python examples.**  Blocks containing ``>>>`` prompts run
   as doctests against the real installed package (ELLIPSIS enabled), so
   a renamed parameter or changed output breaks CI, not a reader.
   Blocks without prompts are compiled — syntax-checked — only (they may
   reference placeholder names like a user's own dataset).
2. **Relative links.**  Every ``[text](target)`` that is not an external
   URL must resolve to an existing file (relative to the document), and
   a ``#fragment`` must match a heading anchor in the target document,
   using GitHub's slug rules (lowercase, punctuation stripped, spaces to
   hyphens, ``-N`` suffixes for duplicates).

Run from the repository root (CI does)::

    PYTHONPATH=src python tools/check_docs.py

Exit status is the number of failing documents (0 = gate passes).  Used
both by the CI ``docs`` job and by ``tests/test_docs.py``, so the tier-1
suite catches documentation rot locally too.
"""

from __future__ import annotations

import doctest
import re
import sys
from pathlib import Path
from typing import Dict, Iterator, List, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent

#: ``(language, code, first line number)`` per fenced block.
FENCE = re.compile(r"^```([A-Za-z0-9_+-]*)\s*$")
#: Markdown inline links; deliberately simple — no nested brackets.
LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
HEADING = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$")
EXTERNAL = ("http://", "https://", "mailto:")


def _display(path: Path) -> str:
    """Repo-relative path for messages; absolute when outside the repo
    (the self-test exercises the checker on temporary files)."""
    try:
        return str(path.relative_to(REPO_ROOT))
    except ValueError:
        return str(path)


def documents() -> List[Path]:
    docs = [REPO_ROOT / "README.md"]
    docs.extend(sorted((REPO_ROOT / "docs").glob("*.md")))
    return [path for path in docs if path.exists()]


def fenced_blocks(text: str) -> Iterator[Tuple[str, str, int]]:
    lines = text.splitlines()
    index = 0
    while index < len(lines):
        match = FENCE.match(lines[index])
        if match is not None:
            language = match.group(1).lower()
            body: List[str] = []
            start = index + 1
            index += 1
            while index < len(lines) and not lines[index].startswith("```"):
                body.append(lines[index])
                index += 1
            yield language, "\n".join(body), start
        index += 1


def github_slug(heading: str) -> str:
    text = heading.strip().lower()
    text = re.sub(r"`([^`]*)`", r"\1", text)  # drop inline-code backticks
    text = re.sub(r"[^\w\- ]", "", text)  # punctuation vanishes
    return text.replace(" ", "-")


def heading_anchors(text: str) -> Dict[str, int]:
    """All GitHub anchors of a document (duplicates get -1, -2, ...)."""
    anchors: Dict[str, int] = {}
    in_fence = False
    for line in text.splitlines():
        if line.startswith("```"):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        match = HEADING.match(line)
        if match is None:
            continue
        slug = github_slug(match.group(2))
        if slug in anchors:
            anchors[slug] += 1
            anchors[f"{slug}-{anchors[slug]}"] = 0
        else:
            anchors[slug] = 0
    return anchors


def check_python_blocks(path: Path, text: str, errors: List[str]) -> int:
    """Doctest / compile every fenced Python block; returns blocks seen.

    Doctest blocks of one document share a namespace in order, like a
    literate program — an example may build on names its predecessors
    defined.
    """
    checked = 0
    globs: dict = {}
    for language, code, line in fenced_blocks(text):
        if language not in ("python", "py", "pycon"):
            continue
        checked += 1
        label = f"{_display(path)}:{line}"
        if ">>>" in code:
            parser = doctest.DocTestParser()
            try:
                test = parser.get_doctest(code, globs, label, str(path), line)
            except ValueError as exc:
                errors.append(f"{label}: malformed doctest block: {exc}")
                continue
            output: List[str] = []
            runner = doctest.DocTestRunner(
                optionflags=doctest.ELLIPSIS | doctest.NORMALIZE_WHITESPACE,
                verbose=False,
            )
            results = runner.run(test, out=output.append, clear_globs=False)
            globs = test.globs  # later blocks build on earlier ones
            if results.failed:
                errors.append(
                    f"{label}: {results.failed} doctest failure(s)\n"
                    + "".join(output)
                )
        else:
            try:
                compile(code, label, "exec")
            except SyntaxError as exc:
                errors.append(f"{label}: syntax error in example: {exc}")
    return checked


def check_links(path: Path, text: str, errors: List[str]) -> int:
    """Resolve every relative link + anchor; returns links seen."""
    checked = 0
    anchor_cache: Dict[Path, Dict[str, int]] = {}
    in_fence = False
    for line_number, line in enumerate(text.splitlines(), start=1):
        if line.startswith("```"):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for match in LINK.finditer(line):
            target = match.group(1)
            if target.startswith(EXTERNAL):
                continue
            checked += 1
            label = f"{_display(path)}:{line_number}"
            if target.startswith("#"):
                file_part, fragment = "", target[1:]
            elif "#" in target:
                file_part, fragment = target.split("#", 1)
            else:
                file_part, fragment = target, ""
            if file_part:
                resolved = (path.parent / file_part).resolve()
                if not resolved.exists():
                    errors.append(f"{label}: broken link target {target!r}")
                    continue
            else:
                resolved = path
            if fragment:
                if resolved.suffix != ".md":
                    errors.append(
                        f"{label}: anchor on non-markdown target {target!r}"
                    )
                    continue
                anchors = anchor_cache.get(resolved)
                if anchors is None:
                    source = (
                        text
                        if resolved == path
                        else resolved.read_text(encoding="utf-8")
                    )
                    anchors = heading_anchors(source)
                    anchor_cache[resolved] = anchors
                if fragment.lower() not in anchors:
                    errors.append(
                        f"{label}: anchor #{fragment} not found in "
                        f"{_display(resolved)}"
                    )
    return checked


def check_document(path: Path) -> List[str]:
    text = path.read_text(encoding="utf-8")
    errors: List[str] = []
    blocks = check_python_blocks(path, text, errors)
    links = check_links(path, text, errors)
    status = "FAIL" if errors else "ok"
    print(
        f"[{status}] {_display(path)}: "
        f"{blocks} python block(s), {links} relative link(s)"
    )
    return errors


def main() -> int:
    failing = 0
    for path in documents():
        errors = check_document(path)
        for error in errors:
            print(f"  {error}", file=sys.stderr)
        failing += bool(errors)
    if failing:
        print(f"{failing} document(s) failed the docs gate", file=sys.stderr)
    return failing


if __name__ == "__main__":
    sys.exit(main())
