"""Adaptivity demo: the buffer tracks a changing disorder pattern.

The input streams switch their delay regime twice mid-run (calm → heavy
bursts → calm).  The Statistics Manager's ADWIN windows detect the
changes, the delay histograms re-learn, and the Buffer-Size Manager
grows/shrinks K accordingly — the behaviour that a fixed buffer size
cannot deliver (too small during the bursty phase, wasteful afterwards).

Run with::

    python examples/adaptivity_demo.py
"""

from repro import (
    EquiPredicate,
    JoinCondition,
    ModelBasedPolicy,
    NoDelayModel,
    NonEqSel,
    PhasedDelayModel,
    PipelineConfig,
    QualityDrivenPipeline,
    ZipfDelayModel,
    seconds,
)
from repro.streams.generators import (
    AttributeSpec,
    SyntheticStreamConfig,
    generate_dataset,
)
from repro.streams.seeding import derived_rng

PHASE_1_END = seconds(40)
PHASE_2_END = seconds(80)
DURATION = seconds(120)


def build_dataset():
    configs = []
    for stream in range(2):
        delay_model = PhasedDelayModel(
            [
                (0, NoDelayModel()),
                (
                    PHASE_1_END,
                    ZipfDelayModel(
                        max_delay=seconds(4),
                        skew=1.5,
                        step=50,
                        rng=derived_rng("adaptivity", stream),
                    ),
                ),
                (PHASE_2_END, NoDelayModel()),
            ]
        )
        configs.append(
            SyntheticStreamConfig(
                attributes=[
                    AttributeSpec(
                        name="a1", domain=list(range(1, 21)), time_varying=False
                    )
                ],
                delay_model=delay_model,
                inter_arrival_ms=50,
            )
        )
    return generate_dataset(configs, DURATION, seed=3, name="three-phase disorder")


def main():
    dataset = build_dataset()
    print(dataset.describe())
    print(
        f"phases: in-order until {PHASE_1_END // 1000}s, heavy disorder until "
        f"{PHASE_2_END // 1000}s, in-order afterwards\n"
    )

    pipeline = QualityDrivenPipeline(
        PipelineConfig(
            window_sizes_ms=[seconds(3), seconds(3)],
            condition=JoinCondition([EquiPredicate(0, "a1", 1, "a1")]),
            gamma=0.95,
            period_ms=seconds(10),
            interval_ms=seconds(1),
            policy=ModelBasedPolicy(NonEqSel()),
            collect_results=False,
        )
    )
    for t in dataset.arrivals():
        pipeline.process(t)
    pipeline.flush()

    print("K over time (sampled every 5 s of application time):")
    history = pipeline.metrics.k_history
    for sample_s in range(0, DURATION // 1000 + 1, 5):
        sample_ms = sample_s * 1000
        k = 0
        for at, value in history:
            if at <= sample_ms:
                k = value
            else:
                break
        bar = "#" * int(k / 100)
        print(f"  t={sample_s:>4}s  K={k / 1000:>5.2f}s  {bar}")

    calm = [k for at, k in history if at < PHASE_1_END]
    bursty = [k for at, k in history if PHASE_1_END <= at < PHASE_2_END]
    print(
        f"\nmax K during calm phase:  {max(calm, default=0) / 1000:.2f}s\n"
        f"max K during bursty phase: {max(bursty, default=0) / 1000:.2f}s\n"
        f"ADWIN change detections per stream: "
        f"{[s.adwin_detections for s in pipeline.statistics.streams]}"
    )


if __name__ == "__main__":
    main()
