"""Quickstart: quality-driven disorder handling for a 2-way stream join.

Builds a small two-stream equi-join workload with injected disorder, then
runs it through the framework three times:

* No-K-slack (no intra-stream disorder handling) — fast but lossy;
* Max-K-slack (buffer = max observed delay) — near-lossless but slow;
* the paper's model-based approach at Γ = 0.95 — just enough buffering.

Run with::

    python examples/quickstart.py
"""

from repro import (
    EquiPredicate,
    JoinCondition,
    MaxKSlackPolicy,
    ModelBasedPolicy,
    NoKSlackPolicy,
    NonEqSel,
    PipelineConfig,
    QualityDrivenPipeline,
    ZipfDelayModel,
    compute_truth,
    seconds,
)
from repro.streams.generators import (
    AttributeSpec,
    SyntheticStreamConfig,
    generate_dataset,
)
from repro.streams.seeding import derived_rng


def build_dataset():
    """Two streams, 20 tuples/s, Zipf delays up to 5 s, join attribute a1."""
    configs = []
    for stream in range(2):
        configs.append(
            SyntheticStreamConfig(
                attributes=[
                    AttributeSpec(
                        name="a1",
                        domain=list(range(1, 51)),
                        initial_skew=1.0,
                        time_varying=False,
                    )
                ],
                delay_model=ZipfDelayModel(
                    max_delay=seconds(5),
                    skew=2.0,
                    step=50,
                    rng=derived_rng("quickstart", stream),
                ),
                inter_arrival_ms=50,
            )
        )
    return generate_dataset(configs, duration_ms=seconds(60), seed=7, name="quickstart")


def run_policy(dataset, condition, windows, policy, gamma=0.95):
    pipeline = QualityDrivenPipeline(
        PipelineConfig(
            window_sizes_ms=windows,
            condition=condition,
            gamma=gamma,
            period_ms=seconds(10),
            interval_ms=seconds(1),
            policy=policy,
            collect_results=False,
        )
    )
    for t in dataset.arrivals():
        pipeline.process(t)
    pipeline.flush()
    return pipeline


def main():
    dataset = build_dataset()
    print(dataset.describe())
    windows = [seconds(5), seconds(5)]
    condition = JoinCondition([EquiPredicate(0, "a1", 1, "a1")])

    truth = compute_truth(dataset, windows, condition)
    print(f"true join results: {truth.index.total}\n")

    policies = [
        ("No-K-slack", NoKSlackPolicy()),
        ("Max-K-slack", MaxKSlackPolicy()),
        ("Model-based (G=0.95)", ModelBasedPolicy(NonEqSel())),
    ]
    print(f"{'policy':<22} {'avg K (s)':>10} {'recall':>8} {'avg latency (s)':>16}")
    for name, policy in policies:
        pipeline = run_policy(dataset, condition, windows, policy)
        metrics = pipeline.metrics
        recall = metrics.results_produced / truth.index.total
        print(
            f"{name:<22} {metrics.average_k_ms(pipeline.app_time_ms()) / 1000:>10.2f} "
            f"{recall:>8.3f} {metrics.average_latency_ms() / 1000:>16.2f}"
        )
    print(
        "\nThe model-based policy lands between the two baselines: most of\n"
        "Max-K-slack's recall at a fraction of its buffering latency."
    )


if __name__ == "__main__":
    main()
