"""Distributed execution (paper Sec. V): MJoin vs a tree of binary joins.

An m-way join can run as one MJoin-style operator or as a tree of binary
operators, each with its own prior-join Synchronizer (how distributed
engines deploy it).  This example runs both over the same 3-way workload
— first sorted (result sets must be identical), then disordered behind
the same K-slack front end — and prints the comparison.

Run with::

    python examples/distributed_tree.py
"""

from repro import (
    KSlackBuffer,
    MSWJOperator,
    Synchronizer,
    compute_truth,
    equi_join_chain,
    make_d3_syn,
    seconds,
)
from repro.distributed.tree import TreeJoinOperator

WINDOWS = [seconds(5)] * 3
CONDITION = equi_join_chain("a1", 3)


def replay_sorted(dataset, operator, flush=lambda: []):
    keys = set()
    for t in dataset.sorted_by_timestamp():
        keys.update(r.key() for r in operator.process(t))
    keys.update(r.key() for r in flush())
    return keys


def replay_disordered(dataset, join_process, join_flush, k_ms):
    buffers = [KSlackBuffer(k_ms) for _ in range(3)]
    sync = Synchronizer(3)
    count = 0
    for t in dataset.arrivals():
        for released in buffers[t.stream].process(t):
            for emitted in sync.process(released):
                count += join_process(emitted)
    for i, buffer in enumerate(buffers):
        for released in buffer.flush():
            for emitted in sync.process(released):
                count += join_process(emitted)
        for emitted in sync.close_stream(i):
            count += join_process(emitted)
    for emitted in sync.flush():
        count += join_process(emitted)
    return count + join_flush()


def main():
    dataset = make_d3_syn(
        duration_ms=seconds(60),
        seed=5,
        inter_arrival_ms=100,
        max_delay_ms=seconds(6),
        skew_change_interval_ms=(seconds(10), seconds(20)),
        value_skew_range=(0.0, 2.0),
    )
    print(dataset.describe())

    mjoin_keys = replay_sorted(dataset, MSWJOperator(WINDOWS, CONDITION))
    tree = TreeJoinOperator(WINDOWS, CONDITION)
    tree_keys = replay_sorted(dataset, tree, tree.flush)
    print(
        f"\nsorted replay: MJoin {len(mjoin_keys)} results, "
        f"tree {len(tree_keys)} results, identical={mjoin_keys == tree_keys}"
    )

    truth = compute_truth(dataset, WINDOWS, CONDITION)
    print(f"\ndisordered replay behind a fixed K-slack front end:")
    print(f"{'K (s)':>6} {'MJoin recall':>13} {'tree recall':>12}")
    for k_ms in (0, seconds(1), seconds(3)):
        mjoin_op = MSWJOperator(WINDOWS, CONDITION, collect_results=False)
        mjoin_count = replay_disordered(dataset, mjoin_op.process, lambda: 0, k_ms)
        tree_op = TreeJoinOperator(WINDOWS, CONDITION, collect_results=False)
        tree_count = replay_disordered(dataset, tree_op.process, tree_op.flush, k_ms)
        print(
            f"{k_ms / 1000:>6.1f} {mjoin_count / truth.index.total:>13.3f} "
            f"{tree_count / truth.index.total:>12.3f}"
        )
    print(
        "\nThe same quality-driven front end drives either execution\n"
        "strategy — the binary tree matches the monolithic operator."
    )


if __name__ == "__main__":
    main()
