"""Hash-partitioned parallel execution of an m-way equi-join.

Scales the quality-driven pipeline out to N shards: a ``KeyRouter``
extracts the equi-join key from the ``JoinCondition`` and hash-routes
every tuple to exactly one shard, each shard running a complete
pipeline (K-slack → Synchronizer → MSWJ → adaptation).  With a fixed K
covering the maximum delay the front end is lossless, so every shard
count must produce the identical result multiset — verified below for
the in-process serial executor and the multiprocessing executor.

Note: this demo collects every JoinResult so it can compare multisets,
which makes the worker processes pickle the full result set back through
their pipes — IPC-dominated and slower than the single pipeline.  The
high-throughput configuration for the process executor is
``collect_results=False`` (counts only), as benchmarked in
``benchmarks/bench_ext_partitioned.py``.

Run with::

    python examples/partitioned_join.py
    python examples/partitioned_join.py --store tiered --hot-budget 256

``--store tiered`` runs every variant on the tiered window store — a
bounded hot object tier over columnar cold segments — and the multiset
comparison doubles as the byte-identity demo: the store changes the
memory shape of the join state, never its output.
"""

import argparse
import time
from collections import Counter

from repro import (
    FixedKPolicy,
    PipelineConfig,
    QualityDrivenPipeline,
    TieredStoreConfig,
    equi_join_chain,
    make_d3_syn,
    run_partitioned,
    seconds,
)

CONDITION = equi_join_chain("a1", 3)

#: Window-store spec every pipeline below runs on (set by --store).
STORE = None


def parse_args(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--store",
        choices=("memory", "tiered"),
        default="memory",
        help="window store backing every shard's join state "
             "(default: memory)",
    )
    parser.add_argument(
        "--hot-budget", type=int, default=None, metavar="N",
        help="tiered hot-tier budget in tuples (implies --store tiered)",
    )
    parser.add_argument(
        "--bucket-span-ms", type=int, default=None, metavar="MS",
        help="tiered cold-bucket span in ms (implies --store tiered)",
    )
    return parser.parse_args(argv)


def store_spec(args):
    if (
        args.store != "tiered"
        and args.hot_budget is None
        and args.bucket_span_ms is None
    ):
        return None
    overrides = {}
    if args.hot_budget is not None:
        overrides["hot_budget"] = args.hot_budget
    if args.bucket_span_ms is not None:
        overrides["bucket_span_ms"] = args.bucket_span_ms
    return TieredStoreConfig(**overrides)


def config(k_ms):
    return PipelineConfig(
        window_sizes_ms=[seconds(2)] * 3,
        condition=CONDITION,
        gamma=0.95,
        period_ms=seconds(15),
        interval_ms=seconds(1),
        policy=FixedKPolicy(k_ms),
        initial_k_ms=k_ms,
        collect_results=True,
        store=STORE,
    )


def main(argv=None):
    global STORE
    args = parse_args(argv)
    STORE = store_spec(args)
    if STORE is not None:
        print(f"window store: {STORE}\n")
    dataset = make_d3_syn(duration_ms=seconds(40), seed=42, inter_arrival_ms=20)
    print(dataset.describe())
    print(f"partition key assignment: {CONDITION.partition_attributes(3)}")
    k_ms = dataset.max_delay()
    print(f"fixed K = {k_ms} ms (covers every realized delay)\n")

    started = time.perf_counter()
    single = QualityDrivenPipeline(config(k_ms))
    baseline = []
    for t in dataset.arrivals():
        baseline.extend(single.process(t))
    baseline.extend(single.flush())
    elapsed = time.perf_counter() - started
    reference = Counter(r.key() for r in baseline)
    print(
        f"{'single pipeline':<22} {len(baseline):>8} results  "
        f"{elapsed:6.2f} s  {len(dataset) / elapsed:>9,.0f} tuples/s"
    )
    if STORE is not None:
        m = single.metrics
        print(
            f"{'':<22} state peaks per stream: "
            f"resident={m.stream_resident_objects} "
            f"hot={m.stream_hot_objects} "
            f"encoded_bytes={m.stream_encoded_bytes} "
            f"decode hits/misses={m.decode_hits}/{m.decode_misses}"
        )

    for executor in ("serial", "process"):
        for shards in (2, 4):
            started = time.perf_counter()
            outputs, metrics = run_partitioned(
                dataset, config(k_ms), shards, executor=executor
            )
            elapsed = time.perf_counter() - started
            same = Counter(r.key() for r in outputs) == reference
            print(
                f"{executor + ' x' + str(shards):<22} {len(outputs):>8} results  "
                f"{elapsed:6.2f} s  {len(dataset) / elapsed:>9,.0f} tuples/s  "
                f"multiset == single: {same}  "
                f"(adaptations across shards: {metrics.adaptations})"
            )

    # The batched driver: chunk the arrival stream and let process_batch
    # route one burst per shard per call instead of one envelope per
    # tuple.  (Serial executor here — this demo collects every result, so
    # the process executor's pipes would drown the dispatch contrast; see
    # benchmarks/bench_ext_batched.py for the count-only throughput runs.)
    for shards in (2, 4):
        started = time.perf_counter()
        outputs, metrics = run_partitioned(
            dataset, config(k_ms), shards, executor="serial", chunk_size=512
        )
        elapsed = time.perf_counter() - started
        same = Counter(r.key() for r in outputs) == reference
        print(
            f"{'batched x' + str(shards):<22} {len(outputs):>8} results  "
            f"{elapsed:6.2f} s  {len(dataset) / elapsed:>9,.0f} tuples/s  "
            f"multiset == single: {same}"
        )

    # Transport contrast: this demo collects every JoinResult, so the
    # full result set rides back through the worker pipes at flush —
    # exactly the regime where the columnar ResultBlock return path
    # beats per-object pickling (see benchmarks/bench_ext_columnar.py).
    for transport in ("objects", "blocks"):
        started = time.perf_counter()
        outputs, _ = run_partitioned(
            dataset, config(k_ms), 2, executor="process",
            chunk_size=512, transport=transport,
        )
        elapsed = time.perf_counter() - started
        same = Counter(r.key() for r in outputs) == reference
        print(
            f"{'process x2 ' + transport:<22} {len(outputs):>8} results  "
            f"{elapsed:6.2f} s  {len(dataset) / elapsed:>9,.0f} tuples/s  "
            f"multiset == single: {same}"
        )

    # Skew-aware rebalancing: with rebalance=True the router's virtual
    # slot table is re-planned against the observed per-slot load and
    # moved slots' window state migrates between shards mid-run.  D3syn
    # keys are near-uniform, so little moves here — point
    # benchmarks/bench_ext_skew.py at a Zipf hot-key workload to see the
    # imbalance drop; the result multiset is identical either way.
    started = time.perf_counter()
    pipeline_outputs = []
    from repro import PartitionedPipeline, load_imbalance

    with PartitionedPipeline(
        config(k_ms), 4, rebalance=True, rebalance_interval=512,
    ) as pipeline:
        for t in dataset.arrivals():
            pipeline_outputs.extend(pipeline.process(t))
        pipeline_outputs.extend(pipeline.flush())
        shard_loads = list(pipeline.router.shard_loads)
        rebalances, moved = pipeline.rebalances, pipeline.slots_moved
    elapsed = time.perf_counter() - started
    same = Counter(r.key() for r in pipeline_outputs) == reference
    imbalance = load_imbalance(shard_loads)
    print(
        f"{'rebalancing x4':<22} {len(pipeline_outputs):>8} results  "
        f"{elapsed:6.2f} s  {len(dataset) / elapsed:>9,.0f} tuples/s  "
        f"multiset == single: {same}  "
        f"(imbalance {imbalance:.3f}, {rebalances} rebalances, "
        f"{moved} slots moved)"
    )

    print(
        "\nEvery shard count reproduces the single pipeline's result multiset\n"
        "exactly: hash partitioning by the equi-join key sends all tuples of\n"
        "any joinable combination to the same shard.  The batched driver\n"
        "(process_batch / chunk_size) is a pure dispatch optimization on top\n"
        "— see benchmarks/bench_ext_batched.py for the throughput contrast —\n"
        "and the columnar block transport (transport='blocks', the default)\n"
        "moves routed batches and collected results as flat columns instead\n"
        "of per-tuple object graphs (benchmarks/bench_ext_columnar.py)."
    )


if __name__ == "__main__":
    main()
