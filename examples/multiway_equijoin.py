"""M-way equi-joins under disorder — the paper's Q×3 and Q×4 scenarios.

Runs the 3-way chain equi-join over D×3syn and the 4-way star equi-join
over D×4syn (scaled), comparing the model-based approach against both
baselines at a fixed recall requirement.  Demonstrates that the
framework is agnostic to the number of streams and to the join shape.

Run with::

    python examples/multiway_equijoin.py
"""

from repro.core.tuples import seconds
from repro.experiments.configs import d3_experiment, d4_experiment
from repro.experiments.runner import make_policy, run_experiment

GAMMA = 0.95


def show(experiment):
    print(experiment.dataset().describe())
    print(f"true join results: {experiment.truth().index.total}")
    print(f"{'policy':<24} {'avg K (s)':>10} {'avg recall':>11} {'Phi(.99G)':>10}")
    for policy_name in ("no-k-slack", "max-k-slack", "model-eqsel", "model-noneqsel"):
        outcome = run_experiment(
            experiment,
            make_policy(policy_name, GAMMA),
            gamma=GAMMA,
            period_ms=seconds(15),
        )
        print(
            f"{outcome.policy:<24} {outcome.average_k_s:>10.2f} "
            f"{outcome.average_recall:>11.3f} {outcome.phi99:>10.2f}"
        )
    print()


def main():
    print(f"recall requirement G = {GAMMA}\n")
    print("=== 3-way chain equi-join (D3syn, Q3) ===")
    show(d3_experiment(seed=21))
    print("=== 4-way star equi-join (D4syn, Q4) ===")
    show(d4_experiment(seed=22))
    print(
        "Same framework, different m and join shapes: the Same-K policy\n"
        "(Theorem 1) means one buffer size drives all input streams."
    )


if __name__ == "__main__":
    main()
