"""Soccer proximity monitoring — the paper's Q×2 scenario.

Two streams of player positions (one per team, simulated in the spirit of
the DEBS 2013 trace) are joined on a user-defined distance predicate:
"find all moments when two opposing players are within 5 m of each other
inside a 5-second window".  Sensor-network delays make both streams
arrive out of order; the example sweeps the recall requirement Γ and
shows the latency/quality frontier the user can pick from.

Run with::

    python examples/soccer_proximity.py
"""

from repro.core.tuples import seconds
from repro.experiments.configs import soccer_experiment
from repro.experiments.runner import make_policy, run_experiment


def main():
    experiment = soccer_experiment(scale=0.8, seed=11)
    dataset = experiment.dataset()
    print(dataset.describe())
    print(f"query: players of opposite teams within 5 m, windows of 5 s")
    print(f"true proximity events: {experiment.truth().index.total}\n")

    print(
        f"{'requirement':<14} {'avg K (s)':>10} {'avg recall':>11} "
        f"{'Phi(G)':>8} {'Phi(.99G)':>10}"
    )
    reference = run_experiment(
        experiment, make_policy("max-k-slack"), gamma=0.99, period_ms=seconds(15)
    )
    for gamma in (0.9, 0.95, 0.99):
        outcome = run_experiment(
            experiment,
            make_policy("model-noneqsel", gamma),
            gamma=gamma,
            period_ms=seconds(15),
        )
        print(
            f"G = {gamma:<9} {outcome.average_k_s:>10.2f} "
            f"{outcome.average_recall:>11.3f} {outcome.phi:>8.2f} "
            f"{outcome.phi99:>10.2f}"
        )
    print(
        f"{'Max-K-slack':<14} {reference.average_k_s:>10.2f} "
        f"{reference.average_recall:>11.3f} {'-':>8} {'-':>10}"
    )
    print(
        "\nLower G → smaller sorting buffers → fresher alerts; the operator\n"
        "dials the tradeoff instead of paying worst-case latency."
    )


if __name__ == "__main__":
    main()
