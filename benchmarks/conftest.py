"""Pytest configuration for the benchmark suite.

Benchmarks live outside the default ``testpaths`` and run via::

    pytest benchmarks/ --benchmark-only

Each bench times one full sweep with ``benchmark.pedantic(rounds=1)`` —
the interesting output is the printed report (also written to
``results/``), not the timing statistics; a single round keeps the whole
suite re-runnable in minutes.

Workload scaling: benches size their datasets off the
``REPRO_BENCH_SCALE`` environment variable (see ``common.bench_scale``)
— CI smoke jobs export e.g. ``REPRO_BENCH_SCALE=0.1`` to run at 1/10
scale without editing gate constants.  The ``--bench-scale`` option is
a convenience spelling of the same knob::

    pytest benchmarks/bench_ext_nexmark.py --bench-scale 0.1
"""

import os
import sys
from pathlib import Path

# Make `import common` work regardless of invocation directory.
sys.path.insert(0, str(Path(__file__).resolve().parent))


def pytest_addoption(parser):
    parser.addoption(
        "--bench-scale",
        default=None,
        help="workload scale factor; equivalent to REPRO_BENCH_SCALE=<x>",
    )


def pytest_configure(config):
    scale = config.getoption("--bench-scale")
    if scale is not None:
        float(scale)  # fail fast on a malformed value
        # Runs before test modules import `common`, so both the
        # import-time BENCH_SCALE constant and the per-call
        # bench_scale() reader observe it.
        os.environ["REPRO_BENCH_SCALE"] = scale
