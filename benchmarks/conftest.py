"""Pytest configuration for the benchmark suite.

Benchmarks live outside the default ``testpaths`` and run via::

    pytest benchmarks/ --benchmark-only

Each bench times one full sweep with ``benchmark.pedantic(rounds=1)`` —
the interesting output is the printed report (also written to
``results/``), not the timing statistics; a single round keeps the whole
suite re-runnable in minutes.
"""

import sys
from pathlib import Path

# Make `import common` work regardless of invocation directory.
sys.path.insert(0, str(Path(__file__).resolve().parent))
