"""Fig. 10 — effect of the K-search granularity g.

The paper varies g ∈ {1, 10, 100, 1000} ms on (D×2real, Q×2) and
(D×3syn, Q×3) under Γ ∈ {0.95, 0.99}.  Expected shapes: a coarser g
inflates the average K in scenarios where the required buffer is small
(the search overshoots by up to one granule and the delay histogram loses
resolution), and has little effect where the required buffer is large;
quality is largely unaffected.  The paper picks g = 10 ms as the default.
"""

from common import report, run

GRANULARITIES_MS = (1, 10, 100, 1_000)
GAMMAS = (0.95, 0.99)
DATASETS = ("soccer", "d3")


def _sweep():
    outcomes = []
    for name in DATASETS:
        for gamma in GAMMAS:
            for g in GRANULARITIES_MS:
                outcomes.append(
                    run(name, "model-noneqsel", gamma=gamma, granularity_ms=g)
                )
    return outcomes


def test_fig10_vary_granularity(benchmark):
    outcomes = benchmark.pedantic(_sweep, rounds=1, iterations=1)

    rows = [
        (
            o.experiment,
            o.gamma,
            o.granularity_ms,
            f"{o.average_k_s:.2f}",
            f"{100 * o.phi:.1f}",
            f"{100 * o.phi99:.1f}",
        )
        for o in outcomes
    ]
    report(
        "fig10_vary_granularity",
        "Fig. 10 — effect of the K-search granularity g (NonEqSel)",
        ["dataset", "Gamma", "g (ms)", "Avg K (s)", "Phi(G)%", "Phi(.99G)%"],
        rows,
    )

    # Shape: quality holds across the whole grid, and coarsening the
    # search moves K only moderately (the paper reports a noticeable
    # *increase* where the required buffer is small and near-no change
    # where it is large; at bench scale, single-seed noise on the bursty
    # soccer delays can tilt individual points slightly either way, so
    # the check bounds the relative deviation instead of its sign).
    for label in sorted({o.experiment for o in outcomes}):
        for gamma in GAMMAS:
            subset = sorted(
                (o for o in outcomes if o.experiment == label and o.gamma == gamma),
                key=lambda o: o.granularity_ms,
            )
            finest = subset[0].average_k_s
            coarsest = subset[-1].average_k_s
            assert coarsest >= 0.75 * finest - 0.5, (
                label,
                gamma,
                [o.average_k_s for o in subset],
            )
            for o in subset:
                assert o.phi99 >= 0.6, (label, gamma, o.granularity_ms, o.phi99)
