"""Fig. 11 — time needed to determine the optimal K in an adaptation step.

The paper measures the wall-clock runtime of Alg. 3 per adaptation step
for g ∈ {1, 10, 100, 1000} ms and Γ ∈ {0.9, 0.95, 0.99, 0.999} on all
three datasets.  Expected shapes: the adaptation time *decreases* with g
(fewer search candidates) and *increases* with Γ (the search runs further
before the estimate clears the requirement) and with the number of
streams m; for g >= 10 ms it stays in the low-millisecond range.

Absolute numbers here are Python, not the paper's C++ engine — the shape
is the target.  (In the paper and in this implementation the buffer-size
manager's work overlaps the join thread / is a small fraction of the
replay, so these times are not on the tuple path.)
"""

from common import ALL_EXPERIMENTS, report, run

GRANULARITIES_MS = (1, 10, 100, 1_000)
GAMMAS = (0.9, 0.95, 0.99, 0.999)


def _sweep():
    outcomes = []
    for name in ALL_EXPERIMENTS:
        for gamma in GAMMAS:
            for g in GRANULARITIES_MS:
                outcomes.append(
                    run(name, "model-noneqsel", gamma=gamma, granularity_ms=g)
                )
    return outcomes


def test_fig11_adaptation_time(benchmark):
    outcomes = benchmark.pedantic(_sweep, rounds=1, iterations=1)

    rows = [
        (
            o.experiment,
            o.gamma,
            o.granularity_ms,
            f"{o.average_adaptation_ms:.3f}",
            o.adaptations,
        )
        for o in outcomes
    ]
    report(
        "fig11_adaptation_time",
        "Fig. 11 — average Alg. 3 runtime per adaptation step (ms)",
        ["dataset", "Gamma", "g (ms)", "avg adaptation (ms)", "#steps"],
        rows,
    )

    # Shape: coarser g is never slower than the finest g (fewer search
    # steps), for every dataset and Gamma.
    for label in sorted({o.experiment for o in outcomes}):
        for gamma in GAMMAS:
            subset = sorted(
                (o for o in outcomes if o.experiment == label and o.gamma == gamma),
                key=lambda o: o.granularity_ms,
            )
            times = [o.average_adaptation_ms for o in subset]
            assert times[-1] <= times[0] + 0.5, (label, gamma, times)
    # Coarse-granularity adaptation stays in the low-millisecond range.
    for o in outcomes:
        if o.granularity_ms >= 10:
            assert o.average_adaptation_ms < 50.0, (
                o.experiment,
                o.gamma,
                o.granularity_ms,
                o.average_adaptation_ms,
            )
