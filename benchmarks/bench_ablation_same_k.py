"""Ablation — the Same-K policy (paper Theorem 1, Sec. III-B).

The Buffer-Size Manager uses one shared K for all streams.  This ablation
checks the claim operationally: per-stream buffer configurations
``(k_1, ..., k_m)`` are replayed against their Theorem-1 equivalent
``k = min_i iT - min_i (iT - k_i)`` on skewed, disordered streams, and
the join outputs are compared.

Expected: identical outputs in the lead-dominated regime (residual
disorder below the inter-stream skew — the regime of the theorem's fluid
argument), and near-identical recall elsewhere.  The report also shows
that the *equalized total slack* makes the heterogeneous configurations
pointless: nothing is gained by giving streams individual K values.
"""

import random

from common import report

from repro import (
    EquiPredicate,
    JoinCondition,
    KSlackBuffer,
    MSWJOperator,
    StreamTuple,
    Synchronizer,
)


def _skewed_streams(num_streams, offsets, jitter_pattern, steps, step_ms=10):
    streams = []
    for i in range(num_streams):
        tuples = []
        for n in range(steps):
            arrival = (n + 1) * step_ms
            jitter = jitter_pattern[n % len(jitter_pattern)]
            ts = max(0, arrival - offsets[i] - jitter)
            tuples.append(
                StreamTuple(ts=ts, stream=i, seq=n, arrival=arrival, values={"v": n % 5})
            )
        streams.append(tuples)
    merged = []
    for n in range(steps):
        for i in range(num_streams):
            merged.append(streams[i][n])
    return merged


def _join_output(merged, num_streams, k_values, windows):
    buffers = [KSlackBuffer(k) for k in k_values]
    sync = Synchronizer(num_streams)
    condition = JoinCondition(
        [EquiPredicate(i, "v", i + 1, "v") for i in range(num_streams - 1)]
    )
    op = MSWJOperator(windows, condition)
    out = []

    def feed(released):
        for e in released:
            for emitted in sync.process(e):
                out.extend(op.process(emitted))

    for t in merged:
        clone = StreamTuple(
            ts=t.ts, stream=t.stream, seq=t.seq, arrival=t.arrival, values=t.values
        )
        feed(buffers[t.stream].process(clone))
    for i, buffer in enumerate(buffers):
        feed(buffer.flush())
        for emitted in sync.close_stream(i):
            out.extend(op.process(emitted))
    for emitted in sync.flush():
        out.extend(op.process(emitted))
    return {r.key() for r in out}


def _sweep():
    rows = []
    exact_matches = 0
    total = 0
    rng = random.Random(2016)
    for case in range(12):
        num_streams = rng.choice([2, 3, 4])
        offsets = [120] + [rng.randrange(0, 4) * 10 for _ in range(num_streams - 1)]
        jitter = [0] + [rng.randrange(0, 3) * 10 for _ in range(3)]
        k_values = [rng.randrange(0, 4) * 10 for _ in range(num_streams)]
        merged = _skewed_streams(num_streams, offsets, jitter, steps=120)

        local = {}
        for t in merged:
            local[t.stream] = max(local.get(t.stream, 0), t.ts)
        i_t = [local[i] for i in range(num_streams)]
        same_k = min(i_t) - min(i_t[i] - k_values[i] for i in range(num_streams))

        windows = [150] * num_streams
        per_stream = _join_output(merged, num_streams, k_values, windows)
        shared = _join_output(merged, num_streams, [same_k] * num_streams, windows)
        total += 1
        exact = per_stream == shared
        exact_matches += exact
        rows.append(
            (
                case,
                num_streams,
                str(k_values),
                same_k,
                len(per_stream),
                len(shared),
                "yes" if exact else f"diff={len(per_stream ^ shared)}",
            )
        )
    return rows, exact_matches, total


def test_ablation_same_k(benchmark):
    rows, exact, total = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    report(
        "ablation_same_k",
        "Ablation — Theorem 1: per-stream K vs equivalent shared K (join output)",
        ["case", "m", "per-stream K (ms)", "same-K (ms)", "#results A", "#results B", "identical"],
        rows,
    )
    assert exact == total, f"only {exact}/{total} configurations matched exactly"
