"""Ablation — the basic-window size b in the recall model (Eq. 3).

The paper notes that a bigger b yields a *more conservative* estimate of
the expected window cardinality (fewer, coarser segments — in the limit
``n_i = 1`` only in-order tuples are counted).  A more conservative
estimate can only push the chosen K up, buying quality headroom with
extra latency.

This ablation sweeps b ∈ {10, 100, 1000, 5000} ms on (D×3syn, Q×3) at
Γ ∈ {0.95, 0.99} and reports the resulting average K and fulfillment.
The paper fixes b = 10 ms; the sweep shows what that choice trades off.
"""

from common import report, run

BASIC_WINDOWS_MS = (10, 100, 1_000, 5_000)
GAMMAS = (0.95, 0.99)


def _sweep():
    outcomes = []
    for gamma in GAMMAS:
        for b in BASIC_WINDOWS_MS:
            outcomes.append(
                run("d3", "model-noneqsel", gamma=gamma, basic_window_ms=b)
            )
    return outcomes


def test_ablation_basic_window(benchmark):
    outcomes = benchmark.pedantic(_sweep, rounds=1, iterations=1)

    rows = [
        (
            o.experiment,
            o.gamma,
            o.basic_window_ms,
            f"{o.average_k_s:.2f}",
            f"{100 * o.phi:.1f}",
            f"{100 * o.phi99:.1f}",
        )
        for o in outcomes
    ]
    report(
        "ablation_basic_window",
        "Ablation — basic-window size b: model conservativeness vs latency",
        ["dataset", "Gamma", "b (ms)", "Avg K (s)", "Phi(G)%", "Phi(.99G)%"],
        rows,
    )

    # Shape: the coarsest model (b = W → single segment, in-order-only
    # cardinality estimate) never picks a smaller buffer than the finest.
    for gamma in GAMMAS:
        subset = sorted(
            (o for o in outcomes if o.gamma == gamma),
            key=lambda o: o.basic_window_ms,
        )
        assert subset[-1].average_k_s >= subset[0].average_k_s - 0.25, (
            gamma,
            [o.average_k_s for o in subset],
        )
