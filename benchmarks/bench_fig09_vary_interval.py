"""Fig. 9 — effect of the adaptation interval L.

The paper varies L ∈ {0.1, 0.5, 1, 5, 10} s on (D×2real, Q×2) and
(D×3syn, Q×3) under Γ ∈ {0.95, 0.99}.  Expected shapes: the average K
grows noticeably with L (the conservative out-of-order productivity
estimate — the per-interval *maximum* — grows with interval length,
shrinking the estimated selectivity; and any large K decision also sticks
for longer), while the achieved quality changes little.  The paper picks
L = 1 s as the sweet spot.

Scale note: the paper keeps P = 60 s for the whole grid, i.e. P/L >= 6
even at L = 10 s, which keeps the Eq. 7 calibration active.  The bench
preserves that ratio (P = max(default, 6L)); at the largest L the 90-s
replays then yield only a handful of post-warm-up measurements, so the
shape assertion covers the well-sampled range L <= 5 s.
"""

from common import DEFAULT_PERIOD_MS, report, run

INTERVALS_MS = (100, 500, 1_000, 5_000, 10_000)
GAMMAS = (0.95, 0.99)
DATASETS = ("soccer", "d3")


def _sweep():
    outcomes = []
    for name in DATASETS:
        for gamma in GAMMAS:
            for interval in INTERVALS_MS:
                outcomes.append(
                    run(
                        name,
                        "model-noneqsel",
                        gamma=gamma,
                        interval_ms=interval,
                        period_ms=max(DEFAULT_PERIOD_MS, 6 * interval),
                    )
                )
    return outcomes


def test_fig09_vary_interval(benchmark):
    outcomes = benchmark.pedantic(_sweep, rounds=1, iterations=1)

    rows = [
        (
            o.experiment,
            o.gamma,
            o.interval_ms / 1000.0,
            f"{o.average_k_s:.2f}",
            f"{100 * o.phi:.1f}",
            f"{100 * o.phi99:.1f}",
            o.adaptations,
        )
        for o in outcomes
    ]
    report(
        "fig09_vary_interval",
        "Fig. 9 — effect of the adaptation interval L (NonEqSel)",
        ["dataset", "Gamma", "L (s)", "Avg K (s)", "Phi(G)%", "Phi(.99G)%", "#adaptations"],
        rows,
    )

    # Shape: K grows with L over the well-sampled range (<= 5 s).
    for label in sorted({o.experiment for o in outcomes}):
        for gamma in GAMMAS:
            subset = sorted(
                (
                    o
                    for o in outcomes
                    if o.experiment == label
                    and o.gamma == gamma
                    and o.interval_ms <= 5_000
                ),
                key=lambda o: o.interval_ms,
            )
            assert subset[-1].average_k_s >= subset[0].average_k_s - 0.2, (
                label,
                gamma,
                [o.average_k_s for o in subset],
            )
