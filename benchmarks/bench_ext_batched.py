"""Extension — batched, plan-cached engine vs per-tuple execution.

Sweeps a disordered 3-way equi-join workload (uniform keys, light
per-tuple probe work — the regime where engine overhead, not probe
enumeration, bounds throughput) behind a lossless fixed-K front end
through two drivers at shard counts 1/2/4:

* **per-tuple** — one ``process(t)`` call per raw tuple; under the
  process executor this is the *per-tuple envelope* configuration
  (``batch_size=1``): every routed tuple is its own pipe message, so
  pickling and syscalls are paid per tuple.
* **batched** — ``process_batch`` over arrival-order chunks of
  ``CHUNK_SIZE`` tuples: one routed batch per shard per call, the
  executors dispatch whole bursts, and the shard pipelines drain them
  through the batched engine (plan-cached probes, amortized K-slack /
  synchronizer / adaptation bookkeeping).

Both paths produce the identical result count (asserted) — batching is a
pure driver optimization; ``tests/test_batched.py`` holds the stronger
sequence-identity properties.  The headline acceptance is the speedup of
the batched path over the per-tuple path at shards >= 2 under the
process executor, which must reach ``MIN_SPEEDUP``.
"""

import random
import time

from common import BENCH_SCALE, report

from repro import (
    FixedKPolicy,
    PipelineConfig,
    QualityDrivenPipeline,
    equi_join_chain,
    from_tuple_specs,
    run_partitioned,
    seconds,
)

SHARD_COUNTS = (1, 2, 4)
CHUNK_SIZE = 512
MIN_SPEEDUP = 1.5
NUM_TUPLES = max(3_000, int(30_000 * BENCH_SCALE))
#: Timing rounds per configuration; the best round is reported (standard
#: noise shielding — shared CI runners and process spawn jitter).
ROUNDS = 2

CONDITION = equi_join_chain("a1", 3)


def _light_equi_dataset(num_tuples=NUM_TUPLES, domain=500, max_delay_ms=800, seed=101):
    """Three interleaved streams, uniform keys, ~20% delayed arrivals."""
    rng = random.Random(seed)
    events = []
    for i in range(num_tuples):
        delay = 0 if rng.random() < 0.8 else rng.randint(1, max_delay_ms)
        events.append((i % 3, i * 5, delay, rng.randint(1, domain)))
    order = sorted(
        range(num_tuples), key=lambda i: (events[i][1] + events[i][2], i)
    )
    specs = [(events[i][0], events[i][1], {"a1": events[i][3]}) for i in order]
    return from_tuple_specs(specs, num_streams=3, name="light-equi")


def _config(k_ms):
    return PipelineConfig(
        window_sizes_ms=[seconds(2)] * 3,
        condition=CONDITION,
        gamma=0.95,
        period_ms=15_000,
        interval_ms=1_000,
        policy=FixedKPolicy(k_ms),
        initial_k_ms=k_ms,
        collect_results=False,
    )


def _chunks(items, size):
    for start in range(0, len(items), size):
        yield items[start : start + size]


def _sweep():
    dataset = _light_equi_dataset()
    k_ms = dataset.max_delay()
    tuples = len(dataset)
    arrivals = list(dataset.arrivals())

    rows = []
    counts = {}
    rates = {}

    def single_per_tuple():
        pipeline = QualityDrivenPipeline(_config(k_ms))
        count = 0
        for t in arrivals:
            count += pipeline.process(t)
        return count + pipeline.flush()

    def single_batched():
        pipeline = QualityDrivenPipeline(_config(k_ms))
        count = 0
        for chunk in _chunks(arrivals, CHUNK_SIZE):
            count += pipeline.process_batch(chunk)
        return count + pipeline.flush()

    def partitioned(shards, executor, **kwargs):
        def run():
            count, _ = run_partitioned(
                dataset, _config(k_ms), shards, executor=executor, **kwargs
            )
            return count

        return run

    configurations = [
        ("single per-tuple", single_per_tuple),
        ("single batched", single_batched),
    ]
    for shards in SHARD_COUNTS:
        configurations.append(
            (f"serial x{shards} per-tuple", partitioned(shards, "serial"))
        )
        configurations.append(
            (
                f"serial x{shards} batched",
                partitioned(shards, "serial", chunk_size=CHUNK_SIZE),
            )
        )
    for shards in SHARD_COUNTS:
        configurations.append(
            (
                f"process x{shards} per-tuple",
                partitioned(shards, "process", batch_size=1),
            )
        )
        configurations.append(
            (
                f"process x{shards} batched",
                partitioned(
                    shards, "process", batch_size=CHUNK_SIZE, chunk_size=CHUNK_SIZE
                ),
            )
        )

    # Interleaved rounds (full sweep per round, best time per config):
    # load drift on a shared machine hits every configuration about
    # equally instead of whichever config happened to run last.
    best = {}
    for _ in range(ROUNDS):
        for label, run in configurations:
            started = time.perf_counter()
            counts[label] = run()
            elapsed = time.perf_counter() - started
            if label not in best or elapsed < best[label]:
                best[label] = elapsed
    for label, _ in configurations:
        rates[label] = tuples / best[label]
        rows.append(
            (label, counts[label], f"{best[label]:.2f}", f"{rates[label]:,.0f}")
        )

    speedup_rows = []
    for shards in SHARD_COUNTS:
        for executor in ("serial", "process"):
            per_tuple = rates[f"{executor} x{shards} per-tuple"]
            batched = rates[f"{executor} x{shards} batched"]
            speedup_rows.append(
                (f"{executor} x{shards}", f"{batched / per_tuple:.2f}x")
            )

    report(
        "ext_batched",
        "Extension — batched plan-cached engine vs per-tuple driver "
        "(light equi-join, fixed K)",
        ["configuration", "results", "wall (s)", "tuples/s"],
        rows,
    )
    report(
        "ext_batched_speedup",
        "Batched-over-per-tuple throughput ratio per configuration",
        ["configuration", "batched/per-tuple"],
        speedup_rows,
    )
    return counts, rates


def test_ext_batched(benchmark):
    counts, rates = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    # Lossless front end: every driver must produce the identical count.
    assert len(set(counts.values())) == 1
    # Acceptance: the batched path beats per-tuple envelopes by >= 1.5x
    # under the process executor at every shard count >= 2.
    for shards in (2, 4):
        per_tuple = rates[f"process x{shards} per-tuple"]
        batched = rates[f"process x{shards} batched"]
        assert batched >= MIN_SPEEDUP * per_tuple, (
            f"process x{shards}: batched {batched:,.0f} t/s vs "
            f"per-tuple {per_tuple:,.0f} t/s "
            f"({batched / per_tuple:.2f}x < {MIN_SPEEDUP}x)"
        )
