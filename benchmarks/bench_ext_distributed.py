"""Extension — socket-distributed execution vs the in-process executors.

Measures the ISSUE-10 distributed runtime on the shared count-only
heavy-probe scenario: the same 4-shard partitioned join driven through

1. **pipe x4** — the single-machine process executor (the baseline the
   socket path must not collapse against),
2. **socket x4 / 2 nodes** — shard workers hosted by two localhost
   :class:`~repro.distributed.runtime.NodeServer` processes behind
   ``transport="socket"``, and
3. **socket x4 / 2 nodes, supervised** — the same topology under
   heartbeat supervision and periodic checkpoints (the deployment
   configuration: nobody runs multi-machine without recovery armed).

On localhost the socket transport cannot *win* — it carries the same
block frames as the pipe plus TCP framing, CRC and loopback syscalls —
so the gates are collapse floors, not speedups: the socket path must
hold ``MIN_SOCKET_VS_PIPE_FLOOR`` of the pipe rate everywhere, and
supervision must cost no more than its usual cadence overhead on top
(``MIN_SUPERVISED_VS_SOCKET_FLOOR``).  On a multi-core machine at full
workload scale the floors tighten (``STRICT_*``): with real parallelism
the transport is a small fraction of shard compute, so a large gap
means the framing layer — not the network — is eating the win.
Byte-identity of the socket path is proven in
``tests/test_socket_transport.py``; this file only measures — but still
asserts count identity across every configuration, because a transport
that changes results has no performance story to tell.
"""

import os
import time

from common import (
    BENCH_SCALE,
    heavy_probe_config,
    heavy_probe_dataset,
    report,
)

from repro import run_partitioned
from repro.distributed import NodeServer
from repro.parallel import SupervisionConfig

try:
    CPUS = len(os.sched_getaffinity(0))
except AttributeError:  # pragma: no cover - non-Linux
    CPUS = os.cpu_count() or 1
MULTICORE = CPUS >= 2

CHUNK_SIZE = 1024
ROUNDS = 2
SHARDS = 4
NODES = 2
#: Collapse floor everywhere (single core, smoke scale): loopback TCP
#: framing + CRC on every message may cost real throughput when shards
#: time-slice one core, but losing more than half the pipe rate means
#: the framing layer is broken, not just taxed.
MIN_SOCKET_VS_PIPE_FLOOR = 0.5
#: Supervision rides the same socket; heartbeats and checkpoints are
#: periodic, so their cost must stay a modest tax, not a collapse.
MIN_SUPERVISED_VS_SOCKET_FLOOR = 0.6
#: Strict floors (multi-core, full workload scale): with genuine shard
#: parallelism the transport is amortized behind compute.
STRICT_SOCKET_VS_PIPE_FLOOR = 0.7
STRICT_SUPERVISED_VS_SOCKET_FLOOR = 0.7

SUPERVISION = SupervisionConfig(
    heartbeat_interval=64,
    heartbeat_timeout_s=30.0,
    checkpoint_interval=256,
)


def _timed(fn):
    started = time.perf_counter()
    value = fn()
    return value, time.perf_counter() - started


def _best_of(configurations, rounds=ROUNDS):
    """Interleaved rounds, best wall per configuration (noise shield)."""
    counts, best = {}, {}
    for _ in range(rounds):
        for label, run in configurations:
            value, elapsed = _timed(run)
            counts[label] = value
            if label not in best or elapsed < best[label]:
                best[label] = elapsed
    return counts, best


def _sweep():
    dataset = heavy_probe_dataset()
    tuples = len(dataset)
    k_ms = dataset.max_delay()
    config = lambda: heavy_probe_config(k_ms)  # noqa: E731 - local factory

    def pipe():
        count, _ = run_partitioned(
            dataset, config(), SHARDS, executor="process",
            batch_size=CHUNK_SIZE, chunk_size=CHUNK_SIZE,
        )
        return count

    def over_sockets(addresses, supervised):
        def run():
            kwargs = (
                dict(executor="supervised", supervision=SUPERVISION)
                if supervised
                else dict(executor="process")
            )
            count, _ = run_partitioned(
                dataset, config(), SHARDS,
                batch_size=CHUNK_SIZE, chunk_size=CHUNK_SIZE,
                transport="socket", nodes=addresses, **kwargs,
            )
            return count

        return run

    spawned = [NodeServer.spawn() for _ in range(NODES)]
    addresses = [address for _, address in spawned]
    try:
        configurations = [
            (f"pipe x{SHARDS}", pipe),
            (
                f"socket x{SHARDS} / {NODES} nodes",
                over_sockets(addresses, False),
            ),
            (
                f"socket x{SHARDS} / {NODES} nodes supervised",
                over_sockets(addresses, True),
            ),
        ]
        counts, best = _best_of(configurations)
    finally:
        for process, _ in spawned:
            process.terminate()
            process.join(5)
    rates = {label: tuples / wall for label, wall in best.items()}
    rows = [
        (label, counts[label], f"{best[label]:.2f}", f"{rates[label]:,.0f}")
        for label, _ in configurations
    ]
    socket_ratio = (
        rates[f"socket x{SHARDS} / {NODES} nodes"] / rates[f"pipe x{SHARDS}"]
    )
    supervised_ratio = (
        rates[f"socket x{SHARDS} / {NODES} nodes supervised"]
        / rates[f"socket x{SHARDS} / {NODES} nodes"]
    )
    rows.append(("socket/pipe", "", "", f"{socket_ratio:.2f}x"))
    rows.append(("supervised/socket", "", "", f"{supervised_ratio:.2f}x"))
    report(
        "ext_distributed",
        "Extension — socket-distributed executors vs the pipe baseline "
        f"({tuples} tuples, {SHARDS} shards, {NODES} nodes, {CPUS} CPU(s))",
        ["configuration", "results", "wall (s)", "tuples/s"],
        rows,
    )
    return counts, rates


def test_ext_distributed(benchmark):
    counts, rates = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    # The carrier may never change results.
    assert len(set(counts.values())) == 1
    pipe = rates[f"pipe x{SHARDS}"]
    socket_rate = rates[f"socket x{SHARDS} / {NODES} nodes"]
    supervised = rates[f"socket x{SHARDS} / {NODES} nodes supervised"]
    assert socket_rate >= MIN_SOCKET_VS_PIPE_FLOOR * pipe, (
        f"socket transport {socket_rate:,.0f} t/s collapsed vs pipe "
        f"{pipe:,.0f} t/s ({socket_rate / pipe:.2f}x)"
    )
    assert supervised >= MIN_SUPERVISED_VS_SOCKET_FLOOR * socket_rate, (
        f"supervised socket {supervised:,.0f} t/s collapsed vs plain "
        f"socket {socket_rate:,.0f} t/s ({supervised / socket_rate:.2f}x)"
    )
    if MULTICORE and BENCH_SCALE >= 1.0:
        assert socket_rate >= STRICT_SOCKET_VS_PIPE_FLOOR * pipe, (
            f"on {CPUS} CPUs socket x{SHARDS} {socket_rate:,.0f} t/s "
            f"< {STRICT_SOCKET_VS_PIPE_FLOOR}x pipe {pipe:,.0f} t/s"
        )
        assert supervised >= STRICT_SUPERVISED_VS_SOCKET_FLOOR * socket_rate, (
            f"on {CPUS} CPUs supervision cost "
            f"{supervised / socket_rate:.2f}x exceeds the "
            f"{STRICT_SUPERVISED_VS_SOCKET_FLOOR}x floor"
        )
