"""Fig. 8 — effectiveness under varying result-quality measurement periods P.

The paper varies P ∈ {30, 60, 180, 300} s on (D×2real, Q×2) and
(D×3syn, Q×3) under Γ ∈ {0.95, 0.99}.  Expected shapes: smaller P is
harder to fulfil (fewer chances for a weak interval to be compensated
within the same period → lower Φ), yet Φ(.99Γ) stays above ~90%; the
average K is largely insensitive to P.

Scale note: bench runs cover ~90 s of stream time, so the P grid is
rescaled to {5, 10, 15, 30} s (the paper's grid divided by ~10, with the
same smallest-P/L ratio of 5).  Set REPRO_PAPER_SCALE=1 to run the
paper's grid on the full-length datasets.
"""

from common import PAPER_SCALE, report, run

PERIODS_MS = (30_000, 60_000, 180_000, 300_000) if PAPER_SCALE else (5_000, 10_000, 15_000, 30_000)
GAMMAS = (0.95, 0.99)
DATASETS = ("soccer", "d3")


def _sweep():
    outcomes = []
    for name in DATASETS:
        for gamma in GAMMAS:
            for period in PERIODS_MS:
                outcomes.append(
                    run(name, "model-noneqsel", gamma=gamma, period_ms=period)
                )
    return outcomes


def test_fig08_vary_period(benchmark):
    outcomes = benchmark.pedantic(_sweep, rounds=1, iterations=1)

    rows = [
        (
            o.experiment,
            o.gamma,
            o.period_ms / 1000.0,
            f"{o.average_k_s:.2f}",
            f"{100 * o.phi:.1f}",
            f"{100 * o.phi99:.1f}",
            len(o.measurements),
        )
        for o in outcomes
    ]
    report(
        "fig08_vary_period",
        "Fig. 8 — effectiveness vs result-quality measurement period P (NonEqSel)",
        ["dataset", "Gamma", "P (s)", "Avg K (s)", "Phi(G)%", "Phi(.99G)%", "#samples"],
        rows,
    )

    # Shape check: the near-requirement fulfillment stays high for every
    # P (the paper reports Phi(.99G) > 90% throughout; Phi(G) itself dips
    # for small P there too, so no monotonicity is asserted).
    for o in outcomes:
        assert o.phi99 >= 0.75, (o.experiment, o.gamma, o.period_ms, o.phi99)
