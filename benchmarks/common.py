"""Shared infrastructure for the paper-reproduction benchmarks.

Each ``bench_*`` module regenerates one table or figure of the paper's
evaluation (Sec. VI).  Datasets and their ground truths are generated
once per session and shared across benches through
:func:`experiment` — the figure sweeps then re-run only the pipeline.

Scaling: the paper's runs are 23–30 minutes at 100 tuples/s on a C++
engine; the default bench scale is ~90 s of stream time at 10–20
tuples/s (see ``repro.experiments.configs``).  Set the environment
variable ``REPRO_BENCH_SCALE`` to stretch the runs (e.g. ``2.0`` doubles
the stream duration) or ``REPRO_PAPER_SCALE=1`` for the full paper
parameters (hours of wall-clock in pure Python).

Scaled parameter grids: the measurement-period (Fig. 8) and adaptation-
interval (Fig. 9) sweeps are rescaled so they fit within the shortened
runs; the mapping is printed in each report header and recorded in
EXPERIMENTS.md.
"""

from __future__ import annotations

import os
from typing import Dict, List, Sequence

from repro.experiments.configs import (
    ExperimentConfig,
    d3_experiment,
    d4_experiment,
    nexmark_experiment,
    nexmark_pab_experiment,
    soccer_experiment,
)
from repro.experiments.report import format_table, print_and_save
from repro.experiments.runner import RunResult, make_policy, run_experiment

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
PAPER_SCALE = os.environ.get("REPRO_PAPER_SCALE", "") not in ("", "0", "false")


def bench_scale() -> float:
    """The current ``REPRO_BENCH_SCALE``, read per call.

    Unlike the import-time :data:`BENCH_SCALE` constant, this re-reads
    the environment, so ``conftest.py``'s ``--bench-scale`` option (set
    in ``pytest_configure``, i.e. possibly after this module was first
    imported by an earlier test session) and CI steps that export the
    variable between pytest invocations are both honoured.  New benches
    (soak, NEXMark) must size workloads through this or :func:`scaled`
    so CI can run them at 1/10 scale without editing gate constants.
    """
    return float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


def scaled(base: int, floor: int = 1) -> int:
    """Scale an integer workload knob by ``REPRO_BENCH_SCALE``.

    ``floor`` guards knobs with structural minima (a window that must
    hold at least a few tuples, a phase that must be non-empty): the CI
    smoke scale shrinks the run without degenerating the scenario.  Gate
    *constants* stay untouched — only workload sizes scale.
    """
    return max(floor, int(base * bench_scale()))

#: Default pipeline parameters at bench scale.  The paper uses P = 60 s,
#: L = 1 s, b = g = 10 ms; with runs of ~90 s a 60-second measurement
#: period leaves too few samples, so the bench default is P = 15 s
#: (same P/L ratio spirit; Fig. 8 sweeps P explicitly).
DEFAULT_PERIOD_MS = 15_000 if not PAPER_SCALE else 60_000
DEFAULT_INTERVAL_MS = 1_000
DEFAULT_B_MS = 10
DEFAULT_G_MS = 10

_cache: Dict[str, ExperimentConfig] = {}


def experiment(name: str) -> ExperimentConfig:
    """Cached experiment configs keyed by ``soccer`` / ``d3`` / ``d4``."""
    if name not in _cache:
        factories = {
            "soccer": soccer_experiment,
            "d3": d3_experiment,
            "d4": d4_experiment,
            "nexmark": nexmark_experiment,
            "nexmark-pab": nexmark_pab_experiment,
        }
        _cache[name] = factories[name](scale=bench_scale(), paper_scale=PAPER_SCALE)
    return _cache[name]


def run(
    exp_name: str,
    policy_name: str,
    gamma: float = 0.95,
    period_ms: int = None,
    interval_ms: int = None,
    basic_window_ms: int = None,
    granularity_ms: int = None,
) -> RunResult:
    """One instrumented pipeline run with bench defaults filled in."""
    exp = experiment(exp_name)
    return run_experiment(
        exp,
        make_policy(policy_name, gamma),
        gamma=gamma,
        period_ms=period_ms or DEFAULT_PERIOD_MS,
        interval_ms=interval_ms or DEFAULT_INTERVAL_MS,
        basic_window_ms=basic_window_ms or DEFAULT_B_MS,
        granularity_ms=granularity_ms or DEFAULT_G_MS,
    )


def report(name: str, title: str, headers: Sequence[str], rows: List[Sequence]) -> str:
    """Format, print, and persist one bench report; returns the text."""
    text = format_table(headers, rows, title=title)
    print_and_save(name, text)
    return text


ALL_EXPERIMENTS = ("soccer", "d3", "d4")

# ----------------------------------------------------------------------
# heavy-probe workload (shared by the partitioned / columnar benches)
# ----------------------------------------------------------------------

#: Window size of the heavy-probe scenario.  With ``HEAVY_DOMAIN`` key
#: values over a 60 ms per-stream inter-arrival, a 12 s window holds
#: ~40 tuples per key and stream, so each in-order trigger enumerates
#: ~40² candidate pairs — around a millisecond of probe work per tuple,
#: >10× the D3syn sweep's ~80 µs, which is what a parallel engine needs
#: to amortize its per-tuple transport cost against.
HEAVY_WINDOW_S = 12
HEAVY_DOMAIN = 5
HEAVY_MAX_DELAY_MS = 800


def heavy_probe_dataset(num_tuples: int = None, seed: int = 7):
    """Three interleaved streams, tiny key domain, ~20% delayed arrivals.

    The original D3syn partitioned sweep finishes in ~0.2 s wall — far
    too light for shard parallelism to show anything but IPC overhead
    (which is exactly how the pre-columnar regression stayed hidden).
    This workload raises per-tuple probe work by >10× (see
    ``HEAVY_WINDOW_S``) while keeping the equi-chain exactly
    partitionable.
    """
    import random

    from repro import from_tuple_specs

    # Floor well above the smoke scale: below ~1200 tuples the 12 s
    # window never fills and worker spawn overhead dwarfs the run,
    # which would turn the columnar gates into coin flips.
    if num_tuples is None:
        num_tuples = max(1_200, int(2_400 * BENCH_SCALE))
    rng = random.Random(seed)
    events = []
    for i in range(num_tuples):
        delay = 0 if rng.random() < 0.8 else rng.randint(1, HEAVY_MAX_DELAY_MS)
        events.append((i % 3, i * 20, delay, rng.randint(1, HEAVY_DOMAIN)))
    order = sorted(
        range(num_tuples), key=lambda i: (events[i][1] + events[i][2], i)
    )
    specs = [(events[i][0], events[i][1], {"a1": events[i][3]}) for i in order]
    return from_tuple_specs(specs, num_streams=3, name="heavy-probe")


def heavy_probe_config(k_ms: int, window_s: int = None, collect: bool = False):
    """The pipeline config both heavy-probe benches run against.

    One factory so ``bench_ext_partitioned`` and ``bench_ext_columnar``
    cannot drift apart on the scenario parameters.
    """
    from repro import FixedKPolicy, PipelineConfig, equi_join_chain, seconds

    return PipelineConfig(
        window_sizes_ms=[seconds(window_s or HEAVY_WINDOW_S)] * 3,
        condition=equi_join_chain("a1", 3),
        gamma=0.95,
        period_ms=15_000,
        interval_ms=1_000,
        policy=FixedKPolicy(k_ms),
        initial_k_ms=k_ms,
        collect_results=collect,
    )


# ----------------------------------------------------------------------
# Zipf-skewed hot-key workload (bench_ext_skew)
# ----------------------------------------------------------------------

#: Key domain of the skewed scenario.  Large enough that many keys land
#: on every shard under static hashing (so slot moves have something to
#: repack), small enough that the hot ranks dominate the load.
SKEW_DOMAIN = 64
SKEW_MAX_DELAY_MS = 400
#: Per-arrival gap in ms; three interleaved streams → 3× this per stream.
SKEW_INTER_ARRIVAL_MS = 15


def skewed_hot_key_dataset(num_tuples: int = None, z: float = 1.2, seed: int = 5):
    """Three interleaved streams whose join attribute is Zipf(z)-skewed.

    The paper's synthetic workloads draw join-attribute values from
    bounded Zipf distributions (Sec. VI); this is that value skew pointed
    at the *partitioned* engine: with ``z >= 1`` a handful of hot keys
    concentrates both routing load and probe work (hot keys also build
    the largest windows, so work skew grows faster than tuple skew) onto
    whatever shards static hashing happens to give them.  ``z = 0``
    degenerates to the uniform control.  ~20% of arrivals are delayed up
    to ``SKEW_MAX_DELAY_MS`` so disorder handling stays in the loop.
    """
    import random

    from repro import ZipfValueSampler, from_tuple_specs

    if num_tuples is None:
        num_tuples = max(3_000, int(6_000 * BENCH_SCALE))
    rng = random.Random(seed)
    sampler = ZipfValueSampler(list(range(1, SKEW_DOMAIN + 1)), z, rng)
    events = []
    for i in range(num_tuples):
        delay = 0 if rng.random() < 0.8 else rng.randint(1, SKEW_MAX_DELAY_MS)
        events.append(
            (i % 3, i * SKEW_INTER_ARRIVAL_MS, delay, sampler.sample())
        )
    order = sorted(
        range(num_tuples), key=lambda i: (events[i][1] + events[i][2], i)
    )
    specs = [(events[i][0], events[i][1], {"a1": events[i][3]}) for i in order]
    return from_tuple_specs(specs, num_streams=3, name=f"skew-z{z}")


def skewed_config(k_ms: int, collect: bool = False, window_s: float = 1.0):
    """Pipeline config of the skewed scenario (fixed lossless K)."""
    from repro import FixedKPolicy, PipelineConfig, equi_join_chain, seconds

    return PipelineConfig(
        window_sizes_ms=[seconds(window_s)] * 3,
        condition=equi_join_chain("a1", 3),
        gamma=0.95,
        period_ms=15_000,
        interval_ms=1_000,
        policy=FixedKPolicy(k_ms),
        initial_k_ms=k_ms,
        collect_results=collect,
    )
