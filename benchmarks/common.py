"""Shared infrastructure for the paper-reproduction benchmarks.

Each ``bench_*`` module regenerates one table or figure of the paper's
evaluation (Sec. VI).  Datasets and their ground truths are generated
once per session and shared across benches through
:func:`experiment` — the figure sweeps then re-run only the pipeline.

Scaling: the paper's runs are 23–30 minutes at 100 tuples/s on a C++
engine; the default bench scale is ~90 s of stream time at 10–20
tuples/s (see ``repro.experiments.configs``).  Set the environment
variable ``REPRO_BENCH_SCALE`` to stretch the runs (e.g. ``2.0`` doubles
the stream duration) or ``REPRO_PAPER_SCALE=1`` for the full paper
parameters (hours of wall-clock in pure Python).

Scaled parameter grids: the measurement-period (Fig. 8) and adaptation-
interval (Fig. 9) sweeps are rescaled so they fit within the shortened
runs; the mapping is printed in each report header and recorded in
EXPERIMENTS.md.
"""

from __future__ import annotations

import os
from typing import Dict, List, Sequence

from repro.experiments.configs import (
    ExperimentConfig,
    d3_experiment,
    d4_experiment,
    soccer_experiment,
)
from repro.experiments.report import format_table, print_and_save
from repro.experiments.runner import RunResult, make_policy, run_experiment

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
PAPER_SCALE = os.environ.get("REPRO_PAPER_SCALE", "") not in ("", "0", "false")

#: Default pipeline parameters at bench scale.  The paper uses P = 60 s,
#: L = 1 s, b = g = 10 ms; with runs of ~90 s a 60-second measurement
#: period leaves too few samples, so the bench default is P = 15 s
#: (same P/L ratio spirit; Fig. 8 sweeps P explicitly).
DEFAULT_PERIOD_MS = 15_000 if not PAPER_SCALE else 60_000
DEFAULT_INTERVAL_MS = 1_000
DEFAULT_B_MS = 10
DEFAULT_G_MS = 10

_cache: Dict[str, ExperimentConfig] = {}


def experiment(name: str) -> ExperimentConfig:
    """Cached experiment configs keyed by ``soccer`` / ``d3`` / ``d4``."""
    if name not in _cache:
        factories = {
            "soccer": soccer_experiment,
            "d3": d3_experiment,
            "d4": d4_experiment,
        }
        _cache[name] = factories[name](scale=BENCH_SCALE, paper_scale=PAPER_SCALE)
    return _cache[name]


def run(
    exp_name: str,
    policy_name: str,
    gamma: float = 0.95,
    period_ms: int = None,
    interval_ms: int = None,
    basic_window_ms: int = None,
    granularity_ms: int = None,
) -> RunResult:
    """One instrumented pipeline run with bench defaults filled in."""
    exp = experiment(exp_name)
    return run_experiment(
        exp,
        make_policy(policy_name, gamma),
        gamma=gamma,
        period_ms=period_ms or DEFAULT_PERIOD_MS,
        interval_ms=interval_ms or DEFAULT_INTERVAL_MS,
        basic_window_ms=basic_window_ms or DEFAULT_B_MS,
        granularity_ms=granularity_ms or DEFAULT_G_MS,
    )


def report(name: str, title: str, headers: Sequence[str], rows: List[Sequence]) -> str:
    """Format, print, and persist one bench report; returns the text."""
    text = format_table(headers, rows, title=title)
    print_and_save(name, text)
    return text


ALL_EXPERIMENTS = ("soccer", "d3", "d4")
