"""Extension — tiered window store: bounded residency, identical output.

Runs the NEXMark-style auction-bid chain join once per (window size ×
window store) cell and gates on two deterministic identities:

* **Output identity.**  The tiered store (bounded hot object tier over
  columnar cold segments) must produce exactly the in-memory store's
  result count and ``JoinStatistics`` — the store changes the memory
  shape of the join state, never its output.
* **Residency bound.**  At the long-window setting, the tiered store's
  sampled peak resident-object count (hot tier + decode cache) must be
  at most :data:`RESIDENT_RATIO_GATE` (0.5×) of the in-memory store's —
  the point of tiering.  The hot budget is derived from the measured
  in-memory baseline (⅛ of its per-stream peak), so the gate holds at
  any ``REPRO_BENCH_SCALE`` without hand-tuned constants.

The printed report records, per cell: peak resident objects, peak
hot-tier objects, peak encoded cold bytes, decode hits/misses, and the
result count — the numbers behind the docs/BENCHMARKS.md rows.
"""

from common import report, scaled

from repro import (
    FixedKPolicy,
    NexmarkConfig,
    PipelineConfig,
    QualityDrivenPipeline,
    TieredStoreConfig,
    auction_bid_query,
    make_auction_bids,
    seconds,
)

#: Long-window tiered residency must be ≤ this fraction of in-memory.
RESIDENT_RATIO_GATE = 0.5

#: Window sizes (seconds): the contrast cell is the long window, where
#: in-memory residency grows with window content and tiering pays off.
SHORT_WINDOW_S = 0.5
LONG_WINDOW_S = 4.0

CHUNK = 128


def _dataset():
    return make_auction_bids(
        NexmarkConfig(
            num_bid_channels=2,
            num_phases=3,
            phase_duration_ms=scaled(4_000, floor=1_000),
            seed=7,
        )
    )


def _config(condition, num_streams, k_ms, window_s, store):
    return PipelineConfig(
        window_sizes_ms=[seconds(window_s)] * num_streams,
        condition=condition,
        gamma=0.95,
        period_ms=15_000,
        interval_ms=1_000,
        policy=FixedKPolicy(k_ms),
        initial_k_ms=k_ms,
        collect_results=False,
        store=store,
    )


def _run(dataset, condition, k_ms, window_s, store):
    pipeline = QualityDrivenPipeline(
        _config(condition, dataset.num_streams, k_ms, window_s, store)
    )
    arrivals = list(dataset.arrivals())
    count = 0
    for start in range(0, len(arrivals), CHUNK):
        count += pipeline.process_batch(arrivals[start:start + CHUNK])
    count += pipeline.flush()
    return count, pipeline.join.stats.as_dict(), pipeline.metrics


def _cell_row(window_s, label, count, metrics):
    resident = sum(metrics.stream_resident_objects)
    hot = sum(metrics.stream_hot_objects)
    encoded = sum(metrics.stream_encoded_bytes)
    return (
        f"{window_s:.1f}s",
        label,
        resident,
        hot,
        encoded,
        f"{metrics.decode_hits}/{metrics.decode_misses}",
        count,
    )


def _sweep():
    dataset = _dataset()
    condition = auction_bid_query(2)
    k_ms = dataset.max_delay()
    rows = []
    outcomes = {}
    for window_s in (SHORT_WINDOW_S, LONG_WINDOW_S):
        mem_count, mem_stats, mem_metrics = _run(
            dataset, condition, k_ms, window_s, None
        )
        rows.append(_cell_row(window_s, "in-memory", mem_count, mem_metrics))
        # Budget: ⅛ of the measured per-stream in-memory peak (floor 16)
        # — scale-independent, and low enough that hot + decode cache
        # stay well under the 0.5× residency gate.
        per_stream_peak = max(mem_metrics.stream_resident_objects or [16])
        budget = max(16, per_stream_peak // 8)
        tiered_config = TieredStoreConfig(
            hot_budget=budget,
            bucket_span_ms=max(50, int(window_s * 1000) // 20),
            cache_tuples=budget,
        )
        tier_count, tier_stats, tier_metrics = _run(
            dataset, condition, k_ms, window_s, tiered_config
        )
        rows.append(
            _cell_row(window_s, f"tiered (budget={budget})", tier_count,
                      tier_metrics)
        )
        outcomes[window_s] = (
            mem_count, mem_stats, mem_metrics,
            tier_count, tier_stats, tier_metrics,
        )
    return rows, outcomes


def test_ext_window_store(benchmark):
    rows, outcomes = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    report(
        "ext_window_store",
        "Extension — tiered window store: peak state residency vs "
        "in-memory, identical output",
        ["window", "store", "peak resident", "peak hot", "peak enc bytes",
         "decode h/m", "results"],
        rows,
    )
    for window_s, (
        mem_count, mem_stats, mem_metrics,
        tier_count, tier_stats, tier_metrics,
    ) in outcomes.items():
        # Identity: same results, same join counters, either store.
        assert tier_count == mem_count, f"window={window_s}"
        assert tier_stats == mem_stats, f"window={window_s}"
        # The cold tier actually engaged.
        assert sum(tier_metrics.stream_encoded_bytes) > 0, f"window={window_s}"
    # Residency gate at the long-window setting.
    _, _, mem_metrics, _, _, tier_metrics = outcomes[LONG_WINDOW_S]
    mem_peak = sum(mem_metrics.stream_resident_objects)
    tier_peak = sum(tier_metrics.stream_resident_objects)
    assert tier_peak <= RESIDENT_RATIO_GATE * mem_peak, (
        f"tiered resident peak {tier_peak} exceeds "
        f"{RESIDENT_RATIO_GATE}x in-memory peak {mem_peak}"
    )
