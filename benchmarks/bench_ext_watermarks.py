"""Extension — watermark-based front end vs quality-driven K adaptation.

The paper's framework assumes no stream-progress metadata (Sec. III);
watermark systems (MillWheel [22], Flink) instead buffer until a
heuristic watermark ``max_ts - bound`` passes.  This bench replays
(D×3syn, Q×3) behind bounded-out-of-orderness watermark front ends with
different fixed bounds and compares against the quality-driven manager:

* a small bound keeps latency low but leaks late tuples (low recall);
* a large bound buys recall with worst-case latency (≈ Max-K-slack);
* the quality-driven manager needs no bound choice: it adapts the slack
  to the recall requirement.

The effective latency of a watermark front end is its bound, reported
alongside each recall so the frontier can be compared with Fig. 7's.
"""

from common import experiment, report, run

from repro import MSWJOperator, Synchronizer
from repro.core.watermarks import WatermarkFrontEnd

BOUNDS_MS = (100, 1_000, 3_000, 6_000, 10_000)


def _watermark_replay(dataset, windows, condition, num_streams, bound_ms):
    front = WatermarkFrontEnd(num_streams, bound_ms)
    sync = Synchronizer(num_streams)
    op = MSWJOperator(windows, condition, collect_results=False)
    count = 0
    late = 0
    for t in dataset.arrivals():
        for released in front.process(t):
            for emitted in sync.process(released):
                count += op.process(emitted)
    for i in range(num_streams):
        for released in front.flush(i):
            for emitted in sync.process(released):
                count += op.process(emitted)
        for emitted in sync.close_stream(i):
            count += op.process(emitted)
    for emitted in sync.flush():
        count += op.process(emitted)
    return count, front.late_tuples()


def _sweep():
    exp = experiment("d3")
    dataset = exp.dataset()
    truth_total = exp.truth().index.total
    rows = []
    for bound in BOUNDS_MS:
        count, late = _watermark_replay(
            dataset, exp.window_sizes_ms, exp.condition, exp.num_streams, bound
        )
        rows.append(
            (
                f"watermark bound={bound / 1000:.1f}s",
                f"{bound / 1000:.2f}",
                f"{count / truth_total:.3f}",
                late,
            )
        )
    adaptive = run("d3", "model-noneqsel", gamma=0.95)
    rows.append(
        (
            "quality-driven (G=0.95)",
            f"{adaptive.average_k_s:.2f}",
            f"{adaptive.overall_recall():.3f}",
            "-",
        )
    )
    return rows, truth_total


def test_ext_watermarks(benchmark):
    rows, truth_total = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    report(
        "ext_watermarks",
        f"Extension — watermark bounds vs quality-driven adaptation, (D3syn, Q3), truth={truth_total}",
        ["front end", "buffer/avg K (s)", "recall", "late tuples"],
        rows,
    )
    # Shape: recall grows with the watermark bound; the adaptive manager
    # sits on the frontier — better recall than the cheap bounds and far
    # less buffering than the bound that guarantees (near-)full recall.
    watermark_recalls = [float(r[2]) for r in rows[:-1]]
    assert all(a <= b + 0.01 for a, b in zip(watermark_recalls, watermark_recalls[1:]))
    adaptive_recall = float(rows[-1][2])
    adaptive_k = float(rows[-1][1])
    assert adaptive_recall >= 0.93
    cheap_bound_recall = watermark_recalls[1]  # the 1-second bound
    full_recall_bound = float(rows[len(BOUNDS_MS) - 1][1])  # largest bound
    assert adaptive_recall >= cheap_bound_recall
    assert adaptive_k < full_recall_bound
