"""Extension — tree-of-binary-joins execution (paper Sec. V).

The paper argues the disorder-handling framework applies unchanged when
the MSWJ is executed as a tree of binary operators with per-operator
synchronizers.  This bench validates the substrate claim on (D×3syn,
Q×3):

* on the *sorted* replay, the tree produces exactly the MJoin result set
  (same result keys, same count);
* on the disordered replay behind the same K-slack front end (fixed K),
  tree and MJoin recalls agree closely;
* relative wall-clock of the two execution strategies is reported.
"""

import time

from common import experiment, report

from repro import KSlackBuffer, MSWJOperator, Synchronizer
from repro.distributed.tree import TreeJoinOperator


def _replay_front_end(dataset, num_streams, k_ms, join_process, join_flush):
    buffers = [KSlackBuffer(k_ms) for _ in range(num_streams)]
    sync = Synchronizer(num_streams)
    count = 0
    for t in dataset.arrivals():
        for released in buffers[t.stream].process(t):
            for emitted in sync.process(released):
                count += join_process(emitted)
    for i, buffer in enumerate(buffers):
        for released in buffer.flush():
            for emitted in sync.process(released):
                count += join_process(emitted)
        for emitted in sync.close_stream(i):
            count += join_process(emitted)
    for emitted in sync.flush():
        count += join_process(emitted)
    count += join_flush()
    return count


def _sweep():
    exp = experiment("d3")
    dataset = exp.dataset()
    windows = list(exp.window_sizes_ms)
    condition = exp.condition

    # 1. Sorted replay: exact result-set equality.
    mjoin = MSWJOperator(windows, condition, collect_results=True)
    mjoin_keys = set()
    for t in dataset.sorted_by_timestamp():
        mjoin_keys.update(r.key() for r in mjoin.process(t))
    tree = TreeJoinOperator(windows, condition, collect_results=True)
    tree_keys = set()
    for t in dataset.sorted_by_timestamp():
        tree_keys.update(r.key() for r in tree.process(t))
    tree_keys.update(r.key() for r in tree.flush())

    # 2. Disordered replay behind the same fixed-K front end.
    truth_total = exp.truth().index.total
    k_ms = 2_000

    mjoin2 = MSWJOperator(windows, condition, collect_results=False)
    t0 = time.perf_counter()
    mjoin_count = _replay_front_end(
        dataset, exp.num_streams, k_ms, mjoin2.process, lambda: 0
    )
    mjoin_seconds = time.perf_counter() - t0

    tree2 = TreeJoinOperator(windows, condition, collect_results=False)
    t0 = time.perf_counter()
    tree_count = _replay_front_end(
        dataset, exp.num_streams, k_ms, tree2.process, tree2.flush
    )
    tree_seconds = time.perf_counter() - t0

    return {
        "mjoin_keys": len(mjoin_keys),
        "tree_keys": len(tree_keys),
        "keys_equal": mjoin_keys == tree_keys,
        "truth_total": truth_total,
        "mjoin_count": mjoin_count,
        "tree_count": tree_count,
        "mjoin_seconds": mjoin_seconds,
        "tree_seconds": tree_seconds,
    }


def test_ext_distributed_tree(benchmark):
    outcome = benchmark.pedantic(_sweep, rounds=1, iterations=1)

    rows = [
        ("sorted replay: MJoin results", outcome["mjoin_keys"]),
        ("sorted replay: tree results", outcome["tree_keys"]),
        ("sorted replay: identical result sets", outcome["keys_equal"]),
        ("true result count", outcome["truth_total"]),
        ("disordered (K=2s): MJoin produced", outcome["mjoin_count"]),
        ("disordered (K=2s): tree produced", outcome["tree_count"]),
        ("MJoin replay seconds", f"{outcome['mjoin_seconds']:.2f}"),
        ("tree replay seconds", f"{outcome['tree_seconds']:.2f}"),
    ]
    report(
        "ext_distributed_tree",
        "Extension (Sec. V) — MJoin vs tree-of-binary-joins on (D3syn, Q3)",
        ["quantity", "value"],
        rows,
    )

    assert outcome["keys_equal"]
    # Under the same front end the two strategies lose the same results
    # up to straggler-timing differences at operator boundaries.
    assert outcome["tree_count"] >= 0.9 * outcome["mjoin_count"]
    assert outcome["tree_count"] <= outcome["truth_total"]
