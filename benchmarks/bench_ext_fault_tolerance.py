"""Extension — fault tolerance: checkpoint overhead and bounded recovery.

Runs the shared heavy-probe scenario (``common.heavy_probe_dataset``,
small key domain, large windows — enough per-tuple work that transport
and checkpoint costs are measured against real join work) on the
supervised executor and gates two properties of the fault-tolerance
layer:

* **Checkpoint overhead.**  Periodic per-shard checkpoints (window +
  pending state shipped every ``CHECKPOINT_INTERVAL`` batches) must keep
  throughput at >= :data:`CHECKPOINT_RATIO_GATE` (0.85×) of the same
  supervised run with checkpointing disabled.  Fault tolerance that
  halves steady-state throughput is not a deployable default.
* **Bounded recovery.**  With a seeded mid-run crash
  (``crash-after-batch``), the recovered run must (a) produce the
  byte-identical result count — the front end is lossless fixed-K, so
  recovery transparency holds — and (b) replay at most
  ``CHECKPOINT_INTERVAL`` batches: the parent-side replay log is
  truncated at every admitted checkpoint, which is what bounds both
  recovery time and replay-log memory.

The printed report records, per cell: result count, wall time,
throughput, and the supervision counters (respawns, checkpoints,
replayed batches) — the numbers behind the docs/BENCHMARKS.md rows.
"""

import time

from common import heavy_probe_config, heavy_probe_dataset, report

from repro import (
    FaultPlan,
    FaultSpec,
    PartitionedPipeline,
    SupervisionConfig,
)
from repro.faults.plan import KIND_CRASH_AFTER_BATCH

#: Checkpoint-on throughput must stay at least this fraction of
#: checkpoint-off throughput.
CHECKPOINT_RATIO_GATE = 0.85

SHARDS = 2
#: Small IPC dispatch window so the run spans enough batches for several
#: checkpoint cycles per shard even at the CI smoke scale's 1200-tuple
#: floor (~600 tuples/shard -> ~18 batches).
BATCH_SIZE = 32
CHUNK = 128
CHECKPOINT_INTERVAL = 8
#: The seeded crash point: past the first checkpoint cycle, so recovery
#: restores real state and replays only the post-checkpoint suffix.
CRASH_AT_BATCH = 10


def _supervision(checkpoint_interval):
    return SupervisionConfig(
        heartbeat_interval=4,
        heartbeat_timeout_s=10.0,
        checkpoint_interval=checkpoint_interval,
        max_respawns=2,
        backoff_base_s=0.01,
    )


def _run(dataset, k_ms, checkpoint_interval, fault_plan=None):
    arrivals = list(dataset.arrivals())
    started = time.perf_counter()
    with PartitionedPipeline(
        heavy_probe_config(k_ms),
        SHARDS,
        executor="supervised",
        batch_size=BATCH_SIZE,
        supervision=_supervision(checkpoint_interval),
        fault_plan=fault_plan,
    ) as pipeline:
        count = 0
        for start in range(0, len(arrivals), CHUNK):
            count += pipeline.process_batch(arrivals[start:start + CHUNK])
        count += pipeline.flush()
        executor = pipeline.executor
        counters = dict(
            respawns=executor.respawns,
            checkpoints=executor.checkpoints_taken,
            replayed=executor.replayed_batches,
        )
    return count, time.perf_counter() - started, counters


def _sweep():
    dataset = heavy_probe_dataset()
    k_ms = dataset.max_delay()
    tuples = len(dataset)

    rows = []
    outcomes = {}

    def record(label, count, elapsed, counters):
        outcomes[label] = (count, elapsed, counters)
        rows.append((
            label, count, f"{elapsed:.2f}", f"{tuples / elapsed:,.0f}",
            counters["respawns"], counters["checkpoints"],
            counters["replayed"],
        ))

    # Supervised baseline, checkpointing off (interval 0 = disabled).
    count, elapsed, counters = _run(dataset, k_ms, 0)
    record("checkpoint off", count, elapsed, counters)

    # Same run with periodic checkpoints.
    count, elapsed, counters = _run(dataset, k_ms, CHECKPOINT_INTERVAL)
    record(f"checkpoint every {CHECKPOINT_INTERVAL}", count, elapsed, counters)

    # Seeded crash mid-run: restore from checkpoint + bounded replay.
    plan = FaultPlan((FaultSpec(0, KIND_CRASH_AFTER_BATCH, at=CRASH_AT_BATCH),))
    count, elapsed, counters = _run(
        dataset, k_ms, CHECKPOINT_INTERVAL, fault_plan=plan
    )
    record("crash + recover", count, elapsed, counters)

    report(
        "ext_fault_tolerance",
        "Extension — supervised executor: checkpoint overhead and "
        f"crash recovery (heavy probe, {tuples} tuples, {SHARDS} shards)",
        ["configuration", "results", "wall (s)", "tuples/s",
         "respawns", "checkpoints", "replayed"],
        rows,
    )
    return outcomes


def test_ext_fault_tolerance(benchmark):
    outcomes = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    off_count, off_elapsed, off_counters = outcomes["checkpoint off"]
    on_count, on_elapsed, on_counters = outcomes[
        f"checkpoint every {CHECKPOINT_INTERVAL}"
    ]
    crash_count, _, crash_counters = outcomes["crash + recover"]

    # The baseline really ran without checkpoints; the contrast cell
    # really took several.
    assert off_counters["checkpoints"] == 0
    assert on_counters["checkpoints"] >= 2

    # Identity: checkpointing and crash recovery never change the
    # output (lossless fixed-K front end — recovery transparency).
    assert on_count == off_count
    assert crash_count == off_count

    # Overhead gate: periodic state shipping costs at most 15%.
    off_rate = 1.0 / off_elapsed
    on_rate = 1.0 / on_elapsed
    assert on_rate >= CHECKPOINT_RATIO_GATE * off_rate, (
        f"checkpointing throughput ratio {on_rate / off_rate:.2f} below "
        f"{CHECKPOINT_RATIO_GATE}"
    )

    # Bounded recovery: exactly one respawn, and the replay log the
    # recovery drained was truncated at the last admitted checkpoint.
    assert crash_counters["respawns"] == 1
    assert 1 <= crash_counters["replayed"] <= CHECKPOINT_INTERVAL, (
        f"replayed {crash_counters['replayed']} batches; the replay log "
        f"must be bounded by the checkpoint interval {CHECKPOINT_INTERVAL}"
    )
