"""Fig. 7 — effectiveness under varying recall requirements Γ.

The paper's headline figure.  For each (dataset, query) pair and each
Γ ∈ {0.9, 0.95, 0.99, 0.999} it reports, for both modeling strategies
(EqSel and NonEqSel):

* the average K-slack buffer size (the latency proxy), with Max-K-slack's
  average K as the reference line;
* the requirement-fulfillment percentages Φ(Γ) and Φ(.99Γ).

Expected shapes (paper Sec. VI-B): average K grows with Γ; the
model-based approach needs a (much) smaller K than Max-K-slack at equal
quality — up to 95% smaller at Γ = 0.99 on the 2-way real-world join —
and NonEqSel is the more robust strategy (Φ(.99Γ) ≥ ~97% everywhere,
at a slightly higher K than EqSel).
"""

from common import ALL_EXPERIMENTS, experiment, report, run

GAMMAS = (0.9, 0.95, 0.99, 0.999)
STRATEGIES = ("model-eqsel", "model-noneqsel")
NONEQ_LABEL = "Model-based(NonEqSel)"


def _sweep():
    outcomes = []
    references = {}
    for name in ALL_EXPERIMENTS:
        references[name] = run(name, "max-k-slack", gamma=0.99)
        for gamma in GAMMAS:
            for strategy in STRATEGIES:
                outcomes.append(run(name, strategy, gamma=gamma))
    return outcomes, references


def test_fig07_vary_gamma(benchmark):
    outcomes, references = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    reference_by_label = {
        experiment(n).name: r for n, r in references.items()
    }

    rows = []
    for outcome in outcomes:
        reference = reference_by_label[outcome.experiment]
        reduction = (
            100.0 * (1.0 - outcome.average_k_s / reference.average_k_s)
            if reference.average_k_s > 0
            else 0.0
        )
        rows.append(
            (
                outcome.experiment,
                outcome.gamma,
                outcome.policy,
                f"{outcome.average_k_s:.2f}",
                f"{100 * outcome.phi:.1f}",
                f"{100 * outcome.phi99:.1f}",
                f"{reduction:.0f}%",
            )
        )
    for reference in references.values():
        rows.append(
            (
                reference.experiment,
                "-",
                "Max-K-slack (ref)",
                f"{reference.average_k_s:.2f}",
                "-",
                "-",
                "0%",
            )
        )
    report(
        "fig07_vary_gamma",
        "Fig. 7 — Avg. K and requirement fulfillment vs Gamma (EqSel / NonEqSel)",
        [
            "dataset",
            "Gamma",
            "strategy",
            "Avg K (s)",
            "Phi(G)%",
            "Phi(.99G)%",
            "K reduction vs Max-K",
        ],
        rows,
    )

    # Shape checks -----------------------------------------------------
    by_key = {(o.experiment, o.policy, o.gamma): o for o in outcomes}
    for name in ALL_EXPERIMENTS:
        label = experiment(name).name
        reference = reference_by_label[label]
        noneq = sorted(
            (
                by_key[(label, NONEQ_LABEL, g)]
                for g in GAMMAS
                if (label, NONEQ_LABEL, g) in by_key
            ),
            key=lambda o: o.gamma,
        )
        # Avg K non-decreasing in Gamma (small estimation noise allowed).
        ks = [o.average_k_s for o in noneq]
        assert all(a <= b + 0.35 for a, b in zip(ks, ks[1:])), (name, ks)
        # Model-based beats Max-K-slack on buffer size at moderate Gamma.
        assert noneq[0].average_k_s < reference.average_k_s
        # Quality near the requirement for most measurements.
        for outcome in noneq:
            assert outcome.phi99 >= 0.6, (name, outcome.gamma, outcome.phi99)
