"""Table II — results of the Max-K-slack baseline approach.

The paper's finding: Max-K-slack (K tracks the maximum so-far-observed
delay, after Mutschler & Philippsen) drives the average recall to ~1.0
(0.999+, not exactly 1 because each K increase is triggered by a tuple
that itself arrives too late to be re-ordered), at the cost of an average
K close to the maximum tuple delay in the workload.

Prints the Table II rows (Avg. K, Avg. γ(P)) for all three datasets.
"""

from common import ALL_EXPERIMENTS, report, run


def _sweep():
    return {name: run(name, "max-k-slack", gamma=0.99) for name in ALL_EXPERIMENTS}


def test_table2_max_kslack(benchmark):
    results = benchmark.pedantic(_sweep, rounds=1, iterations=1)

    rows = [
        (
            outcome.experiment,
            f"{outcome.average_k_s:.2f}",
            f"{outcome.average_recall:.3f}",
            f"{outcome.overall_recall():.3f}",
        )
        for outcome in results.values()
    ]
    report(
        "table2_max_kslack",
        "Table II — Max-K-slack baseline: Avg. K (sec) and Avg. gamma(P)",
        ["dataset", "Avg. K (s)", "Avg. gamma(P)", "overall recall"],
        rows,
    )

    for outcome in results.values():
        # Near-complete quality...
        assert outcome.average_recall > 0.98
        # ...bought with a buffer of seconds (most of the max delay).
        assert outcome.average_k_s > 0.5
