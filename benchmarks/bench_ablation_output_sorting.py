"""Ablation — input-side vs output-side disorder handling (paper footnote 2).

The paper sorts *inputs* before the join.  The alternative it discusses:
let an out-of-order-tolerating join emit results as they come and sort
the *result* stream with a bounded buffer, discarding results that are
still out of order (to preserve the in-order output contract).

This ablation replays (D×3syn, Q×3) under matched buffer sizes K for the
two architectures and compares recall:

* input-side: K-slack(K) per stream + Synchronizer + Alg. 2 join;
* output-side: raw disordered feed into a probe-everything join, then a
  ResultSorter(K) on the result stream.

Expected: output-side sorting recovers late results that Alg. 2 would
drop (probing never skips), but pays for it with state/probing on stale
windows and with discarded results whenever the result stream's own
disorder exceeds K; input-side handling dominates at equal K once delays
are significant — the paper's architectural choice.
"""

from common import experiment, report

from repro import KSlackBuffer, MSWJOperator, Synchronizer
from repro.core.result_sorter import ResultSorter

BUFFER_SIZES_MS = (0, 500, 2_000, 5_000)


def _input_side(dataset, windows, condition, k_ms, num_streams):
    buffers = [KSlackBuffer(k_ms) for _ in range(num_streams)]
    sync = Synchronizer(num_streams)
    op = MSWJOperator(windows, condition, collect_results=False)
    count = 0
    for t in dataset.arrivals():
        for released in buffers[t.stream].process(t):
            for emitted in sync.process(released):
                count += op.process(emitted)
    for i, buffer in enumerate(buffers):
        for released in buffer.flush():
            for emitted in sync.process(released):
                count += op.process(emitted)
        for emitted in sync.close_stream(i):
            count += op.process(emitted)
    for emitted in sync.flush():
        count += op.process(emitted)
    return count


def _output_side(dataset, windows, condition, k_ms):
    op = MSWJOperator(windows, condition, probe_out_of_order=True)
    sorter = ResultSorter(k_ms)
    delivered = 0
    for t in dataset.arrivals():
        for result in op.process(t):
            delivered += len(sorter.process(result))
    delivered += len(sorter.flush())
    return delivered, sorter.discarded


def _sweep():
    exp = experiment("d3")
    dataset = exp.dataset()
    truth_total = exp.truth().index.total
    rows = []
    for k_ms in BUFFER_SIZES_MS:
        in_count = _input_side(
            dataset, exp.window_sizes_ms, exp.condition, k_ms, exp.num_streams
        )
        out_count, discarded = _output_side(
            dataset, exp.window_sizes_ms, exp.condition, k_ms
        )
        rows.append(
            (
                k_ms / 1000.0,
                f"{in_count / truth_total:.3f}",
                f"{out_count / truth_total:.3f}",
                discarded,
            )
        )
    return rows, truth_total


def test_ablation_output_sorting(benchmark):
    rows, truth_total = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    report(
        "ablation_output_sorting",
        f"Ablation — input-side vs output-side sorting, (D3syn, Q3), truth={truth_total}",
        ["K (s)", "input-side recall", "output-side recall", "results discarded"],
        rows,
    )
    # Both recalls must be valid fractions and grow with K.
    input_recalls = [float(r[1]) for r in rows]
    output_recalls = [float(r[2]) for r in rows]
    assert all(0.0 <= r <= 1.0 for r in input_recalls + output_recalls)
    assert input_recalls[-1] >= input_recalls[0]
    assert output_recalls[-1] >= output_recalls[0]
    # At a generous buffer both approaches approach full recall.
    assert input_recalls[-1] > 0.95
    assert output_recalls[-1] > 0.9
