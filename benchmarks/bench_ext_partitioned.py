"""Extension — hash-partitioned parallel pipeline throughput (repro.parallel).

Sweeps shard counts over two workloads behind a fixed-K front end
(K >= max realized delay, so disorder handling is lossless and every
configuration must produce the identical result count):

* the original (D×3syn, Q×3) equi-join — light per-tuple work (~80 µs),
  which makes it a pure *overhead* probe: the serial executor exposes
  routing cost, the multiprocessing executor exposes transport cost.
  This run finishing in ~0.2 s is exactly what masked the pre-columnar
  IPC regression;
* the shared heavy-probe scenario (``common.heavy_probe_dataset``,
  small key domain, large windows, ≥10× the per-tuple work) — the
  regime where per-shard worker processes can actually amortize their
  IPC and, given ≥2 CPU cores, overtake the single pipeline.

The multiprocessing executor runs the columnar block transport (the
default); ``benchmarks/bench_ext_columnar.py`` holds the transport
comparison and its acceptance gates.
"""

import time

from common import (
    HEAVY_WINDOW_S,
    experiment,
    heavy_probe_config,
    heavy_probe_dataset,
    report,
)

from repro import (
    FixedKPolicy,
    PipelineConfig,
    QualityDrivenPipeline,
    run_partitioned,
)

SHARD_COUNTS = (1, 2, 4)
HEAVY_CHUNK = 1024


def _config(exp, k_ms):
    return PipelineConfig(
        window_sizes_ms=list(exp.window_sizes_ms),
        condition=exp.condition,
        gamma=0.95,
        period_ms=15_000,
        interval_ms=1_000,
        policy=FixedKPolicy(k_ms),
        initial_k_ms=k_ms,
        collect_results=False,
    )


def _sweep():
    exp = experiment("d3")
    dataset = exp.dataset()
    k_ms = dataset.max_delay()
    tuples = len(dataset)

    rows = []
    counts = {}

    def record(label, count, elapsed):
        counts[label] = count
        rows.append((label, count, f"{elapsed:.2f}", f"{tuples / elapsed:,.0f}"))

    started = time.perf_counter()
    single = QualityDrivenPipeline(_config(exp, k_ms))
    count = 0
    for t in dataset.arrivals():
        count += single.process(t)
    count += single.flush()
    record("single-pipeline", count, time.perf_counter() - started)

    for shards in SHARD_COUNTS:
        started = time.perf_counter()
        count, _ = run_partitioned(
            dataset, _config(exp, k_ms), shards, executor="serial"
        )
        record(f"serial x{shards}", count, time.perf_counter() - started)

    for shards in SHARD_COUNTS:
        started = time.perf_counter()
        count, _ = run_partitioned(
            dataset, _config(exp, k_ms), shards, executor="process", batch_size=512
        )
        record(f"process x{shards}", count, time.perf_counter() - started)

    report(
        "ext_partitioned",
        "Extension — partitioned pipeline throughput vs shard count "
        "(D3syn, Q3, fixed K)",
        ["configuration", "results", "wall (s)", "tuples/s"],
        rows,
    )
    return counts


def _heavy_sweep():
    dataset = heavy_probe_dataset()
    k_ms = dataset.max_delay()
    tuples = len(dataset)
    arrivals = list(dataset.arrivals())

    rows = []
    counts = {}

    def record(label, count, elapsed):
        counts[label] = count
        rows.append((label, count, f"{elapsed:.2f}", f"{tuples / elapsed:,.0f}"))

    started = time.perf_counter()
    single = QualityDrivenPipeline(heavy_probe_config(k_ms))
    count = 0
    for start in range(0, len(arrivals), HEAVY_CHUNK):
        count += single.process_batch(arrivals[start : start + HEAVY_CHUNK])
    count += single.flush()
    record("single-pipeline", count, time.perf_counter() - started)

    for shards in (2, 4):
        started = time.perf_counter()
        count, _ = run_partitioned(
            dataset, heavy_probe_config(k_ms), shards, executor="serial",
            chunk_size=HEAVY_CHUNK,
        )
        record(f"serial x{shards}", count, time.perf_counter() - started)

    for shards in (2, 4):
        started = time.perf_counter()
        count, _ = run_partitioned(
            dataset, heavy_probe_config(k_ms), shards, executor="process",
            batch_size=HEAVY_CHUNK, chunk_size=HEAVY_CHUNK,
        )
        record(f"process x{shards}", count, time.perf_counter() - started)

    report(
        "ext_partitioned_heavy",
        "Extension — partitioned pipeline on the heavy-probe scenario "
        f"({tuples} tuples, W = {HEAVY_WINDOW_S} s, columnar transport)",
        ["configuration", "results", "wall (s)", "tuples/s"],
        rows,
    )
    return counts


def test_ext_partitioned(benchmark):
    counts = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    # Lossless front end + exact equi partitioning: every configuration
    # must produce the identical result count.
    assert len(set(counts.values())) == 1


def test_ext_partitioned_heavy(benchmark):
    counts = benchmark.pedantic(_heavy_sweep, rounds=1, iterations=1)
    assert len(set(counts.values())) == 1
