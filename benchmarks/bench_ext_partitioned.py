"""Extension — hash-partitioned parallel pipeline throughput (repro.parallel).

Sweeps shard counts over the (D×3syn, Q×3) equi-join workload behind a
fixed-K front end (K >= max realized delay, so disorder handling is
lossless and every configuration must produce the identical result
count).  Reports wall-clock and throughput for the single pipeline, the
serial executor (the determinism baseline; no real parallelism, so its
numbers expose pure routing overhead) and the multiprocessing executor
(per-shard worker processes with batched tuple transfer — the actual
scale-out path; speedup depends on how much join work each IPC'd tuple
amortizes, so it grows with selectivity and window size).
"""

import time

from common import experiment, report

from repro import (
    FixedKPolicy,
    PipelineConfig,
    QualityDrivenPipeline,
    run_partitioned,
)

SHARD_COUNTS = (1, 2, 4)


def _config(exp, k_ms):
    return PipelineConfig(
        window_sizes_ms=list(exp.window_sizes_ms),
        condition=exp.condition,
        gamma=0.95,
        period_ms=15_000,
        interval_ms=1_000,
        policy=FixedKPolicy(k_ms),
        initial_k_ms=k_ms,
        collect_results=False,
    )


def _sweep():
    exp = experiment("d3")
    dataset = exp.dataset()
    k_ms = dataset.max_delay()
    tuples = len(dataset)

    rows = []
    counts = {}

    def record(label, count, elapsed):
        counts[label] = count
        rows.append((label, count, f"{elapsed:.2f}", f"{tuples / elapsed:,.0f}"))

    started = time.perf_counter()
    single = QualityDrivenPipeline(_config(exp, k_ms))
    count = 0
    for t in dataset.arrivals():
        count += single.process(t)
    count += single.flush()
    record("single-pipeline", count, time.perf_counter() - started)

    for shards in SHARD_COUNTS:
        started = time.perf_counter()
        count, _ = run_partitioned(
            dataset, _config(exp, k_ms), shards, executor="serial"
        )
        record(f"serial x{shards}", count, time.perf_counter() - started)

    for shards in SHARD_COUNTS:
        started = time.perf_counter()
        count, _ = run_partitioned(
            dataset, _config(exp, k_ms), shards, executor="process", batch_size=512
        )
        record(f"process x{shards}", count, time.perf_counter() - started)

    report(
        "ext_partitioned",
        "Extension — partitioned pipeline throughput vs shard count "
        "(D3syn, Q3, fixed K)",
        ["configuration", "results", "wall (s)", "tuples/s"],
        rows,
    )
    return counts


def test_ext_partitioned(benchmark):
    counts = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    # Lossless front end + exact equi partitioning: every configuration
    # must produce the identical result count.
    assert len(set(counts.values())) == 1
