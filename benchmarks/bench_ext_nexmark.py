"""Extension — NEXMark-style auction workloads across the engine.

The paper evaluates on D×3syn/D×4syn and the soccer traces; this bench
runs the NEXMark-style workload suite (``repro.streams.nexmark``)
through every execution regime and gates on *deterministic* count
identities rather than timings:

* **Shard invariance (exact partitioning).**  The auction-bid chain
  equi-join has one equi component covering all streams, so the
  partitioned engine at shards 1/2/4 — and the rebalanced run — must
  produce exactly the single-pipeline result count, which under
  lossless disorder handling (fixed K ≥ realized max delay) equals the
  ground-truth total.
* **Broadcast identity (non-partitionable).**  The Person/Auction/Bid
  query has two disjoint equi components; the engine broadcasts, and
  the 2-shard result count must equal the single pipeline's.
* **Soak smoke.**  A 2-phase deterministic soak run
  (``repro.workloads.soak``) must pass all four invariant checks.
* **Adaptive quality.**  The quality-driven manager replays the full
  NEXMark experiment; overall recall must clear a generous floor (the
  workload's burst/silence phases are exactly what the adaptation loop
  is for).

Workload sizes honor ``REPRO_BENCH_SCALE`` via ``common.scaled`` — CI
runs at reduced scale without touching the gate constants below.
"""

from common import report, run, scaled

from repro import (
    FixedKPolicy,
    NexmarkConfig,
    PipelineConfig,
    auction_bid_query,
    make_auction_bids,
    make_person_auction_bid,
    person_auction_bid_query,
    run_partitioned,
    seconds,
)
from repro.quality.truth import compute_truth
from repro.workloads.soak import SoakConfig, run_soak

#: Gate constants (scale-independent; workloads scale, gates do not).
ADAPTIVE_RECALL_FLOOR = 0.85
SOAK_PHASES = 2


def _bench_config(seed: int = 7, channels: int = 2) -> NexmarkConfig:
    return NexmarkConfig(
        num_bid_channels=channels,
        num_phases=3,
        phase_duration_ms=scaled(4_000, floor=1_000),
        seed=seed,
    )


def _lossless(condition, num_streams, k_ms, window_s=0.5):
    return PipelineConfig(
        window_sizes_ms=[seconds(window_s)] * num_streams,
        condition=condition,
        gamma=0.95,
        period_ms=15_000,
        interval_ms=1_000,
        policy=FixedKPolicy(k_ms),
        initial_k_ms=k_ms,
        collect_results=False,
    )


def _shard_sweep():
    """Exact-partitioning identity: shards 1/2/4 + rebalanced vs truth."""
    config = _bench_config()
    dataset = make_auction_bids(config)
    condition = auction_bid_query(config.num_bid_channels)
    windows = [seconds(0.5)] * dataset.num_streams
    k = dataset.max_delay()
    truth_total = compute_truth(dataset, windows, condition).index.total
    rows = []
    counts = {}
    for shards in (1, 2, 4):
        count, _ = run_partitioned(
            dataset,
            _lossless(condition, dataset.num_streams, k),
            shards,
            chunk_size=128,
        )
        counts[f"shards={shards}"] = count
        rows.append((dataset.name, f"shards={shards}", count, truth_total))
    rebalanced, _ = run_partitioned(
        dataset,
        _lossless(condition, dataset.num_streams, k),
        4,
        chunk_size=128,
        rebalance=True,
        rebalance_interval=512,
    )
    counts["rebalanced"] = rebalanced
    rows.append((dataset.name, "shards=4 rebalanced", rebalanced, truth_total))
    return rows, counts, truth_total


def _broadcast_sweep():
    """Broadcast identity on the non-partitionable Person/Auction/Bid join."""
    config = _bench_config()
    dataset = make_person_auction_bid(config)
    condition = person_auction_bid_query()
    assert condition.partition_attributes(3) is None
    k = dataset.max_delay()
    single, _ = run_partitioned(
        dataset, _lossless(condition, 3, k), 1, chunk_size=128
    )
    double, _ = run_partitioned(
        dataset, _lossless(condition, 3, k), 2, chunk_size=128
    )
    return [
        (dataset.name, "broadcast shards=1", single, single),
        (dataset.name, "broadcast shards=2", double, single),
    ], single, double


def _sweep():
    shard_rows, counts, truth_total = _shard_sweep()
    broadcast_rows, single, double = _broadcast_sweep()
    soak = run_soak(
        SoakConfig(
            phases=SOAK_PHASES,
            seed=7,
            phase_duration_ms=scaled(4_000, floor=1_000),
        )
    )
    adaptive = run("nexmark", "model-noneqsel", gamma=0.95)
    rows = shard_rows + broadcast_rows
    rows.append(
        (
            "soak-ab2",
            f"{SOAK_PHASES} phases, 4 variants",
            "PASS" if soak.passed else "FAIL",
            soak.truth_total,
        )
    )
    rows.append(
        (
            "nexmark adaptive",
            f"model-noneqsel avgK={adaptive.average_k_s:.2f}s",
            adaptive.results_produced,
            adaptive.truth_total,
        )
    )
    return rows, counts, truth_total, single, double, soak, adaptive


def test_ext_nexmark(benchmark):
    rows, counts, truth_total, single, double, soak, adaptive = (
        benchmark.pedantic(_sweep, rounds=1, iterations=1)
    )
    report(
        "ext_nexmark",
        "Extension — NEXMark-style workloads: shard/broadcast identity, "
        "soak smoke, adaptive quality",
        ["workload", "regime", "results", "reference"],
        rows,
    )
    # Exact partitioning: every shard count and the rebalanced run agree
    # with the lossless single pipeline, which agrees with ground truth.
    assert len(set(counts.values())) == 1
    assert counts["shards=1"] == truth_total
    # Broadcast: shard 0 emits the exact multiset.
    assert double == single
    # Soak: all four invariants held.
    assert soak.passed, [str(v) for v in soak.violations]
    # Adaptive manager keeps recall through burst/silence/drift phases.
    assert adaptive.overall_recall() >= ADAPTIVE_RECALL_FLOOR
