"""Extension — columnar tuple-block transport vs per-object pickling.

Measures the :mod:`repro.core.blocks` codec at three levels, each with
its own failure mode of the old transport:

1. **Codec microbench** — encode+pickle / unpickle+decode cost and wire
   size per tuple, columnar blocks vs per-object pickling, across
   payload widths.  Pure transport, no pipeline: the deterministic
   headline the process-level numbers derive from.
2. **Collect-heavy end-to-end** — a selective join whose *result set*
   dwarfs its input, with ``collect_results=True``: every result rides
   back through the worker pipe at flush.  Here transport genuinely
   dominates, so the columnar ``ResultBlock`` return path must beat the
   object-pickling executor by ``MIN_TRANSPORT_SPEEDUP`` at the same
   shard count — on any machine, single-core included.
3. **Heavy-probe end-to-end** — the shared count-only heavy scenario
   (``common.heavy_probe_dataset``): enough probe work per tuple to
   amortize IPC, the regime where shard parallelism can actually pay.
   Gate: the columnar process executor at 2 shards must not fall below
   ``MIN_VS_SINGLE_FLOOR``× the single pipeline anywhere, and must beat
   it outright when ≥2 CPU cores are available (on a single core the
   shards time-slice one core, so parity is the physical ceiling; the
   CPU count is recorded with the results).

Sequence/statistics identity of the two transports is proven in
``tests/test_blocks.py``; this file only measures.
"""

import os
import pickle
import random
import time

from common import (
    BENCH_SCALE,
    heavy_probe_config,
    heavy_probe_dataset,
    report,
)

from repro import (
    TRANSPORT_BLOCKS,
    TRANSPORT_OBJECTS,
    BlockDecoder,
    BlockEncoder,
    QualityDrivenPipeline,
    StreamTuple,
    run_partitioned,
)

try:
    CPUS = len(os.sched_getaffinity(0))
except AttributeError:  # pragma: no cover - non-Linux
    CPUS = os.cpu_count() or 1
MULTICORE = CPUS >= 2

CHUNK_SIZE = 1024
ROUNDS = 2
#: Gate (a): columnar vs object-pickling process executor on the
#: transport-dominated collect-heavy scenario, same shard count.  The
#: pure transport gap is ~1.65x; since the canonical (ts, seq) flush
#: merge landed (deterministic output order independent of sharding and
#: slot-routing history), both configurations pay the same
#: result-volume-proportional merge cost, which compresses the
#: end-to-end ratio to an observed 1.49–1.54x on this adversarial
#: 100-results-per-tuple workload — hence the 1.35x floor.
MIN_TRANSPORT_SPEEDUP = 1.35
#: Gate (b): columnar process x2 vs the single pipeline on the
#: heavy-probe scenario.  Loose floor everywhere (CI machines are noisy,
#: single-core machines cap at parity — observed ratios sit at 0.97—1.1
#: with occasional 15% load spikes); outright win required on >=2 cores
#: at full workload scale.
MIN_VS_SINGLE_FLOOR = 0.8
MIN_CODEC_SPEEDUP = 1.3


def _timed(fn):
    started = time.perf_counter()
    value = fn()
    return value, time.perf_counter() - started


def _best_of(configurations, rounds=ROUNDS):
    """Interleaved rounds, best wall per configuration (noise shield)."""
    counts, best = {}, {}
    for _ in range(rounds):
        for label, run in configurations:
            value, elapsed = _timed(run)
            counts[label] = value
            if label not in best or elapsed < best[label]:
                best[label] = elapsed
    return counts, best


# ----------------------------------------------------------------------
# 1. codec microbench
# ----------------------------------------------------------------------


def _payload_batch(num, width, seed=1):
    rng = random.Random(seed)
    batch = []
    for i in range(num):
        values = {"a1": rng.randint(1, 500)}
        for j in range(1, width):
            values[f"a{j + 1}"] = (
                rng.randint(1, 500) if j % 3 else f"val-{i % 50}-{j}"
            )
        batch.append(
            StreamTuple(ts=i * 5, values=values, stream=i % 3, seq=i,
                        arrival=i * 5 + 2)
        )
    return batch


def _codec_micro():
    rows = []
    speedups = {}
    # Fixed batch size: the microbench models one production-sized pipe
    # message (~batch_size tuples); shrinking it with REPRO_BENCH_SCALE
    # would just surface per-block fixed costs no real message pays.
    num = 4_096
    repeats = max(3, int(10 * BENCH_SCALE))
    for width in (2, 6, 12):
        batch = _payload_batch(num, width)
        encoder, decoder = BlockEncoder(), BlockDecoder()
        obj_s = blk_s = float("inf")
        # Interleaved best-of repeats: load spikes on a shared machine
        # hit both codecs alike instead of whichever ran second.
        for _ in range(repeats):
            started = time.perf_counter()
            wire_obj = pickle.dumps(batch, protocol=5)
            pickle.loads(wire_obj)
            obj_s = min(obj_s, time.perf_counter() - started)
            started = time.perf_counter()
            wire_blk = pickle.dumps(encoder.encode(batch), protocol=5)
            decoder.decode(pickle.loads(wire_blk))
            blk_s = min(blk_s, time.perf_counter() - started)
        speedups[width] = obj_s / blk_s
        rows.append(
            (
                f"{width} attrs",
                f"{obj_s * 1e6 / num:.2f}",
                f"{blk_s * 1e6 / num:.2f}",
                f"{obj_s / blk_s:.2f}x",
                f"{len(wire_obj) / num:.0f}",
                f"{len(wire_blk) / num:.0f}",
                f"{len(wire_obj) / len(wire_blk):.2f}x",
            )
        )
    report(
        "ext_columnar_codec",
        "Extension — columnar block codec vs per-object pickling "
        f"(round trip, {num}-tuple batches)",
        [
            "payload", "objects us/t", "blocks us/t", "speedup",
            "objects B/t", "blocks B/t", "size ratio",
        ],
        rows,
    )
    return speedups


# ----------------------------------------------------------------------
# 2. collect-heavy end-to-end (transport-dominated return path)
# ----------------------------------------------------------------------


def _collect_heavy():
    dataset = heavy_probe_dataset()
    tuples = len(dataset)
    k_ms = dataset.max_delay()
    # Shorter windows than the count-only heavy run: collected results
    # are materialized objects, and the 12 s windows' result volume
    # would be memory-, not transport-, bound.
    config = lambda: heavy_probe_config(k_ms, window_s=3, collect=True)  # noqa: E731
    arrivals = list(dataset.arrivals())

    def single():
        pipeline = QualityDrivenPipeline(config())
        results = []
        for start in range(0, len(arrivals), CHUNK_SIZE):
            results.extend(
                pipeline.process_batch(arrivals[start : start + CHUNK_SIZE])
            )
        results.extend(pipeline.flush())
        return len(results)

    def partitioned(shards, transport):
        def run():
            results, _ = run_partitioned(
                dataset, config(), shards, executor="process",
                batch_size=CHUNK_SIZE, chunk_size=CHUNK_SIZE,
                transport=transport,
            )
            return len(results)

        return run

    configurations = [("single pipeline", single)]
    for shards in (1, 2):
        configurations.append(
            (f"process x{shards} objects", partitioned(shards, TRANSPORT_OBJECTS))
        )
        configurations.append(
            (f"process x{shards} blocks", partitioned(shards, TRANSPORT_BLOCKS))
        )
    counts, best = _best_of(configurations)
    rates = {label: tuples / wall for label, wall in best.items()}
    rows = [
        (label, counts[label], f"{best[label]:.2f}", f"{rates[label]:,.0f}")
        for label, _ in configurations
    ]
    for shards in (1, 2):
        ratio = rates[f"process x{shards} blocks"] / rates[f"process x{shards} objects"]
        rows.append((f"blocks/objects speedup x{shards}", "", "", f"{ratio:.2f}x"))
    report(
        "ext_columnar_collect",
        "Extension — collect-heavy join, full result set shipped back "
        f"({tuples} tuples, {CPUS} CPU(s))",
        ["configuration", "results", "wall (s)", "tuples/s"],
        rows,
    )
    return counts, rates


# ----------------------------------------------------------------------
# 3. heavy-probe end-to-end (count-only)
# ----------------------------------------------------------------------


def _heavy_probe():
    dataset = heavy_probe_dataset()
    tuples = len(dataset)
    k_ms = dataset.max_delay()
    config = lambda: heavy_probe_config(k_ms)  # noqa: E731 - local factory
    arrivals = list(dataset.arrivals())

    def single():
        pipeline = QualityDrivenPipeline(config())
        count = 0
        for start in range(0, len(arrivals), CHUNK_SIZE):
            count += pipeline.process_batch(arrivals[start : start + CHUNK_SIZE])
        return count + pipeline.flush()

    def partitioned(shards, transport):
        def run():
            count, _ = run_partitioned(
                dataset, config(), shards, executor="process",
                batch_size=CHUNK_SIZE, chunk_size=CHUNK_SIZE,
                transport=transport,
            )
            return count

        return run

    configurations = [("single pipeline", single)]
    for shards in (2, 4):
        configurations.append(
            (f"process x{shards} objects", partitioned(shards, TRANSPORT_OBJECTS))
        )
        configurations.append(
            (f"process x{shards} blocks", partitioned(shards, TRANSPORT_BLOCKS))
        )
    counts, best = _best_of(configurations)
    rates = {label: tuples / wall for label, wall in best.items()}
    work_us = best["single pipeline"] / tuples * 1e6
    rows = [
        (label, counts[label], f"{best[label]:.2f}", f"{rates[label]:,.0f}")
        for label, _ in configurations
    ]
    for shards in (2, 4):
        ratio = rates[f"process x{shards} blocks"] / rates["single pipeline"]
        rows.append((f"blocks x{shards} / single", "", "", f"{ratio:.2f}x"))
    rows.append(("single-pipeline work per tuple", "", "", f"{work_us:.0f} us"))
    report(
        "ext_columnar_heavy",
        "Extension — heavy-probe scenario, columnar process executor vs "
        f"single pipeline ({tuples} tuples, {CPUS} CPU(s))",
        ["configuration", "results", "wall (s)", "tuples/s"],
        rows,
    )
    return counts, rates


def _sweep():
    codec_speedups = _codec_micro()
    collect_counts, collect_rates = _collect_heavy()
    heavy_counts, heavy_rates = _heavy_probe()
    return codec_speedups, collect_counts, collect_rates, heavy_counts, heavy_rates


def test_ext_columnar(benchmark):
    codec, collect_counts, collect_rates, heavy_counts, heavy_rates = (
        benchmark.pedantic(_sweep, rounds=1, iterations=1)
    )
    # Every configuration of one scenario must produce the same count —
    # transport is never allowed to change results.
    assert len(set(collect_counts.values())) == 1
    assert len(set(heavy_counts.values())) == 1
    # Codec headline: the narrow-payload round trip (the partitioned
    # engine's own workload shape) must beat object pickling clearly.
    assert codec[2] >= MIN_CODEC_SPEEDUP, (
        f"codec round trip {codec[2]:.2f}x < {MIN_CODEC_SPEEDUP}x"
    )
    # Gate (a): on the transport-dominated collect-heavy scenario the
    # columnar executor must beat the object-pickling executor at the
    # same shard count by >= MIN_TRANSPORT_SPEEDUP.
    for shards in (1, 2):
        blocks = collect_rates[f"process x{shards} blocks"]
        objects = collect_rates[f"process x{shards} objects"]
        assert blocks >= MIN_TRANSPORT_SPEEDUP * objects, (
            f"collect-heavy x{shards}: blocks {blocks:,.0f} t/s vs objects "
            f"{objects:,.0f} t/s ({blocks / objects:.2f}x < "
            f"{MIN_TRANSPORT_SPEEDUP}x)"
        )
    # Gate (b): heavy-probe, columnar process x2 vs the single pipeline.
    single = heavy_rates["single pipeline"]
    blocks2 = heavy_rates["process x2 blocks"]
    assert blocks2 >= MIN_VS_SINGLE_FLOOR * single, (
        f"heavy-probe: blocks x2 {blocks2:,.0f} t/s vs single "
        f"{single:,.0f} t/s ({blocks2 / single:.2f}x < {MIN_VS_SINGLE_FLOOR}x)"
    )
    if MULTICORE and BENCH_SCALE >= 1.0:
        # Outright win demanded only at full workload scale: the smoke
        # scale's shrunken runs leave worker spawn overhead visible.
        assert blocks2 >= single, (
            f"heavy-probe on {CPUS} CPUs: blocks x2 {blocks2:,.0f} t/s did "
            f"not beat single {single:,.0f} t/s"
        )
    # The columnar transport must never be the slower one.
    for shards in (2, 4):
        assert (
            heavy_rates[f"process x{shards} blocks"]
            >= 0.9 * heavy_rates[f"process x{shards} objects"]
        )
