"""Extension — skew-aware slot routing + live rebalancing vs static hashing.

The paper's synthetic workloads draw join-attribute values from bounded
Zipf distributions (Sec. VI); this bench points that skew at the
partitioned engine and measures what the virtual-slot router's
rebalancer buys (and must not cost):

1. **Shard-load imbalance under skew** — the Zipf hot-key scenario
   (``common.skewed_hot_key_dataset``) at skews z ∈ {0, 1.0, 1.2, 1.5},
   serial executor (deterministic), static vs adaptive routing.  Load =
   routed tuples per shard from the router's counters, imbalance =
   max/mean (1.0 is perfect).  Gate: at every z ≥ 1 with 4 shards,
   adaptive routing cuts the imbalance to ≤ ``MAX_IMBALANCE_RATIO`` ×
   static; at z = 0 (uniform control) the rebalancer never fires.  A
   hard floor exists: one hot *key* cannot be split below its own share
   (key → slot → one shard is what keeps equi-joins exact), so the z=1.5
   row stays above 1.5 — isolating, not splitting, the hot key.
2. **Uniform heavy-probe guard** — the shared count-only heavy scenario
   (``common.heavy_probe_dataset``) under the process executor with
   rebalancing on vs off.  Rebalancing must be free where it has nothing
   to fix: identical result counts, wall-clock within
   ``MIN_UNIFORM_RATIO`` of static.
3. **Skewed end-to-end timing** — the z=1.2 scenario under the process
   executor at 2/4 shards, static vs adaptive (reported; on a single
   core the shards time-slice, so only the no-slower floor is gated —
   the load-balance gain shows as shard overlap only with ≥ 2 cores).

Result identity (sequences + join statistics, byte-level) is proven in
``tests/test_rebalance.py``; this file measures load and wall-clock.
"""

import os
import time

from common import (
    heavy_probe_config,
    heavy_probe_dataset,
    report,
    skewed_config,
    skewed_hot_key_dataset,
)

from repro import PartitionedPipeline, load_imbalance, run_partitioned

try:
    CPUS = len(os.sched_getaffinity(0))
except AttributeError:  # pragma: no cover - non-Linux
    CPUS = os.cpu_count() or 1

CHUNK_SIZE = 256
REBALANCE_INTERVAL = 512
#: Gate 1: adaptive imbalance must be at most this fraction of static's
#: on every skewed (z >= 1) row at 4 shards.  Observed ratios sit at
#: 0.73–0.85 (the z=1.5 row is floored by the unsplittable hot key).
MAX_IMBALANCE_RATIO = 0.9
#: Gates 2/3: adaptive wall-clock must stay within this factor of
#: static (noise floor; observed parity ±6% on a shared 1-CPU box).
MIN_UNIFORM_RATIO = 0.7


# ----------------------------------------------------------------------
# 1. shard-load imbalance under value skew
# ----------------------------------------------------------------------


def _imbalance_sweep():
    rows = []
    outcomes = {}
    for z in (0.0, 1.0, 1.2, 1.5):
        dataset = skewed_hot_key_dataset(z=z)
        config = lambda: skewed_config(dataset.max_delay())  # noqa: E731
        for shards in (2, 4):
            measured = {}
            for label, rebalance in (("static", False), ("adaptive", True)):
                pipeline = PartitionedPipeline(
                    config(),
                    shards,
                    rebalance=rebalance,
                    rebalance_interval=REBALANCE_INTERVAL,
                )
                arrivals = list(dataset.arrivals())
                count = 0
                with pipeline:
                    for start in range(0, len(arrivals), CHUNK_SIZE):
                        count += pipeline.process_batch(
                            arrivals[start : start + CHUNK_SIZE]
                        )
                    count += pipeline.flush()
                    measured[label] = (
                        count,
                        load_imbalance(pipeline.router.shard_loads),
                        pipeline.rebalances,
                        pipeline.slots_moved,
                    )
            static, adaptive = measured["static"], measured["adaptive"]
            outcomes[(z, shards)] = (static, adaptive)
            rows.append(
                (
                    f"z={z}",
                    f"x{shards}",
                    f"{static[0]:,}",
                    "yes" if adaptive[0] == static[0] else "NO",
                    f"{static[1]:.3f}",
                    f"{adaptive[1]:.3f}",
                    f"{adaptive[1] / static[1]:.2f}x",
                    str(adaptive[2]),
                    str(adaptive[3]),
                )
            )
    report(
        "ext_skew_imbalance",
        "Extension — shard-load imbalance (max/mean routed tuples): "
        "static hashing vs adaptive slot rebalancing, serial executor",
        [
            "skew", "shards", "results", "identical", "imb static",
            "imb adaptive", "ratio", "rebalances", "slots moved",
        ],
        rows,
    )
    return outcomes


# ----------------------------------------------------------------------
# 2. uniform heavy-probe guard (rebalancing must cost nothing)
# ----------------------------------------------------------------------


def _uniform_guard():
    dataset = heavy_probe_dataset()
    k_ms = dataset.max_delay()
    measured = {}
    rows = []
    for label, rebalance in (("static", False), ("adaptive", True)):
        started = time.perf_counter()
        count, _ = run_partitioned(
            dataset,
            heavy_probe_config(k_ms),
            2,
            executor="process",
            batch_size=CHUNK_SIZE,
            chunk_size=CHUNK_SIZE,
            rebalance=rebalance,
            rebalance_interval=REBALANCE_INTERVAL,
        )
        elapsed = time.perf_counter() - started
        measured[label] = (count, elapsed)
        rows.append(
            (label, f"{count:,}", f"{elapsed:.2f}",
             f"{len(dataset) / elapsed:,.0f}")
        )
    rows.append(
        (
            "adaptive/static wall",
            "",
            f"{measured['static'][1] / measured['adaptive'][1]:.2f}x",
            "",
        )
    )
    report(
        "ext_skew_uniform",
        "Extension — uniform heavy-probe guard: rebalancing on vs off "
        f"(process x2, count-only, {CPUS} CPU(s))",
        ["routing", "results", "wall s", "tuples/s"],
        rows,
    )
    return measured


# ----------------------------------------------------------------------
# 3. skewed end-to-end timing under the process executor
# ----------------------------------------------------------------------


def _skewed_process():
    dataset = skewed_hot_key_dataset(z=1.2)
    config = lambda: skewed_config(dataset.max_delay())  # noqa: E731
    measured = {}
    rows = []
    for shards in (2, 4):
        for label, rebalance in (("static", False), ("adaptive", True)):
            started = time.perf_counter()
            count, _ = run_partitioned(
                dataset,
                config(),
                shards,
                executor="process",
                batch_size=CHUNK_SIZE,
                chunk_size=CHUNK_SIZE,
                rebalance=rebalance,
                rebalance_interval=REBALANCE_INTERVAL,
            )
            elapsed = time.perf_counter() - started
            measured[(shards, label)] = (count, elapsed)
            rows.append(
                (
                    f"x{shards} {label}",
                    f"{count:,}",
                    f"{elapsed:.2f}",
                    f"{len(dataset) / elapsed:,.0f}",
                )
            )
    report(
        "ext_skew_process",
        "Extension — Zipf z=1.2 hot-key scenario under the process "
        f"executor ({CPUS} CPU(s); shard overlap needs >= 2 cores)",
        ["configuration", "results", "wall s", "tuples/s"],
        rows,
    )
    return measured


def _sweep():
    return _imbalance_sweep(), _uniform_guard(), _skewed_process()


def test_ext_skew(benchmark):
    imbalance, uniform, skewed = benchmark.pedantic(
        _sweep, rounds=1, iterations=1
    )
    for (z, shards), (static, adaptive) in imbalance.items():
        # Routing is never allowed to change results.
        assert adaptive[0] == static[0], (
            f"z={z} x{shards}: adaptive produced {adaptive[0]} results "
            f"vs static {static[0]}"
        )
        if z == 0.0:
            # Uniform control: nothing to fix, nothing fired.
            assert adaptive[2] == 0, (
                f"uniform z=0 x{shards}: rebalancer fired {adaptive[2]} times"
            )
        if z >= 1.0 and shards == 4:
            # The acceptance gate: skewed load must get measurably flatter.
            assert adaptive[1] <= MAX_IMBALANCE_RATIO * static[1], (
                f"z={z} x{shards}: adaptive imbalance {adaptive[1]:.3f} vs "
                f"static {static[1]:.3f} "
                f"({adaptive[1] / static[1]:.2f}x > {MAX_IMBALANCE_RATIO}x)"
            )
            assert adaptive[3] > 0  # slots actually moved
    # Uniform heavy-probe guard: identical counts, no meaningful slowdown.
    assert uniform["adaptive"][0] == uniform["static"][0]
    assert uniform["adaptive"][1] <= uniform["static"][1] / MIN_UNIFORM_RATIO, (
        f"uniform heavy-probe: adaptive {uniform['adaptive'][1]:.2f}s vs "
        f"static {uniform['static'][1]:.2f}s"
    )
    # Skewed process run: identical counts, never meaningfully slower.
    for shards in (2, 4):
        assert (
            skewed[(shards, "adaptive")][0] == skewed[(shards, "static")][0]
        )
        assert (
            skewed[(shards, "adaptive")][1]
            <= skewed[(shards, "static")][1] / MIN_UNIFORM_RATIO
        )
