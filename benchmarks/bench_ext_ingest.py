"""Extension — pipelined ingestion + shared-memory transport vs synchronous.

Measures the ISSUE-9 ingestion path on the shared count-only heavy-probe
scenario (``common.heavy_probe_dataset``), the regime where shard
parallelism pays and the synchronous drive loop's serial routing/encoding
is the exposed bottleneck:

1. **Synchronous baselines** — the single pipeline and the process
   executor at 4 shards, block transport over the pipe and over the
   shared-memory rings (``transport="shm"``).
2. **Pipelined drives** — the same process configurations behind a
   :class:`~repro.parallel.ingest.PipelinedIngest` feeder thread with a
   credit window armed: routing + block encoding overlap shard compute.

Gates are core-count-aware, mirroring ``bench_ext_columnar``: on a
multi-core machine at full workload scale the pipelined shm executor at
4 shards must beat the synchronous pipe executor at 4 shards by
``MIN_PIPELINED_SPEEDUP`` and the shm transport must not lose to the
pipe; everywhere else (single core, CI smoke scale) only the
``MIN_PIPELINED_FLOOR`` sanity floor applies — on one core feeder and
shards time-slice the same core, so parity is the physical ceiling.
Byte-identity of the pipelined/shm paths is proven in
``tests/test_ingest.py`` / ``tests/test_shm_transport.py``; this file
only measures — but still asserts count identity across every
configuration, because a transport that changes results has no
performance story to tell.
"""

import os
import time

from common import (
    BENCH_SCALE,
    heavy_probe_config,
    heavy_probe_dataset,
    report,
)

from repro import (
    TRANSPORT_BLOCKS,
    TRANSPORT_SHM,
    QualityDrivenPipeline,
    run_partitioned,
)

try:
    CPUS = len(os.sched_getaffinity(0))
except AttributeError:  # pragma: no cover - non-Linux
    CPUS = os.cpu_count() or 1
MULTICORE = CPUS >= 2

CHUNK_SIZE = 1024
ROUNDS = 2
SHARDS = 4
#: Dispatched-but-unprocessed batches per shard before the feeder
#: stalls: deep enough to keep every shard busy, shallow enough that
#: the backpressure path is genuinely exercised.
CREDIT_WINDOW = 4
#: Strict gate (multi-core, full workload scale only): pipelined shm x4
#: vs the synchronous pipe x4 baseline.  Overlapping the feeder's
#: routing+encoding with shard compute reclaims the serial fraction of
#: the drive loop, and the ring saves the kernel's pipe copy.
MIN_PIPELINED_SPEEDUP = 1.3
#: Sanity floor everywhere: pipelining adds one thread hop and the ring
#: adds cursor polling, so modest overhead is legal on a single core —
#: collapse beyond 25% is a regression even there.
MIN_PIPELINED_FLOOR = 0.75
#: Floor for shm vs pipe at the same configuration (strict >= 1.0 only
#: on multi-core at full scale).
MIN_SHM_VS_PIPE_FLOOR = 0.75


def _timed(fn):
    started = time.perf_counter()
    value = fn()
    return value, time.perf_counter() - started


def _best_of(configurations, rounds=ROUNDS):
    """Interleaved rounds, best wall per configuration (noise shield)."""
    counts, best = {}, {}
    for _ in range(rounds):
        for label, run in configurations:
            value, elapsed = _timed(run)
            counts[label] = value
            if label not in best or elapsed < best[label]:
                best[label] = elapsed
    return counts, best


def _sweep():
    dataset = heavy_probe_dataset()
    tuples = len(dataset)
    k_ms = dataset.max_delay()
    config = lambda: heavy_probe_config(k_ms)  # noqa: E731 - local factory
    arrivals = list(dataset.arrivals())

    def single():
        pipeline = QualityDrivenPipeline(config())
        count = 0
        for start in range(0, len(arrivals), CHUNK_SIZE):
            count += pipeline.process_batch(arrivals[start : start + CHUNK_SIZE])
        return count + pipeline.flush()

    def partitioned(transport, pipelined):
        def run():
            count, _ = run_partitioned(
                dataset, config(), SHARDS, executor="process",
                batch_size=CHUNK_SIZE, chunk_size=CHUNK_SIZE,
                transport=transport, pipelined=pipelined,
                credit_window=CREDIT_WINDOW if pipelined else None,
            )
            return count

        return run

    configurations = [("single pipeline", single)]
    for transport, tname in ((TRANSPORT_BLOCKS, "pipe"), (TRANSPORT_SHM, "shm")):
        configurations.append(
            (f"sync x{SHARDS} {tname}", partitioned(transport, False))
        )
        configurations.append(
            (f"pipelined x{SHARDS} {tname}", partitioned(transport, True))
        )
    counts, best = _best_of(configurations)
    rates = {label: tuples / wall for label, wall in best.items()}
    rows = [
        (label, counts[label], f"{best[label]:.2f}", f"{rates[label]:,.0f}")
        for label, _ in configurations
    ]
    for tname in ("pipe", "shm"):
        ratio = rates[f"pipelined x{SHARDS} {tname}"] / rates[f"sync x{SHARDS} {tname}"]
        rows.append((f"pipelined/sync ({tname})", "", "", f"{ratio:.2f}x"))
    shm_ratio = rates[f"pipelined x{SHARDS} shm"] / rates[f"pipelined x{SHARDS} pipe"]
    rows.append(("shm/pipe (pipelined)", "", "", f"{shm_ratio:.2f}x"))
    report(
        "ext_ingest",
        "Extension — pipelined ingestion + shm transport vs synchronous "
        f"drive ({tuples} tuples, {SHARDS} shards, {CPUS} CPU(s))",
        ["configuration", "results", "wall (s)", "tuples/s"],
        rows,
    )
    return counts, rates


def test_ext_ingest(benchmark):
    counts, rates = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    # Neither the feeder thread nor the ring may change results.
    assert len(set(counts.values())) == 1
    sync_pipe = rates[f"sync x{SHARDS} pipe"]
    sync_shm = rates[f"sync x{SHARDS} shm"]
    pipe_lined = rates[f"pipelined x{SHARDS} pipe"]
    shm_lined = rates[f"pipelined x{SHARDS} shm"]
    # Sanity floors hold on any machine, smoke scale included.
    assert pipe_lined >= MIN_PIPELINED_FLOOR * sync_pipe, (
        f"pipelined pipe {pipe_lined:,.0f} t/s collapsed vs sync "
        f"{sync_pipe:,.0f} t/s ({pipe_lined / sync_pipe:.2f}x)"
    )
    assert shm_lined >= MIN_PIPELINED_FLOOR * sync_shm, (
        f"pipelined shm {shm_lined:,.0f} t/s collapsed vs sync "
        f"{sync_shm:,.0f} t/s ({shm_lined / sync_shm:.2f}x)"
    )
    assert sync_shm >= MIN_SHM_VS_PIPE_FLOOR * sync_pipe, (
        f"shm transport {sync_shm:,.0f} t/s collapsed vs pipe "
        f"{sync_pipe:,.0f} t/s ({sync_shm / sync_pipe:.2f}x)"
    )
    if MULTICORE and BENCH_SCALE >= 1.0:
        # Strict gates only where the physics allow a win: >=2 cores so
        # the feeder genuinely overlaps shard compute, full workload so
        # spawn overhead amortizes.
        assert shm_lined >= MIN_PIPELINED_SPEEDUP * sync_pipe, (
            f"on {CPUS} CPUs pipelined shm x{SHARDS} {shm_lined:,.0f} t/s "
            f"< {MIN_PIPELINED_SPEEDUP}x sync pipe {sync_pipe:,.0f} t/s"
        )
        assert shm_lined >= pipe_lined, (
            f"on {CPUS} CPUs shm {shm_lined:,.0f} t/s lost to the pipe "
            f"{pipe_lined:,.0f} t/s at the same pipelined configuration"
        )
