"""Fig. 6 — recall of join results produced by the No-K-slack baseline.

The paper's finding: with inter-stream synchronization only (K = 0), the
recall γ(P) stays persistently below 1 on all three workloads — lowest on
the 2-way real-world join (~0.5), highest (~0.8) on D×4syn — showing that
intra-stream disorder handling is necessary.

This bench replays all three datasets under No-K-slack, prints the γ(P)
time series (one sample per adaptation interval) and the per-dataset
averages, and checks the headline shape: average recall visibly below 1.
"""

from common import ALL_EXPERIMENTS, report, run


def _sweep():
    results = {}
    for name in ALL_EXPERIMENTS:
        results[name] = run(name, "no-k-slack", gamma=0.95)
    return results


def test_fig06_no_kslack_recall(benchmark):
    results = benchmark.pedantic(_sweep, rounds=1, iterations=1)

    rows = []
    for name, outcome in results.items():
        rows.append(
            (
                outcome.experiment,
                f"{outcome.average_recall:.3f}",
                f"{min((m.recall for m in outcome.measurements), default=1.0):.3f}",
                f"{max((m.recall for m in outcome.measurements), default=1.0):.3f}",
                len(outcome.measurements),
            )
        )
    report(
        "fig06_no_kslack_recall",
        "Fig. 6 — recall gamma(P) under No-K-slack (inter-stream sync only)",
        ["dataset", "avg recall", "min", "max", "#samples"],
        rows,
    )

    series_rows = []
    for name, outcome in results.items():
        for m in outcome.measurements[:: max(1, len(outcome.measurements) // 20)]:
            series_rows.append((outcome.experiment, m.at_ms / 1000.0, f"{m.recall:.3f}"))
    report(
        "fig06_no_kslack_recall_series",
        "Fig. 6 series — gamma(P) over passed time (sampled)",
        ["dataset", "time (s)", "recall"],
        series_rows,
    )

    # Paper shape: recall stays below 1 everywhere; the 2-way real-world
    # workload is hit hardest.
    for outcome in results.values():
        assert outcome.average_recall < 0.995
    assert results["soccer"].average_recall == min(
        r.average_recall for r in results.values()
    )
