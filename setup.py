"""Legacy shim: this environment's setuptools lacks bdist_wheel (no network),
so `pip install -e . --no-use-pep517` needs a setup.py entry point."""
from setuptools import setup

setup()
