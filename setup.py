"""Packaging entry point for the ``repro`` stream-join framework.

Kept as a ``setup.py`` (rather than pyproject-only metadata) because this
environment's setuptools lacks ``bdist_wheel`` (no network), so
``pip install -e . --no-use-pep517`` needs a setup.py entry point.  The
package lives under the ``src/`` layout, so ``package_dir`` must be set
explicitly — a bare ``setup()`` would install nothing.
"""
import re
from pathlib import Path

from setuptools import find_packages, setup

# Single-source the version from the package itself.
_version = re.search(
    r'__version__ = "([^"]+)"',
    Path(__file__).with_name("src").joinpath("repro", "__init__.py").read_text(),
).group(1)

setup(
    name="repro-mswj",
    version=_version,
    description=(
        "Reproduction of quality-driven disorder handling for m-way "
        "sliding window stream joins (ICDE 2016)"
    ),
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.8",
)
