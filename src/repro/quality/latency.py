"""Latency accounting helpers.

The paper reports the *average K-slack buffer size* as the latency
metric: "the smaller the average K-slack buffer size, the lower the
average result latency" (Sec. VI, Metrics).  The pipeline additionally
measures the realized buffering latency of each tuple at join entry
(application time elapsed since the tuple's arrival), which these helpers
summarize alongside the K history.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..core.pipeline import PipelineMetrics
from ..core.tuples import to_seconds


@dataclass
class LatencySummary:
    """Latency-side outcomes of one run, in seconds for reporting."""

    average_k_s: float
    final_k_s: float
    max_k_s: float
    average_buffering_latency_s: float
    max_buffering_latency_s: float
    k_changes: int

    def row(self) -> Tuple[float, float, float, float]:
        """The columns most reports print: avg K, max K, avg and max latency."""
        return (
            self.average_k_s,
            self.max_k_s,
            self.average_buffering_latency_s,
            self.max_buffering_latency_s,
        )


def summarize_latency(
    metrics: PipelineMetrics, end_time_ms: Optional[int] = None
) -> LatencySummary:
    """Summarize the latency side of a finished pipeline run."""
    history = metrics.k_history
    return LatencySummary(
        average_k_s=to_seconds(metrics.average_k_ms(end_time_ms)),
        final_k_s=to_seconds(history[-1][1]) if history else 0.0,
        max_k_s=to_seconds(max((k for _, k in history), default=0)),
        average_buffering_latency_s=to_seconds(metrics.average_latency_ms()),
        max_buffering_latency_s=to_seconds(metrics.latency_max_ms),
        k_changes=max(0, len(history) - 1),
    )


def time_weighted_average(
    history: Sequence[Tuple[int, float]], end_time: int
) -> float:
    """Time-weighted average of a step function given as (time, value) pairs.

    Generic helper (used for K histories and for ablation plots of other
    stepwise-constant signals).
    """
    if not history:
        return 0.0
    weighted = 0.0
    span = 0
    values: List[Tuple[int, float]] = list(history)
    for index, (start, value) in enumerate(values):
        end = values[index + 1][0] if index + 1 < len(values) else max(end_time, start)
        duration = max(0, end - start)
        weighted += value * duration
        span += duration
    if span == 0:
        return float(values[-1][1])
    return weighted / span
