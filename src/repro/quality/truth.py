"""Ground-truth join results via sorted replay (paper Sec. VI).

"For each dataset, we generated a sorted version where tuples of all
streams are globally ordered according to their timestamps.  By
evaluating the query on the corresponding sorted dataset, we can obtain
the true join results."  This module does exactly that: it replays the
dataset in global timestamp order through a fresh
:class:`~repro.join.mswj.MSWJOperator` (every tuple is then in order, so
no disorder handling is needed) and indexes the resulting counts by
result timestamp for O(log n) period queries.

The :class:`TruthIndex` answers ``count_in(lo, hi]`` — the denominator of
the period recall γ(P) — and can optionally retain the full result keys
for set-level comparisons in tests (produced ⊆ true).
"""

from __future__ import annotations

import bisect
from typing import List, Optional, Sequence, Set, Tuple

from ..core.tuples import JoinResult
from ..join.conditions import JoinCondition
from ..join.mswj import MSWJOperator
from ..streams.source import Dataset


class TruthIndex:
    """Counts of true results, indexed by result timestamp."""

    def __init__(self, ts_counts: Sequence[Tuple[int, int]]) -> None:
        """``ts_counts``: (result_ts, count) pairs in non-decreasing ts order."""
        self._ts: List[int] = []
        self._cumulative: List[int] = []
        running = 0
        for ts, count in ts_counts:
            if self._ts and ts < self._ts[-1]:
                raise ValueError("ts_counts must be sorted by timestamp")
            running += count
            if self._ts and self._ts[-1] == ts:
                self._cumulative[-1] = running
            else:
                self._ts.append(ts)
                self._cumulative.append(running)
        self.total = running

    def count_in(self, lo_exclusive: int, hi_inclusive: int) -> int:
        """Number of true results with ``lo < ts <= hi``."""
        if hi_inclusive <= lo_exclusive:
            return 0
        hi_index = bisect.bisect_right(self._ts, hi_inclusive)
        lo_index = bisect.bisect_right(self._ts, lo_exclusive)
        hi_cum = self._cumulative[hi_index - 1] if hi_index else 0
        lo_cum = self._cumulative[lo_index - 1] if lo_index else 0
        return hi_cum - lo_cum

    def count_up_to(self, hi_inclusive: int) -> int:
        index = bisect.bisect_right(self._ts, hi_inclusive)
        return self._cumulative[index - 1] if index else 0

    def max_ts(self) -> int:
        return self._ts[-1] if self._ts else 0


class TruthResult:
    """Ground-truth computation output: the index plus optional result keys."""

    def __init__(self, index: TruthIndex, keys: Optional[Set[tuple]] = None) -> None:
        self.index = index
        self.keys = keys


def compute_truth(
    dataset: Dataset,
    window_sizes_ms: Sequence[int],
    condition: JoinCondition,
    keep_keys: bool = False,
) -> TruthResult:
    """Replay ``dataset`` in timestamp order and collect true results.

    ``keep_keys=True`` additionally retains the identity keys of every
    result so tests can check that a disordered run produces a subset.
    """
    operator = MSWJOperator(
        window_sizes_ms,
        condition,
        collect_results=keep_keys,
    )
    ts_counts: List[Tuple[int, int]] = []
    keys: Optional[Set[tuple]] = set() if keep_keys else None
    for t in dataset.sorted_by_timestamp():
        produced = operator.process(t)
        if keep_keys:
            results: List[JoinResult] = produced  # type: ignore[assignment]
            if results:
                ts_counts.append((t.ts, len(results)))
                assert keys is not None
                keys.update(r.key() for r in results)
        else:
            count: int = produced  # type: ignore[assignment]
            if count:
                ts_counts.append((t.ts, count))
    return TruthResult(TruthIndex(ts_counts), keys)
