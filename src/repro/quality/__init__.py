"""Result-quality measurement: ground truth, period recall, latency summaries."""
