"""Period-based recall measurement γ(P) and the fulfillment metric Φ(Γ).

The paper's result-quality metric (Sec. II-B): at measurement time, the
recall over the last ``P`` time units is

    γ(P) = produced results with ts in (t - P, t]
         / true results with ts in (t - P, t]

where the "now" anchor ``t`` is the join operator's output progress
(``onT``): because the framework's result stream is timestamp-ordered,
every producible result with ``ts <= onT`` has been produced by then, so
the measurement is well defined online.  Measurements are taken right
before each adaptation step; those within the first warm-up period
(default ``P``) are excluded from Φ statistics (paper Sec. VI, Metrics).

Φ(Γ) is the fraction of measurements not lower than Γ; the paper also
reports Φ(.99Γ), the fraction not lower than 99% of Γ.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import List, Optional

from .truth import TruthIndex


@dataclass
class RecallMeasurement:
    """One γ(P) sample."""

    at_ms: int
    recall: float
    produced: int
    true: int


class RecallMeter:
    """Online recall measurement against a precomputed truth index."""

    def __init__(
        self,
        truth: TruthIndex,
        period_ms: int,
        warmup_ms: Optional[int] = None,
    ) -> None:
        if period_ms <= 0:
            raise ValueError(f"period must be positive, got {period_ms}")
        self.truth = truth
        self.period_ms = period_ms
        self.warmup_ms = period_ms if warmup_ms is None else warmup_ms
        self._produced_ts: List[int] = []
        self._produced_cum: List[int] = []
        self.measurements: List[RecallMeasurement] = []

    # ------------------------------------------------------------------
    # produced-results bookkeeping
    # ------------------------------------------------------------------

    def record_produced(self, result_ts: int, count: int = 1) -> None:
        """Record ``count`` produced results with timestamp ``result_ts``.

        The framework's output is timestamp-ordered, so appends dominate;
        stragglers (possible only from terminal flushes) are folded in at
        the right position to keep the cumulative array consistent.
        """
        if count <= 0:
            return
        if not self._produced_ts or result_ts >= self._produced_ts[-1]:
            if self._produced_ts and result_ts == self._produced_ts[-1]:
                self._produced_cum[-1] += count
            else:
                previous = self._produced_cum[-1] if self._produced_cum else 0
                self._produced_ts.append(result_ts)
                self._produced_cum.append(previous + count)
        else:
            index = bisect.bisect_left(self._produced_ts, result_ts)
            if index < len(self._produced_ts) and self._produced_ts[index] == result_ts:
                start = index
            else:
                previous = self._produced_cum[index - 1] if index else 0
                self._produced_ts.insert(index, result_ts)
                self._produced_cum.insert(index, previous)
                start = index
            for position in range(start, len(self._produced_cum)):
                self._produced_cum[position] += count

    def produced_in(self, lo_exclusive: int, hi_inclusive: int) -> int:
        if hi_inclusive <= lo_exclusive or not self._produced_ts:
            return 0
        hi_index = bisect.bisect_right(self._produced_ts, hi_inclusive)
        lo_index = bisect.bisect_right(self._produced_ts, lo_exclusive)
        hi_cum = self._produced_cum[hi_index - 1] if hi_index else 0
        lo_cum = self._produced_cum[lo_index - 1] if lo_index else 0
        return hi_cum - lo_cum

    # ------------------------------------------------------------------
    # measurement
    # ------------------------------------------------------------------

    def measure(self, now_ms: int) -> Optional[RecallMeasurement]:
        """Take one γ(P) sample anchored at ``now_ms``.

        Returns None (and records nothing) during warm-up or when the
        period holds no true results (γ undefined).
        """
        if now_ms < self.warmup_ms:
            return None
        true = self.truth.count_in(now_ms - self.period_ms, now_ms)
        if true <= 0:
            return None
        produced = self.produced_in(now_ms - self.period_ms, now_ms)
        sample = RecallMeasurement(
            at_ms=now_ms,
            recall=min(1.0, produced / true),
            produced=produced,
            true=true,
        )
        self.measurements.append(sample)
        return sample

    # ------------------------------------------------------------------
    # aggregate metrics
    # ------------------------------------------------------------------

    def average_recall(self) -> float:
        if not self.measurements:
            return 0.0
        return sum(m.recall for m in self.measurements) / len(self.measurements)

    def fulfillment(self, gamma: float, slack: float = 1.0) -> float:
        """Φ: fraction of measurements with recall >= ``slack * gamma``.

        ``slack=1.0`` gives the paper's Φ(Γ); ``slack=0.99`` gives Φ(.99Γ).
        Returns 1.0 when there are no measurements (vacuously fulfilled).
        """
        if not self.measurements:
            return 1.0
        threshold = gamma * slack
        satisfied = sum(1 for m in self.measurements if m.recall >= threshold)
        return satisfied / len(self.measurements)
