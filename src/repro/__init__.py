"""repro — Quality-driven disorder handling for m-way sliding window stream joins.

A from-scratch reproduction of Ji et al., "Quality-Driven Disorder
Handling for M-way Sliding Window Stream Joins" (ICDE 2016): an m-way
sliding-window join framework that minimizes the input-buffering latency
of disorder handling while honoring a user-specified recall requirement.

Quickstart::

    from repro import (
        PipelineConfig, QualityDrivenPipeline, JoinCondition, EquiPredicate,
        seconds,
    )

    condition = JoinCondition([EquiPredicate(0, "a1", 1, "a1")])
    pipeline = QualityDrivenPipeline(PipelineConfig(
        window_sizes_ms=[seconds(5), seconds(5)],
        condition=condition,
        gamma=0.95,          # recall requirement Γ
        period_ms=seconds(60),
    ))
    for t in arrival_ordered_tuples:   # StreamTuple instances
        results = pipeline.process(t)
    pipeline.flush()

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-reproduction results.
"""

from .core.adaptation import (
    AdaptationContext,
    BufferSizePolicy,
    FixedKPolicy,
    MaxKSlackPolicy,
    ModelBasedPolicy,
    NoKSlackPolicy,
)
from .core.blocks import (
    MISSING,
    BlockDecoder,
    BlockEncoder,
    ResultBlock,
    StateBlock,
    TupleBlock,
)
from .core.kslack import KSlackBuffer
from .core.model import CumulativePdf, RecallModel, StreamModelInput
from .core.pipeline import PipelineConfig, PipelineMetrics, QualityDrivenPipeline
from .core.profiler import ProfileSnapshot, TupleProductivityProfiler
from .core.result_monitor import ResultSizeMonitor
from .core.result_sorter import ResultSorter
from .core.selectivity import EqSel, NonEqSel, SelectivityStrategy
from .core.statistics import StatisticsManager, StreamStatistics, coarse_delay
from .core.synchronizer import Synchronizer
from .core.tuples import JoinResult, StreamTuple, ms, seconds, to_seconds
from .faults import FaultPlan, FaultSpec, chaos_plan
from .join.conditions import (
    BandPredicate,
    EquiPredicate,
    JoinCondition,
    Predicate,
    ThetaPredicate,
    equi_join_chain,
    star_equi_join,
)
from .join.mswj import MSWJOperator
from .join.ordering import IndexAwareOrder, ProbeOrderPolicy, SmallestWindowFirst
from .join.store import (
    InMemoryStore,
    StoreMetrics,
    TieredStore,
    TieredStoreConfig,
    WindowStore,
    make_store,
)
from .join.window import SlidingWindow
from .parallel import (
    TRANSPORT_BLOCKS,
    TRANSPORT_OBJECTS,
    TRANSPORT_SHM,
    KeyRouter,
    MigrationSpec,
    MultiprocessingExecutor,
    PartitionedPipeline,
    PipelinedIngest,
    Rebalancer,
    SerialExecutor,
    ShardExecutor,
    ShardFailure,
    ShardOutcome,
    ShmRing,
    SupervisedExecutor,
    SupervisionConfig,
    load_imbalance,
    run_partitioned,
)
from .quality.recall import RecallMeasurement, RecallMeter
from .quality.truth import TruthIndex, compute_truth
from .streams.disorder import (
    BurstyDelayModel,
    ConstantDelayModel,
    DelayModel,
    NoDelayModel,
    PhasedDelayModel,
    ZipfDelayModel,
)
from .streams.generators import make_d3_syn, make_d4_syn
from .streams.nexmark import (
    NexmarkConfig,
    PhaseSpec,
    auction_bid_query,
    default_phases,
    make_auction_bids,
    make_person_auction_bid,
    person_auction_bid_query,
)
from .streams.soccer import SoccerConfig, make_soccer_dataset, player_distance
from .streams.source import Dataset, from_tuple_specs
from .streams.zipf import BoundedZipf, ZipfValueSampler
from .workloads import (
    Workload,
    WorkloadCaps,
    auction_bids_workload,
    person_auction_bid_workload,
)
from .workloads.soak import SoakConfig, SoakHarness, SoakReport, run_soak

__version__ = "1.1.0"

__all__ = [
    # time & tuples
    "StreamTuple", "JoinResult", "seconds", "ms", "to_seconds",
    # disorder handling core
    "KSlackBuffer", "Synchronizer", "QualityDrivenPipeline", "PipelineConfig",
    "PipelineMetrics",
    # adaptation
    "BufferSizePolicy", "ModelBasedPolicy", "NoKSlackPolicy", "MaxKSlackPolicy",
    "FixedKPolicy", "AdaptationContext",
    # model & statistics
    "RecallModel", "StreamModelInput", "CumulativePdf", "StatisticsManager",
    "StreamStatistics", "coarse_delay", "TupleProductivityProfiler",
    "ProfileSnapshot", "ResultSizeMonitor", "ResultSorter",
    "SelectivityStrategy", "EqSel", "NonEqSel",
    # join
    "MSWJOperator", "SlidingWindow", "JoinCondition", "Predicate",
    "EquiPredicate", "BandPredicate", "ThetaPredicate", "equi_join_chain",
    "star_equi_join", "ProbeOrderPolicy", "SmallestWindowFirst",
    "IndexAwareOrder",
    # window stores
    "WindowStore", "InMemoryStore", "TieredStore", "TieredStoreConfig",
    "StoreMetrics", "make_store",
    # parallel scale-out
    "PartitionedPipeline", "KeyRouter", "ShardExecutor", "SerialExecutor",
    "MultiprocessingExecutor", "ShardOutcome", "run_partitioned",
    "TRANSPORT_BLOCKS", "TRANSPORT_OBJECTS", "TRANSPORT_SHM",
    "Rebalancer", "MigrationSpec", "load_imbalance",
    # pipelined ingestion & shared-memory transport
    "PipelinedIngest", "ShmRing",
    # fault tolerance
    "ShardFailure", "SupervisedExecutor", "SupervisionConfig",
    "FaultPlan", "FaultSpec", "chaos_plan",
    # columnar block transport
    "TupleBlock", "ResultBlock", "StateBlock", "BlockEncoder", "BlockDecoder",
    "MISSING",
    # quality
    "RecallMeter", "RecallMeasurement", "TruthIndex", "compute_truth",
    # streams
    "Dataset", "from_tuple_specs", "DelayModel", "NoDelayModel",
    "ConstantDelayModel", "ZipfDelayModel", "BurstyDelayModel",
    "PhasedDelayModel", "BoundedZipf", "ZipfValueSampler", "make_d3_syn",
    "make_d4_syn", "SoccerConfig", "make_soccer_dataset", "player_distance",
    # NEXMark-style workloads & soak harness
    "NexmarkConfig", "PhaseSpec", "default_phases", "make_auction_bids",
    "make_person_auction_bid", "auction_bid_query", "person_auction_bid_query",
    "Workload", "WorkloadCaps", "auction_bids_workload",
    "person_auction_bid_workload", "SoakConfig", "SoakHarness", "SoakReport",
    "run_soak",
]
