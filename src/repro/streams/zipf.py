"""Bounded (finite-support) Zipf distribution sampling.

The paper's synthetic datasets draw both tuple delays and join-attribute
values from *bounded* Zipf distributions ("a random delay from [0.0, 20.0]
seconds using a Zipf distribution with skew z", Sec. VI).  A bounded Zipf
over ranks ``1..n`` with skew ``s`` assigns rank ``r`` the probability

    P(r) = (1 / r^s) / H(n, s),      H(n, s) = sum_{k=1..n} 1 / k^s.

Skew ``s = 0`` degenerates to the uniform distribution; larger skews
concentrate mass on the smallest ranks.  Rank 1 maps to the *first* support
value, so for delay sampling (support ``0, g, 2g, ... max``) a higher skew
means more tuples with zero / small delay — i.e. *less* disorder.

The implementation precomputes the CDF and samples by binary search, which
is O(log n) per draw and fast enough for the multi-hundred-thousand-tuple
datasets used by the benchmark harness.
"""

from __future__ import annotations

import bisect
import random
from typing import List, Optional, Sequence


class BoundedZipf:
    """Zipf distribution over ranks ``1..n`` with real-valued skew ``s >= 0``.

    Parameters
    ----------
    n:
        Number of ranks (support size); must be >= 1.
    skew:
        Zipf exponent ``s``; ``0`` gives the uniform distribution.
    rng:
        Source of randomness; defaults to a fresh :class:`random.Random`.
    """

    def __init__(self, n: int, skew: float, rng: Optional[random.Random] = None) -> None:
        if n < 1:
            raise ValueError(f"support size must be >= 1, got {n}")
        if skew < 0:
            raise ValueError(f"skew must be non-negative, got {skew}")
        self.n = n
        self.skew = skew
        self._rng = rng if rng is not None else random.Random()  # repro-lint: disable=determinism  (caller opted out of seeding)
        self._cdf = self._build_cdf(n, skew)

    @staticmethod
    def _build_cdf(n: int, skew: float) -> List[float]:
        weights = [1.0 / (rank ** skew) for rank in range(1, n + 1)]
        total = sum(weights)
        cdf: List[float] = []
        acc = 0.0
        for weight in weights:
            acc += weight
            cdf.append(acc / total)
        cdf[-1] = 1.0
        return cdf

    def pmf(self, rank: int) -> float:
        """Probability of ``rank`` (1-based)."""
        if not 1 <= rank <= self.n:
            raise ValueError(f"rank must be in [1, {self.n}], got {rank}")
        if rank == 1:
            return self._cdf[0]
        return self._cdf[rank - 1] - self._cdf[rank - 2]

    def sample_rank(self) -> int:
        """Draw a rank in ``[1, n]``."""
        u = self._rng.random()
        return bisect.bisect_left(self._cdf, u) + 1

    def sample_index(self) -> int:
        """Draw a 0-based index in ``[0, n)`` (rank minus one)."""
        return self.sample_rank() - 1

    def mean_rank(self) -> float:
        """Expected rank, useful for analytic sanity checks in tests."""
        prev = 0.0
        mean = 0.0
        for rank, cumulative in enumerate(self._cdf, start=1):
            mean += rank * (cumulative - prev)
            prev = cumulative
        return mean


class ZipfValueSampler:
    """Samples values from an explicit support, Zipf-distributed by position.

    The first element of ``support`` is rank 1 (the most likely under
    positive skew).  Used for both attribute values (support ``1..100``)
    and discretized delays (support ``0, g, 2g, ..., max_delay``).

    The skew can be changed at runtime via :meth:`set_skew`, which is how
    the generators implement the paper's time-varying value skew.
    """

    def __init__(
        self,
        support: Sequence[int],
        skew: float,
        rng: Optional[random.Random] = None,
    ) -> None:
        if not support:
            raise ValueError("support must be non-empty")
        self.support = list(support)
        self._rng = rng if rng is not None else random.Random()  # repro-lint: disable=determinism  (caller opted out of seeding)
        self._zipf = BoundedZipf(len(self.support), skew, self._rng)

    @property
    def skew(self) -> float:
        return self._zipf.skew

    def set_skew(self, skew: float) -> None:
        """Rebuild the distribution with a new skew, keeping the RNG state."""
        self._zipf = BoundedZipf(len(self.support), skew, self._rng)

    def sample(self) -> int:
        return self.support[self._zipf.sample_index()]

    def pmf_of_value(self, value: int) -> float:
        """Probability of drawing ``value``; 0.0 if not in the support."""
        try:
            rank = self.support.index(value) + 1
        except ValueError:
            return 0.0
        return self._zipf.pmf(rank)
