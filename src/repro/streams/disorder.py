"""Delay models: how much later than its timestamp a tuple arrives.

A *delay model* is the disorder-injection side of the simulation.  Each
generated tuple ``e`` receives a delay ``d >= 0`` (integer ms) and is
assigned ``e.ts = arrival_time - d`` (paper Sec. VI: "we increased iT by
10 ms and chose a random delay ... we then set e.ts to iT - delay").
A tuple with delay 0 is in order; the larger the delay, the further the
tuple lags behind the stream's local current time when it arrives.

Models provided:

* :class:`ZipfDelayModel` — the paper's synthetic-dataset model: delays on
  a discretized support ``0, step, 2*step, ..., max_delay`` drawn from a
  bounded Zipf distribution (higher skew → more zero-delay tuples).
* :class:`BurstyDelayModel` — a sensor-network-style model used by the
  simulated soccer dataset: most tuples get small exponential jitter and a
  small fraction falls into long uniform "burst" delays, capped by
  ``max_delay``.  This mimics the heavy-tailed delays of the DEBS 2013
  traces (max observed delays of ~22s and ~26s).
* :class:`NoDelayModel` — in-order streams (delay 0), for controls.
* :class:`PhasedDelayModel` — switches between underlying models at given
  arrival times, used to exercise ADWIN-driven adaptation to changing
  disorder patterns.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import List, Optional, Sequence, Tuple

from .zipf import ZipfValueSampler


class DelayModel(ABC):
    """Produces a non-negative integer delay (ms) for each generated tuple."""

    @abstractmethod
    def sample(self, arrival: int) -> int:
        """Return the delay of the tuple arriving at time ``arrival`` (ms)."""

    @property
    @abstractmethod
    def max_delay(self) -> int:
        """Upper bound of the delays this model can emit (ms)."""


class NoDelayModel(DelayModel):
    """Every tuple is in order (delay 0)."""

    def sample(self, arrival: int) -> int:
        return 0

    @property
    def max_delay(self) -> int:
        return 0


class ConstantDelayModel(DelayModel):
    """Every tuple is delayed by the same fixed amount.

    Constant delay produces *no* disorder within a stream (timestamps are
    merely shifted), which makes it handy for testing inter-stream skew in
    isolation.
    """

    def __init__(self, delay: int) -> None:
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        self._delay = int(delay)

    def sample(self, arrival: int) -> int:
        return self._delay

    @property
    def max_delay(self) -> int:
        return self._delay


class ZipfDelayModel(DelayModel):
    """The paper's delay model: Zipf over ``{0, step, 2*step, ..., max}``.

    Parameters
    ----------
    max_delay:
        Largest possible delay in ms (paper: 20 000 ms).
    skew:
        Zipf skew ``z_d``; the paper uses 2.0–4.0.  Rank 1 is delay 0, so a
        larger skew yields more in-order tuples.
    step:
        Support granularity in ms (paper timestamps have 10 ms granularity).
    rng:
        Source of randomness.
    """

    def __init__(
        self,
        max_delay: int,
        skew: float,
        step: int = 10,
        rng: Optional[random.Random] = None,
    ) -> None:
        if max_delay < 0:
            raise ValueError(f"max_delay must be non-negative, got {max_delay}")
        if step <= 0:
            raise ValueError(f"step must be positive, got {step}")
        self._max_delay = int(max_delay)
        support = list(range(0, self._max_delay + 1, step))
        self._sampler = ZipfValueSampler(support, skew, rng)

    def sample(self, arrival: int) -> int:
        return self._sampler.sample()

    @property
    def max_delay(self) -> int:
        return self._max_delay

    @property
    def skew(self) -> float:
        return self._sampler.skew


class BurstyDelayModel(DelayModel):
    """Sensor-network-style delays: mostly small jitter, occasional bursts.

    With probability ``burst_probability`` a tuple is caught in a "burst"
    (congestion, retransmission) and delayed uniformly in
    ``[burst_min, max_delay]``; otherwise it gets exponential jitter with
    mean ``jitter_mean`` (clipped at ``burst_min``).
    """

    def __init__(
        self,
        max_delay: int,
        jitter_mean: float = 100.0,
        burst_probability: float = 0.02,
        burst_min: int = 2_000,
        rng: Optional[random.Random] = None,
    ) -> None:
        if max_delay < burst_min:
            raise ValueError(
                f"max_delay ({max_delay}) must be >= burst_min ({burst_min})"
            )
        if not 0.0 <= burst_probability <= 1.0:
            raise ValueError("burst_probability must be in [0, 1]")
        self._max_delay = int(max_delay)
        self._jitter_mean = float(jitter_mean)
        self._burst_probability = float(burst_probability)
        self._burst_min = int(burst_min)
        self._rng = rng if rng is not None else random.Random()  # repro-lint: disable=determinism  (caller opted out of seeding)

    def sample(self, arrival: int) -> int:
        if self._rng.random() < self._burst_probability:
            return self._rng.randint(self._burst_min, self._max_delay)
        jitter = int(self._rng.expovariate(1.0 / self._jitter_mean))
        return min(jitter, self._burst_min)

    @property
    def max_delay(self) -> int:
        return self._max_delay


class PhasedDelayModel(DelayModel):
    """Switches between delay models at fixed arrival times.

    ``phases`` is a list of ``(start_arrival_ms, model)`` pairs sorted by
    start time; the model whose start is the largest value not exceeding
    the tuple's arrival time is used.  The first phase must start at 0.
    """

    def __init__(self, phases: Sequence[Tuple[int, DelayModel]]) -> None:
        if not phases:
            raise ValueError("phases must be non-empty")
        starts = [start for start, _ in phases]
        if starts[0] != 0:
            raise ValueError("first phase must start at arrival time 0")
        if starts != sorted(starts):
            raise ValueError("phase start times must be sorted")
        self._phases: List[Tuple[int, DelayModel]] = list(phases)

    def sample(self, arrival: int) -> int:
        model = self._phases[0][1]
        for start, candidate in self._phases:
            if arrival >= start:
                model = candidate
            else:
                break
        return model.sample(arrival)

    @property
    def max_delay(self) -> int:
        return max(model.max_delay for _, model in self._phases)
