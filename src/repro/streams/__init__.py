"""Stream substrates: datasets, generators, delay (disorder) models, Zipf sampling."""
