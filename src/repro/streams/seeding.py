"""Deterministic seed derivation for per-stream RNGs.

Generators give every stream (and every sub-purpose within a stream) its
own :class:`random.Random` so that adding or re-ordering streams never
perturbs the others.  Sub-seeds are derived by hashing the component
parts with MD5 — unlike Python's built-in ``hash``, this is stable across
processes and interpreter runs, which keeps datasets reproducible.
"""

from __future__ import annotations

import hashlib
import random
from typing import Union

SeedPart = Union[int, str]


def derive_seed(*parts: SeedPart) -> int:
    """Derive a 64-bit integer seed from arbitrary (int | str) parts."""
    digest = hashlib.md5(
        "\x1f".join(str(part) for part in parts).encode("utf-8")
    ).digest()
    return int.from_bytes(digest[:8], "big")


def derived_rng(*parts: SeedPart) -> random.Random:
    """A fresh :class:`random.Random` seeded from ``parts``."""
    return random.Random(derive_seed(*parts))
