"""Synthetic dataset generators reproducing the paper's D×3syn and D×4syn.

Generation procedure (paper Sec. VI, "Datasets and Queries"):

* All streams start from a common initial timestamp and cover a fixed
  duration.  For each new tuple of stream ``S_i`` the stream's arrival
  clock ``iT`` advances by a fixed inter-arrival gap (10 ms in the paper,
  i.e. 100 tuples/s), a delay is drawn from a bounded Zipf distribution
  over ``[0, 20]`` seconds with per-stream skew ``z_i^d``, and the tuple's
  timestamp is set to ``iT - delay``.
* Join-attribute values are drawn from the integer interval ``[1, 100]``
  with a Zipf distribution whose skew starts at 1.0 and is re-drawn from
  ``[0.0, 5.0]`` at random intervals of 1–10 minutes, producing a
  time-varying join selectivity.

:class:`SyntheticStreamConfig` exposes every knob so tests and benchmarks
can scale the workloads down (shorter duration, lower rate) while keeping
the paper's structure; :func:`make_d3_syn` and :func:`make_d4_syn` bake in
the paper's parameter choices.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.tuples import StreamTuple, seconds
from .disorder import DelayModel, ZipfDelayModel
from .seeding import derived_rng
from .source import Dataset, merge_by_arrival
from .zipf import ZipfValueSampler

#: Paper defaults for the synthetic datasets.
PAPER_MAX_DELAY_MS = 20_000
PAPER_INTER_ARRIVAL_MS = 10  # 100 tuples/s
PAPER_VALUE_DOMAIN = range(1, 101)
PAPER_INITIAL_VALUE_SKEW = 1.0
PAPER_VALUE_SKEW_RANGE = (0.0, 5.0)
PAPER_SKEW_CHANGE_INTERVAL_MS = (60_000, 600_000)  # 1–10 minutes


@dataclass
class AttributeSpec:
    """One generated attribute: its name and Zipf-value dynamics."""

    name: str
    domain: Sequence[int] = field(default_factory=lambda: list(PAPER_VALUE_DOMAIN))
    initial_skew: float = PAPER_INITIAL_VALUE_SKEW
    skew_range: Tuple[float, float] = PAPER_VALUE_SKEW_RANGE
    #: Interval (ms) between skew changes, drawn uniformly from this range.
    change_interval_ms: Tuple[int, int] = PAPER_SKEW_CHANGE_INTERVAL_MS
    #: Disable skew changes entirely (fixed selectivity), for controlled tests.
    time_varying: bool = True


@dataclass
class SyntheticStreamConfig:
    """Configuration of one synthetic stream."""

    attributes: List[AttributeSpec]
    delay_model: Optional[DelayModel] = None
    inter_arrival_ms: int = PAPER_INTER_ARRIVAL_MS


class _VaryingSkewSampler:
    """Zipf value sampler whose skew is re-drawn at random arrival times."""

    def __init__(self, spec: AttributeSpec, rng: random.Random) -> None:
        self._spec = spec
        self._rng = rng
        self._sampler = ZipfValueSampler(list(spec.domain), spec.initial_skew, rng)
        self._next_change = self._draw_change_interval()

    def _draw_change_interval(self) -> int:
        low, high = self._spec.change_interval_ms
        return self._rng.randint(low, high)

    def sample(self, arrival: int) -> int:
        if self._spec.time_varying and arrival >= self._next_change:
            low, high = self._spec.skew_range
            self._sampler.set_skew(self._rng.uniform(low, high))
            self._next_change = arrival + self._draw_change_interval()
        return self._sampler.sample()


def generate_stream(
    stream_index: int,
    config: SyntheticStreamConfig,
    duration_ms: int,
    rng: random.Random,
    start_ms: int = 0,
) -> List[StreamTuple]:
    """Generate one stream's tuples in arrival order.

    The stream's arrival clock starts at ``start_ms + inter_arrival`` and
    advances by ``inter_arrival`` per tuple until ``start_ms + duration``.
    Timestamps are ``arrival - delay`` clamped at 0 (the paper sets
    ``e.ts = iT`` when the delay is 0).
    """
    delay_model = config.delay_model or ZipfDelayModel(
        PAPER_MAX_DELAY_MS, skew=3.0, rng=rng
    )
    samplers = [_VaryingSkewSampler(spec, rng) for spec in config.attributes]
    tuples: List[StreamTuple] = []
    arrival = start_ms
    seq = 0
    end = start_ms + duration_ms
    while True:
        arrival += config.inter_arrival_ms
        if arrival > end:
            break
        delay = delay_model.sample(arrival)
        ts = max(0, arrival - delay)
        values: Dict[str, int] = {
            spec.name: sampler.sample(arrival)
            for spec, sampler in zip(config.attributes, samplers)
        }
        tuples.append(
            StreamTuple(ts=ts, values=values, stream=stream_index, seq=seq, arrival=arrival)
        )
        seq += 1
    return tuples


def generate_dataset(
    configs: Sequence[SyntheticStreamConfig],
    duration_ms: int,
    seed: int = 1,
    name: str = "synthetic",
) -> Dataset:
    """Generate a multi-stream dataset from per-stream configs.

    Each stream gets an independent RNG derived from ``seed`` so adding or
    re-ordering streams does not perturb the others.
    """
    streams: List[List[StreamTuple]] = []
    for index, config in enumerate(configs):
        rng = derived_rng(seed, index)
        streams.append(generate_stream(index, config, duration_ms, rng))
    merged = merge_by_arrival(streams)
    rates = [1000.0 / config.inter_arrival_ms for config in configs]
    return Dataset(merged, num_streams=len(configs), name=name, nominal_rates=rates)


def make_d3_syn(
    duration_ms: int = seconds(30 * 60),
    seed: int = 1,
    inter_arrival_ms: int = PAPER_INTER_ARRIVAL_MS,
    max_delay_ms: int = PAPER_MAX_DELAY_MS,
    delay_skews: Sequence[float] = (2.0, 3.0, 3.0),
    skew_change_interval_ms: Tuple[int, int] = PAPER_SKEW_CHANGE_INTERVAL_MS,
    value_skew_range: Tuple[float, float] = PAPER_VALUE_SKEW_RANGE,
    value_domain: Optional[Sequence[int]] = None,
) -> Dataset:
    """The paper's D×3syn: three streams with schema ``(ts, a1)``.

    Paper parameters: 30-minute duration, 100 tuples/s, delays Zipf over
    [0, 20]s with skews ``z_1^d = 2.0``, ``z_2^d = z_3^d = 3.0``, values
    ``a1`` Zipf over [1, 100] with time-varying skew.  All arguments have
    the paper's values as defaults; pass smaller ``duration_ms`` /
    larger ``inter_arrival_ms`` to scale down.
    """
    if len(delay_skews) != 3:
        raise ValueError("D×3syn takes exactly three delay skews")
    configs = []
    for index, skew in enumerate(delay_skews):
        rng = derived_rng(seed, "delay", index)
        configs.append(
            SyntheticStreamConfig(
                attributes=[
                    AttributeSpec(
                        name="a1",
                        domain=list(value_domain or PAPER_VALUE_DOMAIN),
                        skew_range=value_skew_range,
                        change_interval_ms=skew_change_interval_ms,
                    )
                ],
                # The delay support step matches the inter-arrival gap, as
                # in the paper (both 10 ms at paper scale): a sub-gap delay
                # would create no observable disorder.
                delay_model=ZipfDelayModel(
                    max_delay_ms, skew=skew, step=inter_arrival_ms, rng=rng
                ),
                inter_arrival_ms=inter_arrival_ms,
            )
        )
    return generate_dataset(configs, duration_ms, seed=seed, name="D3syn")


def make_d4_syn(
    duration_ms: int = seconds(30 * 60),
    seed: int = 1,
    inter_arrival_ms: int = PAPER_INTER_ARRIVAL_MS,
    max_delay_ms: int = PAPER_MAX_DELAY_MS,
    delay_skews: Sequence[float] = (3.0, 3.0, 3.0, 4.0),
    skew_change_interval_ms: Tuple[int, int] = PAPER_SKEW_CHANGE_INTERVAL_MS,
    value_skew_range: Tuple[float, float] = PAPER_VALUE_SKEW_RANGE,
    value_domain: Optional[Sequence[int]] = None,
) -> Dataset:
    """The paper's D×4syn: a star schema over four streams.

    ``S1:(ts, a1, a2, a3)``, ``S2:(ts, a1)``, ``S3:(ts, a2)``,
    ``S4:(ts, a3)``.  Delay skews default to the paper's
    ``z_1..3^d = 3.0`` and ``z_4^d = 4.0`` (the paper text lists
    ``z_1^d`` twice; we read the second entry as ``z_4^d``).
    """
    if len(delay_skews) != 4:
        raise ValueError("D×4syn takes exactly four delay skews")
    attribute_sets = [
        ["a1", "a2", "a3"],
        ["a1"],
        ["a2"],
        ["a3"],
    ]
    configs = []
    for index, (names, skew) in enumerate(zip(attribute_sets, delay_skews)):
        rng = derived_rng(seed, "delay", index)
        configs.append(
            SyntheticStreamConfig(
                attributes=[
                    AttributeSpec(
                        name=name,
                        domain=list(value_domain or PAPER_VALUE_DOMAIN),
                        skew_range=value_skew_range,
                        change_interval_ms=skew_change_interval_ms,
                    )
                    for name in names
                ],
                delay_model=ZipfDelayModel(
                    max_delay_ms, skew=skew, step=inter_arrival_ms, rng=rng
                ),
                inter_arrival_ms=inter_arrival_ms,
            )
        )
    return generate_dataset(configs, duration_ms, seed=seed, name="D4syn")
