"""Arrival-ordered stream sources and dataset containers.

The simulation is *arrival driven*: a dataset is a sequence of
:class:`StreamTuple` objects in global arrival order, each knowing its
owning stream, its arrival (wall-clock) time, and its application
timestamp.  Disorder exists exactly where timestamp order differs from
arrival order.

:class:`Dataset` bundles the arrival sequence with per-stream metadata
(the number of streams and, where known, the generator's nominal rates),
and offers the two replays every experiment needs:

* :meth:`Dataset.arrivals` — the disordered replay fed to the pipeline;
* :meth:`Dataset.sorted_by_timestamp` — the globally timestamp-ordered
  replay used to compute ground-truth join results (paper Sec. VI:
  "we generated a sorted version where tuples of all streams are globally
  ordered according to their timestamps").
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Sequence

from ..core.tuples import StreamTuple


class Dataset:
    """A finite multi-stream dataset in arrival order.

    Parameters
    ----------
    tuples:
        All tuples of all streams, sorted by ``arrival`` (ties broken by
        the order given).  Each tuple must have ``stream`` and ``arrival``
        assigned.
    num_streams:
        The number of input streams ``m``.
    name:
        Optional human-readable label (used by reports).
    nominal_rates:
        Optional per-stream nominal arrival rates in tuples/second, as
        configured at generation time.  Purely informational; the pipeline
        estimates rates from observations.
    """

    def __init__(
        self,
        tuples: Sequence[StreamTuple],
        num_streams: int,
        name: str = "dataset",
        nominal_rates: Optional[Sequence[float]] = None,
    ) -> None:
        if num_streams < 1:
            raise ValueError(f"num_streams must be >= 1, got {num_streams}")
        for t in tuples:
            if not 0 <= t.stream < num_streams:
                raise ValueError(
                    f"tuple stream index {t.stream} outside [0, {num_streams})"
                )
        self._tuples: List[StreamTuple] = list(tuples)
        self.num_streams = num_streams
        self.name = name
        self.nominal_rates = list(nominal_rates) if nominal_rates else None

    def __len__(self) -> int:
        return len(self._tuples)

    def __iter__(self) -> Iterator[StreamTuple]:
        return iter(self._tuples)

    def arrivals(self) -> Iterator[StreamTuple]:
        """Replay in arrival order (the disordered feed)."""
        return iter(self._tuples)

    def sorted_by_timestamp(self) -> List[StreamTuple]:
        """Globally timestamp-ordered copy (ground-truth feed).

        Ties on ``ts`` are broken by arrival order, which keeps the replay
        deterministic; the join semantics do not restrict the order among
        equal timestamps (paper footnote 4).
        """
        return sorted(self._tuples, key=lambda t: (t.ts, t.arrival, t.stream))

    def stream_tuples(self, stream: int) -> List[StreamTuple]:
        """All tuples of one stream, in arrival order."""
        return [t for t in self._tuples if t.stream == stream]

    def max_timestamp(self) -> int:
        """Largest application timestamp in the dataset (0 if empty)."""
        return max((t.ts for t in self._tuples), default=0)

    def max_delay(self) -> int:
        """Largest realized tuple delay (iT at arrival minus ts), per stream.

        This replays each stream's local current time exactly as the
        framework would observe it.
        """
        local_time = [0] * self.num_streams
        seen = [False] * self.num_streams
        worst = 0
        for t in self._tuples:
            i = t.stream
            if not seen[i] or t.ts > local_time[i]:
                local_time[i] = t.ts
                seen[i] = True
            worst = max(worst, local_time[i] - t.ts)
        return worst

    def describe(self) -> str:
        """One-line summary used by example scripts and reports."""
        counts = [0] * self.num_streams
        for t in self._tuples:
            counts[t.stream] += 1
        spans = self.max_timestamp()
        per_stream = ", ".join(f"S{i}:{c}" for i, c in enumerate(counts))
        return (
            f"{self.name}: {len(self._tuples)} tuples over {self.num_streams} "
            f"streams ({per_stream}), time span {spans} ms, "
            f"max delay {self.max_delay()} ms"
        )


def merge_by_arrival(streams: Sequence[Sequence[StreamTuple]]) -> List[StreamTuple]:
    """Stable-merge per-stream arrival sequences into one arrival order.

    Each inner sequence must already be sorted by ``arrival``.  Ties are
    broken by stream index to keep runs deterministic.
    """
    merged: List[StreamTuple] = []
    for stream_tuples in streams:
        merged.extend(stream_tuples)
    merged.sort(key=lambda t: (t.arrival, t.stream, t.seq))
    return merged


def interleave_round_robin(streams: Sequence[Sequence[StreamTuple]]) -> List[StreamTuple]:
    """Interleave streams one tuple at a time, ignoring arrival times.

    Useful for hand-built test fixtures where explicit arrival times would
    be noise.  Assigns synthetic ``arrival`` values matching the global
    position so the result is a valid arrival order.
    """
    iterators = [iter(s) for s in streams]
    merged: List[StreamTuple] = []
    active = list(range(len(iterators)))
    position = 0
    while active:
        still_active: List[int] = []
        for index in active:
            try:
                t = next(iterators[index])
            except StopIteration:
                continue
            t.arrival = position
            position += 1
            merged.append(t)
            still_active.append(index)
        active = still_active
    return merged


def from_tuple_specs(
    specs: Iterable[tuple],
    num_streams: int,
    name: str = "manual",
) -> Dataset:
    """Build a dataset from ``(stream, ts, values_dict)`` triples in arrival order.

    A convenience for tests and examples that mirror the paper's worked
    figures (Fig. 1, Fig. 3, Fig. 5) where the arrival order is written
    out explicitly.
    """
    tuples: List[StreamTuple] = []
    seqs = [0] * num_streams
    for position, spec in enumerate(specs):
        if len(spec) == 3:
            stream, ts, values = spec
        elif len(spec) == 2:
            stream, ts = spec
            values = {}
        else:
            raise ValueError(f"spec must be (stream, ts[, values]), got {spec!r}")
        t = StreamTuple(ts=ts, values=values, stream=stream, seq=seqs[stream], arrival=position)
        seqs[stream] += 1
        tuples.append(t)
    return Dataset(tuples, num_streams=num_streams, name=name)
