"""Simulated soccer player-position streams (substitute for D×2real).

The paper's real-world dataset is the DEBS 2013 Grand Challenge soccer
trace: two streams of player positions (one per team) collected by on-body
sensors during a 23-minute training game, ~450k tuples per stream, maximum
tuple delays of 22s and 26s.  That trace is not available offline, so this
module generates the closest synthetic equivalent (see DESIGN.md §5):

* Two streams, one per team, each multiplexing the position samples of
  that team's players.  Schema ``(ts, sID, x, y)`` matching the paper's
  projection ``(ts, sID, xCoord, yCoord)``.
* Players move on a 105×68 m pitch under a waypoint model: pick a target
  point, move toward it at a speed resampled per leg (walk/jog/sprint),
  pick a new target on arrival.  Player positions are therefore smooth,
  and cross-team proximity events (the join matches) cluster in time,
  giving the bursty, time-varying selectivity that distinguishes the
  soccer workload from the synthetic equi-joins.
* Sensor-network delays follow :class:`~repro.streams.disorder.BurstyDelayModel`,
  with per-stream caps defaulting to the paper's observed maxima (22s/26s).

The join query Q×2 over this data — "pairs of players from opposite teams
within 5 m of each other inside a 5 s window" — is built by
:func:`repro.experiments.configs` using a theta predicate on ``dist()``.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..core.tuples import StreamTuple, seconds
from .disorder import BurstyDelayModel, DelayModel
from .seeding import derived_rng
from .source import Dataset, merge_by_arrival

#: FIFA standard pitch dimensions in meters.
PITCH_LENGTH_M = 105.0
PITCH_WIDTH_M = 68.0


@dataclass
class SoccerConfig:
    """Knobs of the soccer simulation.

    Defaults are scaled down from the paper (23 min, ~16 players/team at
    high sensor rates) to laptop-friendly sizes while preserving the
    structure; benchmarks pass explicit values.
    """

    duration_ms: int = seconds(120)
    players_per_team: int = 8
    #: Per-player position sampling period (ms).  The two teams' combined
    #: streams then run at ``players_per_team / sample_period`` tuples/ms.
    sample_period_ms: int = 200
    max_delay_ms: Tuple[int, int] = (22_000, 26_000)
    burst_probability: float = 0.015
    jitter_mean_ms: float = 120.0
    speed_range_mps: Tuple[float, float] = (1.0, 7.0)
    seed: int = 7


class _Player:
    """Waypoint-model movement of a single player."""

    def __init__(self, player_id: int, rng: random.Random) -> None:
        self.player_id = player_id
        self._rng = rng
        self.x = rng.uniform(0.0, PITCH_LENGTH_M)
        self.y = rng.uniform(0.0, PITCH_WIDTH_M)
        self._target = self._pick_target()
        self._speed = 0.0
        self._pick_speed()

    def _pick_target(self) -> Tuple[float, float]:
        return (
            self._rng.uniform(0.0, PITCH_LENGTH_M),
            self._rng.uniform(0.0, PITCH_WIDTH_M),
        )

    def _pick_speed(self, low: float = 1.0, high: float = 7.0) -> None:
        self._speed = self._rng.uniform(low, high)

    def advance(self, dt_seconds: float, speed_range: Tuple[float, float]) -> None:
        """Move toward the current waypoint for ``dt_seconds``."""
        remaining = dt_seconds
        while remaining > 0:
            dx = self._target[0] - self.x
            dy = self._target[1] - self.y
            distance = math.hypot(dx, dy)
            step = self._speed * remaining
            if distance <= step or distance < 1e-9:
                self.x, self.y = self._target
                used = distance / self._speed if self._speed > 0 else remaining
                remaining -= used
                self._target = self._pick_target()
                self._pick_speed(*speed_range)
            else:
                self.x += dx / distance * step
                self.y += dy / distance * step
                remaining = 0.0


def _generate_team_stream(
    stream_index: int,
    config: SoccerConfig,
    delay_model: DelayModel,
    rng: random.Random,
) -> List[StreamTuple]:
    """Generate one team's multiplexed position stream in arrival order.

    Players are sampled round-robin within each sampling period, so the
    team stream's inter-arrival gap is ``sample_period / players``.
    """
    players = [
        _Player(player_id=stream_index * 100 + p, rng=rng)
        for p in range(config.players_per_team)
    ]
    gap_ms = max(1, config.sample_period_ms // config.players_per_team)
    dt_seconds = gap_ms / 1000.0
    tuples: List[StreamTuple] = []
    arrival = 0
    seq = 0
    player_index = 0
    while True:
        arrival += gap_ms
        if arrival > config.duration_ms:
            break
        player = players[player_index]
        player_index = (player_index + 1) % len(players)
        player.advance(dt_seconds, config.speed_range_mps)
        delay = delay_model.sample(arrival)
        ts = max(0, arrival - delay)
        tuples.append(
            StreamTuple(
                ts=ts,
                values={
                    "sID": player.player_id,
                    "x": round(player.x, 3),
                    "y": round(player.y, 3),
                },
                stream=stream_index,
                seq=seq,
                arrival=arrival,
            )
        )
        seq += 1
    return tuples


def make_soccer_dataset(config: Optional[SoccerConfig] = None) -> Dataset:
    """Generate the two-team soccer dataset (D×2real substitute)."""
    config = config or SoccerConfig()
    streams: List[List[StreamTuple]] = []
    for team in range(2):
        rng = derived_rng(config.seed, team)
        delay_model = BurstyDelayModel(
            max_delay=config.max_delay_ms[team],
            jitter_mean=config.jitter_mean_ms,
            burst_probability=config.burst_probability,
            rng=derived_rng(config.seed, "delay", team),
        )
        streams.append(_generate_team_stream(team, config, delay_model, rng))
    merged = merge_by_arrival(streams)
    rate = 1000.0 / max(1, config.sample_period_ms // config.players_per_team)
    return Dataset(
        merged,
        num_streams=2,
        name="D2real-sim",
        nominal_rates=[rate, rate],
    )


def player_distance(x1: float, y1: float, x2: float, y2: float) -> float:
    """Euclidean distance between two pitch positions — the paper's ``dist()`` UDF."""
    return math.hypot(x1 - x2, y1 - y2)
