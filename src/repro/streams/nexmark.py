"""NEXMark-style auction workload streams (Person / Auction / Bid).

The paper validates quality-driven K-slack only on its synthetic D×3syn /
D×4syn datasets and the soccer traces.  This module opens the scenario
axes those workloads never exercise — heterogeneous per-stream rates,
*drifting* key skew, and burst/silence phases — using the entity model of
the NEXMark benchmark (Tucker et al.): **Person** rows open accounts,
**Auction** rows announce items for sale, **Bid** rows reference open
auctions.

Everything is emitted as plain :class:`~repro.streams.source.Dataset`
objects, so every existing layer (the single
:class:`~repro.core.pipeline.QualityDrivenPipeline`, the partitioned
engine with either executor/transport, and the rebalancer) runs the
workloads unchanged.

Streams and queries
-------------------
Two stream layouts are provided:

* :func:`make_auction_bids` — one Auction stream plus ``num_bid_channels``
  Bid streams (think web/mobile ingest paths), every stream carrying the
  ``auction`` attribute.  The matching :func:`auction_bid_query` is a
  chain equi-join on ``auction``: its single equi component covers all
  streams, so :meth:`~repro.join.conditions.JoinCondition.partition_attributes`
  yields ``{stream: "auction"}`` — the partitioned engine hash-routes
  exactly and the rebalancer is available.
* :func:`make_person_auction_bid` — the classic three-entity layout
  (Person, Auction, Bid).  :func:`person_auction_bid_query` joins
  ``Person.person = Auction.seller`` and ``Auction.auction = Bid.auction``:
  two *disjoint* equi components, neither covering all three streams, so
  ``partition_attributes`` returns ``None`` and the partitioned engine
  falls back to broadcast — the workload that deliberately exercises the
  non-partitionable regime.

Phases
------
A workload is a sequence of :class:`PhaseSpec` entries.  Each phase sets,
for its duration, a per-stream arrival-rate multiplier (``1.0`` steady,
``> 1`` burst, ``0.0`` silence), the Zipf skew of the auction-id draw,
and a rotation offset of the auction-id domain — rotating the domain
moves the *hot* ids, which is how key-skew drift is modelled (PanJoin,
arXiv:1811.05065, evaluates adaptive stream joins under exactly this
kind of shifting key distribution).  :func:`default_phases` cycles
through steady → burst → silence → drift archetypes.

Disorder reuses :mod:`repro.streams.disorder`: each stream draws tuple
delays from a bounded :class:`~repro.streams.disorder.ZipfDelayModel`
(the paper's model), with per-stream skews.

Determinism: all randomness derives from
:func:`~repro.streams.seeding.derived_rng`, so a ``(config, seed)`` pair
reproduces the identical dataset across processes and interpreter runs.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..core.tuples import StreamTuple
from ..join.conditions import EquiPredicate, JoinCondition, equi_join_chain
from .disorder import ZipfDelayModel
from .seeding import derived_rng
from .source import Dataset, merge_by_arrival
from .zipf import ZipfValueSampler

#: Default delay-model parameters (paper-style bounded Zipf, scaled to the
#: second-length phases these workloads run at).
DEFAULT_MAX_DELAY_MS = 500
DEFAULT_DELAY_SKEW = 2.5
#: Burst phases multiply the Bid-channel arrival rate by this factor.
BURST_MULTIPLIER = 3.0
#: Drift phases raise the auction-id skew to this value.
DRIFT_SKEW = 1.5


@dataclass(frozen=True)
class PhaseSpec:
    """One workload phase: rates, key skew, and hot-set position.

    Parameters
    ----------
    name:
        Label used by reports (``steady`` / ``burst`` / ``silence`` /
        ``drift`` / anything custom).
    duration_ms:
        Phase length in application/arrival milliseconds.
    rate:
        Per-stream arrival-rate multipliers; empty means ``1.0``
        everywhere.  ``0.0`` silences a stream for the whole phase,
        ``> 1`` bursts it.
    value_skew:
        Zipf skew of the auction-id draw during this phase (``0`` =
        uniform).
    hot_offset:
        Rotation of the auction-id domain.  Rank 1 of the Zipf draw maps
        to the *first* domain value, so changing the offset moves which
        ids are hot — key-skew drift without changing the marginal
        distribution shape.
    """

    name: str
    duration_ms: int
    rate: Tuple[float, ...] = ()
    value_skew: float = 1.0
    hot_offset: int = 0

    def __post_init__(self) -> None:
        if self.duration_ms <= 0:
            raise ValueError(
                f"phase duration must be positive, got {self.duration_ms}"
            )
        if any(r < 0 for r in self.rate):
            raise ValueError("rate multipliers must be non-negative")

    def rate_of(self, stream: int) -> float:
        """The stream's multiplier (1.0 when ``rate`` is unspecified)."""
        if not self.rate:
            return 1.0
        return self.rate[stream]


def default_phases(
    num_phases: int,
    phase_duration_ms: int,
    num_streams: int,
    auction_domain: int,
) -> List[PhaseSpec]:
    """The canonical phase schedule: steady → burst → silence → drift.

    * **steady** — all streams at nominal rate, skew 1.0.
    * **burst** — every Bid channel (streams ``>= 1``) at
      :data:`BURST_MULTIPLIER` × nominal.
    * **silence** — one Bid channel (rotating across silence phases)
      emits nothing; the synchronizer's completeness gate must hold the
      other streams for it.
    * **drift** — the hot auction ids move (domain rotation advances by
      a third of the domain) and the skew rises to :data:`DRIFT_SKEW`.

    The cycle repeats for ``num_phases`` phases; the rotation offset
    accumulates so later drift phases keep moving the hot set.  With a
    single stream (no Bid channels) the silence archetype degenerates to
    steady — silencing the only stream would make the phase empty.
    """
    if num_phases < 1:
        raise ValueError(f"num_phases must be >= 1, got {num_phases}")
    if num_streams < 1:
        raise ValueError(f"num_streams must be >= 1, got {num_streams}")
    phases: List[PhaseSpec] = []
    offset = 0
    silence_turn = 0
    archetypes = ("steady", "burst", "silence", "drift")
    for index in range(num_phases):
        kind = archetypes[index % len(archetypes)]
        rate: Tuple[float, ...] = ()
        skew = 1.0
        if kind == "burst" and num_streams > 1:
            rate = (1.0,) + (BURST_MULTIPLIER,) * (num_streams - 1)
        elif kind == "silence" and num_streams > 1:
            silent = 1 + (silence_turn % (num_streams - 1))
            silence_turn += 1
            rate = tuple(
                0.0 if stream == silent else 1.0
                for stream in range(num_streams)
            )
        elif kind == "drift":
            offset = (offset + max(1, auction_domain // 3)) % auction_domain
            skew = DRIFT_SKEW
        phases.append(
            PhaseSpec(
                name=kind,
                duration_ms=phase_duration_ms,
                rate=rate,
                value_skew=skew,
                hot_offset=offset,
            )
        )
    return phases


@dataclass
class NexmarkConfig:
    """Configuration of a NEXMark-style workload.

    The stream layout is fixed by the factory used
    (:func:`make_auction_bids` or :func:`make_person_auction_bid`); this
    config sets rates, domains, disorder, and the phase schedule.
    """

    #: Bid ingest channels (streams beyond the Auction stream) for the
    #: auction-bids layout.
    num_bid_channels: int = 2
    #: Phase schedule; ``None`` derives :func:`default_phases` from
    #: ``num_phases`` × ``phase_duration_ms``.
    phases: Optional[List[PhaseSpec]] = None
    num_phases: int = 3
    phase_duration_ms: int = 8_000
    seed: int = 7
    #: Active auction ids (the join-key domain).
    auction_domain: int = 32
    #: Person/seller/bidder id domain.
    person_domain: int = 100
    #: Nominal inter-arrival gaps per entity stream (ms).
    auction_gap_ms: int = 40
    bid_gap_ms: int = 20
    person_gap_ms: int = 80
    #: Bounded-Zipf delay model (reused from ``streams.disorder``).
    max_delay_ms: int = DEFAULT_MAX_DELAY_MS
    #: Per-stream delay skews; ``None`` gives the Auction stream 3.0 and
    #: every Bid channel :data:`DEFAULT_DELAY_SKEW` (more disorder on the
    #: high-rate streams, like the paper's per-stream ``z_i^d``).
    delay_skews: Optional[Sequence[float]] = None
    price_domain: int = 1_000

    def __post_init__(self) -> None:
        if self.num_bid_channels < 1:
            raise ValueError(
                f"num_bid_channels must be >= 1, got {self.num_bid_channels}"
            )
        if self.auction_domain < 1:
            raise ValueError(
                f"auction_domain must be >= 1, got {self.auction_domain}"
            )
        if min(self.auction_gap_ms, self.bid_gap_ms, self.person_gap_ms) < 1:
            raise ValueError("inter-arrival gaps must be >= 1 ms")
        if self.max_delay_ms < 0:
            raise ValueError(
                f"max_delay_ms must be non-negative, got {self.max_delay_ms}"
            )

    def resolved_phases(self, num_streams: int) -> List[PhaseSpec]:
        """The explicit schedule, or the default one for this shape."""
        if self.phases is not None:
            for phase in self.phases:
                if phase.rate and len(phase.rate) != num_streams:
                    raise ValueError(
                        f"phase {phase.name!r} sets {len(phase.rate)} rate "
                        f"multipliers for {num_streams} streams"
                    )
            return list(self.phases)
        return default_phases(
            self.num_phases,
            self.phase_duration_ms,
            num_streams,
            self.auction_domain,
        )

    def duration_ms(self, num_streams: int) -> int:
        return sum(p.duration_ms for p in self.resolved_phases(num_streams))

    def delay_skew_of(self, stream: int) -> float:
        if self.delay_skews is not None:
            return self.delay_skews[stream]
        return 3.0 if stream == 0 else DEFAULT_DELAY_SKEW


class _DriftingKeySampler:
    """Zipf draw over a domain whose rotation/skew change per phase."""

    def __init__(self, domain: Sequence[int], rng: random.Random) -> None:
        self._domain = list(domain)
        self._rng = rng
        self._sampler: Optional[ZipfValueSampler] = None
        self._position: Optional[Tuple[float, int]] = None

    def enter_phase(self, phase: PhaseSpec) -> None:
        offset = phase.hot_offset % len(self._domain)
        position = (phase.value_skew, offset)
        if position == self._position:
            return
        rotated = self._domain[offset:] + self._domain[:offset]
        self._sampler = ZipfValueSampler(rotated, phase.value_skew, self._rng)
        self._position = position

    def sample(self) -> int:
        assert self._sampler is not None, "enter_phase() not called"
        return self._sampler.sample()


def _generate_phased_stream(
    stream_index: int,
    base_gap_ms: int,
    phases: Sequence[PhaseSpec],
    key_sampler: _DriftingKeySampler,
    payload_fn,
    delay_model: ZipfDelayModel,
) -> List[StreamTuple]:
    """One stream's arrival-ordered tuples across the phase schedule.

    The arrival clock is continuous across phases; a silenced phase
    simply advances it without emitting.  Timestamps are
    ``arrival - delay`` clamped at 0, exactly like the paper generators.
    """
    tuples: List[StreamTuple] = []
    seq = 0
    phase_start = 0
    for phase in phases:
        phase_end = phase_start + phase.duration_ms
        multiplier = phase.rate_of(stream_index)
        if multiplier > 0:
            key_sampler.enter_phase(phase)
            gap = max(1, int(round(base_gap_ms / multiplier)))
            arrival = phase_start
            while arrival + gap <= phase_end:
                arrival += gap
                delay = delay_model.sample(arrival)
                ts = max(0, arrival - delay)
                values = payload_fn(key_sampler)
                tuples.append(
                    StreamTuple(
                        ts=ts,
                        values=values,
                        stream=stream_index,
                        seq=seq,
                        arrival=arrival,
                    )
                )
                seq += 1
        phase_start = phase_end
    return tuples


def _delay_model(config: NexmarkConfig, stream: int) -> ZipfDelayModel:
    step = min(config.auction_gap_ms, config.bid_gap_ms, 10)
    return ZipfDelayModel(
        config.max_delay_ms,
        skew=config.delay_skew_of(stream),
        step=max(1, step),
        rng=derived_rng(config.seed, "nexmark-delay", stream),
    )


# ----------------------------------------------------------------------
# Auction × Bid-channels layout (exactly partitionable)
# ----------------------------------------------------------------------

def make_auction_bids(config: NexmarkConfig) -> Dataset:
    """Auction stream + ``num_bid_channels`` Bid streams.

    Stream 0 announces auctions (``auction``, ``seller``, ``category``);
    streams ``1..n`` are Bid ingest channels (``auction``, ``bidder``,
    ``price``).  Every stream carries ``auction`` drawn from the same
    drifting-Zipf key distribution, so :func:`auction_bid_query` joins
    bids on the same item across channels with their announcement.
    """
    num_streams = 1 + config.num_bid_channels
    phases = config.resolved_phases(num_streams)
    domain = list(range(1, config.auction_domain + 1))
    streams: List[List[StreamTuple]] = []
    for stream in range(num_streams):
        values_rng = derived_rng(config.seed, "nexmark-ab", stream)
        key_sampler = _DriftingKeySampler(domain, values_rng)
        if stream == 0:
            def payload(sampler, rng=values_rng, cfg=config):
                return {
                    "auction": sampler.sample(),
                    "seller": rng.randint(1, cfg.person_domain),
                    "category": rng.randint(1, 10),
                }
            gap = config.auction_gap_ms
        else:
            def payload(sampler, rng=values_rng, cfg=config):
                return {
                    "auction": sampler.sample(),
                    "bidder": rng.randint(1, cfg.person_domain),
                    "price": rng.randint(1, cfg.price_domain),
                }
            gap = config.bid_gap_ms
        streams.append(
            _generate_phased_stream(
                stream, gap, phases, key_sampler, payload,
                _delay_model(config, stream),
            )
        )
    rates = [1000.0 / config.auction_gap_ms] + [
        1000.0 / config.bid_gap_ms
    ] * config.num_bid_channels
    return Dataset(
        merge_by_arrival(streams),
        num_streams=num_streams,
        name=f"nexmark-ab{config.num_bid_channels}",
        nominal_rates=rates,
    )


def auction_bid_query(num_bid_channels: int = 2) -> JoinCondition:
    """Chain equi-join on ``auction`` across the announcement + channels.

    One equi component covers all ``1 + num_bid_channels`` streams, so
    ``partition_attributes`` yields ``{stream: "auction"}`` — exact hash
    partitioning, rebalancer available.

    >>> auction_bid_query(2).partition_attributes(3)
    {0: 'auction', 1: 'auction', 2: 'auction'}
    """
    return equi_join_chain("auction", 1 + num_bid_channels)


# ----------------------------------------------------------------------
# Person × Auction × Bid layout (broadcast regime)
# ----------------------------------------------------------------------

def make_person_auction_bid(config: NexmarkConfig) -> Dataset:
    """The classic three-entity layout: Person, Auction, Bid.

    Stream 0: Person (``person``, ``city``); stream 1: Auction
    (``auction``, ``seller``); stream 2: Bid (``auction``, ``bidder``,
    ``price``).  Sellers/bidders are drawn Zipf-skewed from the person
    domain so the Person⋈Auction side has genuine selectivity skew.
    """
    num_streams = 3
    phases = config.resolved_phases(num_streams)
    auction_domain = list(range(1, config.auction_domain + 1))
    person_domain = list(range(1, config.person_domain + 1))
    streams: List[List[StreamTuple]] = []
    for stream, gap in enumerate(
        (config.person_gap_ms, config.auction_gap_ms, config.bid_gap_ms)
    ):
        values_rng = derived_rng(config.seed, "nexmark-pab", stream)
        person_sampler = ZipfValueSampler(person_domain, 1.0, values_rng)
        key_sampler = _DriftingKeySampler(
            person_domain if stream == 0 else auction_domain, values_rng
        )
        if stream == 0:
            def payload(sampler, rng=values_rng):
                return {"person": sampler.sample(), "city": rng.randint(1, 20)}
        elif stream == 1:
            def payload(sampler, people=person_sampler):
                return {"auction": sampler.sample(), "seller": people.sample()}
        else:
            def payload(sampler, people=person_sampler, rng=values_rng,
                        cfg=config):
                return {
                    "auction": sampler.sample(),
                    "bidder": people.sample(),
                    "price": rng.randint(1, cfg.price_domain),
                }
        streams.append(
            _generate_phased_stream(
                stream, gap, phases, key_sampler, payload,
                _delay_model(config, stream),
            )
        )
    rates = [
        1000.0 / config.person_gap_ms,
        1000.0 / config.auction_gap_ms,
        1000.0 / config.bid_gap_ms,
    ]
    return Dataset(
        merge_by_arrival(streams),
        num_streams=num_streams,
        name="nexmark-pab",
        nominal_rates=rates,
    )


def person_auction_bid_query() -> JoinCondition:
    """``Person.person = Auction.seller AND Auction.auction = Bid.auction``.

    Two disjoint equi components — ``{(0, person), (1, seller)}`` and
    ``{(1, auction), (2, auction)}`` — neither covering all three
    streams, so there is no single attribute whose hash co-partitions
    every result:

    >>> person_auction_bid_query().partition_attributes(3) is None
    True

    The partitioned engine therefore broadcasts (shard 0 emits); this is
    the deliberate non-partitionable NEXMark workload.
    """
    return JoinCondition(
        [
            EquiPredicate(0, "person", 1, "seller"),
            EquiPredicate(1, "auction", 2, "auction"),
        ]
    )


# ----------------------------------------------------------------------
# workload introspection helpers (used by the soak harness & benches)
# ----------------------------------------------------------------------

def phase_boundaries_ms(config: NexmarkConfig, num_streams: int) -> List[int]:
    """Cumulative phase end times (arrival ms), one per phase."""
    boundaries: List[int] = []
    total = 0
    for phase in config.resolved_phases(num_streams):
        total += phase.duration_ms
        boundaries.append(total)
    return boundaries


def peak_rates_per_ms(
    config: NexmarkConfig, base_gaps_ms: Sequence[int]
) -> List[float]:
    """Per-stream worst-case arrival rates (tuples/ms) over all phases."""
    num_streams = len(base_gaps_ms)
    phases = config.resolved_phases(num_streams)
    rates: List[float] = []
    for stream, gap in enumerate(base_gaps_ms):
        peak = max((phase.rate_of(stream) for phase in phases), default=1.0)
        rates.append(peak / gap if peak > 0 else 1.0 / gap)
    return rates


def max_stall_ms(config: NexmarkConfig, num_streams: int) -> int:
    """Longest consecutive silence of any one stream (ms).

    While a stream is silent the synchronizer's completeness gate
    buffers every other stream — this bound feeds the soak harness's
    analytic pending-memory cap.
    """
    phases = config.resolved_phases(num_streams)
    worst = 0
    for stream in range(num_streams):
        run = 0
        for phase in phases:
            if phase.rate_of(stream) == 0:
                run += phase.duration_ms
                worst = max(worst, run)
            else:
                run = 0
    return worst
