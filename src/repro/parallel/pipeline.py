"""Hash-partitioned parallel execution of the quality-driven pipeline.

:class:`PartitionedPipeline` scales the single-operator
:class:`~repro.core.pipeline.QualityDrivenPipeline` out to N shards, each
a *complete* pipeline (its own K-slack buffers, Synchronizer, MSWJ and
adaptation loop), with a :class:`~repro.parallel.router.KeyRouter`
hash-routing every input tuple by the condition's equi-join key.  The
shards run behind one of two interchangeable executors
(:mod:`repro.parallel.executors`): in-process serial (deterministic; used
by the invariance tests) or per-shard worker processes with batched IPC.

Semantics
---------
* **Equi-partitionable conditions** (the router is :attr:`exact`): the
  shards partition the result space, so the union of shard outputs is
  exactly the single-pipeline result whenever disorder handling is
  lossless — in-order input, or a fixed K covering the maximum delay.
  Under *lossy* disorder handling each shard adapts K to its own
  substream, so recall can deviate from (and typically exceeds) the
  single pipeline's: a per-shard synchronizer forwards fewer stragglers.
* **Non-partitionable conditions** (theta/band-only predicates, star
  joins over distinct attributes, cross joins): every tuple is broadcast,
  each shard maintains the full join state, and only the designated shard
  0 emits — the result multiset is preserved, but there is no partition
  parallelism and per-shard disorder handling remains approximate in the
  lossy regime, so prefer ``num_shards=1`` for such conditions.
  Broadcast deliberately keeps every shard's state complete (each could
  be promoted to emitter), at the cost of the full join replicated per
  shard — merged metrics count each replica's work, e.g.
  ``tuples_processed`` is N× the input size.

Results arrive through :meth:`PartitionedPipeline.process` (whatever the
executor makes available immediately) and :meth:`PartitionedPipeline.flush`
(the rest, merged across shards in timestamp order); metrics merge via
:meth:`~repro.core.pipeline.PipelineMetrics.merge`.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Union

from ..core.pipeline import PipelineConfig, PipelineMetrics
from ..core.tuples import JoinResult, StreamTuple
from ..streams.source import Dataset
from .executors import (
    DEFAULT_BATCH_SIZE,
    MultiprocessingExecutor,
    SerialExecutor,
    ShardExecutor,
)
from .router import KeyRouter
from .shard import (
    TRANSPORT_BLOCKS,
    Outputs,
    ShardOutcome,
    empty_outputs,
    merge_outputs,
)

#: An executor name or a factory ``(config, num_shards) -> ShardExecutor``.
ExecutorSpec = Union[str, Callable[[PipelineConfig, int], ShardExecutor]]


class PartitionedPipeline:
    """N hash-partitioned shards behind the single-pipeline interface.

    Parameters
    ----------
    config:
        The shared per-shard :class:`~repro.core.pipeline.PipelineConfig`
        (window sizes, condition, recall requirement, policy, ...).
    num_shards:
        Number of shard pipelines.
    executor:
        ``"serial"`` (default), ``"process"``, or a factory callable
        ``(config, num_shards) -> ShardExecutor``.
    batch_size:
        Tuples buffered per shard before one IPC dispatch (``"process"``
        executor only).
    transport:
        Wire format of the ``"process"`` executor:
        :data:`~repro.parallel.shard.TRANSPORT_BLOCKS` (default —
        columnar :class:`~repro.core.blocks.TupleBlock` /
        :class:`~repro.core.blocks.ResultBlock` messages) or
        :data:`~repro.parallel.shard.TRANSPORT_OBJECTS` (legacy
        per-object pickling).
    """

    def __init__(
        self,
        config: PipelineConfig,
        num_shards: int,
        executor: ExecutorSpec = "serial",
        batch_size: int = DEFAULT_BATCH_SIZE,
        transport: str = TRANSPORT_BLOCKS,
    ) -> None:
        self.config = config
        self.num_shards = num_shards
        self.router = KeyRouter(
            config.condition, len(config.window_sizes_ms), num_shards
        )
        if executor == "serial":
            self.executor: ShardExecutor = SerialExecutor(config, num_shards)
        elif executor == "process":
            self.executor = MultiprocessingExecutor(
                config, num_shards, batch_size=batch_size, transport=transport
            )
        elif callable(executor):
            self.executor = executor(config, num_shards)
        else:
            raise ValueError(
                f"executor must be 'serial', 'process' or a factory, got {executor!r}"
            )
        # Broadcast replicates the full join on every shard; emitting from
        # shard 0 alone keeps the output multiset exact.
        self._emit_shards = (
            frozenset(range(num_shards)) if self.router.exact else frozenset((0,))
        )
        self._flushed = False
        self._outcomes: Optional[List[ShardOutcome]] = None

    # ------------------------------------------------------------------
    # properties
    # ------------------------------------------------------------------

    @property
    def exact_partitioning(self) -> bool:
        """True when the condition admits an exact equi partition key."""
        return self.router.exact

    @property
    def flushed(self) -> bool:
        return self._flushed

    @property
    def metrics(self) -> PipelineMetrics:
        """Merged metrics across shards.

        Live for the serial executor; for the process executor the shard
        metrics only travel back at :meth:`flush`, so this raises before
        then.
        """
        if self._outcomes is not None:
            return PipelineMetrics.merge([o.metrics for o in self._outcomes])
        if isinstance(self.executor, SerialExecutor):
            return PipelineMetrics.merge(
                [p.metrics for p in self.executor.pipelines]
            )
        raise RuntimeError(
            "shard metrics unavailable: under the process executor they "
            "only travel back on a successful flush()"
        )

    def join_statistics(self) -> Dict[str, int]:
        """Summed MSWJ counters across shards (see ``JoinStatistics``).

        Live for the serial executor; for the process executor available
        only after :meth:`flush` (counters ride back with the
        :class:`~repro.parallel.shard.ShardOutcome`).
        """
        if self._outcomes is not None:
            stats_dicts = [o.join_stats for o in self._outcomes]
        elif isinstance(self.executor, SerialExecutor):
            stats_dicts = [
                p.join.stats.as_dict() for p in self.executor.pipelines
            ]
        else:
            raise RuntimeError(
                "shard join statistics unavailable: under the process "
                "executor they only travel back on a successful flush()"
            )
        merged: Dict[str, int] = {}
        for stats in stats_dicts:
            for name, value in stats.items():
                merged[name] = merged.get(name, 0) + value
        return merged

    # ------------------------------------------------------------------
    # streaming interface (mirrors QualityDrivenPipeline)
    # ------------------------------------------------------------------

    def process(self, t: StreamTuple) -> Outputs:
        """Feed one raw tuple; return results made available right now."""
        if self._flushed:
            raise RuntimeError("pipeline already flushed; create a new instance")
        collect = self.config.collect_results
        outputs = empty_outputs(collect)
        for shard in self.router.route(t):
            produced = self.executor.submit(shard, t)
            if shard in self._emit_shards:
                outputs = merge_outputs(collect, outputs, produced)
        return outputs

    def process_batch(self, batch: Sequence[StreamTuple]) -> Outputs:
        """Feed a burst of raw tuples; return results made available now.

        Routes the whole burst up front through the vectorized
        :meth:`~repro.parallel.router.KeyRouter.route_batch` single-pass
        partitioner, then dispatches **one** batch per shard per call
        (in shard order) instead of one envelope per tuple.  Each shard
        still sees its sub-stream in arrival order, so every shard's
        internal result sequence — and therefore the result multiset and
        the ts-ordered :meth:`flush` sequence — is identical to
        per-tuple feeding.  Only the interleaving of *immediately
        returned* results across shards differs: within one call they
        come back grouped by shard rather than by arrival (the serial
        executor returns them here; the process executor defers
        everything to :meth:`flush` regardless).
        """
        if self._flushed:
            raise RuntimeError("pipeline already flushed; create a new instance")
        collect = self.config.collect_results
        routed = self.router.route_batch(batch)
        if routed is None:
            # Broadcast: every shard consumes the same (read-only) burst;
            # no per-shard copies.
            per_shard: List[Sequence[StreamTuple]] = [batch] * self.num_shards
        else:
            per_shard = routed
        outputs = empty_outputs(collect)
        submit_batch = self.executor.submit_batch
        emit_shards = self._emit_shards
        for shard, shard_batch in enumerate(per_shard):
            if not shard_batch:
                continue
            produced = submit_batch(shard, shard_batch)
            if shard in emit_shards:
                outputs = merge_outputs(collect, outputs, produced)
        return outputs

    def flush(self) -> Outputs:
        """Flush every shard; return remaining results merged in ts order."""
        collect = self.config.collect_results
        if self._flushed:
            return empty_outputs(collect)
        self._flushed = True
        self._outcomes = self.executor.finish()
        emitted = [
            outcome
            for outcome in self._outcomes
            if outcome.shard in self._emit_shards
        ]
        if collect:
            results: List[JoinResult] = []
            for outcome in emitted:
                results.extend(outcome.outputs)  # type: ignore[arg-type]
            results.sort(key=lambda r: r.ts)  # stable: shard order on ties
            return results
        return sum(outcome.outputs for outcome in emitted)  # type: ignore[misc]

    def close(self) -> None:
        """Release shard resources without draining (abandoning the run).

        After ``close`` the pipeline behaves like a flushed one: further
        ``process`` raises, ``flush`` returns empty.  A pipeline that was
        already flushed closes cleanly (no-op for the serial executor).
        Also runs on context-manager exit, so the worker processes of the
        ``"process"`` executor cannot leak when the feed loop raises::

            with PartitionedPipeline(config, 8, executor="process") as p:
                for t in dataset.arrivals():
                    p.process(t)
                final = p.flush()
        """
        self._flushed = True
        self.executor.close()

    def __enter__(self) -> "PartitionedPipeline":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()


def run_partitioned(
    dataset: Dataset,
    config: PipelineConfig,
    num_shards: int,
    executor: ExecutorSpec = "serial",
    batch_size: int = DEFAULT_BATCH_SIZE,
    chunk_size: Optional[int] = None,
    transport: str = TRANSPORT_BLOCKS,
) -> tuple:
    """Replay a finite dataset through a :class:`PartitionedPipeline`.

    Returns ``(outputs, metrics)`` where ``outputs`` accumulates every
    :meth:`~PartitionedPipeline.process` return plus the final
    :meth:`~PartitionedPipeline.flush` — the full result multiset under
    either executor.

    ``chunk_size=None`` drives the pipeline tuple-at-a-time
    (:meth:`~PartitionedPipeline.process`); a positive ``chunk_size``
    slices the arrival stream into bursts of that many tuples and drives
    the batched engine (:meth:`~PartitionedPipeline.process_batch`).
    ``transport`` picks the ``"process"`` executor's wire format (see
    :class:`PartitionedPipeline`).
    """
    if chunk_size is not None and chunk_size < 1:
        raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
    with PartitionedPipeline(
        config,
        num_shards,
        executor=executor,
        batch_size=batch_size,
        transport=transport,
    ) as pipeline:
        collect = config.collect_results
        outputs = empty_outputs(collect)
        if chunk_size is None:
            for t in dataset.arrivals():
                outputs = merge_outputs(collect, outputs, pipeline.process(t))
        else:
            chunk: List[StreamTuple] = []
            for t in dataset.arrivals():
                chunk.append(t)
                if len(chunk) >= chunk_size:
                    outputs = merge_outputs(
                        collect, outputs, pipeline.process_batch(chunk)
                    )
                    chunk = []
            if chunk:
                outputs = merge_outputs(
                    collect, outputs, pipeline.process_batch(chunk)
                )
        outputs = merge_outputs(collect, outputs, pipeline.flush())
        return outputs, pipeline.metrics
