"""Hash-partitioned parallel execution of the quality-driven pipeline.

:class:`PartitionedPipeline` scales the single-operator
:class:`~repro.core.pipeline.QualityDrivenPipeline` out to N shards, each
a *complete* pipeline (its own K-slack buffers, Synchronizer, MSWJ and
adaptation loop), with a :class:`~repro.parallel.router.KeyRouter`
hash-routing every input tuple by the condition's equi-join key.  The
shards run behind one of two interchangeable executors
(:mod:`repro.parallel.executors`): in-process serial (deterministic; used
by the invariance tests) or per-shard worker processes with batched IPC.

Semantics
---------
* **Equi-partitionable conditions** (the router is :attr:`exact`): the
  shards partition the result space, so the union of shard outputs is
  exactly the single-pipeline result whenever disorder handling is
  lossless — in-order input, or a fixed K covering the maximum delay.
  Under *lossy* disorder handling each shard adapts K to its own
  substream, so recall can deviate from (and typically exceeds) the
  single pipeline's: a per-shard synchronizer forwards fewer stragglers.
* **Non-partitionable conditions** (theta/band-only predicates, star
  joins over distinct attributes, cross joins): every tuple is broadcast,
  each shard maintains the full join state, and only the designated shard
  0 emits — the result multiset is preserved, but there is no partition
  parallelism and per-shard disorder handling remains approximate in the
  lossy regime, so prefer ``num_shards=1`` for such conditions.
  Broadcast deliberately keeps every shard's state complete (each could
  be promoted to emitter), at the cost of the full join replicated per
  shard — merged metrics count each replica's work, e.g.
  ``tuples_processed`` is N× the input size.

Results arrive through :meth:`PartitionedPipeline.process` (whatever the
executor makes available immediately) and :meth:`PartitionedPipeline.flush`
(the rest, merged across shards in canonical ``(ts, result key)`` order);
metrics merge via :meth:`~repro.core.pipeline.PipelineMetrics.merge`.

Skew handling
-------------
Exact routing goes through a virtual-slot table
(:mod:`repro.parallel.router`), and ``rebalance=True`` arms a
:class:`~repro.parallel.rebalancer.Rebalancer` that repairs shard-load
skew at runtime by reassigning slots and migrating their window +
in-flight state between shards over a synchronous drain barrier
(:class:`~repro.core.blocks.StateBlock` messages under the process
executor).  Under lossless disorder handling the rebalanced run's
merged result sequence and summed join statistics are byte-identical to
static routing — rebalancing is purely a load-balance/performance knob.
"""

from __future__ import annotations

from operator import attrgetter
from typing import Callable, Dict, List, Optional, Sequence, Union

from ..core.pipeline import PipelineConfig, PipelineMetrics
from ..core.tuples import JoinResult, StreamTuple
from ..faults import FaultPlan
from ..join.store import StoreMetrics
from ..streams.source import Dataset
from .executors import (
    DEFAULT_BATCH_SIZE,
    MultiprocessingExecutor,
    SerialExecutor,
    ShardExecutor,
)
from .rebalancer import (
    DEFAULT_MIN_SAMPLE,
    DEFAULT_THRESHOLD,
    MigrationSpec,
    Rebalancer,
)
from .router import DEFAULT_SLOTS_PER_SHARD, KeyRouter
from .shard import (
    TRANSPORT_BLOCKS,
    TRANSPORT_SOCKET,
    Outputs,
    ShardFailure,
    ShardOutcome,
    empty_outputs,
    merge_outputs,
    transport_encodes_blocks,
)
from .shm import DEFAULT_RING_BYTES
from .supervision import (
    SupervisedExecutor,
    SupervisionConfig,
    partition_failover_state,
)

#: Routed tuples between rebalance checks (``rebalance_interval``
#: default).  Each check is one pass over the slot counters; an actual
#: migration costs a synchronous drain barrier, so the cadence leans
#: coarse.
DEFAULT_REBALANCE_INTERVAL = 4_096

#: An executor name or a factory ``(config, num_shards) -> ShardExecutor``.
ExecutorSpec = Union[str, Callable[[PipelineConfig, int], ShardExecutor]]


class PartitionedPipeline:
    """N hash-partitioned shards behind the single-pipeline interface.

    Parameters
    ----------
    config:
        The shared per-shard :class:`~repro.core.pipeline.PipelineConfig`
        (window sizes, condition, recall requirement, policy, ...).
    num_shards:
        Number of shard pipelines.
    executor:
        ``"serial"`` (default), ``"process"``, ``"supervised"`` (the
        process executor wrapped in heartbeat supervision and
        checkpoint/replay recovery —
        :class:`~repro.parallel.supervision.SupervisedExecutor`), or a
        factory callable ``(config, num_shards) -> ShardExecutor``.
    batch_size:
        Tuples buffered per shard before one IPC dispatch (``"process"``
        executor only).
    transport:
        Wire format of the ``"process"`` executor:
        :data:`~repro.parallel.shard.TRANSPORT_BLOCKS` (default —
        columnar :class:`~repro.core.blocks.TupleBlock` /
        :class:`~repro.core.blocks.ResultBlock` messages),
        :data:`~repro.parallel.shard.TRANSPORT_SHM` (the same block
        frames carried through a per-shard shared-memory ring, the
        pipe reduced to a doorbell), or
        :data:`~repro.parallel.shard.TRANSPORT_OBJECTS` (legacy
        per-object pickling).
    credit_window:
        Arm credit-based backpressure on the process executors: at most
        this many dispatched-but-unprocessed batches per shard; the
        parent stalls (never drops, never deadlocks) until the worker
        grants credit.  ``None`` (default) keeps the OS pipe / ring
        capacity as the only flow control.
    ring_bytes:
        Per-direction shared-memory ring capacity for
        ``transport="shm"`` (ignored otherwise).
    rebalance:
        Enable skew-aware slot rebalancing (default off).  Every
        ``rebalance_interval`` routed tuples a
        :class:`~repro.parallel.rebalancer.Rebalancer` inspects the
        router's per-slot load counters; when the max/mean shard-load
        imbalance exceeds ``rebalance_threshold`` it recomputes the
        slot→shard table (greedy LPT) and migrates the moved slots'
        window + in-flight state between shards through a synchronous
        drain barrier.  A pure performance knob: under lossless
        disorder handling the merged result sequence and summed join
        statistics are identical to static routing.  Requires an
        exactly partitionable condition (broadcast routing is rejected)
        and an executor implementing the migration protocol (both
        built-ins do).
    rebalance_interval:
        Routed tuples between rebalance checks.
    slots_per_shard:
        Virtual routing slots per shard (table size =
        ``slots_per_shard × num_shards``); migration granularity.
    rebalance_threshold:
        Max/mean shard-load ratio that triggers a plan.
    supervision:
        Heartbeat / checkpoint / respawn tuning for the
        ``"supervised"`` executor
        (:class:`~repro.parallel.supervision.SupervisionConfig`;
        defaults apply when ``None``).
    fault_plan:
        Deterministic fault-injection schedule
        (:class:`~repro.faults.FaultPlan`) armed inside the
        ``"supervised"`` executor's workers — testing/chaos only.
    nodes:
        ``transport="socket"`` only: the ``(host, port)`` addresses of
        the :class:`~repro.distributed.runtime.NodeServer` processes that
        host the shard workers.  Shards are dealt round-robin across the
        nodes; the ``"process"`` executor becomes a
        :class:`~repro.distributed.runtime.SocketExecutor` and
        ``"supervised"`` a
        :class:`~repro.distributed.runtime.SupervisedSocketExecutor`
        (same protocol, heartbeats and checkpoint/replay included, with
        respawns reconnecting — failing over to surviving nodes when a
        whole node is gone).
    """

    def __init__(
        self,
        config: PipelineConfig,
        num_shards: int,
        executor: ExecutorSpec = "serial",
        batch_size: int = DEFAULT_BATCH_SIZE,
        transport: str = TRANSPORT_BLOCKS,
        rebalance: bool = False,
        rebalance_interval: int = DEFAULT_REBALANCE_INTERVAL,
        slots_per_shard: int = DEFAULT_SLOTS_PER_SHARD,
        rebalance_threshold: float = DEFAULT_THRESHOLD,
        supervision: Optional[SupervisionConfig] = None,
        fault_plan: Optional[FaultPlan] = None,
        credit_window: Optional[int] = None,
        ring_bytes: int = DEFAULT_RING_BYTES,
        nodes: Optional[Sequence] = None,
    ) -> None:
        self.config = config
        self.num_shards = num_shards
        self.router = KeyRouter(
            config.condition,
            len(config.window_sizes_ms),
            num_shards,
            slots_per_shard=slots_per_shard,
        )
        # Rebalancing is validated before the executor exists: a rejected
        # configuration (broadcast condition, bad interval) must not leak
        # already-started worker processes.
        if rebalance_interval < 1:
            raise ValueError(
                f"rebalance_interval must be >= 1, got {rebalance_interval}"
            )
        if rebalance:
            # Raises for broadcast conditions: there is no partition key,
            # hence no slots to move (broadcast rejects rebalancing
            # instead of silently ignoring it).  The planner's minimum
            # sample never exceeds the check interval: counters decay at
            # every check, so a small interval with the default minimum
            # would silently never plan.
            self._rebalancer: Optional[Rebalancer] = Rebalancer(
                self.router,
                threshold=rebalance_threshold,
                min_sample=min(DEFAULT_MIN_SAMPLE, rebalance_interval),
            )
        else:
            self._rebalancer = None
        if transport == TRANSPORT_SOCKET:
            if executor not in ("process", "supervised"):
                raise ValueError(
                    "transport='socket' requires the 'process' or "
                    f"'supervised' executor, got {executor!r}"
                )
            if not nodes:
                raise ValueError(
                    "transport='socket' requires `nodes`: the (host, port) "
                    "addresses of the NodeServer processes hosting the shards"
                )
        elif nodes is not None:
            raise ValueError(
                "`nodes` is only meaningful with transport='socket'"
            )
        if executor == "serial":
            self.executor: ShardExecutor = SerialExecutor(config, num_shards)
        elif executor == "process":
            if transport == TRANSPORT_SOCKET:
                # Deferred import: the distributed runtime builds on the
                # parallel executors, so a module-level import here would
                # be circular.
                from ..distributed.runtime import SocketExecutor

                self.executor = SocketExecutor(
                    config,
                    num_shards,
                    nodes=nodes,
                    batch_size=batch_size,
                    credit_window=credit_window,
                )
            else:
                self.executor = MultiprocessingExecutor(
                    config,
                    num_shards,
                    batch_size=batch_size,
                    transport=transport,
                    credit_window=credit_window,
                    ring_bytes=ring_bytes,
                )
        elif executor == "supervised":
            if transport == TRANSPORT_SOCKET:
                from ..distributed.runtime import SupervisedSocketExecutor

                self.executor = SupervisedSocketExecutor(
                    config,
                    num_shards,
                    nodes=nodes,
                    batch_size=batch_size,
                    supervision=supervision,
                    fault_plan=fault_plan,
                    credit_window=credit_window,
                )
            else:
                self.executor = SupervisedExecutor(
                    config,
                    num_shards,
                    batch_size=batch_size,
                    transport=transport,
                    supervision=supervision,
                    fault_plan=fault_plan,
                    credit_window=credit_window,
                    ring_bytes=ring_bytes,
                )
        elif callable(executor):
            self.executor = executor(config, num_shards)
        else:
            raise ValueError(
                f"executor must be 'serial', 'process', 'supervised' or a "
                f"factory, got {executor!r}"
            )
        if self._rebalancer is not None and (
            type(self.executor).migrate is ShardExecutor.migrate
            or type(self.executor).adopt is ShardExecutor.adopt
        ):
            # Fail fast, like the broadcast check: without this, a custom
            # executor lacking the migration protocol would die with all
            # its processed state only when the first rebalance fires.
            name = type(self.executor).__name__
            self.executor.close()
            raise ValueError(
                f"rebalance=True requires an executor implementing the "
                f"state-migration protocol (migrate/adopt); {name} keeps "
                f"the non-migrating defaults"
            )
        # Broadcast replicates the full join on every shard; emitting from
        # shard 0 alone keeps the output multiset exact.
        self._emit_shards = (
            frozenset(range(num_shards)) if self.router.exact else frozenset((0,))
        )
        self._rebalance_interval = rebalance_interval
        self._routed_since_check = 0
        #: Rebalance plans applied (table rewrites with state migration).
        self.rebalances = 0
        #: Total slots whose shard changed across all rebalances.
        self.slots_moved = 0
        #: Elastic resizes applied (:meth:`grow` + :meth:`shrink` calls).
        self.resizes = 0
        #: Shards retired by :meth:`shrink` (their outcomes were captured
        #: at retirement; they own no slots and receive no traffic).
        self._retired_shards: set = set()
        #: Shards permanently failed over to survivors (supervised
        #: executor only: respawn-budget exhaustion demotes the shard and
        #: its slots migrate to the survivors).
        self.failovers = 0
        self._dead_shards: set = set()
        self._flushed = False
        self._outcomes: Optional[List[ShardOutcome]] = None

    # ------------------------------------------------------------------
    # properties
    # ------------------------------------------------------------------

    @property
    def exact_partitioning(self) -> bool:
        """True when the condition admits an exact equi partition key."""
        return self.router.exact

    @property
    def flushed(self) -> bool:
        return self._flushed

    @property
    def metrics(self) -> PipelineMetrics:
        """Merged metrics across shards.

        Live for the serial executor; for the process executor the shard
        metrics only travel back at :meth:`flush`, so this raises before
        then.
        """
        if self._outcomes is not None:
            return PipelineMetrics.merge([o.metrics for o in self._outcomes])
        if isinstance(self.executor, SerialExecutor):
            return PipelineMetrics.merge(
                [p.metrics for p in self.executor.pipelines]
            )
        raise RuntimeError(
            "shard metrics unavailable: under the process executor they "
            "only travel back on a successful flush()"
        )

    def join_statistics(self) -> Dict[str, int]:
        """Summed MSWJ counters across shards (see ``JoinStatistics``).

        Live for the serial executor; for the process executor available
        only after :meth:`flush` (counters ride back with the
        :class:`~repro.parallel.shard.ShardOutcome`).
        """
        if self._outcomes is not None:
            stats_dicts = [o.join_stats for o in self._outcomes]
        elif isinstance(self.executor, SerialExecutor):
            stats_dicts = [
                p.join.stats.as_dict() for p in self.executor.pipelines
            ]
        else:
            raise RuntimeError(
                "shard join statistics unavailable: under the process "
                "executor they only travel back on a successful flush()"
            )
        merged: Dict[str, int] = {}
        for stats in stats_dicts:
            for name, value in stats.items():
                merged[name] = merged.get(name, 0) + value
        return merged

    def store_metrics(self) -> List[List["StoreMetrics"]]:
        """Per-shard, per-stream window-store snapshots (serial executor only).

        A live view into each shard's :class:`~repro.join.store.WindowStore`
        state sizes — resident objects, hot-tier objects, encoded cold
        bytes, decode hits/misses.  Under the process executor the stores
        live in child processes; use the sampled peaks that ride back in
        :attr:`metrics` (``stream_resident_objects`` et al.) instead.
        """
        if isinstance(self.executor, SerialExecutor):
            return [p.store_metrics() for p in self.executor.pipelines]
        raise RuntimeError(
            "live store metrics unavailable: under the process executor "
            "use the sampled peaks in .metrics after flush()"
        )

    # ------------------------------------------------------------------
    # streaming interface (mirrors QualityDrivenPipeline)
    # ------------------------------------------------------------------

    def process(self, t: StreamTuple) -> Outputs:
        """Feed one raw tuple; return results made available right now."""
        if self._flushed:
            raise RuntimeError("pipeline already flushed; create a new instance")
        collect = self.config.collect_results
        outputs = empty_outputs(collect)
        for shard in self.router.route(t):
            try:
                produced = self.executor.submit(shard, t)
            except ShardFailure as failure:
                produced = self._fail_over(failure)
            if shard in self._emit_shards:
                outputs = merge_outputs(collect, outputs, produced)
        if self._rebalancer is not None:
            self._routed_since_check += 1
            if self._routed_since_check >= self._rebalance_interval:
                outputs = merge_outputs(collect, outputs, self._run_rebalance())
        return outputs

    def process_batch(self, batch: Sequence[StreamTuple]) -> Outputs:
        """Feed a burst of raw tuples; return results made available now.

        Routes the whole burst up front through the vectorized
        :meth:`~repro.parallel.router.KeyRouter.route_batch` single-pass
        partitioner, then dispatches **one** batch per shard per call
        (in shard order) instead of one envelope per tuple.  Each shard
        still sees its sub-stream in arrival order, so every shard's
        internal result sequence — and therefore the result multiset and
        the ts-ordered :meth:`flush` sequence — is identical to
        per-tuple feeding.  Only the interleaving of *immediately
        returned* results across shards differs: within one call they
        come back grouped by shard rather than by arrival (the serial
        executor returns them here; the process executor defers
        everything to :meth:`flush` regardless).
        """
        if self._flushed:
            raise RuntimeError("pipeline already flushed; create a new instance")
        collect = self.config.collect_results
        routed = self.router.route_batch(batch)
        if routed is None:
            # Broadcast: every shard consumes the same (read-only) burst;
            # no per-shard copies.
            per_shard: List[Sequence[StreamTuple]] = [batch] * self.num_shards
        else:
            per_shard = routed
        outputs = empty_outputs(collect)
        submit_batch = self.executor.submit_batch
        emit_shards = self._emit_shards
        for shard, shard_batch in enumerate(per_shard):
            if not shard_batch:
                continue
            try:
                produced = submit_batch(shard, shard_batch)
            except ShardFailure as failure:
                produced = self._fail_over(failure)
            if shard in emit_shards:
                outputs = merge_outputs(collect, outputs, produced)
        if self._rebalancer is not None:
            self._routed_since_check += len(batch)
            if self._routed_since_check >= self._rebalance_interval:
                outputs = merge_outputs(collect, outputs, self._run_rebalance())
        return outputs

    def _run_rebalance(self) -> Outputs:
        """One rebalance check, and — when a plan lands — its execution.

        The migration barrier is synchronous and strictly ordered: every
        source shard is drained and its moved-slot state extracted
        *before* any destination adopts, and the router's slot table only
        flips once all state has landed — so no tuple can race its own
        window state across the parent.  Results the barrier produces
        (source drains, destination adoptions under the serial executor)
        are returned like any :meth:`process` output.
        """
        self._routed_since_check = 0
        moves = self._rebalancer.plan()
        if not moves:
            return empty_outputs(self.config.collect_results)
        outputs = self._execute_migration(moves)
        self.rebalances += 1
        self.slots_moved += len(moves)
        return outputs

    def _execute_migration(self, moves: Dict[int, int]) -> Outputs:
        """Run the drain/handoff barrier for a slot-move plan.

        Shared by rebalancing and the elastic :meth:`grow` / :meth:`shrink`
        paths: group moves by current owner, drain + extract each source
        to the router's watermark beacon, adopt every state block at its
        destination, and only then flip the slot table.
        """
        collect = self.config.collect_results
        outputs = empty_outputs(collect)
        router = self.router
        by_source: Dict[int, Dict[int, int]] = {}
        for slot, dest in moves.items():
            by_source.setdefault(router.slot_table[slot], {})[slot] = dest
        states = []
        for source in sorted(by_source):
            spec = MigrationSpec(
                moves=by_source[source],
                attr_by_stream=router._attr_by_stream,
                num_slots=router.num_slots,
                beacon_ts=router.watermark_ts,
                drain_floor_ts=min(router.stream_progress_ts),
            )
            drained, source_states = self.executor.migrate(source, spec)
            outputs = merge_outputs(collect, outputs, drained)
            states.extend(source_states)
        for state in states:
            adopted = self.executor.adopt(state.dest, state)
            outputs = merge_outputs(collect, outputs, adopted)
        router.reassign(moves)
        return outputs

    # ------------------------------------------------------------------
    # elastic resize (node join / leave)
    # ------------------------------------------------------------------

    def grow(self, count: int = 1) -> Outputs:
        """Admit ``count`` new shards mid-stream (elastic node join).

        Lifecycle: the executor spawns the new workers first
        (:meth:`~repro.parallel.executors.ShardExecutor.add_shard`), the
        router computes a deterministic even-split move plan over its
        *fixed* slot space (:meth:`~repro.parallel.router.KeyRouter.grow`),
        and the ordinary drain/handoff barrier migrates the moved slots'
        state before the table flips — so under lossless disorder
        handling the merged output sequence and summed join statistics
        are byte-identical to having started with the larger pool.
        Requires exact routing (broadcast has no slots to hand over).
        Returns whatever results the barrier made available immediately.
        """
        if self._flushed:
            raise RuntimeError("pipeline already flushed; create a new instance")
        if not self.router.exact:
            raise ValueError(
                "elastic grow requires an exactly partitionable condition"
            )
        for _ in range(count):
            self.executor.add_shard()
        moves = self.router.grow(count)
        self.num_shards = self.router.num_shards
        self._emit_shards = frozenset(range(self.num_shards))
        outputs = self._execute_migration(moves)
        self.resizes += 1
        self.slots_moved += len(moves)
        return outputs

    def shrink(self, shard: int) -> Outputs:
        """Retire ``shard`` mid-stream (elastic node leave).

        Its slots are dealt round-robin to the surviving shards and
        their state handed over through the same drain/handoff barrier a
        rebalance uses; once the shard owns nothing it is flushed early
        and its outcome stashed for :meth:`flush`.  Shard ids are
        positional, so the pool keeps its indices — the retired shard
        simply never receives traffic again.
        """
        if self._flushed:
            raise RuntimeError("pipeline already flushed; create a new instance")
        if not self.router.exact:
            raise ValueError(
                "elastic shrink requires an exactly partitionable condition"
            )
        if shard in self._retired_shards or shard in self._dead_shards:
            raise ValueError(f"shard {shard} is already retired or dead")
        survivors = [
            s
            for s in range(self.num_shards)
            if s != shard
            and s not in self._retired_shards
            and s not in self._dead_shards
        ]
        if not survivors:
            raise ValueError("cannot retire the last live shard")
        owned = [
            slot
            for slot, owner in enumerate(self.router.slot_table)
            if owner == shard
        ]
        moves = {
            slot: survivors[i % len(survivors)] for i, slot in enumerate(owned)
        }
        outputs = self._execute_migration(moves) if moves else empty_outputs(
            self.config.collect_results
        )
        self.executor.retire_shard(shard)
        self._retired_shards.add(shard)
        self.resizes += 1
        self.slots_moved += len(moves)
        return outputs

    def _fail_over(self, failure: ShardFailure) -> Outputs:
        """Migrate a permanently dead shard's slots and state to survivors.

        Entered when the supervised executor exhausts a shard's respawn
        budget and hands back a :class:`~repro.parallel.shard.ShardFailure`
        carrying :class:`~repro.parallel.shard.FailoverState` — the dead
        shard's last-checkpoint window/pending state plus the replay-log
        batches accepted after it.  Degraded-mode recovery reuses the
        rebalance machinery: the dead shard's virtual slots are dealt
        round-robin to the surviving shards, its state is re-partitioned
        per destination (:func:`partition_failover_state` — the same
        slot/value classifiers as a live migration), adopted through the
        executor's migration protocol, and the replay-log batches are
        re-routed through the rewritten slot table.  Determinism carries
        over: adoption inserts by canonical timestamp order and the
        replayed sub-streams preserve arrival order, so the merged flush
        sequence and summed join statistics match an undisturbed run.

        Failures that carry no failover state (recovery disabled,
        non-recoverable pipeline errors), broadcast routing (every shard
        holds the full state — survivors cannot absorb an emitter), and
        runs without a survivor re-raise the failure unchanged.  After a
        failover the rebalancer is disarmed: its load counters and plan
        geometry assume all shards are live.
        """
        payload = failure.failover
        if payload is None or not self.router.exact or self.num_shards < 2:
            raise failure
        survivors = [
            s
            for s in range(self.num_shards)
            if s != failure.shard
            and s not in self._dead_shards
            and s not in self._retired_shards
        ]
        if not survivors:
            raise failure
        self._dead_shards.add(failure.shard)
        router = self.router
        moves: Dict[int, int] = {}
        owned = [
            slot
            for slot, shard in enumerate(router.slot_table)
            if shard == failure.shard
        ]
        for i, slot in enumerate(owned):
            moves[slot] = survivors[i % len(survivors)]
        collect = self.config.collect_results
        outputs = empty_outputs(collect)
        if moves:
            # Beacon/floor 0: checkpoint state was extracted without a
            # drain barrier, so adoption must not advance any monotone
            # clock either (same invariant as checkpoint extraction).
            spec = MigrationSpec(
                moves=moves,
                attr_by_stream=router._attr_by_stream,
                num_slots=router.num_slots,
                beacon_ts=0,
                drain_floor_ts=0,
            )
            encode = transport_encodes_blocks(
                getattr(self.executor, "transport", None)
            )
            states = partition_failover_state(
                payload.window, payload.pending, spec, encode=encode
            )
            for state in states:
                adopted = self.executor.adopt(state.dest, state)
                outputs = merge_outputs(collect, outputs, adopted)
            router.reassign(moves)
        self._rebalancer = None
        self.failovers += 1
        for batch in payload.replay:
            outputs = merge_outputs(collect, outputs, self._refeed(batch))
        return outputs

    def _refeed(self, batch: Sequence[StreamTuple]) -> Outputs:
        """Re-route one replay-log batch through the rewritten slot table.

        The batch preserves its original arrival order, and every tuple
        now lands on a survivor, so each destination sees a correctly
        ordered sub-stream.  A survivor failing *during* refeed is
        terminal (cascading failover is out of scope) and propagates.
        """
        collect = self.config.collect_results
        outputs = empty_outputs(collect)
        routed = self.router.route_batch(batch)
        if routed is None:  # pragma: no cover - broadcast re-raises earlier
            raise RuntimeError("failover refeed requires exact routing")
        for shard, shard_batch in enumerate(routed):
            if not shard_batch:
                continue
            produced = self.executor.submit_batch(shard, shard_batch)
            if shard in self._emit_shards:
                outputs = merge_outputs(collect, outputs, produced)
        return outputs

    def flush(self) -> Outputs:
        """Flush every shard; return remaining results merged in ts order.

        Timestamp ties break on the results' canonical component
        identity (:meth:`~repro.core.tuples.JoinResult.key`), not on
        shard order: which shard produced a result is a routing detail
        (and under rebalancing changes mid-run), so the merged sequence
        is identical for any shard count and any slot-table history.
        """
        collect = self.config.collect_results
        if self._flushed:
            return empty_outputs(collect)
        self._flushed = True
        self._outcomes = self.executor.finish()
        emitted = [
            outcome
            for outcome in self._outcomes
            if outcome.shard in self._emit_shards
        ]
        if collect:
            results: List[JoinResult] = []
            for outcome in emitted:
                results.extend(outcome.outputs)  # type: ignore[arg-type]
            # Components are stream-position-indexed and seq is unique
            # per stream, so the per-component seq tuple is the same
            # total order as the full JoinResult.key() identity — at a
            # fraction of the key-building cost on large result sets.
            seq_of = attrgetter("seq")
            results.sort(key=lambda r: (r.ts, *map(seq_of, r.components)))
            return results
        return sum(outcome.outputs for outcome in emitted)  # type: ignore[misc]

    def close(self) -> None:
        """Release shard resources without draining (abandoning the run).

        After ``close`` the pipeline behaves like a flushed one: further
        ``process`` raises, ``flush`` returns empty.  A pipeline that was
        already flushed closes cleanly (no-op for the serial executor).
        Also runs on context-manager exit, so the worker processes of the
        ``"process"`` executor cannot leak when the feed loop raises::

            with PartitionedPipeline(config, 8, executor="process") as p:
                for t in dataset.arrivals():
                    p.process(t)
                final = p.flush()
        """
        self._flushed = True
        self.executor.close()

    def __enter__(self) -> "PartitionedPipeline":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()


def run_partitioned(
    dataset: Dataset,
    config: PipelineConfig,
    num_shards: int,
    executor: ExecutorSpec = "serial",
    batch_size: int = DEFAULT_BATCH_SIZE,
    chunk_size: Optional[int] = None,
    transport: str = TRANSPORT_BLOCKS,
    rebalance: bool = False,
    rebalance_interval: int = DEFAULT_REBALANCE_INTERVAL,
    slots_per_shard: int = DEFAULT_SLOTS_PER_SHARD,
    rebalance_threshold: float = DEFAULT_THRESHOLD,
    supervision: Optional[SupervisionConfig] = None,
    fault_plan: Optional[FaultPlan] = None,
    credit_window: Optional[int] = None,
    ring_bytes: int = DEFAULT_RING_BYTES,
    pipelined: bool = False,
    max_pending_batches: Optional[int] = None,
    nodes: Optional[Sequence] = None,
) -> tuple:
    """Replay a finite dataset through a :class:`PartitionedPipeline`.

    Returns ``(outputs, metrics)`` where ``outputs`` accumulates every
    :meth:`~PartitionedPipeline.process` return plus the final
    :meth:`~PartitionedPipeline.flush` — the full result multiset under
    either executor.

    ``chunk_size=None`` drives the pipeline tuple-at-a-time
    (:meth:`~PartitionedPipeline.process`); a positive ``chunk_size``
    slices the arrival stream into bursts of that many tuples and drives
    the batched engine (:meth:`~PartitionedPipeline.process_batch`).
    ``transport`` picks the ``"process"`` executor's wire format and
    ``rebalance`` / ``rebalance_interval`` / ``slots_per_shard`` /
    ``rebalance_threshold`` enable and tune skew-aware slot rebalancing;
    ``supervision`` / ``fault_plan`` configure the ``"supervised"``
    executor's fault tolerance; ``credit_window`` / ``ring_bytes``
    tune backpressure and the shared-memory transport; ``nodes`` names
    the ``NodeServer`` addresses backing ``transport="socket"`` (see
    :class:`PartitionedPipeline` for all of them).

    ``pipelined=True`` feeds through a
    :class:`~repro.parallel.ingest.PipelinedIngest` feeder thread:
    routing, block encoding and shard dispatch run off the caller's
    thread behind a bounded queue (``max_pending_batches`` chunks deep),
    overlapping ingestion with shard compute.  The outputs and merged
    metrics are byte-identical to the synchronous drive — the feeder
    preserves submission order end to end.  Bursts are ``chunk_size``
    tuples (``batch_size`` when ``chunk_size`` is ``None``).
    """
    if chunk_size is not None and chunk_size < 1:
        raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
    with PartitionedPipeline(
        config,
        num_shards,
        executor=executor,
        batch_size=batch_size,
        transport=transport,
        rebalance=rebalance,
        rebalance_interval=rebalance_interval,
        slots_per_shard=slots_per_shard,
        rebalance_threshold=rebalance_threshold,
        supervision=supervision,
        fault_plan=fault_plan,
        credit_window=credit_window,
        ring_bytes=ring_bytes,
        nodes=nodes,
    ) as pipeline:
        collect = config.collect_results
        outputs = empty_outputs(collect)
        if pipelined:
            # Deferred import: ingest builds on PartitionedPipeline, so
            # a module-level import here would be circular.
            from .ingest import DEFAULT_MAX_PENDING, PipelinedIngest

            feed_chunk = chunk_size if chunk_size is not None else batch_size
            pending = (
                max_pending_batches
                if max_pending_batches is not None
                else DEFAULT_MAX_PENDING
            )
            with PipelinedIngest(
                pipeline, max_pending_batches=pending
            ) as feeder:
                chunk: List[StreamTuple] = []
                for t in dataset.arrivals():
                    chunk.append(t)
                    if len(chunk) >= feed_chunk:
                        feeder.submit(chunk)
                        chunk = []
                if chunk:
                    feeder.submit(chunk)
                outputs = feeder.flush()
            return outputs, pipeline.metrics
        if chunk_size is None:
            for t in dataset.arrivals():
                outputs = merge_outputs(collect, outputs, pipeline.process(t))
        else:
            chunk: List[StreamTuple] = []
            for t in dataset.arrivals():
                chunk.append(t)
                if len(chunk) >= chunk_size:
                    outputs = merge_outputs(
                        collect, outputs, pipeline.process_batch(chunk)
                    )
                    chunk = []
            if chunk:
                outputs = merge_outputs(
                    collect, outputs, pipeline.process_batch(chunk)
                )
        outputs = merge_outputs(collect, outputs, pipeline.flush())
        return outputs, pipeline.metrics
