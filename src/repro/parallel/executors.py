"""Shard executors: one submission interface, two execution strategies.

* :class:`SerialExecutor` — every shard pipeline lives in-process and is
  driven synchronously.  Deterministic and zero-overhead; the reference
  executor the invariance tests run against.
* :class:`MultiprocessingExecutor` — one worker process per shard with
  batched tuple transfer: the parent buffers up to ``batch_size`` tuples
  per shard before each pipe send, amortizing pickling and syscalls.
  Results and metrics ride back once per shard at :meth:`~ShardExecutor.finish`.

Both present the same lifecycle so
:class:`~repro.parallel.pipeline.PartitionedPipeline` treats them
uniformly: ``submit(shard, tuple)`` per routed tuple in arrival order,
then ``finish()`` exactly once.
"""

from __future__ import annotations

import multiprocessing
from abc import ABC, abstractmethod
from typing import List, Optional, Sequence

from ..core.pipeline import PipelineConfig, QualityDrivenPipeline
from ..core.tuples import StreamTuple
from .shard import (
    MSG_ABORT,
    MSG_BATCH,
    MSG_FLUSH,
    Outputs,
    ShardOutcome,
    empty_outputs,
    merge_outputs,
    shard_worker,
)

#: Tuples buffered per shard before one IPC dispatch.  Amortizes the
#: per-message pickling/pipe cost; raise it for throughput, lower it for
#: bounded parent-side buffering.
DEFAULT_BATCH_SIZE = 256


class ShardExecutor(ABC):
    """Owns N shard pipelines and feeds them routed tuples.

    ``submit`` returns whatever results the shard makes available
    *immediately*: the serial executor returns them per call, the
    multiprocessing executor returns an empty batch and delivers
    everything with the shard's :class:`~repro.parallel.shard.ShardOutcome`
    at :meth:`finish`.  Accumulating all ``submit`` returns plus the
    outcome outputs therefore yields the same multiset under either
    executor.
    """

    def __init__(self, config: PipelineConfig, num_shards: int) -> None:
        if num_shards < 1:
            raise ValueError(f"num_shards must be >= 1, got {num_shards}")
        self.config = config
        self.num_shards = num_shards

    @abstractmethod
    def submit(self, shard: int, t: StreamTuple) -> Outputs:
        """Feed one tuple to ``shard``; return results available now."""

    def submit_batch(self, shard: int, batch: Sequence[StreamTuple]) -> Outputs:
        """Feed a routed batch to ``shard``; return results available now.

        Equivalent to submitting each tuple in sequence; executors
        override this to amortize per-tuple dispatch (one in-process
        batched call, or one pipe send per accumulated IPC batch).
        """
        collect = self.config.collect_results
        outputs = empty_outputs(collect)
        for t in batch:
            outputs = merge_outputs(collect, outputs, self.submit(shard, t))
        return outputs

    @abstractmethod
    def finish(self) -> List[ShardOutcome]:
        """Flush every shard; return per-shard outcomes (call once)."""

    def close(self) -> None:
        """Release shard resources without collecting outcomes.

        For abandoning a run mid-stream (error paths, context-manager
        exit before flush).  Idempotent; a no-op after :meth:`finish`.
        """


class SerialExecutor(ShardExecutor):
    """All shards in-process, driven synchronously — deterministic."""

    def __init__(self, config: PipelineConfig, num_shards: int) -> None:
        super().__init__(config, num_shards)
        self.pipelines = [
            QualityDrivenPipeline(config) for _ in range(num_shards)
        ]

    def submit(self, shard: int, t: StreamTuple) -> Outputs:
        return self.pipelines[shard].process(t)

    def submit_batch(self, shard: int, batch: Sequence[StreamTuple]) -> Outputs:
        return self.pipelines[shard].process_batch(batch)

    def finish(self) -> List[ShardOutcome]:
        return [
            ShardOutcome(
                shard,
                pipeline.flush(),
                pipeline.metrics,
                pipeline.join.stats.as_dict(),
            )
            for shard, pipeline in enumerate(self.pipelines)
        ]


class MultiprocessingExecutor(ShardExecutor):
    """One worker process per shard, batched tuple transfer over pipes.

    Prefers the ``fork`` start method so non-picklable join conditions
    (theta lambdas) reach the children by inheritance; under ``spawn``
    the :class:`~repro.core.pipeline.PipelineConfig` must pickle.  Worker
    failures surface as :class:`RuntimeError` from :meth:`finish`.
    """

    def __init__(
        self,
        config: PipelineConfig,
        num_shards: int,
        batch_size: int = DEFAULT_BATCH_SIZE,
        start_method: Optional[str] = None,
    ) -> None:
        super().__init__(config, num_shards)
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        self.batch_size = batch_size
        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else methods[0]
        context = multiprocessing.get_context(start_method)
        self._batches: List[List[StreamTuple]] = [[] for _ in range(num_shards)]
        self._connections = []
        self._processes = []
        self._finished = False
        for shard in range(num_shards):
            parent_conn, child_conn = context.Pipe(duplex=True)
            process = context.Process(
                target=shard_worker,
                args=(child_conn, shard, config),
                daemon=True,
            )
            process.start()
            child_conn.close()
            self._connections.append(parent_conn)
            self._processes.append(process)

    def submit(self, shard: int, t: StreamTuple) -> Outputs:
        if self._finished:
            raise RuntimeError("executor already finished")
        batch = self._batches[shard]
        batch.append(t)
        if len(batch) >= self.batch_size:
            self._send(shard, (MSG_BATCH, batch))
            self._batches[shard] = []
        return empty_outputs(self.config.collect_results)

    def submit_batch(self, shard: int, batch: Sequence[StreamTuple]) -> Outputs:
        """Queue a whole routed batch with one extend per call.

        The pending buffer is drained in ``batch_size`` slices — the same
        pipe-message cadence and parent-side buffering bound as per-tuple
        submission, reached without the per-tuple method dispatch.
        """
        if self._finished:
            raise RuntimeError("executor already finished")
        pending = self._batches[shard]
        pending.extend(batch)
        if len(pending) >= self.batch_size:
            size = self.batch_size
            start = 0
            while len(pending) - start >= size:
                self._send(shard, (MSG_BATCH, pending[start : start + size]))
                start += size
            self._batches[shard] = pending[start:]
        return empty_outputs(self.config.collect_results)

    def _send(self, shard: int, message) -> None:
        # A worker that died (e.g. its pipeline raised) closes its end of
        # the pipe; swallow the broken-pipe here so its error report —
        # already buffered in the pipe — surfaces at finish().
        try:
            self._connections[shard].send(message)
        except OSError:
            pass

    def finish(self) -> List[ShardOutcome]:
        if self._finished:
            raise RuntimeError("executor already finished")
        self._finished = True
        outcomes: List[ShardOutcome] = []
        try:
            for shard in range(self.num_shards):
                if self._batches[shard]:
                    self._send(shard, (MSG_BATCH, self._batches[shard]))
                    self._batches[shard] = []
                self._send(shard, (MSG_FLUSH, None))
            for shard, conn in enumerate(self._connections):
                try:
                    tag, payload = conn.recv()
                except EOFError:
                    raise RuntimeError(
                        f"shard {shard} worker died without reporting"
                    ) from None
                if tag != "ok":
                    raise RuntimeError(f"shard {shard} worker failed: {payload}")
                outcomes.append(payload)
        finally:
            for conn in self._connections:
                conn.close()
            for process in self._processes:
                process.join(timeout=30)
                if process.is_alive():  # pragma: no cover - defensive
                    process.terminate()
                    process.join(timeout=5)
        return outcomes

    def close(self) -> None:
        """Terminate workers without collecting outcomes (abandoned run).

        Without this, a pipeline dropped before ``flush()`` would leave
        every worker blocked in ``recv`` (plus its pipe fds) until the
        host process exits — daemon workers bound the damage at exit, but
        long-lived hosts need the explicit release.
        """
        already_finished = self._finished
        self._finished = True
        if not already_finished:
            for shard in range(self.num_shards):
                self._send(shard, (MSG_ABORT, None))
        for conn in self._connections:
            try:
                conn.close()
            except OSError:  # pragma: no cover - already closed
                pass
        if already_finished:
            return  # finish() already joined the workers
        for process in self._processes:
            process.join(timeout=5)
            if process.is_alive():  # pragma: no cover - defensive
                process.terminate()
                process.join(timeout=5)
