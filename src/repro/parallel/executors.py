"""Shard executors: one submission interface, two execution strategies.

* :class:`SerialExecutor` — every shard pipeline lives in-process and is
  driven synchronously.  Deterministic and zero-overhead; the reference
  executor the invariance tests run against.
* :class:`MultiprocessingExecutor` — one worker process per shard with
  batched tuple transfer: the parent buffers up to ``batch_size`` tuples
  per shard before each pipe send, amortizing pickling and syscalls.
  The wire format is selectable (``transport``): columnar
  :class:`~repro.core.blocks.TupleBlock` messages (the default — one
  small flat object per message, schema negotiated once per shard and
  attribute set) or legacy per-object pickling (the benchmark baseline).
  Results and metrics ride back once per shard at
  :meth:`~ShardExecutor.finish` — as a
  :class:`~repro.core.blocks.ResultBlock` under block transport.

Both present the same lifecycle so
:class:`~repro.parallel.pipeline.PartitionedPipeline` treats them
uniformly: ``submit(shard, tuple)`` / ``submit_batch(shard, batch)`` per
routed tuple or burst in arrival order, optional ``migrate``/``adopt``
barrier pairs when the rebalancer moves slot state between shards, then
``finish()`` exactly once.

Window-store selection (:attr:`~repro.core.pipeline.PipelineConfig.store`)
rides inside the config both executors construct shard pipelines from —
a :class:`~repro.join.store.StoreSpec` is plain picklable data, so the
same spec reaches fork/spawn workers and in-process shards alike, and the
per-store state-size peaks each shard samples come back merged through
:meth:`~repro.core.pipeline.PipelineMetrics.merge` like every other
metric.  The migration barrier is store-agnostic too: tiered shards hand
cold segments over as already-encoded blocks inside the same
:class:`~repro.core.blocks.StateBlock` envelope.
"""

from __future__ import annotations

import multiprocessing
import pickle
from abc import ABC, abstractmethod
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.blocks import PICKLE_PROTOCOL, BlockDecoder, BlockEncoder, StateBlock
from ..core.pipeline import PipelineConfig, QualityDrivenPipeline
from ..core.tuples import StreamTuple
from .rebalancer import MigrationSpec
from .shard import (
    MSG_ABORT,
    MSG_BATCH,
    MSG_CREDIT,
    MSG_FLUSH,
    MSG_MIGRATE_IN,
    MSG_MIGRATE_OUT,
    MSG_RING,
    MSG_RING_REPLY,
    TRANSPORT_BLOCKS,
    TRANSPORT_SHM,
    TRANSPORTS,
    Outputs,
    RingDescriptors,
    ShardFailure,
    ShardOutcome,
    adopt_shard_state,
    empty_outputs,
    extract_shard_state,
    merge_outputs,
    shard_worker,
    transport_encodes_blocks,
)
from .shm import DEFAULT_RING_BYTES, RingAborted, RingError, ShmRing

#: Tuples buffered per shard before one IPC dispatch.  Amortizes the
#: per-message pickling/pipe cost; raise it for throughput, lower it for
#: bounded parent-side buffering.
DEFAULT_BATCH_SIZE = 256

#: Parent-side poll interval while awaiting a worker reply.  Small
#: enough that death detection feels immediate; large enough that an
#: awaited multi-second drain doesn't spin.
POLL_INTERVAL_S = 0.05


class ShardExecutor(ABC):
    """Owns N shard pipelines and feeds them routed tuples.

    ``submit`` returns whatever results the shard makes available
    *immediately*: the serial executor returns them per call, the
    multiprocessing executor returns an empty batch and delivers
    everything with the shard's :class:`~repro.parallel.shard.ShardOutcome`
    at :meth:`finish`.  Accumulating all ``submit`` returns plus the
    outcome outputs therefore yields the same multiset under either
    executor.
    """

    def __init__(self, config: PipelineConfig, num_shards: int) -> None:
        if num_shards < 1:
            raise ValueError(f"num_shards must be >= 1, got {num_shards}")
        self.config = config
        self.num_shards = num_shards
        #: Tuples submitted per shard — the executor-side load counters
        #: (the router keeps the slot-grained ones the rebalancer plans
        #: from; these are the coarse cross-check and broadcast-mode
        #: fallback, where no routing counters exist).
        self.submitted: List[int] = [0] * num_shards
        #: Shards retired mid-stream by :meth:`retire_shard`, mapped to
        #: the outcome captured at retirement.  ``finish`` folds these
        #: back in at their shard index; no message ever targets a
        #: retired shard again (the router stopped pointing slots at it
        #: before retirement).
        self._retired: Dict[int, ShardOutcome] = {}

    def add_shard(self) -> int:
        """Grow the shard pool by one mid-stream; return the new shard id.

        Elastic-resize hook: executors that support node join extend
        their per-shard bookkeeping and start a fresh worker.  The new
        shard owns no slots until the caller migrates state to it and
        repoints the router — adding a worker is pure lifecycle until
        then.
        """
        raise RuntimeError(
            f"{type(self).__name__} does not support elastic resize"
        )

    def retire_shard(self, shard: int) -> None:
        """Flush ``shard`` early and drop it from the pool (node leave).

        The caller must have migrated every slot the shard owned to
        survivors first; retirement then flushes the (state-empty)
        pipeline, stashes its outcome for :meth:`finish`, and releases
        the worker.
        """
        raise RuntimeError(
            f"{type(self).__name__} does not support elastic resize"
        )

    @abstractmethod
    def submit(self, shard: int, t: StreamTuple) -> Outputs:
        """Feed one tuple to ``shard``; return results available now."""

    def submit_batch(self, shard: int, batch: Sequence[StreamTuple]) -> Outputs:
        """Feed a routed batch to ``shard``; return results available now.

        Equivalent to submitting each tuple in sequence; executors
        override this to amortize per-tuple dispatch (one in-process
        batched call, or one pipe send per accumulated IPC batch).
        """
        collect = self.config.collect_results
        outputs = empty_outputs(collect)
        for t in batch:
            outputs = merge_outputs(collect, outputs, self.submit(shard, t))
        return outputs

    def migrate(
        self, shard: int, spec: MigrationSpec
    ) -> Tuple[Outputs, List[StateBlock]]:
        """Source leg of the rebalancing barrier: drain ``shard`` to the
        spec's beacon and carve out the moved slots' state.

        Returns ``(outputs, states)`` — results the barrier drain makes
        available immediately (empty under the process executor, which
        defers all results to :meth:`finish`) and one
        :class:`~repro.core.blocks.StateBlock` per destination shard.
        Executors that do not implement the drain/handoff protocol keep
        this default, which refuses rebalancing.
        """
        raise RuntimeError(
            f"{type(self).__name__} does not support state migration"
        )

    def adopt(self, shard: int, state: StateBlock) -> Outputs:
        """Destination leg of the barrier: absorb migrated state into
        ``shard``; returns immediately-available results (serial only).
        """
        raise RuntimeError(
            f"{type(self).__name__} does not support state migration"
        )

    @abstractmethod
    def finish(self) -> List[ShardOutcome]:
        """Flush every shard; return per-shard outcomes (call once)."""

    def close(self) -> None:
        """Release shard resources without collecting outcomes.

        For abandoning a run mid-stream (error paths, context-manager
        exit before flush).  Idempotent; a no-op after :meth:`finish`.
        """


class SerialExecutor(ShardExecutor):
    """All shards in-process, driven synchronously — deterministic."""

    def __init__(self, config: PipelineConfig, num_shards: int) -> None:
        super().__init__(config, num_shards)
        self.pipelines = [
            QualityDrivenPipeline(config) for _ in range(num_shards)
        ]

    def submit(self, shard: int, t: StreamTuple) -> Outputs:
        self.submitted[shard] += 1
        return self.pipelines[shard].process(t)

    def submit_batch(self, shard: int, batch: Sequence[StreamTuple]) -> Outputs:
        self.submitted[shard] += len(batch)
        return self.pipelines[shard].process_batch(batch)

    def migrate(
        self, shard: int, spec: MigrationSpec
    ) -> Tuple[Outputs, List[StateBlock]]:
        """In-process barrier: drain + extract synchronously, unencoded."""
        return extract_shard_state(
            self.pipelines[shard], shard, spec, encode=False
        )

    def adopt(self, shard: int, state: StateBlock) -> Outputs:
        return adopt_shard_state(self.pipelines[shard], state, decode=False)

    def add_shard(self) -> int:
        shard = self.num_shards
        self.num_shards += 1
        self.submitted.append(0)
        self.pipelines.append(QualityDrivenPipeline(self.config))
        return shard

    def retire_shard(self, shard: int) -> None:
        if shard in self._retired:
            raise RuntimeError(f"shard {shard} already retired")
        pipeline = self.pipelines[shard]
        self._retired[shard] = ShardOutcome(
            shard,
            pipeline.flush(),
            pipeline.metrics,
            pipeline.join.stats.as_dict(),
        )

    def finish(self) -> List[ShardOutcome]:
        return [
            self._retired[shard]
            if shard in self._retired
            else ShardOutcome(
                shard,
                pipeline.flush(),
                pipeline.metrics,
                pipeline.join.stats.as_dict(),
            )
            for shard, pipeline in enumerate(self.pipelines)
        ]


class MultiprocessingExecutor(ShardExecutor):
    """One worker process per shard, batched tuple transfer over pipes.

    ``transport`` selects the wire format: :data:`TRANSPORT_BLOCKS`
    (default) encodes each outgoing batch as one columnar
    :class:`~repro.core.blocks.TupleBlock` through a per-shard
    schema-negotiating :class:`~repro.core.blocks.BlockEncoder`, and the
    worker ships collected results back as one
    :class:`~repro.core.blocks.ResultBlock`; :data:`TRANSPORT_OBJECTS`
    pickles the tuple objects themselves (the pre-columnar path, kept as
    the benchmark baseline).  Either way messages leave through
    ``send_bytes`` with pickle protocol ``5`` — serialization happens
    exactly once, in :meth:`_send`.

    Prefers the ``fork`` start method so non-picklable join conditions
    (theta lambdas) reach the children by inheritance; under ``spawn``
    the :class:`~repro.core.pipeline.PipelineConfig` must pickle.  Worker
    failures surface as a typed
    :class:`~repro.parallel.shard.ShardFailure` (a ``RuntimeError``
    subclass) carrying the shard id: a broken pipe raises from
    :meth:`_send` at the next dispatch, and the reply paths poll with
    ``Process.exitcode`` checks instead of blocking in ``recv()``, so a
    crashed worker can never deadlock the parent.
    """

    def __init__(
        self,
        config: PipelineConfig,
        num_shards: int,
        batch_size: int = DEFAULT_BATCH_SIZE,
        start_method: Optional[str] = None,
        transport: str = TRANSPORT_BLOCKS,
        credit_window: Optional[int] = None,
        ring_bytes: int = DEFAULT_RING_BYTES,
    ) -> None:
        super().__init__(config, num_shards)
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        if transport not in TRANSPORTS:
            raise ValueError(
                f"transport must be one of {TRANSPORTS}, got {transport!r}"
            )
        if credit_window is not None and credit_window < 1:
            raise ValueError(
                f"credit_window must be >= 1, got {credit_window}"
            )
        self.batch_size = batch_size
        self.transport = transport
        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else methods[0]
        # Retained for worker (re)spawns: the supervised subclass starts
        # replacement workers long after construction.
        self._context = multiprocessing.get_context(start_method)
        self._batches: List[List[StreamTuple]] = [[] for _ in range(num_shards)]
        self._encoders: Optional[List[BlockEncoder]] = (
            [BlockEncoder() for _ in range(num_shards)]
            if transport_encodes_blocks(transport)
            else None
        )
        #: Credit-based backpressure: with a window of W, at most W
        #: dispatched-but-unconfirmed batches may be in flight per shard
        #: (the worker confirms each processed batch with MSG_CREDIT).
        #: ``None`` disables both the stall and the worker-side grants —
        #: the synchronous driver's behavior, where pipe buffering is
        #: the only in-flight bound.
        self._credit_window = credit_window
        self._dispatched: List[int] = [0] * num_shards
        self._credited: List[int] = [0] * num_shards
        self._ring_bytes = ring_bytes
        # Per-shard shared-memory ring pairs (shm transport only):
        # parent→worker data ring and worker→parent reply ring.  Created
        # fresh per worker incarnation in _spawn_worker; unlinked on
        # every unwind path (_release_rings).
        self._rings: List[Optional[ShmRing]] = []
        self._reply_rings: List[Optional[ShmRing]] = []
        self._connections = []
        self._processes = []
        self._finished = False
        # Worker startup can fail mid-loop (fd exhaustion, fork limits);
        # without the unwind the already-started workers would sit in
        # recv() forever holding their pipe fds.  close() handles the
        # partially-built executor: lists are appended as resources are
        # created, so whatever exists is released.
        try:
            for shard in range(num_shards):
                self._spawn_worker(shard)
        except BaseException:
            self.close()
            raise

    def _fault_plan_for(self, shard: int):
        """Fault plan handed to ``shard``'s next incarnation (subclass
        hook — the base executor injects nothing)."""
        return None

    def _ring_descriptors(self, shard: int) -> Optional[RingDescriptors]:
        """The shard's ring pair as picklable worker args, or ``None``."""
        if not self._rings or self._rings[shard] is None:
            return None
        ring, reply = self._rings[shard], self._reply_rings[shard]
        assert ring is not None and reply is not None
        return (ring.descriptor, reply.descriptor)

    def _worker_args(self, shard: int) -> tuple:
        """``shard_worker`` args after the connection (subclass hook)."""
        return (
            shard,
            self.config,
            self.transport,
            self._fault_plan_for(shard),
            self._ring_descriptors(shard),
            self._credit_window is not None,
        )

    def _spawn_worker(self, shard: int) -> None:
        """Start ``shard``'s worker on a fresh pipe.

        Appends on first spawn; replaces in place when the supervised
        subclass respawns a worker (whose caller has already retired the
        previous incarnation's process and connection).  A fresh pipe —
        and, under the shm transport, a fresh ring pair — per
        incarnation means no stale message or frame from a dead epoch
        can ever be read back, and keeps each incarnation's ring
        sequence numbers starting from 1 (mirroring the supervisor's
        per-epoch seq accounting).
        """
        if self.transport == TRANSPORT_SHM:
            while len(self._rings) <= shard:
                self._rings.append(None)
                self._reply_rings.append(None)
            for stale in (self._rings[shard], self._reply_rings[shard]):
                if stale is not None:  # retired incarnation's segments
                    stale.close()
                    stale.unlink()
            self._rings[shard] = ShmRing.create(self._ring_bytes)
            self._reply_rings[shard] = ShmRing.create(self._ring_bytes)
        self._dispatched[shard] = 0
        self._credited[shard] = 0
        parent_conn, child_conn = self._context.Pipe(duplex=True)
        if self._encoders is not None:
            # The worker's decoder starts empty, so the connection's
            # schema negotiation must restart from scratch too.
            self._encoders[shard] = BlockEncoder()
        if shard < len(self._connections):
            self._connections[shard] = parent_conn
        else:
            self._connections.append(parent_conn)
        try:
            process = self._context.Process(
                target=shard_worker,
                args=(child_conn,) + self._worker_args(shard),
                daemon=True,
            )
            process.start()
        finally:
            child_conn.close()
        if shard < len(self._processes):
            self._processes[shard] = process
        else:
            self._processes.append(process)

    def submit(self, shard: int, t: StreamTuple) -> Outputs:
        if self._finished:
            raise RuntimeError("executor already finished")
        self.submitted[shard] += 1
        batch = self._batches[shard]
        batch.append(t)
        if len(batch) >= self.batch_size:
            self._dispatch(shard, batch, 0, len(batch))
            batch.clear()
        return empty_outputs(self.config.collect_results)

    def submit_batch(self, shard: int, batch: Sequence[StreamTuple]) -> Outputs:
        """Queue a whole routed batch with one extend per call.

        The pending buffer drains in ``batch_size`` index windows — the
        same pipe-message cadence and parent-side buffering bound as
        per-tuple submission — and the leftover head is removed in place
        (``del pending[:start]``), so a large routed batch costs one
        ``extend`` plus one compaction instead of repeated backlog
        slices.  Under block transport each window is encoded straight
        from the buffer (no intermediate sub-lists at all).
        """
        if self._finished:
            raise RuntimeError("executor already finished")
        self.submitted[shard] += len(batch)
        pending = self._batches[shard]
        pending.extend(batch)
        size = self.batch_size
        if len(pending) >= size:
            start = 0
            total = len(pending)
            while total - start >= size:
                self._dispatch(shard, pending, start, start + size)
                start += size
            del pending[:start]
        return empty_outputs(self.config.collect_results)

    def _dispatch(
        self, shard: int, pending: Sequence[StreamTuple], start: int, stop: int
    ) -> None:
        """Send ``pending[start:stop]`` as one MSG_BATCH message."""
        if self._credit_window is not None:
            self._await_credit(shard)
        if self._encoders is not None:
            payload = self._encoders[shard].encode(pending, start, stop)
        elif start == 0 and stop == len(pending):
            # Serialization happens synchronously in _send_message, so
            # the live buffer can be passed (and cleared by the caller)
            # directly.
            payload = pending
        else:
            payload = pending[start:stop]
        self._send_message(shard, (MSG_BATCH, payload))
        self._dispatched[shard] += 1

    def _flush_pending(self, shard: int) -> None:
        """Ship whatever sits in ``shard``'s parent-side batch buffer.

        The rebalancing barrier calls this before a migration message so
        the worker has consumed every tuple routed to it first — pipe
        ordering then guarantees the barrier lands at a consistent
        point in the shard's input sequence.
        """
        pending = self._batches[shard]
        if pending:
            self._dispatch(shard, pending, 0, len(pending))
            self._batches[shard] = []

    def migrate(
        self, shard: int, spec: MigrationSpec
    ) -> Tuple[Outputs, List[StateBlock]]:
        """Synchronous barrier leg: request extraction, block on reply.

        Blocking on the worker's ``("state", ...)`` reply is what makes
        the whole rebalance a barrier — no new tuple is routed anywhere
        until the source has drained and handed its state over.  Drain
        results stay in the worker's accumulator (returned at
        :meth:`finish`), so the outputs half of the return is empty.
        """
        if self._finished:
            raise RuntimeError("executor already finished")
        self._flush_pending(shard)
        self._send(shard, (MSG_MIGRATE_OUT, spec))
        tag, payload = self._await_reply(shard)
        if tag != "state":
            raise ShardFailure(
                shard, f"state migration failed: {payload}", recoverable=False
            )
        return empty_outputs(self.config.collect_results), payload

    def adopt(self, shard: int, state: StateBlock) -> Outputs:
        """Forward migrated state; the worker absorbs it in pipe order."""
        if self._finished:
            raise RuntimeError("executor already finished")
        self._flush_pending(shard)
        # Migrated state can be arbitrarily large — ride the ring when
        # one is armed, like any bulky message.
        self._send_message(shard, (MSG_MIGRATE_IN, state))
        return empty_outputs(self.config.collect_results)

    def add_shard(self) -> int:
        """Elastic grow: extend the per-shard bookkeeping, spawn a worker.

        The new shard starts with an empty pipeline and owns no routing
        slots; the pipeline layer migrates state to it and repoints the
        router afterwards, so grow-then-migrate is byte-identical to
        having started with the larger pool.
        """
        if self._finished:
            raise RuntimeError("executor already finished")
        shard = self.num_shards
        self.num_shards += 1
        self.submitted.append(0)
        self._batches.append([])
        self._dispatched.append(0)
        self._credited.append(0)
        if self._encoders is not None:
            self._encoders.append(BlockEncoder())
        self._spawn_worker(shard)
        return shard

    def retire_shard(self, shard: int) -> None:
        """Elastic shrink: flush the (already slot-less) shard and stash
        its outcome for :meth:`finish`; release its worker and rings."""
        if self._finished:
            raise RuntimeError("executor already finished")
        if shard in self._retired:
            raise RuntimeError(f"shard {shard} already retired")
        self._flush_pending(shard)
        self._send(shard, (MSG_FLUSH, None))
        tag, payload = self._await_reply(shard)
        if tag != "ok":
            raise ShardFailure(shard, str(payload), recoverable=False)
        if self._encoders is not None and self.config.collect_results:
            payload.outputs = BlockDecoder().decode_results(payload.outputs)
        self._retired[shard] = payload
        self._connections[shard].close()
        process = self._processes[shard]
        process.join(timeout=30)
        if process.is_alive():  # pragma: no cover - defensive
            process.terminate()
            process.join(timeout=5)
        if self._rings and self._rings[shard] is not None:
            reply_ring = self._reply_rings[shard]
            for ring in (self._rings[shard], reply_ring):
                if ring is not None:
                    ring.close()
                    ring.unlink()
            self._rings[shard] = None
            self._reply_rings[shard] = None

    def _send(self, shard: int, message) -> None:
        # Serialize exactly once (protocol 5) and ship raw bytes.  A
        # broken pipe means the worker is gone: surface it as a typed
        # failure right here — preferring the worker's own buffered
        # ("error", ...) report when one exists — instead of letting a
        # later blocking recv() deadlock on a reply that can never come.
        try:
            self._connections[shard].send_bytes(
                pickle.dumps(message, protocol=PICKLE_PROTOCOL)
            )
        except OSError as exc:
            raise self._dead_worker(shard, str(exc)) from exc

    def _send_message(self, shard: int, message) -> None:
        """Ship one bulky parent → worker message by the armed transport.

        Under the shm transport the pickled message is written once into
        the shard's inbound ring and only a ``(MSG_RING, seq)`` doorbell
        crosses the pipe; frames the ring can never hold fall back to
        the pipe whole.  Other transports go straight through
        :meth:`_send`.  The doorbell travels the same pipe as every
        other message, so FIFO ordering — and with it the supervised
        epoch/seq accounting — is untouched by which carrier the bytes
        took.
        """
        ring = self._rings[shard] if self._rings else None
        if ring is None:
            self._send(shard, message)
            return
        frame = pickle.dumps(message, protocol=PICKLE_PROTOCOL)
        if not ring.fits(len(frame)):
            try:
                self._connections[shard].send_bytes(frame)
            except OSError as exc:
                raise self._dead_worker(shard, str(exc)) from exc
            return
        process = self._processes[shard] if shard < len(self._processes) else None

        def worker_dead() -> bool:
            return process is not None and process.exitcode is not None

        try:
            seq = ring.write_frame(frame, should_abort=worker_dead)
        except RingAborted as exc:
            raise self._dead_worker(shard, str(exc)) from exc
        self._send(shard, (MSG_RING, seq))

    def _absorb_credit(self, shard: int, tag, payload) -> bool:
        """Fold one ``(MSG_CREDIT, n)`` grant into the shard's counter."""
        if tag != MSG_CREDIT:
            return False
        if payload > self._credited[shard]:
            self._credited[shard] = payload
        return True

    def _await_credit(self, shard: int) -> None:
        """Stall until the shard's in-flight batch count drops below the
        credit window.

        This is the backpressure point of the pipelined feeder: a slow
        worker simply stops granting, and dispatch to that shard blocks
        here — bounded memory, no deadlock (a *dead* worker surfaces as
        a typed failure through the same checks ``_await_reply`` uses;
        a merely stalled one is legal slowness, so there is no timeout).
        """
        window = self._credit_window
        assert window is not None
        conn = self._connections[shard]
        process = self._processes[shard] if shard < len(self._processes) else None
        while self._dispatched[shard] - self._credited[shard] >= window:
            try:
                ready = conn.poll(POLL_INTERVAL_S)
            except OSError as exc:
                exitcode = None if process is None else process.exitcode
                raise ShardFailure(
                    shard,
                    f"worker pipe broken (exit code {exitcode}): {exc}",
                ) from None
            if ready:
                try:
                    tag, payload = conn.recv()
                except (EOFError, OSError):
                    raise ShardFailure(
                        shard,
                        "worker died holding "
                        f"{self._dispatched[shard] - self._credited[shard]} "
                        "uncredited batches",
                    ) from None
                if tag == "error":
                    raise ShardFailure(shard, str(payload), recoverable=False)
                if not self._absorb_credit(shard, tag, payload):
                    raise ShardFailure(
                        shard,
                        f"unexpected {tag!r} message while awaiting credit",
                    )
                continue
            if process is not None and process.exitcode is not None:
                try:
                    buffered = conn.poll(0)
                except OSError:
                    buffered = False
                if not buffered:
                    raise ShardFailure(
                        shard,
                        f"worker exited with code {process.exitcode} "
                        "before granting credit",
                    )

    def _read_ring_reply(self, shard: int, seq: int):
        """Resolve a ``(MSG_RING_REPLY, seq)`` doorbell into the framed
        reply from the shard's outbound ring."""
        ring = self._reply_rings[shard]
        assert ring is not None
        try:
            # The worker writes the frame before ringing the doorbell,
            # so the read never truly waits; the timeout is a torn-state
            # backstop, not a liveness mechanism.
            frame = ring.read_frame(seq, timeout_s=60.0)
        except RingError as exc:
            raise ShardFailure(shard, f"reply ring failed: {exc}") from exc
        return pickle.loads(frame)

    def _dead_worker(self, shard: int, cause: str) -> ShardFailure:
        """Build the typed failure for a pipe that broke under a send.

        A worker whose pipeline raised reports ``("error", text)`` and
        exits, closing its pipe end; the *next* send then breaks.  Drain
        whatever the dead worker left buffered so that report — the real
        diagnosis — wins over the generic broken-pipe symptom.
        """
        conn = self._connections[shard]
        try:
            while conn.poll(0):
                tag, payload = conn.recv()
                if tag == "error":
                    return ShardFailure(shard, str(payload), recoverable=False)
        except (EOFError, OSError):
            pass
        # During constructor unwind the connection may exist without its
        # process (spawn failed between the two appends).
        exitcode = (
            self._processes[shard].exitcode
            if shard < len(self._processes)
            else None
        )
        return ShardFailure(
            shard, f"worker pipe closed (exit code {exitcode}): {cause}"
        )

    def _await_reply(self, shard: int, timeout: Optional[float] = None):
        """Receive one worker reply with death (and hang) detection.

        Polls instead of blocking in ``recv()``: a dead worker surfaces
        as a typed :class:`ShardFailure` via pipe EOF or its exitcode,
        and — when ``timeout`` is given — a worker that is alive but
        unresponsive surfaces as a failure too, instead of deadlocking
        the parent forever.  A reply already buffered by a worker that
        exited afterwards is still delivered (writes complete before
        exit, so observing a non-``None`` exitcode means everything the
        worker ever sent is pollable).
        """
        conn = self._connections[shard]
        process = self._processes[shard]
        waited = 0.0
        while True:
            try:
                ready = conn.poll(POLL_INTERVAL_S)
            except OSError as exc:
                # A SIGKILLed peer resets the pipe: poll() itself raises.
                raise ShardFailure(
                    shard,
                    f"worker pipe broken (exit code {process.exitcode}): "
                    f"{exc}",
                ) from None
            if ready:
                try:
                    tag, payload = conn.recv()
                except (EOFError, OSError):
                    raise ShardFailure(
                        shard,
                        "worker died without reporting "
                        f"(exit code {process.exitcode})",
                    ) from None
                if self._absorb_credit(shard, tag, payload):
                    continue  # late grant interleaved with the reply
                if tag == MSG_RING_REPLY:
                    return self._read_ring_reply(shard, payload)
                return tag, payload
            if process.exitcode is not None:
                try:
                    buffered = conn.poll(0)
                except OSError:
                    buffered = False
                if not buffered:
                    raise ShardFailure(
                        shard,
                        f"worker exited with code {process.exitcode} "
                        "before replying",
                    )
            waited += POLL_INTERVAL_S
            if timeout is not None and waited >= timeout:
                raise ShardFailure(
                    shard,
                    f"no reply within {timeout:.1f}s "
                    "(worker alive but unresponsive)",
                )

    def _release_rings(self) -> None:
        """Close and unlink every owned ring segment.  Idempotent; part
        of every unwind path (finish, close, constructor failure) so no
        ``/dev/shm`` segment outlives the executor."""
        for ring in self._rings + self._reply_rings:
            if ring is not None:
                ring.close()
                ring.unlink()
        self._rings = []
        self._reply_rings = []

    def finish(self) -> List[ShardOutcome]:
        if self._finished:
            raise RuntimeError("executor already finished")
        self._finished = True
        decode_results = (
            self._encoders is not None and self.config.collect_results
        )
        outcomes: List[ShardOutcome] = []
        try:
            for shard in range(self.num_shards):
                if shard in self._retired:
                    continue
                if self._batches[shard]:
                    pending = self._batches[shard]
                    self._dispatch(shard, pending, 0, len(pending))
                    self._batches[shard] = []
                self._send(shard, (MSG_FLUSH, None))
            for shard in range(self.num_shards):
                if shard in self._retired:
                    # Flushed (and decoded) at retirement; fold the
                    # stashed outcome in at its shard index.
                    outcomes.append(self._retired[shard])
                    continue
                tag, payload = self._await_reply(shard)
                if tag != "ok":
                    raise ShardFailure(
                        shard, str(payload), recoverable=False
                    )
                if decode_results:
                    # Each worker encoded with its own fresh encoder, so
                    # each outcome block carries its schema inline; a
                    # fresh decoder per outcome keeps the pairing exact.
                    payload.outputs = BlockDecoder().decode_results(
                        payload.outputs
                    )
                outcomes.append(payload)
        finally:
            for conn in self._connections:
                conn.close()
            for process in self._processes:
                process.join(timeout=30)
                if process.is_alive():  # pragma: no cover - defensive
                    process.terminate()
                    process.join(timeout=5)
            self._release_rings()
        return outcomes

    def close(self) -> None:
        """Terminate workers without collecting outcomes (abandoned run).

        Without this, a pipeline dropped before ``flush()`` would leave
        every worker blocked in ``recv`` (plus its pipe fds) until the
        host process exits — daemon workers bound the damage at exit, but
        long-lived hosts need the explicit release.  Also the unwind path
        for a constructor that failed mid-startup, where connections may
        outnumber started processes.

        Per-shard aborts are best-effort: an abort bound for a worker
        that already died raises the typed dead-worker failure, and
        propagating it here would skip aborting/joining every *later*
        worker — exactly the leak this method exists to prevent — so
        send failures are swallowed and the join sweep always runs.
        """
        already_finished = self._finished
        self._finished = True
        if not already_finished:
            for shard in range(len(self._connections)):
                if shard in self._retired:
                    continue  # worker already flushed and joined
                try:
                    self._send(shard, (MSG_ABORT, None))
                except ShardFailure:
                    continue
        for conn in self._connections:
            try:
                conn.close()
            except OSError:  # pragma: no cover - already closed
                pass
        if already_finished:
            self._release_rings()  # no-op after finish, real after close
            return  # finish() already joined the workers
        for process in self._processes:
            process.join(timeout=5)
            if process.is_alive():  # pragma: no cover - defensive
                process.terminate()
                process.join(timeout=5)
        self._release_rings()
