"""Supervised shard execution: heartbeats, checkpoint/replay recovery.

:class:`SupervisedExecutor` wraps the multiprocessing executor's worker
protocol in a supervision loop so a crashed, killed, or hung worker is
an *event*, not the end of the run:

* **Liveness** — every dispatch path runs through the polling
  ``_await_reply`` (pipe EOF + ``Process.exitcode`` + timeout) and a
  configurable heartbeat cadence sends ``MSG_PING`` probes whose
  ``MSG_PONG`` echo, by pipe ordering, acknowledges every batch
  dispatched before it.  Crashes and hangs surface as a typed
  :class:`~repro.parallel.shard.ShardFailure` within the heartbeat
  timeout instead of deadlocking a blocking ``recv()``.

* **Checkpoint/replay recovery** — every ``checkpoint_interval``
  dispatched batches the parent requests a ``MSG_CHECKPOINT``: the
  worker snapshots its full state through the migration extraction path
  (tier-aware, observationally a no-op — see
  :func:`~repro.parallel.shard.checkpoint_shard_state`) into a
  CRC-checked :class:`~repro.core.blocks.CheckpointFrame`, and ships
  the *delta* of results since the previous checkpoint plus cumulative
  stats/metrics snapshots.  The parent keeps, per shard: the last
  *accepted* checkpoint, a bounded replay log of everything dispatched
  after it (tuple batches and adopted state blocks, keyed by ``seq``),
  and the admitted output deltas.  On failure: kill the incarnation,
  back off exponentially, respawn on a **fresh pipe** under a new
  ``epoch``, restore the checkpoint via ``MSG_MIGRATE_IN``, replay the
  log in ``seq`` order, and confirm with a ping.  Each result reaches
  the parent exactly once — either inside an admitted checkpoint delta
  or inside the final outcome of the incarnation that survives — so a
  recovered run's output sequence *and* ``JoinStatistics`` are
  byte-identical to an undisturbed run's.

* **Epoch/seq dedup** — a checkpoint record is admitted only if its
  ``(epoch, seq)`` matches the request and its frame passes CRC.  A
  rejected record (stale epoch, corrupt frame) is treated as never
  having existed — including its output delta, which the replay of the
  covered batches regenerates under the next epoch — and immediately
  triggers recovery from the previous good checkpoint.

* **Graceful degradation** — when a shard exhausts its respawn budget,
  its :class:`~repro.parallel.shard.FailoverState` (checkpoint state in
  adoptable form + replay batches) travels up inside the terminal
  ``ShardFailure``; the partitioned pipeline repartitions it across the
  surviving shards through the ordinary migration machinery.

Design invariants worth knowing when editing:

* The replay log is **bounded** by the checkpoint cadence: admitting a
  checkpoint at ``seq`` trims every entry ``<= seq`` (the frame covers
  batches ``1..seq`` by pipe ordering).
* ``migrate``/``adopt`` barrier legs force a checkpoint right after
  they complete, so recovery never has to re-run a half-done barrier
  from the log: a crash *during* a migrate leg recovers to the
  pre-migrate state and re-extracts (deterministic — identical state
  blocks); a crash after the forced checkpoint needs no barrier replay
  at all.
* Raw tuple batches (not encoded blocks) go into the log: a respawned
  worker negotiates schemas from scratch, so replay re-encodes with the
  incarnation's fresh encoder.
* Worker ``("error", ...)`` replies are *non-recoverable*: the shard
  pipeline raised deterministically, and replaying the same input would
  raise the same way.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from ..core.blocks import (
    BlockDecoder,
    CheckpointFrame,
    CheckpointIntegrityError,
    ColdSegment,
    StateBlock,
    WindowPayload,
    WindowStateItem,
    decode_state,
    encode_state,
    segment_column,
    thaw_segment,
    verify_checkpoint,
    unframe_checkpoint,
)
from ..core.pipeline import (
    Outputs,
    PipelineConfig,
    PipelineMetrics,
    empty_outputs,
    merge_outputs,
)
from ..core.tuples import StreamTuple
from ..faults import FaultPlan
from .executors import DEFAULT_BATCH_SIZE, MultiprocessingExecutor
from .shm import DEFAULT_RING_BYTES
from .rebalancer import MigrationSpec
from .shard import (
    MSG_BATCH,
    MSG_CHECKPOINT,
    MSG_FLUSH,
    MSG_MIGRATE_IN,
    MSG_MIGRATE_OUT,
    MSG_PING,
    MSG_PONG,
    CheckpointRequest,
    FailoverState,
    ShardFailure,
    ShardOutcome,
    TRANSPORT_BLOCKS,
    slot_classifier,
    value_classifier,
)

#: Replay-log entry kinds (the payload is a raw tuple list or a
#: StateBlock respectively).
KIND_BATCH = "batch-entry"
KIND_ADOPT = "adopt-entry"


@dataclass(frozen=True)
class SupervisionConfig:
    """Supervision/recovery knobs of :class:`SupervisedExecutor`.

    Intervals are counted in *dispatched batches per shard* — the unit
    the replay log is keyed in — not wall time: a stalled input stream
    should not burn heartbeats or churn checkpoints.
    """

    #: Dispatched batches between ``MSG_PING`` liveness probes
    #: (0 disables pings; checkpoints still act as liveness probes).
    heartbeat_interval: int = 16
    #: Seconds a worker gets to answer a synchronous request (ping,
    #: checkpoint, migrate) before it is declared hung.
    heartbeat_timeout_s: float = 10.0
    #: Dispatched batches between checkpoints (0 disables checkpointing;
    #: recovery then degrades to full-input replay being impossible —
    #: failures become terminal unless the failure precedes any batch).
    checkpoint_interval: int = 64
    #: Respawn budget per shard across the whole run.
    max_respawns: int = 3
    #: Base of the exponential backoff between respawns (doubles per
    #: consecutive respawn of the same shard).
    backoff_base_s: float = 0.05
    #: Master switch: ``False`` turns every failure terminal — the mode
    #: that proves a crash surfaces as a typed error within the
    #: heartbeat timeout instead of a deadlock.
    recover: bool = True
    #: Attach a :class:`~repro.parallel.shard.FailoverState` to the
    #: terminal failure of a budget-exhausted shard so the pipeline can
    #: fail its slots over to survivors instead of aborting.
    failover: bool = True

    def __post_init__(self) -> None:
        if self.heartbeat_interval < 0:
            raise ValueError("heartbeat_interval must be >= 0")
        if self.checkpoint_interval < 0:
            raise ValueError("checkpoint_interval must be >= 0")
        if self.heartbeat_timeout_s <= 0:
            raise ValueError("heartbeat_timeout_s must be > 0")
        if self.max_respawns < 0:
            raise ValueError("max_respawns must be >= 0")


@dataclass
class _Checkpoint:
    """Parent-side record of a shard's last *accepted* checkpoint."""

    epoch: int
    seq: int
    frame: CheckpointFrame
    #: Absolute join stats as of this checkpoint (incarnation base +
    #: the record's cumulative snapshot).
    stats: Dict[str, int]
    #: Absolute metrics as of this checkpoint, same accounting.
    metrics: PipelineMetrics


def _add_stats(base: Dict[str, int], delta: Dict[str, int]) -> Dict[str, int]:
    total = dict(base)
    for key, value in delta.items():
        total[key] = total.get(key, 0) + value
    return total


def partition_failover_state(
    window: Sequence[WindowStateItem],
    pending: Sequence[StreamTuple],
    spec: MigrationSpec,
    encode: bool,
) -> List[StateBlock]:
    """Split a dead shard's recovered state into per-survivor blocks.

    The same classification the migration barrier uses
    (:func:`~repro.parallel.shard.slot_classifier` /
    :func:`~repro.parallel.shard.value_classifier`), applied parent-side
    to checkpoint state instead of worker-side to live state.  Cold
    segments whose partition-attribute column classifies uniformly move
    still-frozen; mixed segments are thawed and classified per tuple.
    The spec's moves cover every slot the dead shard owned, so every
    item classifies to some survivor; anything that doesn't (a tuple
    whose key hashed outside the moved slots would indicate router
    drift) is routed to the first destination rather than dropped.
    """
    classify = slot_classifier(spec)
    classify_value = value_classifier(spec)
    destinations = sorted(set(spec.moves.values()))
    fallback = destinations[0]
    per_dest_window: Dict[int, List[WindowStateItem]] = {}
    per_dest_pending: Dict[int, List[StreamTuple]] = {}
    for item in window:
        if isinstance(item, ColdSegment):
            attr = spec.attr_by_stream[item.stream()]
            groups = set()
            if attr is not None:
                for value in segment_column(item, attr):
                    groups.add(classify_value(value))
            if len(groups) == 1:
                only = next(iter(groups))
                dest = fallback if only is None else only
                per_dest_window.setdefault(dest, []).append(item)
            else:
                for t in thaw_segment(item):
                    dest = classify(t)
                    per_dest_window.setdefault(
                        fallback if dest is None else dest, []
                    ).append(t)
        else:
            dest = classify(item)
            per_dest_window.setdefault(
                fallback if dest is None else dest, []
            ).append(item)
    for t in pending:
        dest = classify(t)
        per_dest_pending.setdefault(
            fallback if dest is None else dest, []
        ).append(t)
    slots_by_dest: Dict[int, List[int]] = {}
    for slot, dest in sorted(spec.moves.items()):
        slots_by_dest.setdefault(dest, []).append(slot)
    states: List[StateBlock] = []
    for dest in destinations:
        window_leg: WindowPayload = []
        window_leg.extend(per_dest_window.get(dest, []))
        pending_leg = per_dest_pending.get(dest, [])
        slots = tuple(slots_by_dest.get(dest, []))
        if encode:
            states.append(encode_state(-1, dest, slots, window_leg, pending_leg))
        else:
            states.append(
                StateBlock(-1, dest, slots, list(window_leg), pending_leg)
            )
    return states


class SupervisedExecutor(MultiprocessingExecutor):
    """Multiprocessing executor with supervision + checkpoint recovery.

    See the module docstring for the protocol.  Observability counters
    (``respawns``, ``checkpoints_taken``, ``checkpoints_rejected``,
    ``replayed_batches``, ``failed_over``) are plain attributes the soak
    harness and the benchmarks read after the run.
    """

    def __init__(
        self,
        config: PipelineConfig,
        num_shards: int,
        batch_size: int = DEFAULT_BATCH_SIZE,
        start_method: Optional[str] = None,
        transport: str = TRANSPORT_BLOCKS,
        supervision: Optional[SupervisionConfig] = None,
        fault_plan: Optional[FaultPlan] = None,
        credit_window: Optional[int] = None,
        ring_bytes: int = DEFAULT_RING_BYTES,
    ) -> None:
        self.supervision = supervision if supervision is not None else SupervisionConfig()
        self._fault_plan = fault_plan
        # Per-shard supervision state — initialized before super() so
        # the base constructor's _spawn_worker calls (which consult
        # _worker_args and _epoch) see it.
        self._epoch: List[int] = [0] * num_shards
        self._seq: List[int] = [0] * num_shards
        self._since_ping: List[int] = [0] * num_shards
        self._since_ckpt: List[int] = [0] * num_shards
        self._respawns: List[int] = [0] * num_shards
        self._replay: List[List[Tuple[int, str, Any]]] = [
            [] for _ in range(num_shards)
        ]
        self._checkpoints: List[Optional[_Checkpoint]] = [None] * num_shards
        #: Output deltas admitted from checkpoints, per shard (decoded).
        self._deltas: List[Outputs] = [
            empty_outputs(config.collect_results) for _ in range(num_shards)
        ]
        #: Stats/metrics of the *current incarnation's* spawn point —
        #: worker counters restart at zero after a respawn, so absolute
        #: accounting is base + the incarnation's cumulative snapshot.
        self._stats_base: List[Dict[str, int]] = [{} for _ in range(num_shards)]
        self._metrics_base: List[Optional[PipelineMetrics]] = [None] * num_shards
        #: Stats/metrics synthesized for budget-exhausted shards.
        self._dead_records: List[Optional[_Checkpoint]] = [None] * num_shards
        self.respawns = 0
        self.checkpoints_taken = 0
        self.checkpoints_rejected = 0
        self.replayed_batches = 0
        self.failed_over: Set[int] = set()
        super().__init__(
            config,
            num_shards,
            batch_size=batch_size,
            start_method=start_method,
            transport=transport,
            credit_window=credit_window,
            ring_bytes=ring_bytes,
        )

    # ------------------------------------------------------------------
    # worker lifecycle
    # ------------------------------------------------------------------

    def add_shard(self) -> int:
        """Elastic grow under supervision: extend the per-shard
        supervision state first so the spawned worker's ``_worker_args``
        (which consults ``_epoch``) sees it."""
        self._epoch.append(0)
        self._seq.append(0)
        self._since_ping.append(0)
        self._since_ckpt.append(0)
        self._respawns.append(0)
        self._replay.append([])
        self._checkpoints.append(None)
        self._deltas.append(empty_outputs(self.config.collect_results))
        self._stats_base.append({})
        self._metrics_base.append(None)
        self._dead_records.append(None)
        return super().add_shard()

    def retire_shard(self, shard: int) -> None:
        """Voluntary shrink is unsupported under supervision (stitching a
        mid-run retirement into the delta/replay accounting is not
        implemented); involuntary departure is what failover handles."""
        raise RuntimeError(
            "supervised executors do not support retire_shard; "
            "use failover for involuntary node departure"
        )

    def _fault_plan_for(self, shard: int):
        plan = self._fault_plan
        if plan is not None and self._epoch[shard] > 0:
            # One-shot faults already fired in a previous incarnation;
            # re-arming them would make recovery impossible by design.
            plan = plan.respawn_plan(shard)
        return plan

    def _send_batch(self, shard: int, window: Sequence[StreamTuple]) -> None:
        """Encode + ship one logged batch window.

        Every supervised batch send — live dispatch, replay during
        restore, the final pending flush — funnels through here: waits
        for credit when a window is armed, encodes with the *current
        incarnation's* encoder (a respawned worker negotiates schemas
        from scratch), and rides the shm ring when one is armed.
        """
        if self._credit_window is not None:
            self._await_credit(shard)
        if self._encoders is not None:
            payload = self._encoders[shard].encode(window)
        else:
            payload = list(window)
        self._send_message(shard, (MSG_BATCH, payload))
        self._dispatched[shard] += 1

    def _terminate_worker(self, shard: int) -> None:
        """Retire an incarnation: close its pipe, make sure it is dead."""
        try:
            self._connections[shard].close()
        except OSError:  # pragma: no cover - already closed
            pass
        process = self._processes[shard]
        if process.is_alive():
            process.terminate()
            process.join(timeout=2)
            if process.is_alive():  # pragma: no cover - defensive
                process.kill()
                process.join(timeout=2)

    def _recover(self, shard: int, failure: ShardFailure) -> None:
        """Respawn → restore → replay, or escalate to a terminal failure.

        Loops because the restore/replay itself can fail (a persistent
        fault, a second crash): each attempt burns one unit of the
        shard's respawn budget; exhausting the budget raises the
        terminal failure, carrying :class:`FailoverState` when failover
        is enabled and a recovery point exists.
        """
        sup = self.supervision
        while True:
            if not failure.recoverable or not sup.recover:
                self._terminate_worker(shard)
                raise failure
            if self._respawns[shard] >= sup.max_respawns:
                self._terminate_worker(shard)
                raise self._exhausted(shard, failure)
            self._respawns[shard] += 1
            self.respawns += 1
            self._terminate_worker(shard)
            time.sleep(sup.backoff_base_s * (2 ** (self._respawns[shard] - 1)))
            self._epoch[shard] += 1
            self._since_ping[shard] = 0
            self._since_ckpt[shard] = 0
            self._spawn_worker(shard)
            try:
                self._restore(shard)
                return
            except ShardFailure as exc:
                failure = exc

    def _restore(self, shard: int) -> None:
        """Bring a fresh incarnation up to date: checkpoint + replay log.

        The incarnation's stats/metrics bases move to the checkpoint's
        absolute values (its counters restart at zero); replayed batches
        are re-encoded by the fresh per-connection encoder; a final ping
        confirms the worker consumed everything — without it a restore
        that crashed mid-replay would be discovered only at the next
        dispatch, attributing the failure to the wrong batch.
        """
        ckpt = self._checkpoints[shard]
        if ckpt is not None:
            state = unframe_checkpoint(ckpt.frame)
            self._send_message(shard, (MSG_MIGRATE_IN, state))
            self._stats_base[shard] = dict(ckpt.stats)
            self._metrics_base[shard] = ckpt.metrics
        else:
            self._stats_base[shard] = {}
            self._metrics_base[shard] = None
        for seq, kind, payload in self._replay[shard]:
            if kind == KIND_BATCH:
                self._send_batch(shard, payload)
                self.replayed_batches += 1
            else:
                self._send_message(shard, (MSG_MIGRATE_IN, payload))
        self._confirm(shard)

    def _confirm(self, shard: int) -> None:
        """Ping exchange proving the worker consumed the restore stream."""
        nonce = ("restore", self._epoch[shard], self._seq[shard])
        self._send(shard, (MSG_PING, nonce))
        tag, payload = self._await_reply(
            shard, self.supervision.heartbeat_timeout_s
        )
        if tag == "error":
            raise ShardFailure(shard, str(payload), recoverable=False)
        if tag != MSG_PONG or payload != nonce:
            raise ShardFailure(
                shard,
                f"bad restore acknowledgement: ({tag!r}, {payload!r})",
                recoverable=False,
            )

    def _exhausted(self, shard: int, failure: ShardFailure) -> ShardFailure:
        """Terminal failure of a budget-spent shard (+ failover payload)."""
        self.failed_over.add(shard)
        ckpt = self._checkpoints[shard]
        self._dead_records[shard] = ckpt
        payload: Optional[FailoverState] = None
        if self.supervision.failover:
            window: List[WindowStateItem] = []
            pending: List[StreamTuple] = []
            replay: List[List[StreamTuple]] = []
            if ckpt is not None:
                state = unframe_checkpoint(ckpt.frame)
                if self._encoders is not None:
                    window_items, pending_items = decode_state(state)
                else:
                    window_items = list(state.window)
                    pending_items = list(state.pending)
                window.extend(window_items)
                pending.extend(pending_items)
            for seq, kind, entry in self._replay[shard]:
                if kind == KIND_BATCH:
                    replay.append(list(entry))
                else:
                    # Adopted state that never made it into a checkpoint
                    # folds into the window/pending legs (it is already
                    # in adoptable form once decoded).
                    if self._encoders is not None:
                        w, p = decode_state(entry)
                    else:
                        w, p = list(entry.window), list(entry.pending)
                    window.extend(w)
                    pending.extend(p)
            # Tuples buffered parent-side but never dispatched belong to
            # the replay stream too.
            if self._batches[shard]:
                replay.append(list(self._batches[shard]))
                self._batches[shard] = []
            payload = FailoverState(window=window, pending=pending, replay=replay)
        return ShardFailure(
            shard,
            f"respawn budget exhausted after "
            f"{self._respawns[shard]} respawns: {failure.reason}",
            recoverable=False,
            failover=payload,
        )

    # ------------------------------------------------------------------
    # dispatch paths (all logged + supervised)
    # ------------------------------------------------------------------

    def submit(self, shard: int, t: StreamTuple) -> Outputs:
        if self._finished:
            raise RuntimeError("executor already finished")
        self._assert_live(shard)
        self.submitted[shard] += 1
        pending = self._batches[shard]
        pending.append(t)
        if len(pending) >= self.batch_size:
            self._batches[shard] = []
            self._dispatch_window(shard, pending)
        return empty_outputs(self.config.collect_results)

    def submit_batch(self, shard: int, batch: Sequence[StreamTuple]) -> Outputs:
        if self._finished:
            raise RuntimeError("executor already finished")
        self._assert_live(shard)
        self.submitted[shard] += len(batch)
        pending = self._batches[shard]
        pending.extend(batch)
        size = self.batch_size
        # Unlike the base executor's in-place windowing, each window is
        # carved out *before* dispatch: if dispatch escalates to a
        # terminal failure, the window lives in the replay log and the
        # buffer holds only never-dispatched tuples — no double count in
        # the failover stream.
        while len(pending) >= size:
            window = pending[:size]
            del pending[:size]
            self._dispatch_window(shard, window)
        return empty_outputs(self.config.collect_results)

    def _flush_pending(self, shard: int) -> None:
        pending = self._batches[shard]
        if pending:
            self._batches[shard] = []
            self._dispatch_window(shard, pending)

    def _assert_live(self, shard: int) -> None:
        if shard in self.failed_over:
            raise ShardFailure(
                shard,
                "shard already failed over; the router should no longer "
                "route to it",
                recoverable=False,
            )

    def _dispatch_window(self, shard: int, window: List[StreamTuple]) -> None:
        """Log + send one batch window, then run the supervision cadence.

        The log entry is appended *before* the send so no dispatched
        batch can ever be absent from the replay stream, whatever point
        the send or the cadence fails at.
        """
        self._seq[shard] += 1
        self._replay[shard].append((self._seq[shard], KIND_BATCH, window))
        try:
            self._send_batch(shard, window)
            self._cadence(shard)
        except ShardFailure as failure:
            self._recover(shard, failure)

    def _cadence(self, shard: int) -> None:
        """Checkpoint/ping bookkeeping after one dispatched batch."""
        sup = self.supervision
        self._since_ckpt[shard] += 1
        self._since_ping[shard] += 1
        if sup.checkpoint_interval and self._since_ckpt[shard] >= sup.checkpoint_interval:
            self._checkpoint(shard)
        elif sup.heartbeat_interval and self._since_ping[shard] >= sup.heartbeat_interval:
            self._ping(shard)

    def _ping(self, shard: int) -> None:
        """Liveness probe: ``MSG_PING`` must echo within the timeout."""
        self._since_ping[shard] = 0
        nonce = (self._epoch[shard], self._seq[shard])
        self._send(shard, (MSG_PING, nonce))
        tag, payload = self._await_reply(
            shard, self.supervision.heartbeat_timeout_s
        )
        if tag == "error":
            raise ShardFailure(shard, str(payload), recoverable=False)
        if tag != MSG_PONG or payload != nonce:
            raise ShardFailure(
                shard, f"bad heartbeat reply: ({tag!r}, {payload!r})"
            )

    def _checkpoint(self, shard: int) -> None:
        """Synchronous checkpoint barrier; admits or rejects the record.

        Also doubles as a liveness probe (it awaits a reply under the
        heartbeat timeout), so the cadence resets both counters.
        """
        self._since_ckpt[shard] = 0
        self._since_ping[shard] = 0
        epoch = self._epoch[shard]
        seq = self._seq[shard]
        self._send(shard, (MSG_CHECKPOINT, CheckpointRequest(epoch, seq)))
        tag, record = self._await_reply(
            shard, self.supervision.heartbeat_timeout_s
        )
        if tag == "error":
            raise ShardFailure(shard, str(record), recoverable=False)
        if tag != MSG_CHECKPOINT:
            raise ShardFailure(
                shard, f"bad checkpoint reply tag {tag!r}"
            )
        if record.epoch != epoch or record.seq != seq:
            # Epoch/seq dedup: a record from a stale incarnation (or a
            # desynced worker) is never admitted.
            raise ShardFailure(
                shard,
                f"stale checkpoint record (epoch {record.epoch}, seq "
                f"{record.seq}; expected epoch {epoch}, seq {seq})",
            )
        try:
            verify_checkpoint(record.frame)
        except CheckpointIntegrityError as exc:
            # Reject the WHOLE record — the output delta inside it as
            # well (the worker already reset its accumulator, so that
            # delta exists nowhere else; the replay of batches <= seq
            # under the next epoch regenerates it exactly).
            self.checkpoints_rejected += 1
            raise ShardFailure(shard, str(exc)) from exc
        delta = record.outputs
        collect = self.config.collect_results
        if self._encoders is not None and collect:
            delta = BlockDecoder().decode_results(delta)
        self._deltas[shard] = merge_outputs(collect, self._deltas[shard], delta)
        stats = _add_stats(self._stats_base[shard], record.join_stats)
        base_metrics = self._metrics_base[shard]
        metrics = (
            record.metrics
            if base_metrics is None
            else PipelineMetrics.merge([base_metrics, record.metrics])
        )
        self._checkpoints[shard] = _Checkpoint(epoch, seq, record.frame, stats, metrics)
        self._replay[shard] = [e for e in self._replay[shard] if e[0] > seq]
        self.checkpoints_taken += 1

    # ------------------------------------------------------------------
    # barrier legs
    # ------------------------------------------------------------------

    def migrate(self, shard, spec):
        """Supervised source leg of the rebalancing barrier.

        On failure mid-barrier the recovery restores the *pre-migrate*
        state (the forced post-migrate checkpoint has not been admitted
        yet) and the whole leg retries: re-extraction is deterministic,
        so the retried reply carries identical state blocks and the
        earlier, lost extraction is simply discarded.  After a
        successful reply the source is force-checkpointed so the replay
        log can never straddle the barrier.
        """
        if self._finished:
            raise RuntimeError("executor already finished")
        self._assert_live(shard)
        while True:
            try:
                self._flush_pending(shard)
                self._send(shard, (MSG_MIGRATE_OUT, spec))
                tag, payload = self._await_reply(
                    shard, self.supervision.heartbeat_timeout_s
                )
                if tag == "error":
                    raise ShardFailure(shard, str(payload), recoverable=False)
                if tag != "state":
                    raise ShardFailure(
                        shard,
                        f"state migration failed: {payload}",
                        recoverable=False,
                    )
                self._checkpoint(shard)
                return empty_outputs(self.config.collect_results), payload
            except ShardFailure as failure:
                self._recover(shard, failure)

    def adopt(self, shard, state):
        """Supervised destination leg: logged, sent, force-checkpointed.

        The adopt goes into the replay log first — if the forced
        checkpoint after it fails, recovery replays the adoption along
        with any logged batches, in original ``seq`` order.
        """
        if self._finished:
            raise RuntimeError("executor already finished")
        self._assert_live(shard)
        self._flush_pending(shard)
        self._seq[shard] += 1
        self._replay[shard].append((self._seq[shard], KIND_ADOPT, state))
        try:
            self._send_message(shard, (MSG_MIGRATE_IN, state))
            self._checkpoint(shard)
        except ShardFailure as failure:
            self._recover(shard, failure)
        return empty_outputs(self.config.collect_results)

    # ------------------------------------------------------------------
    # run end
    # ------------------------------------------------------------------

    def finish(self) -> List[ShardOutcome]:
        """Flush everything; stitch deltas + final outcomes exactly-once.

        Per live shard: outputs are the admitted checkpoint deltas
        followed by the final outcome's post-checkpoint outputs; stats
        are incarnation base + the final cumulative snapshot; metrics
        merge the same way.  A failure while awaiting an outcome runs
        the ordinary recovery and re-flushes — but a shard whose budget
        dies *here* is terminal (failover needs the pipeline's router,
        which has no further feeding step to repartition through).
        Failed-over shards contribute synthesized outcomes carrying the
        deltas/stats admitted before their death; their post-checkpoint
        results were regenerated by the survivors via the failover
        replay stream.
        """
        if self._finished:
            raise RuntimeError("executor already finished")
        self._finished = True
        collect = self.config.collect_results
        decode_results = self._encoders is not None and collect
        outcomes: List[ShardOutcome] = []
        try:
            for shard in range(self.num_shards):
                if shard in self.failed_over:
                    continue
                pending = self._batches[shard]
                if pending:
                    self._batches[shard] = []
                    self._seq[shard] += 1
                    self._replay[shard].append(
                        (self._seq[shard], KIND_BATCH, pending)
                    )
                    try:
                        self._send_batch(shard, pending)
                    except ShardFailure as failure:
                        self._recover(shard, failure)
                try:
                    self._send(shard, (MSG_FLUSH, None))
                except ShardFailure as failure:
                    self._recover(shard, failure)
                    self._send(shard, (MSG_FLUSH, None))
            for shard in range(self.num_shards):
                if shard in self.failed_over:
                    outcomes.append(self._synthetic_outcome(shard))
                    continue
                while True:
                    try:
                        tag, payload = self._await_reply(shard)
                        break
                    except ShardFailure as failure:
                        self._recover(shard, failure)
                        self._send(shard, (MSG_FLUSH, None))
                if tag == "error":
                    raise ShardFailure(shard, str(payload), recoverable=False)
                if tag != "ok":
                    raise ShardFailure(
                        shard, f"bad outcome reply tag {tag!r}", recoverable=False
                    )
                outcome = payload
                outputs = outcome.outputs
                if decode_results:
                    outputs = BlockDecoder().decode_results(outputs)
                outputs = merge_outputs(collect, self._deltas[shard], outputs)
                stats = _add_stats(self._stats_base[shard], outcome.join_stats)
                base_metrics = self._metrics_base[shard]
                metrics = (
                    outcome.metrics
                    if base_metrics is None
                    else PipelineMetrics.merge([base_metrics, outcome.metrics])
                )
                outcomes.append(ShardOutcome(shard, outputs, metrics, stats))
        finally:
            for conn in self._connections:
                try:
                    conn.close()
                except OSError:  # pragma: no cover - already closed
                    pass
            for process in self._processes:
                process.join(timeout=30)
                if process.is_alive():  # pragma: no cover - defensive
                    process.terminate()
                    process.join(timeout=5)
            self._release_rings()
        return outcomes

    def _synthetic_outcome(self, shard: int) -> ShardOutcome:
        """Outcome of a failed-over shard: what its checkpoints admitted."""
        record = self._dead_records[shard]
        stats = dict(record.stats) if record is not None else {}
        metrics = record.metrics if record is not None else PipelineMetrics()
        return ShardOutcome(shard, self._deltas[shard], metrics, stats)
