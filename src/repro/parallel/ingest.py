"""Pipelined asynchronous ingestion for :class:`PartitionedPipeline`.

The synchronous drive loop interleaves three costs on one thread:
routing (:meth:`~repro.parallel.router.KeyRouter.route_batch`), block
encoding (:class:`~repro.core.blocks.TupleBlock` construction under the
block transports) and shard dispatch.  Under the process executors the
shards compute concurrently, but the *feeder* is still serial with them:
while the caller routes and encodes the next burst, every worker that
has drained its pipe sits idle.  :class:`PipelinedIngest` moves the
whole feed path onto a dedicated thread behind a bounded hand-off
queue, overlapping ingestion with shard compute while preserving the
synchronous path's semantics bit for bit.

Determinism
-----------
Byte-identity with the synchronous drive follows from three invariants:

* **One feeder thread owns the pipeline.**  After construction the
  caller never touches the wrapped pipeline directly; every
  ``process_batch`` call — and every rebalance barrier those calls
  trigger — runs on the feeder thread, in submission order.  There is
  no concurrent executor access to interleave.
* **Submission order is preserved.**  The hand-off queue is FIFO and
  single-consumer, so shard *i* sees exactly the sub-stream (in exactly
  the order) it would see under the synchronous loop, and the merged
  flush sequence / summed join statistics follow.
* **Barriers drain the queue.**  :meth:`flush` and :meth:`close` first
  stop the feeder (sentinel + join), so no batch can race a shard
  teardown; a rebalance migration barrier needs no extra machinery
  because it already runs *on* the feeder thread between batches.

Backpressure
------------
The hand-off queue is bounded (``max_pending_batches``):
:meth:`submit` blocks when the feeder falls behind, so an unbounded
producer cannot queue the whole stream in memory.  Downstream, the
executor-level credit window (``credit_window``) bounds
dispatched-but-unprocessed batches per shard, and the shm ring's fixed
capacity bounds bytes in flight — three nested bounded buffers, each
blocking (never dropping) at its own level.

Errors raised inside the feeder (a shard failure that cannot fail
over, a poisoned batch) are captured and re-raised to the caller on the
next :meth:`submit`, :meth:`drain` or :meth:`flush`; the feeder keeps
draining the queue after a failure so a blocked producer can never
deadlock against a dead consumer.
"""

from __future__ import annotations

import queue
import threading
from typing import List, Optional, Sequence

from ..core.tuples import StreamTuple
from .pipeline import PartitionedPipeline
from .shard import Outputs, empty_outputs, merge_outputs

#: Default bound of the feeder hand-off queue, in batches.  Deep enough
#: to absorb routing/encoding jitter, shallow enough that a stalled
#: shard surfaces as producer backpressure within a few bursts.
DEFAULT_MAX_PENDING = 8

#: Sentinel object that tells the feeder thread to exit its loop.
_STOP = object()


class PipelinedIngest:
    """A feeder thread driving a :class:`PartitionedPipeline`.

    Parameters
    ----------
    pipeline:
        The (not yet fed) pipeline to drive.  The caller must not call
        ``process``/``process_batch``/``flush`` on it directly while
        the feeder is live — ownership transfers here.
    max_pending_batches:
        Bound of the hand-off queue; :meth:`submit` blocks when full.

    Usage::

        with PartitionedPipeline(config, 4, executor="process") as p:
            with PipelinedIngest(p) as feeder:
                for chunk in chunks(dataset.arrivals(), 1024):
                    feeder.submit(chunk)
                outputs = feeder.flush()
    """

    def __init__(
        self,
        pipeline: PartitionedPipeline,
        max_pending_batches: int = DEFAULT_MAX_PENDING,
    ) -> None:
        if max_pending_batches < 1:
            raise ValueError(
                f"max_pending_batches must be >= 1, got {max_pending_batches}"
            )
        self.pipeline = pipeline
        self._collect = pipeline.config.collect_results
        self._queue: "queue.Queue" = queue.Queue(maxsize=max_pending_batches)
        self._outputs: Outputs = empty_outputs(self._collect)
        self._error: Optional[BaseException] = None
        self._stopped = False
        self._closed = False
        self._thread = threading.Thread(
            target=self._run, name="repro-ingest-feeder", daemon=True
        )
        self._thread.start()

    # ------------------------------------------------------------------
    # feeder thread
    # ------------------------------------------------------------------

    def _run(self) -> None:
        while True:
            item = self._queue.get()
            try:
                if item is _STOP:
                    return
                if self._error is not None:
                    # Drain-and-discard after a failure: a producer
                    # blocked on a full queue must always make progress
                    # so it can observe the error on its next submit.
                    continue
                try:
                    produced = self.pipeline.process_batch(item)
                except BaseException as exc:  # noqa: B036 - refired to caller
                    self._error = exc
                else:
                    self._outputs = merge_outputs(
                        self._collect, self._outputs, produced
                    )
            finally:
                self._queue.task_done()

    # ------------------------------------------------------------------
    # producer interface
    # ------------------------------------------------------------------

    def _raise_pending(self) -> None:
        if self._error is not None:
            error = self._error
            raise RuntimeError(
                "pipelined ingestion failed in the feeder thread"
            ) from error

    def submit(self, batch: Sequence[StreamTuple]) -> None:
        """Enqueue one burst; blocks while ``max_pending_batches`` are
        already in flight (backpressure).

        The batch is copied, so the caller may reuse its buffer.  Raises
        any error the feeder hit on an *earlier* batch — errors are
        asynchronous by one hand-off at most.
        """
        if self._stopped:
            raise RuntimeError("ingestion already flushed/closed")
        self._raise_pending()
        self._queue.put(list(batch))

    def drain(self) -> None:
        """Block until every submitted batch has been fed (the queue is
        empty and the last ``process_batch`` returned), then surface any
        feeder error.  The feeder stays live — a checkpoint, not a
        barrier that ends ingestion."""
        if not self._stopped:
            self._queue.join()
        self._raise_pending()

    def flush(self) -> Outputs:
        """Stop the feeder, flush the pipeline, return all outputs.

        Equivalent to the synchronous drive's accumulated
        ``process_batch`` returns merged with the final
        ``pipeline.flush()`` — same outputs, same order.
        """
        self._stop_feeder()
        self._raise_pending()
        return merge_outputs(
            self._collect, self._outputs, self.pipeline.flush()
        )

    def close(self) -> None:
        """Stop the feeder and release the pipeline without draining.

        Safe on every unwind path: idempotent, joins the feeder first so
        no batch can race the executor teardown, and never raises the
        stored feeder error (``close`` runs on exception paths where the
        original error is already propagating)."""
        if self._closed:
            return
        self._closed = True
        self._stop_feeder()
        self.pipeline.close()

    def _stop_feeder(self) -> None:
        if self._stopped:
            return
        self._stopped = True
        self._queue.put(_STOP)
        self._thread.join()

    def __enter__(self) -> "PipelinedIngest":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()
