"""Hash-partitioned parallel execution of the quality-driven pipeline.

Scale-out layer over the single-operator framework: a
:class:`~repro.parallel.router.KeyRouter` hash-partitions the input by
equi-join key through a virtual-slot table, each shard runs a complete
:class:`~repro.core.pipeline.QualityDrivenPipeline`, two interchangeable
executors drive the shards — in-process serial (deterministic) or
per-shard worker processes with batched IPC — and an optional
:class:`~repro.parallel.rebalancer.Rebalancer` repairs load skew at
runtime by migrating slot state between shards.  A third executor,
:class:`~repro.parallel.supervision.SupervisedExecutor`, wraps the
process executor in heartbeat supervision, periodic checkpoints and
bounded-replay recovery so worker crashes and hangs surface as typed
:class:`~repro.parallel.shard.ShardFailure` (and, with recovery armed,
heal byte-identically).  Ingestion can be pipelined off the caller's
thread (:class:`~repro.parallel.ingest.PipelinedIngest`) with
credit-based backpressure, and the process executors can carry their
block frames through per-shard shared-memory rings
(:data:`~repro.parallel.shard.TRANSPORT_SHM`,
:class:`~repro.parallel.shm.ShmRing`) instead of the pipe.  See
:mod:`repro.parallel.pipeline` for the exactness semantics.
"""

from .executors import (
    DEFAULT_BATCH_SIZE,
    MultiprocessingExecutor,
    SerialExecutor,
    ShardExecutor,
)
from .ingest import DEFAULT_MAX_PENDING, PipelinedIngest
from .pipeline import (
    DEFAULT_REBALANCE_INTERVAL,
    PartitionedPipeline,
    run_partitioned,
)
from .rebalancer import MigrationSpec, Rebalancer, load_imbalance
from .router import DEFAULT_SLOTS_PER_SHARD, KeyRouter, stable_hash
from .shard import (
    TRANSPORT_BLOCKS,
    TRANSPORT_OBJECTS,
    TRANSPORT_SHM,
    TRANSPORT_SOCKET,
    TRANSPORTS,
    FailoverState,
    ShardFailure,
    ShardOutcome,
    transport_encodes_blocks,
)
from .shm import (
    DEFAULT_RING_BYTES,
    RingAborted,
    RingError,
    RingIntegrityError,
    RingTimeout,
    ShmRing,
)
from .supervision import SupervisedExecutor, SupervisionConfig

__all__ = [
    "DEFAULT_BATCH_SIZE",
    "DEFAULT_MAX_PENDING",
    "DEFAULT_REBALANCE_INTERVAL",
    "DEFAULT_RING_BYTES",
    "DEFAULT_SLOTS_PER_SHARD",
    "FailoverState",
    "KeyRouter",
    "MigrationSpec",
    "MultiprocessingExecutor",
    "PartitionedPipeline",
    "PipelinedIngest",
    "Rebalancer",
    "RingAborted",
    "RingError",
    "RingIntegrityError",
    "RingTimeout",
    "SerialExecutor",
    "ShardExecutor",
    "ShardFailure",
    "ShardOutcome",
    "ShmRing",
    "SupervisedExecutor",
    "SupervisionConfig",
    "TRANSPORT_BLOCKS",
    "TRANSPORT_OBJECTS",
    "TRANSPORT_SHM",
    "TRANSPORT_SOCKET",
    "TRANSPORTS",
    "load_imbalance",
    "run_partitioned",
    "stable_hash",
    "transport_encodes_blocks",
]
