"""Hash-partitioned parallel execution of the quality-driven pipeline.

Scale-out layer over the single-operator framework: a
:class:`~repro.parallel.router.KeyRouter` hash-partitions the input by
equi-join key through a virtual-slot table, each shard runs a complete
:class:`~repro.core.pipeline.QualityDrivenPipeline`, two interchangeable
executors drive the shards — in-process serial (deterministic) or
per-shard worker processes with batched IPC — and an optional
:class:`~repro.parallel.rebalancer.Rebalancer` repairs load skew at
runtime by migrating slot state between shards.  A third executor,
:class:`~repro.parallel.supervision.SupervisedExecutor`, wraps the
process executor in heartbeat supervision, periodic checkpoints and
bounded-replay recovery so worker crashes and hangs surface as typed
:class:`~repro.parallel.shard.ShardFailure` (and, with recovery armed,
heal byte-identically).  See :mod:`repro.parallel.pipeline` for the
exactness semantics.
"""

from .executors import (
    DEFAULT_BATCH_SIZE,
    MultiprocessingExecutor,
    SerialExecutor,
    ShardExecutor,
)
from .pipeline import (
    DEFAULT_REBALANCE_INTERVAL,
    PartitionedPipeline,
    run_partitioned,
)
from .rebalancer import MigrationSpec, Rebalancer, load_imbalance
from .router import DEFAULT_SLOTS_PER_SHARD, KeyRouter, stable_hash
from .shard import (
    TRANSPORT_BLOCKS,
    TRANSPORT_OBJECTS,
    TRANSPORTS,
    FailoverState,
    ShardFailure,
    ShardOutcome,
)
from .supervision import SupervisedExecutor, SupervisionConfig

__all__ = [
    "DEFAULT_BATCH_SIZE",
    "DEFAULT_REBALANCE_INTERVAL",
    "DEFAULT_SLOTS_PER_SHARD",
    "FailoverState",
    "KeyRouter",
    "MigrationSpec",
    "MultiprocessingExecutor",
    "PartitionedPipeline",
    "Rebalancer",
    "SerialExecutor",
    "ShardExecutor",
    "ShardFailure",
    "ShardOutcome",
    "SupervisedExecutor",
    "SupervisionConfig",
    "TRANSPORT_BLOCKS",
    "TRANSPORT_OBJECTS",
    "TRANSPORTS",
    "load_imbalance",
    "run_partitioned",
    "stable_hash",
]
