"""Hash-partitioned parallel execution of the quality-driven pipeline.

Scale-out layer over the single-operator framework: a
:class:`~repro.parallel.router.KeyRouter` hash-partitions the input by
equi-join key, each shard runs a complete
:class:`~repro.core.pipeline.QualityDrivenPipeline`, and two
interchangeable executors drive the shards — in-process serial
(deterministic) or per-shard worker processes with batched IPC.  See
:mod:`repro.parallel.pipeline` for the exactness semantics.
"""

from .executors import (
    DEFAULT_BATCH_SIZE,
    MultiprocessingExecutor,
    SerialExecutor,
    ShardExecutor,
)
from .pipeline import PartitionedPipeline, run_partitioned
from .router import KeyRouter, stable_hash
from .shard import TRANSPORT_BLOCKS, TRANSPORT_OBJECTS, TRANSPORTS, ShardOutcome

__all__ = [
    "DEFAULT_BATCH_SIZE",
    "KeyRouter",
    "MultiprocessingExecutor",
    "PartitionedPipeline",
    "SerialExecutor",
    "ShardExecutor",
    "ShardOutcome",
    "TRANSPORT_BLOCKS",
    "TRANSPORT_OBJECTS",
    "TRANSPORTS",
    "run_partitioned",
    "stable_hash",
]
