"""One shard of a partitioned pipeline, and the executor↔worker protocol.

A shard is simply a full :class:`~repro.core.pipeline.QualityDrivenPipeline`
(K-slack fronts → Synchronizer → MSWJ → adaptation loop) fed the subset of
tuples the :class:`~repro.parallel.router.KeyRouter` assigns it.  This
module holds what both executors share:

* :class:`ShardOutcome` — the record a shard hands back when it finishes
  (its remaining outputs plus its :class:`~repro.core.pipeline.PipelineMetrics`);
* :func:`shard_worker` — the child-process loop run by the
  multiprocessing executor.

The ``Outputs`` accumulation helpers (result lists vs. plain counts, per
``PipelineConfig.collect_results``) live in :mod:`repro.core.pipeline`
and are re-exported here for the rest of the parallel layer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from ..core.pipeline import (
    Outputs,
    PipelineConfig,
    PipelineMetrics,
    QualityDrivenPipeline,
    empty_outputs,
    merge_outputs,
)


@dataclass
class ShardOutcome:
    """Everything one shard returns at the end of its run."""

    shard: int
    outputs: Outputs
    metrics: PipelineMetrics
    #: The shard's MSWJ counters (tuples in/out of order, probes, ...);
    #: see :class:`~repro.join.mswj.JoinStatistics.as_dict`.
    join_stats: Dict[str, int] = field(default_factory=dict)


# Message tags of the executor ↔ worker protocol.
MSG_BATCH = "batch"
MSG_FLUSH = "flush"
MSG_ABORT = "abort"


def shard_worker(conn, shard: int, config: PipelineConfig) -> None:
    """Child-process loop: drain tuple batches, flush, send the outcome back.

    Protocol (parent → child): any number of ``(MSG_BATCH, [tuples])``
    messages, then exactly one ``(MSG_FLUSH, None)``.  The child replies
    with a single ``("ok", ShardOutcome)`` — or ``("error", text)`` if the
    pipeline raised — and exits.  Outputs accumulate in the child and
    travel back once, so steady-state IPC is just the batched tuple
    stream.  ``(MSG_ABORT, None)`` makes the child exit immediately with
    no reply — the shutdown path for abandoned runs; an explicit message
    rather than pipe EOF because under the ``fork`` start method sibling
    workers inherit copies of earlier pipe ends, so a parent-side close
    alone does not reach every child.
    """
    try:
        pipeline = QualityDrivenPipeline(config)
        collect = config.collect_results
        outputs = empty_outputs(collect)
        while True:
            tag, payload = conn.recv()
            if tag == MSG_ABORT:
                return
            if tag == MSG_FLUSH:
                break
            # Each IPC batch drains through the batched engine; identical
            # to a per-tuple loop, minus the per-tuple driver overhead.
            outputs = merge_outputs(collect, outputs, pipeline.process_batch(payload))
        outputs = merge_outputs(collect, outputs, pipeline.flush())
        conn.send(
            (
                "ok",
                ShardOutcome(
                    shard, outputs, pipeline.metrics, pipeline.join.stats.as_dict()
                ),
            )
        )
    except Exception as exc:  # surfaced by the parent as a RuntimeError
        try:
            conn.send(("error", f"{type(exc).__name__}: {exc}"))
        except OSError:  # parent already gone; nothing left to report to
            pass
    finally:
        conn.close()
