"""One shard of a partitioned pipeline, and the executor↔worker protocol.

A shard is simply a full :class:`~repro.core.pipeline.QualityDrivenPipeline`
(K-slack fronts → Synchronizer → MSWJ → adaptation loop) fed the subset of
tuples the :class:`~repro.parallel.router.KeyRouter` assigns it.  This
module holds what both executors share:

* :class:`ShardOutcome` — the record a shard hands back when it finishes
  (its remaining outputs plus its :class:`~repro.core.pipeline.PipelineMetrics`);
* :func:`shard_worker` — the child-process loop run by the
  multiprocessing executor.

The ``Outputs`` accumulation helpers (result lists vs. plain counts, per
``PipelineConfig.collect_results``) live in :mod:`repro.core.pipeline`
and are re-exported here for the rest of the parallel layer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from ..core.blocks import BlockDecoder, BlockEncoder
from ..core.pipeline import (
    Outputs,
    PipelineConfig,
    PipelineMetrics,
    QualityDrivenPipeline,
    empty_outputs,
    merge_outputs,
)


@dataclass
class ShardOutcome:
    """Everything one shard returns at the end of its run."""

    shard: int
    outputs: Outputs
    metrics: PipelineMetrics
    #: The shard's MSWJ counters (tuples in/out of order, probes, ...);
    #: see :class:`~repro.join.mswj.JoinStatistics.as_dict`.
    join_stats: Dict[str, int] = field(default_factory=dict)


# Message tags of the executor ↔ worker protocol.
MSG_BATCH = "batch"
MSG_FLUSH = "flush"
MSG_ABORT = "abort"

# Wire formats of the multiprocessing executor's tuple transfer.
#: Columnar :class:`~repro.core.blocks.TupleBlock` messages with a
#: schema-negotiating encoder/decoder pair per shard connection, and a
#: :class:`~repro.core.blocks.ResultBlock` for collected results on the
#: return path.  The default: one flat object per pipe message.
TRANSPORT_BLOCKS = "blocks"
#: Legacy per-object pickling: each message carries a list of
#: :class:`~repro.core.tuples.StreamTuple` graphs.  Kept as the
#: benchmark baseline and as a fallback for exotic payload values whose
#: pickling relies on object-graph context.
TRANSPORT_OBJECTS = "objects"

TRANSPORTS = (TRANSPORT_BLOCKS, TRANSPORT_OBJECTS)


def shard_worker(
    conn, shard: int, config: PipelineConfig, transport: str = TRANSPORT_OBJECTS
) -> None:
    """Child-process loop: drain tuple batches, flush, send the outcome back.

    Protocol (parent → child): any number of ``(MSG_BATCH, payload)``
    messages — ``payload`` is a list of tuples under
    :data:`TRANSPORT_OBJECTS` or a :class:`~repro.core.blocks.TupleBlock`
    under :data:`TRANSPORT_BLOCKS` — then exactly one ``(MSG_FLUSH,
    None)``.  The child replies with a single ``("ok", ShardOutcome)`` —
    or ``("error", text)`` if the pipeline raised — and exits.  Outputs
    accumulate in the child and travel back once (as a
    :class:`~repro.core.blocks.ResultBlock` in the outcome's ``outputs``
    field under block transport with collected results; the parent
    decodes before exposing the outcome), so steady-state IPC is just
    the batched tuple stream.  ``(MSG_ABORT, None)`` makes the child
    exit immediately with no reply — the shutdown path for abandoned
    runs; an explicit message rather than pipe EOF because under the
    ``fork`` start method sibling workers inherit copies of earlier pipe
    ends, so a parent-side close alone does not reach every child.
    """
    try:
        pipeline = QualityDrivenPipeline(config)
        collect = config.collect_results
        decoder = BlockDecoder() if transport == TRANSPORT_BLOCKS else None
        outputs = empty_outputs(collect)
        while True:
            tag, payload = conn.recv()
            if tag == MSG_ABORT:
                return
            if tag == MSG_FLUSH:
                break
            if decoder is not None:
                # Lazy decode: blocks materialize tuples here, right at
                # the point of consumption — the pipe and the parent
                # never hold per-tuple objects for this batch.
                payload = decoder.decode(payload)
            # Each IPC batch drains through the batched engine; identical
            # to a per-tuple loop, minus the per-tuple driver overhead.
            outputs = merge_outputs(collect, outputs, pipeline.process_batch(payload))
        outputs = merge_outputs(collect, outputs, pipeline.flush())
        if decoder is not None and collect:
            outputs = BlockEncoder().encode_results(outputs)
        conn.send(
            (
                "ok",
                ShardOutcome(
                    shard, outputs, pipeline.metrics, pipeline.join.stats.as_dict()
                ),
            )
        )
    except Exception as exc:  # surfaced by the parent as a RuntimeError
        try:
            conn.send(("error", f"{type(exc).__name__}: {exc}"))
        except OSError:  # parent already gone; nothing left to report to
            pass
    finally:
        conn.close()
