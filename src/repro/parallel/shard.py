"""One shard of a partitioned pipeline, and the executor↔worker protocol.

A shard is simply a full :class:`~repro.core.pipeline.QualityDrivenPipeline`
(K-slack fronts → Synchronizer → MSWJ → adaptation loop) fed the subset of
tuples the :class:`~repro.parallel.router.KeyRouter` assigns it.  This
module holds what both executors share:

* :class:`ShardOutcome` — the record a shard hands back when it finishes
  (its remaining outputs plus its :class:`~repro.core.pipeline.PipelineMetrics`);
* :func:`shard_worker` — the child-process loop run by the
  multiprocessing executor.

The ``Outputs`` accumulation helpers (result lists vs. plain counts, per
``PipelineConfig.collect_results``) live in :mod:`repro.core.pipeline`
and are re-exported here for the rest of the parallel layer.
"""

from __future__ import annotations

import pickle
from copy import deepcopy
from dataclasses import dataclass, field
from multiprocessing.connection import Connection
from typing import Callable, Dict, List, Optional, Tuple, Union

from ..core.blocks import (
    PICKLE_PROTOCOL,
    BlockDecoder,
    BlockEncoder,
    CheckpointFrame,
    ResultBlock,
    StateBlock,
    WindowPayload,
    WindowStateItem,
    decode_state,
    encode_state,
    frame_checkpoint,
)
from ..core.pipeline import (
    Outputs,
    PipelineConfig,
    PipelineMetrics,
    QualityDrivenPipeline,
    empty_outputs,
    merge_outputs,
)
from ..core.tuples import StreamTuple
from ..faults import FaultInjector, FaultPlan
from .rebalancer import MigrationSpec
from .router import stable_hash
from .shm import RingDescriptor, ShmRing

#: Both rings of one shard, as picklable ``(name, capacity)`` handles in
#: doorbell order: parent→worker (batches etc.) then worker→parent
#: (bulky replies).
RingDescriptors = Tuple[RingDescriptor, RingDescriptor]

#: Safety net on a worker's reply-ring writes.  The parent reads every
#: reply as soon as its doorbell lands, so in a healthy run a reply
#: frame never waits for space; a parent wedged this long is gone.
RING_REPLY_TIMEOUT_S = 120.0


@dataclass
class ShardOutcome:
    """Everything one shard returns at the end of its run."""

    shard: int
    outputs: Outputs
    metrics: PipelineMetrics
    #: The shard's MSWJ counters (tuples in/out of order, probes, ...);
    #: see :class:`~repro.join.mswj.JoinStatistics.as_dict`.
    join_stats: Dict[str, int] = field(default_factory=dict)


@dataclass
class FailoverState:
    """A dead shard's recoverable state, handed to the pipeline layer.

    Built by the supervised executor when a shard's respawn budget is
    exhausted: the last good checkpoint's window/pending state in
    decoded (adoptable) form plus the raw post-checkpoint tuple batches
    from the replay log.  The pipeline repartitions the state across the
    surviving shards through the ordinary migration machinery and
    re-routes the replay batches — graceful degradation instead of an
    aborted run.
    """

    window: List[WindowStateItem]
    pending: List[StreamTuple]
    replay: List[List[StreamTuple]]


class ShardFailure(RuntimeError):
    """A shard worker crashed, hung, or misbehaved — with a shard id.

    Subclasses :class:`RuntimeError` so callers of the pre-supervision
    executor API keep working; carries structure so the supervisor can
    react: ``recoverable`` distinguishes infrastructure failures (death,
    hang, integrity) from deterministic pipeline errors that replay
    would simply reproduce, and ``failover`` carries a dead shard's
    :class:`FailoverState` once its respawn budget is spent.
    """

    def __init__(
        self,
        shard: int,
        reason: str,
        *,
        recoverable: bool = True,
        failover: Optional[FailoverState] = None,
    ) -> None:
        super().__init__(f"shard {shard} worker failed: {reason}")
        self.shard = shard
        self.reason = reason
        self.recoverable = recoverable
        self.failover = failover


@dataclass
class CheckpointRequest:
    """Parent → worker: capture a checkpoint for ``(epoch, seq)``.

    ``epoch`` is the worker incarnation the parent believes it is
    talking to; ``seq`` the number of batches dispatched to the shard so
    far.  The worker echoes both in its :class:`CheckpointRecord`, and
    the parent rejects any record whose identity does not match —
    epoch/seq dedup is what keeps a recovered run's outputs
    exactly-once.
    """

    epoch: int
    seq: int


#: A checkpoint record's shipped-output leg: the worker's result delta
#: since its previous checkpoint, as a plain :data:`Outputs` or packed
#: into a :class:`~repro.core.blocks.ResultBlock` (block transport with
#: collected results — mirroring the outcome path).
CheckpointOutputs = Union[Outputs, ResultBlock]


@dataclass
class CheckpointRecord:
    """Worker → parent reply to a :class:`CheckpointRequest`.

    ``frame`` snapshots the full shard state (integrity-checked;
    see :class:`~repro.core.blocks.CheckpointFrame`); ``outputs`` is the
    **delta** of results produced since the previous checkpoint (the
    worker resets its accumulator after replying, so each result
    travels to the parent exactly once); ``join_stats`` and ``metrics``
    are **cumulative** snapshots for this incarnation — the parent adds
    them onto the base it recorded at the incarnation's spawn.
    """

    shard: int
    epoch: int
    seq: int
    frame: CheckpointFrame
    outputs: CheckpointOutputs
    join_stats: Dict[str, int]
    metrics: PipelineMetrics


# Message tags of the executor ↔ worker protocol.
MSG_BATCH = "batch"
MSG_FLUSH = "flush"
MSG_ABORT = "abort"
#: Rebalancing barrier, source side: payload is a
#: :class:`~repro.parallel.rebalancer.MigrationSpec`; the worker drains
#: to the beacon, carves out the moved slots' state, and replies
#: ``("state", [StateBlock, ...])`` — the only mid-stream reply in the
#: protocol (the parent blocks on it, making the barrier synchronous).
MSG_MIGRATE_OUT = "migrate_out"
#: Rebalancing barrier, destination side: payload is one
#: :class:`~repro.core.blocks.StateBlock`; no reply (pipe ordering
#: guarantees the adoption lands after every batch routed before it).
MSG_MIGRATE_IN = "migrate_in"
#: Liveness probe: payload is an opaque nonce, the worker echoes it back
#: as ``(MSG_PONG, nonce)``.  Because the pipe is ordered, a pong also
#: acknowledges every batch dispatched before the ping — the supervised
#: executor's heartbeat rides on this pair instead of trusting a
#: blocking ``recv()``.
MSG_PING = "ping"
#: Worker → parent heartbeat reply (echoed :data:`MSG_PING` nonce).
MSG_PONG = "pong"
#: Checkpoint barrier: payload is a :class:`CheckpointRequest`; the
#: worker snapshots its full state via the migration extraction path
#: (re-adopting it locally, so the capture is observationally a no-op)
#: and replies ``(MSG_CHECKPOINT, CheckpointRecord)``.
MSG_CHECKPOINT = "checkpoint"
#: Worker → parent credit grant: payload is the cumulative number of
#: tuple batches the worker has fully *processed* this incarnation.
#: Sent after every batch when the executor arms a credit window; the
#: parent stalls dispatch while ``dispatched - credited >= window``, so
#: a pipelined feeder can never overrun a slow shard by more than the
#: window (backpressure, not unbounded queueing).
MSG_CREDIT = "credit"
#: Parent → worker doorbell of the shm transport: payload is the
#: sequence number of a frame already written to the shard's inbound
#: :class:`~repro.parallel.shm.ShmRing`.  The frame holds the pickled
#: ``(tag, payload)`` message itself, so the ring carries *any* bulky
#: protocol message (batches, adopted state) while the pipe keeps its
#: FIFO role — a doorbell acknowledges nothing by itself, but pipe
#: ordering still serializes it against pings and replies exactly as if
#: the full message had traveled inline.
MSG_RING = "ring"
#: Worker → parent doorbell, same contract in the reply direction: the
#: frame in the shard's outbound ring holds the pickled reply (state
#: lists, checkpoint records, the final outcome).  Small replies —
#: pongs, errors, credits — stay inline on the pipe.
MSG_RING_REPLY = "ring_reply"

# Wire formats of the multiprocessing executor's tuple transfer.
#: Columnar :class:`~repro.core.blocks.TupleBlock` messages with a
#: schema-negotiating encoder/decoder pair per shard connection, and a
#: :class:`~repro.core.blocks.ResultBlock` for collected results on the
#: return path.  The default: one flat object per pipe message.
TRANSPORT_BLOCKS = "blocks"
#: Legacy per-object pickling: each message carries a list of
#: :class:`~repro.core.tuples.StreamTuple` graphs.  Kept as the
#: benchmark baseline and as a fallback for exotic payload values whose
#: pickling relies on object-graph context.
TRANSPORT_OBJECTS = "objects"
#: Columnar blocks carried over per-shard shared-memory rings instead of
#: the pipe: frames are written once into a :class:`ShmRing` and read in
#: place by the peer, with tiny sequence-numbered doorbells on the pipe
#: preserving ordering (and the supervisor's epoch/seq accounting).
#: Messages too large for the ring fall back to the pipe transparently.
TRANSPORT_SHM = "shm"
#: Columnar blocks over a TCP socket: the same pickled ``(tag, payload)``
#: protocol messages, carried in length-prefixed CRC-tagged frames by
#: :class:`~repro.distributed.runtime.SocketConnection` so a shard worker
#: can live in a :class:`~repro.distributed.runtime.NodeServer` process
#: on another machine.  ``shard_worker`` runs unchanged — the connection
#: object satisfies the ``Connection`` send/recv surface.
TRANSPORT_SOCKET = "socket"

TRANSPORTS = (TRANSPORT_BLOCKS, TRANSPORT_OBJECTS, TRANSPORT_SHM, TRANSPORT_SOCKET)


def transport_encodes_blocks(transport: Optional[str]) -> bool:
    """Whether a transport ships columnar blocks (vs. object graphs).

    The shm and socket transports reuse the block codec wholesale — same
    ``TupleBlock``/``ResultBlock``/``StateBlock`` frames, different
    carrier — so every "should I encode/decode?" decision in the
    executors keys off this predicate instead of a ``== TRANSPORT_BLOCKS``
    comparison.
    """
    return transport in (TRANSPORT_BLOCKS, TRANSPORT_SHM, TRANSPORT_SOCKET)


def slot_classifier(spec: MigrationSpec) -> Callable[[StreamTuple], Optional[int]]:
    """Build ``tuple → destination shard (or None)`` from a migration spec.

    Mirrors the router's slot computation exactly — same per-stream key
    attributes, same :func:`~repro.parallel.router.stable_hash`, same
    slot count — so a tuple is classified as moving iff the parent's
    router will route its key to the new shard afterwards.
    """
    attr_of = spec.attr_by_stream
    num_slots = spec.num_slots
    moves = spec.moves

    def classify(t: StreamTuple) -> Optional[int]:
        return moves.get(
            stable_hash(t.values.get(attr_of[t.stream])) % num_slots
        )

    return classify


def value_classifier(spec: MigrationSpec) -> Callable[[object], Optional[int]]:
    """Value-level twin of :func:`slot_classifier`.

    Maps a partition-attribute *value* (not a tuple) to its destination
    shard, letting a tiered window store classify a cold segment from
    its attribute column or value summary without decoding the segment —
    the two classifiers agree by construction because the tuple form
    only ever hashes ``t.values.get(attr)``.
    """
    num_slots = spec.num_slots
    moves = spec.moves

    def classify_value(value: object) -> Optional[int]:
        return moves.get(stable_hash(value) % num_slots)

    return classify_value


def extract_shard_state(
    pipeline: QualityDrivenPipeline,
    shard: int,
    spec: MigrationSpec,
    encode: bool,
) -> Tuple[Outputs, List[StateBlock]]:
    """Source side of the rebalancing barrier, executor-agnostic.

    Runs the pipeline's beacon drain + extraction
    (:meth:`~repro.core.pipeline.QualityDrivenPipeline.prepare_migration`)
    and groups the carved-out state into one :class:`StateBlock` per
    destination shard (columnar-encoded when ``encode``, for the block
    transport's pipe).  Returns ``(drain outputs, state blocks)``.

    The extraction is tier-aware: passing the spec's per-stream key
    attributes plus :func:`value_classifier` lets a
    :class:`~repro.join.store.TieredStore` classify cold segments from
    their attribute columns, so a segment whose keys all move to one
    destination travels as an already-encoded
    :class:`~repro.core.blocks.ColdSegment` — no decode/re-encode on
    the barrier's hot path.
    """
    outputs, per_dest_windows, per_dest_pending = pipeline.prepare_migration(
        slot_classifier(spec),
        spec.beacon_ts,
        spec.drain_floor_ts,
        attr_by_stream=spec.attr_by_stream,
        value_classifier=value_classifier(spec),
    )
    slots_by_dest: Dict[int, List[int]] = {}
    for slot, dest in sorted(spec.moves.items()):
        slots_by_dest.setdefault(dest, []).append(slot)
    states: List[StateBlock] = []
    for dest, slots in sorted(slots_by_dest.items()):
        window: WindowPayload = []
        window.extend(per_dest_windows.get(dest, []))
        moved = per_dest_pending.get(dest, [])
        if encode:
            states.append(
                encode_state(shard, dest, tuple(slots), window, moved)
            )
        else:
            states.append(
                StateBlock(shard, dest, tuple(slots), window, moved)
            )
    return outputs, states


def adopt_shard_state(
    pipeline: QualityDrivenPipeline, state: StateBlock, decode: bool
) -> Outputs:
    """Destination side of the rebalancing barrier, executor-agnostic."""
    if decode:
        window_tuples, pending = decode_state(state)
    else:
        window_tuples, pending = state.window, state.pending
    return pipeline.adopt_migration(window_tuples, pending)


#: Dummy partition attribute of the checkpoint extraction.  No tuple
#: carries it, so a tiered store's cold segments classify from an
#: all-``None`` column — uniformly group 0 — and travel as
#: already-frozen blocks without a decode.
_CHECKPOINT_ATTR = "__checkpoint__"


def _checkpoint_group(t: StreamTuple) -> Optional[int]:
    """Classify-all: every tuple belongs to checkpoint group 0."""
    return 0


def _checkpoint_value_group(value: object) -> Optional[int]:
    """Value-level twin of :func:`_checkpoint_group` (segments)."""
    return 0


def checkpoint_shard_state(
    pipeline: QualityDrivenPipeline,
    shard: int,
    request: CheckpointRequest,
    encode: bool,
) -> Tuple[CheckpointFrame, Outputs]:
    """Capture a shard's full state as a checkpoint frame, losslessly.

    Reuses the migration extraction with a classify-*everything*
    predicate and a zero barrier: ``beacon_ts=0`` / ``drain_floor_ts=0``
    never advances the disorder clocks (they are monotone), so the drain
    emits nothing, and ``advance + drain_below`` over a negative
    watermark releases nothing — the extraction is the shard's complete
    window + in-flight state with **no observable side effect**.  The
    state is framed (pickled + CRC) *before* the local re-adoption, so
    the frame is a true snapshot; re-adopting the extracted items
    restores the pipeline exactly (pending tuples re-enter the K-slack
    front below the clock they left at, so the two-phase adopt releases
    nothing either).  Returns ``(frame, outputs)`` where ``outputs`` is
    whatever the barrier produced — empty by the argument above, but
    merged by the caller anyway so the accounting stays airtight.
    """
    outputs, window_groups, pending_groups = pipeline.prepare_migration(
        _checkpoint_group,
        0,
        0,
        attr_by_stream=[_CHECKPOINT_ATTR] * pipeline.num_streams,
        value_classifier=_checkpoint_value_group,
    )
    window: WindowPayload = []
    window.extend(window_groups.get(0, []))
    pending = pending_groups.get(0, [])
    if encode:
        state = encode_state(shard, shard, (), window, pending)
    else:
        state = StateBlock(shard, shard, (), list(window), list(pending))
    frame = frame_checkpoint(shard, request.epoch, request.seq, state)
    readopted = pipeline.adopt_migration(window_groups.get(0, []), pending)
    collect = pipeline.config.collect_results
    outputs = merge_outputs(collect, outputs, readopted)
    return frame, outputs


def _reply(
    conn: Connection,
    ring: Optional[ShmRing],
    message: Tuple[str, object],
    injector: Optional[FaultInjector] = None,
) -> None:
    """Ship one bulky worker → parent reply.

    With a reply ring armed, the pickled message rides the ring and only
    a ``(MSG_RING_REPLY, seq)`` doorbell crosses the pipe; without one —
    or when the frame can never fit — the message travels the pipe
    whole.  The injector hook sits *between* pickling and the ring
    write: the ``crash-mid-ring-write`` fault tears the frame there and
    kills the process, proving a half-written frame is unobservable.
    """
    if ring is None:
        conn.send(message)
        return
    frame = pickle.dumps(message, protocol=PICKLE_PROTOCOL)
    if not ring.fits(len(frame)):
        conn.send_bytes(frame)
        return
    if injector is not None:
        injector.on_ring_write(ring, frame)
    seq = ring.write_frame(frame, timeout_s=RING_REPLY_TIMEOUT_S)
    conn.send((MSG_RING_REPLY, seq))


def shard_worker(
    conn: Connection,
    shard: int,
    config: PipelineConfig,
    transport: str = TRANSPORT_OBJECTS,
    faults: Optional[FaultPlan] = None,
    rings: Optional[RingDescriptors] = None,
    grant_credits: bool = False,
) -> None:
    """Child-process loop: drain tuple batches, flush, send the outcome back.

    Protocol (parent → child): any number of ``(MSG_BATCH, payload)``
    messages — ``payload`` is a list of tuples under
    :data:`TRANSPORT_OBJECTS` or a :class:`~repro.core.blocks.TupleBlock`
    under :data:`TRANSPORT_BLOCKS` — then exactly one ``(MSG_FLUSH,
    None)``.  The child replies with a single ``("ok", ShardOutcome)`` —
    or ``("error", text)`` if the pipeline raised — and exits.  Outputs
    accumulate in the child and travel back once (as a
    :class:`~repro.core.blocks.ResultBlock` in the outcome's ``outputs``
    field under block transport with collected results; the parent
    decodes before exposing the outcome), so steady-state IPC is just
    the batched tuple stream.  ``(MSG_ABORT, None)`` makes the child
    exit immediately with no reply — the shutdown path for abandoned
    runs; an explicit message rather than pipe EOF because under the
    ``fork`` start method sibling workers inherit copies of earlier pipe
    ends, so a parent-side close alone does not reach every child.

    Two rebalancing messages may interleave with the batch stream:
    ``(MSG_MIGRATE_OUT, MigrationSpec)`` drains the pipeline to the
    spec's beacon, extracts the moved slots' state, and replies
    ``("state", [StateBlock, ...])`` — the barrier's synchronous leg;
    ``(MSG_MIGRATE_IN, StateBlock)`` adopts migrated state with no
    reply.  Results produced by either leg join the worker's output
    accumulator like any batch results.

    Supervision extends the protocol with three tags: ``(MSG_PING,
    nonce)`` echoes back ``(MSG_PONG, nonce)`` (a liveness probe that,
    by pipe ordering, also acknowledges every earlier batch);
    ``(MSG_CHECKPOINT, CheckpointRequest)`` snapshots the full shard
    state via :func:`checkpoint_shard_state` and replies
    ``(MSG_CHECKPOINT, CheckpointRecord)`` carrying the frame, the
    *delta* of outputs since the previous checkpoint (the accumulator
    resets after the reply ships), and cumulative stats/metrics
    snapshots.  A :class:`~repro.faults.FaultPlan` in ``faults`` arms a
    deterministic :class:`~repro.faults.FaultInjector` around the batch,
    migration, and checkpoint paths — the supervised executor's chaos
    harness.

    Under ``transport="shm"`` the executor also hands over ``rings`` —
    descriptors of the shard's inbound and outbound
    :class:`~repro.parallel.shm.ShmRing` pair.  Bulky messages then ride
    the rings: the parent writes a frame and sends ``(MSG_RING, seq)``,
    which this loop resolves back into the framed ``(tag, payload)``
    before dispatching; bulky replies go out through :func:`_reply` the
    same way.  With ``grant_credits`` the worker confirms every
    *processed* batch with ``(MSG_CREDIT, cumulative count)`` — the
    pipelined feeder's backpressure signal.

    Dispatch is exhaustive over the ``MSG_*`` tags (the
    ``protocol-exhaustiveness`` lint rule pins this): any other tag
    raises, surfacing as an ``("error", ...)`` reply, instead of being
    silently treated as a tuple batch.
    """
    recv_ring: Optional[ShmRing] = None
    reply_ring: Optional[ShmRing] = None
    try:
        if rings is not None:
            recv_ring = ShmRing.attach(*rings[0])
            reply_ring = ShmRing.attach(*rings[1])
        pipeline = QualityDrivenPipeline(config)
        collect = config.collect_results
        decoder: Optional[BlockDecoder] = (
            BlockDecoder() if transport_encodes_blocks(transport) else None
        )
        armed = faults.for_shard(shard) if faults is not None else ()
        injector: Optional[FaultInjector] = FaultInjector(armed) if armed else None
        if injector is not None:
            # The socket-drop fault tears down the transport from inside
            # the worker; hand the injector the live connection so it can.
            injector.connection = conn
        outputs: Outputs = empty_outputs(collect)
        consumed = 0
        while True:
            tag, payload = conn.recv()
            if tag == MSG_RING:
                if recv_ring is None:
                    raise ValueError("ring doorbell without an attached ring")
                tag, payload = pickle.loads(recv_ring.read_frame(payload))
            if tag == MSG_ABORT:
                return
            if tag == MSG_FLUSH:
                break
            if tag == MSG_MIGRATE_OUT:
                drained, states = extract_shard_state(
                    pipeline, shard, payload, encode=decoder is not None
                )
                outputs = merge_outputs(collect, outputs, drained)
                if injector is not None:
                    injector.on_migrate()
                _reply(conn, reply_ring, ("state", states), injector)
                continue
            if tag == MSG_MIGRATE_IN:
                adopted = adopt_shard_state(
                    pipeline, payload, decode=decoder is not None
                )
                outputs = merge_outputs(collect, outputs, adopted)
                continue
            if tag == MSG_PING:
                conn.send((MSG_PONG, payload))
                continue
            if tag == MSG_CHECKPOINT:
                frame, barrier = checkpoint_shard_state(
                    pipeline, shard, payload, encode=decoder is not None
                )
                outputs = merge_outputs(collect, outputs, barrier)
                if injector is not None:
                    frame.payload = injector.corrupt_payload(frame.payload)
                delta: CheckpointOutputs = outputs
                if decoder is not None and collect:
                    delta = BlockEncoder().encode_results(outputs)
                record = CheckpointRecord(
                    shard,
                    payload.epoch,
                    payload.seq,
                    frame,
                    delta,
                    pipeline.join.stats.as_dict(),
                    deepcopy(pipeline.metrics),
                )
                _reply(conn, reply_ring, (MSG_CHECKPOINT, record), injector)
                # The delta shipped exactly once; restart the
                # accumulator so the next checkpoint (or the outcome)
                # carries only newer results.
                outputs = empty_outputs(collect)
                continue
            if tag != MSG_BATCH:
                # Exhaustive dispatch: an unknown tag is a protocol bug
                # (or version skew) — refusing it here beats silently
                # feeding its payload to the join as a tuple batch.
                raise ValueError(f"unknown protocol message tag {tag!r}")
            if injector is not None:
                injector.before_batch()
            if decoder is not None:
                # Lazy decode: blocks materialize tuples here, right at
                # the point of consumption — the pipe and the parent
                # never hold per-tuple objects for this batch.
                payload = decoder.decode(payload)
            # Each IPC batch drains through the batched engine; identical
            # to a per-tuple loop, minus the per-tuple driver overhead.
            outputs = merge_outputs(collect, outputs, pipeline.process_batch(payload))
            if injector is not None:
                injector.after_batch()
            consumed += 1
            if grant_credits:
                conn.send((MSG_CREDIT, consumed))
        outputs = merge_outputs(collect, outputs, pipeline.flush())
        if decoder is not None and collect:
            outputs = BlockEncoder().encode_results(outputs)
        _reply(
            conn,
            reply_ring,
            (
                "ok",
                ShardOutcome(
                    shard, outputs, pipeline.metrics, pipeline.join.stats.as_dict()
                ),
            ),
            injector,
        )
    except Exception as exc:  # surfaced by the parent as a RuntimeError
        try:
            conn.send(("error", f"{type(exc).__name__}: {exc}"))
        except OSError:  # parent already gone; nothing left to report to
            pass
    finally:
        if recv_ring is not None:
            recv_ring.close()
        if reply_ring is not None:
            reply_ring.close()
        conn.close()
