"""One shard of a partitioned pipeline, and the executor↔worker protocol.

A shard is simply a full :class:`~repro.core.pipeline.QualityDrivenPipeline`
(K-slack fronts → Synchronizer → MSWJ → adaptation loop) fed the subset of
tuples the :class:`~repro.parallel.router.KeyRouter` assigns it.  This
module holds what both executors share:

* :class:`ShardOutcome` — the record a shard hands back when it finishes
  (its remaining outputs plus its :class:`~repro.core.pipeline.PipelineMetrics`);
* :func:`shard_worker` — the child-process loop run by the
  multiprocessing executor.

The ``Outputs`` accumulation helpers (result lists vs. plain counts, per
``PipelineConfig.collect_results``) live in :mod:`repro.core.pipeline`
and are re-exported here for the rest of the parallel layer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from multiprocessing.connection import Connection
from typing import Callable, Dict, List, Optional, Tuple

from ..core.blocks import (
    BlockDecoder,
    BlockEncoder,
    StateBlock,
    WindowPayload,
    decode_state,
    encode_state,
)
from ..core.pipeline import (
    Outputs,
    PipelineConfig,
    PipelineMetrics,
    QualityDrivenPipeline,
    empty_outputs,
    merge_outputs,
)
from ..core.tuples import StreamTuple
from .rebalancer import MigrationSpec
from .router import stable_hash


@dataclass
class ShardOutcome:
    """Everything one shard returns at the end of its run."""

    shard: int
    outputs: Outputs
    metrics: PipelineMetrics
    #: The shard's MSWJ counters (tuples in/out of order, probes, ...);
    #: see :class:`~repro.join.mswj.JoinStatistics.as_dict`.
    join_stats: Dict[str, int] = field(default_factory=dict)


# Message tags of the executor ↔ worker protocol.
MSG_BATCH = "batch"
MSG_FLUSH = "flush"
MSG_ABORT = "abort"
#: Rebalancing barrier, source side: payload is a
#: :class:`~repro.parallel.rebalancer.MigrationSpec`; the worker drains
#: to the beacon, carves out the moved slots' state, and replies
#: ``("state", [StateBlock, ...])`` — the only mid-stream reply in the
#: protocol (the parent blocks on it, making the barrier synchronous).
MSG_MIGRATE_OUT = "migrate_out"
#: Rebalancing barrier, destination side: payload is one
#: :class:`~repro.core.blocks.StateBlock`; no reply (pipe ordering
#: guarantees the adoption lands after every batch routed before it).
MSG_MIGRATE_IN = "migrate_in"

# Wire formats of the multiprocessing executor's tuple transfer.
#: Columnar :class:`~repro.core.blocks.TupleBlock` messages with a
#: schema-negotiating encoder/decoder pair per shard connection, and a
#: :class:`~repro.core.blocks.ResultBlock` for collected results on the
#: return path.  The default: one flat object per pipe message.
TRANSPORT_BLOCKS = "blocks"
#: Legacy per-object pickling: each message carries a list of
#: :class:`~repro.core.tuples.StreamTuple` graphs.  Kept as the
#: benchmark baseline and as a fallback for exotic payload values whose
#: pickling relies on object-graph context.
TRANSPORT_OBJECTS = "objects"

TRANSPORTS = (TRANSPORT_BLOCKS, TRANSPORT_OBJECTS)


def slot_classifier(spec: MigrationSpec) -> Callable[[StreamTuple], Optional[int]]:
    """Build ``tuple → destination shard (or None)`` from a migration spec.

    Mirrors the router's slot computation exactly — same per-stream key
    attributes, same :func:`~repro.parallel.router.stable_hash`, same
    slot count — so a tuple is classified as moving iff the parent's
    router will route its key to the new shard afterwards.
    """
    attr_of = spec.attr_by_stream
    num_slots = spec.num_slots
    moves = spec.moves

    def classify(t: StreamTuple) -> Optional[int]:
        return moves.get(
            stable_hash(t.values.get(attr_of[t.stream])) % num_slots
        )

    return classify


def value_classifier(spec: MigrationSpec) -> Callable[[object], Optional[int]]:
    """Value-level twin of :func:`slot_classifier`.

    Maps a partition-attribute *value* (not a tuple) to its destination
    shard, letting a tiered window store classify a cold segment from
    its attribute column or value summary without decoding the segment —
    the two classifiers agree by construction because the tuple form
    only ever hashes ``t.values.get(attr)``.
    """
    num_slots = spec.num_slots
    moves = spec.moves

    def classify_value(value: object) -> Optional[int]:
        return moves.get(stable_hash(value) % num_slots)

    return classify_value


def extract_shard_state(
    pipeline: QualityDrivenPipeline,
    shard: int,
    spec: MigrationSpec,
    encode: bool,
) -> Tuple[Outputs, List[StateBlock]]:
    """Source side of the rebalancing barrier, executor-agnostic.

    Runs the pipeline's beacon drain + extraction
    (:meth:`~repro.core.pipeline.QualityDrivenPipeline.prepare_migration`)
    and groups the carved-out state into one :class:`StateBlock` per
    destination shard (columnar-encoded when ``encode``, for the block
    transport's pipe).  Returns ``(drain outputs, state blocks)``.

    The extraction is tier-aware: passing the spec's per-stream key
    attributes plus :func:`value_classifier` lets a
    :class:`~repro.join.store.TieredStore` classify cold segments from
    their attribute columns, so a segment whose keys all move to one
    destination travels as an already-encoded
    :class:`~repro.core.blocks.ColdSegment` — no decode/re-encode on
    the barrier's hot path.
    """
    outputs, per_dest_windows, per_dest_pending = pipeline.prepare_migration(
        slot_classifier(spec),
        spec.beacon_ts,
        spec.drain_floor_ts,
        attr_by_stream=spec.attr_by_stream,
        value_classifier=value_classifier(spec),
    )
    slots_by_dest: Dict[int, List[int]] = {}
    for slot, dest in sorted(spec.moves.items()):
        slots_by_dest.setdefault(dest, []).append(slot)
    states: List[StateBlock] = []
    for dest, slots in sorted(slots_by_dest.items()):
        window: WindowPayload = []
        window.extend(per_dest_windows.get(dest, []))
        moved = per_dest_pending.get(dest, [])
        if encode:
            states.append(
                encode_state(shard, dest, tuple(slots), window, moved)
            )
        else:
            states.append(
                StateBlock(shard, dest, tuple(slots), window, moved)
            )
    return outputs, states


def adopt_shard_state(
    pipeline: QualityDrivenPipeline, state: StateBlock, decode: bool
) -> Outputs:
    """Destination side of the rebalancing barrier, executor-agnostic."""
    if decode:
        window_tuples, pending = decode_state(state)
    else:
        window_tuples, pending = state.window, state.pending
    return pipeline.adopt_migration(window_tuples, pending)


def shard_worker(
    conn: Connection,
    shard: int,
    config: PipelineConfig,
    transport: str = TRANSPORT_OBJECTS,
) -> None:
    """Child-process loop: drain tuple batches, flush, send the outcome back.

    Protocol (parent → child): any number of ``(MSG_BATCH, payload)``
    messages — ``payload`` is a list of tuples under
    :data:`TRANSPORT_OBJECTS` or a :class:`~repro.core.blocks.TupleBlock`
    under :data:`TRANSPORT_BLOCKS` — then exactly one ``(MSG_FLUSH,
    None)``.  The child replies with a single ``("ok", ShardOutcome)`` —
    or ``("error", text)`` if the pipeline raised — and exits.  Outputs
    accumulate in the child and travel back once (as a
    :class:`~repro.core.blocks.ResultBlock` in the outcome's ``outputs``
    field under block transport with collected results; the parent
    decodes before exposing the outcome), so steady-state IPC is just
    the batched tuple stream.  ``(MSG_ABORT, None)`` makes the child
    exit immediately with no reply — the shutdown path for abandoned
    runs; an explicit message rather than pipe EOF because under the
    ``fork`` start method sibling workers inherit copies of earlier pipe
    ends, so a parent-side close alone does not reach every child.

    Two rebalancing messages may interleave with the batch stream:
    ``(MSG_MIGRATE_OUT, MigrationSpec)`` drains the pipeline to the
    spec's beacon, extracts the moved slots' state, and replies
    ``("state", [StateBlock, ...])`` — the barrier's synchronous leg;
    ``(MSG_MIGRATE_IN, StateBlock)`` adopts migrated state with no
    reply.  Results produced by either leg join the worker's output
    accumulator like any batch results.

    Dispatch is exhaustive over the ``MSG_*`` tags (the
    ``protocol-exhaustiveness`` lint rule pins this): any other tag
    raises, surfacing as an ``("error", ...)`` reply, instead of being
    silently treated as a tuple batch.
    """
    try:
        pipeline = QualityDrivenPipeline(config)
        collect = config.collect_results
        decoder: Optional[BlockDecoder] = (
            BlockDecoder() if transport == TRANSPORT_BLOCKS else None
        )
        outputs: Outputs = empty_outputs(collect)
        while True:
            tag, payload = conn.recv()
            if tag == MSG_ABORT:
                return
            if tag == MSG_FLUSH:
                break
            if tag == MSG_MIGRATE_OUT:
                drained, states = extract_shard_state(
                    pipeline, shard, payload, encode=decoder is not None
                )
                outputs = merge_outputs(collect, outputs, drained)
                conn.send(("state", states))
                continue
            if tag == MSG_MIGRATE_IN:
                adopted = adopt_shard_state(
                    pipeline, payload, decode=decoder is not None
                )
                outputs = merge_outputs(collect, outputs, adopted)
                continue
            if tag != MSG_BATCH:
                # Exhaustive dispatch: an unknown tag is a protocol bug
                # (or version skew) — refusing it here beats silently
                # feeding its payload to the join as a tuple batch.
                raise ValueError(f"unknown protocol message tag {tag!r}")
            if decoder is not None:
                # Lazy decode: blocks materialize tuples here, right at
                # the point of consumption — the pipe and the parent
                # never hold per-tuple objects for this batch.
                payload = decoder.decode(payload)
            # Each IPC batch drains through the batched engine; identical
            # to a per-tuple loop, minus the per-tuple driver overhead.
            outputs = merge_outputs(collect, outputs, pipeline.process_batch(payload))
        outputs = merge_outputs(collect, outputs, pipeline.flush())
        if decoder is not None and collect:
            outputs = BlockEncoder().encode_results(outputs)
        conn.send(
            (
                "ok",
                ShardOutcome(
                    shard, outputs, pipeline.metrics, pipeline.join.stats.as_dict()
                ),
            )
        )
    except Exception as exc:  # surfaced by the parent as a RuntimeError
        try:
            conn.send(("error", f"{type(exc).__name__}: {exc}"))
        except OSError:  # parent already gone; nothing left to report to
            pass
    finally:
        conn.close()
