"""Skew-aware slot rebalancing for the partitioned pipeline.

Static key hashing spreads *keys* evenly, not *load*: the paper's
synthetic workloads draw join-attribute values from bounded Zipf
distributions (Sec. VI), and under skew a handful of hot keys pins one
shard while the rest idle — the problem PanJoin's adaptive partitioning
and Chakraborty's shared-nothing windowed-join work attack with
finer-than-shard partitions.  This module is the planning half of that
answer for :class:`~repro.parallel.pipeline.PartitionedPipeline`:

* the :class:`~repro.parallel.router.KeyRouter` already routes through a
  virtual-slot table and counts routed tuples per slot;
* the :class:`Rebalancer` periodically reads those counters and, when
  the max/mean shard-load imbalance crosses a threshold, computes a new
  slot→shard assignment by greedy longest-processing-time (LPT)
  scheduling — slots in decreasing load order, each to the least-loaded
  shard, sticking with the current shard on ties to minimize churn;
* the pipeline executes the resulting :class:`MigrationSpec` through the
  executors' drain/handoff protocol (``migrate``/``adopt``) and then
  flips the router's table.

Rebalancing is a pure performance knob: under lossless disorder
handling (fixed K covering the realized maximum delay; the barrier's
drain is floored at the per-stream progress minimum —
:attr:`~repro.parallel.router.KeyRouter.stream_progress_ts` — so
cross-stream timestamp lag cannot defeat it) the migrated run's merged
result sequence and summed ``JoinStatistics`` are byte-identical to the
static-routing run's — the property ``tests/test_rebalance.py`` pins at
1/2/4 shards.  A single hot *key*
is the scheme's floor: one key lives in one slot, so LPT can isolate it
on its own shard but never split it (that would break equi-join
co-location).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from .router import KeyRouter

#: Default max/mean shard-load ratio above which a plan is attempted.
DEFAULT_THRESHOLD = 1.25


def load_imbalance(loads: Sequence[int]) -> float:
    """Max/mean ratio of a per-shard load vector (1.0 = perfectly even).

    The one definition of "imbalance" shared by the planner, the skew
    benchmark, the tests, and the examples; an empty or all-zero vector
    reads as balanced.
    """
    total = sum(loads)
    if not total:
        return 1.0
    return max(loads) * len(loads) / total
#: Default minimum routed-tuple sample between plans; below it the load
#: signal is noise and the planner declines to move anything.
DEFAULT_MIN_SAMPLE = 256


@dataclass(frozen=True)
class MigrationSpec:
    """Everything a source shard needs to carve out migrating state.

    Travels parent → source worker on the rebalancing barrier.  The
    worker rebuilds the slot classifier locally from ``attr_by_stream``
    and ``num_slots`` (both mirror the parent's router, so worker-side
    slot computation agrees with routing exactly) and drains to
    ``beacon_ts`` — the parent's global arrival clock — before
    extraction, which is what keeps the handoff order-preserving.
    """

    #: slot → destination shard, restricted to slots leaving one source.
    moves: Dict[int, int]
    #: Per-stream partition-key attribute names (router mirror).
    attr_by_stream: Tuple[Optional[str], ...]
    #: Slot-table size (router mirror).
    num_slots: int
    #: Global arrival clock at the barrier; the drain watermark base.
    beacon_ts: int
    #: Completeness-gate progress bound: the minimum over streams of the
    #: maximum timestamp routed so far
    #: (:attr:`~repro.parallel.router.KeyRouter.stream_progress_ts`).
    #: The barrier's forced synchronizer drain stops at this minus K: a
    #: stream can trail the others in timestamp (or be entirely silent)
    #: while internally in order, and only the completeness gate keeps
    #: such runs exact — under lossless K no future input of stream *s*
    #: sits below its progress minus K, so the floored drain provably
    #: never emits past what the gate could still be holding.
    drain_floor_ts: int = 0


class Rebalancer:
    """Plans slot moves from the router's load counters (LPT greedy).

    Parameters
    ----------
    router:
        The pipeline's :class:`~repro.parallel.router.KeyRouter`; must be
        :attr:`~repro.parallel.router.KeyRouter.exact` (broadcast routing
        has no slots to move).
    threshold:
        Max/mean shard-load ratio that triggers planning.  1.0 would
        chase noise; the default 1.25 tolerates benign wobble.
    min_sample:
        Minimum routed tuples accumulated in the (decayed) slot counters
        before any plan is attempted.

    The planner halves the slot counters after every :meth:`plan` call,
    so the load signal is an exponentially decayed recency window rather
    than an all-history average — a workload whose hot set drifts keeps
    getting re-planned against its *current* shape.
    """

    def __init__(
        self,
        router: KeyRouter,
        threshold: float = DEFAULT_THRESHOLD,
        min_sample: int = DEFAULT_MIN_SAMPLE,
    ) -> None:
        if not router.exact:
            raise ValueError(
                "rebalancing requires exact hash routing; broadcast "
                "conditions have no partition key and no slots to move"
            )
        if threshold < 1.0:
            raise ValueError(f"threshold must be >= 1.0, got {threshold}")
        self.router = router
        self.threshold = threshold
        self.min_sample = min_sample
        self.plans_attempted = 0
        self.plans_applied = 0

    def plan(self) -> Optional[Dict[int, int]]:
        """One planning step: return ``{slot: new_shard}`` moves, or None.

        Returns ``None`` when the sample is too small, the imbalance is
        under :attr:`threshold`, or the LPT assignment cannot strictly
        lower the maximum shard load (e.g. a single all-hot key already
        isolated on its own shard).  Always decays the router's slot
        counters, applied or not.
        """
        router = self.router
        loads = router.slot_loads
        table = router.slot_table
        num_shards = router.num_shards
        self.plans_attempted += 1
        try:
            if num_shards < 2:
                return None
            total = sum(loads)
            if total < self.min_sample:
                return None
            shard_loads = [0] * num_shards
            for slot, load in enumerate(loads):
                shard_loads[table[slot]] += load
            current_max = max(shard_loads)
            if current_max * num_shards < self.threshold * total:
                return None
            # Greedy LPT: heaviest slots first, each onto the currently
            # least-loaded shard; prefer the slot's current shard on load
            # ties (stickiness), then the lowest shard index
            # (determinism).  Zero-load slots stay where they are —
            # moving state nobody is touching buys nothing.
            active = sorted(
                (slot for slot, load in enumerate(loads) if load),
                key=lambda slot: (-loads[slot], slot),
            )
            new_loads = [0] * num_shards
            new_table = list(table)
            for slot in active:
                best = table[slot]
                best_load = new_loads[best]
                for shard in range(num_shards):
                    if new_loads[shard] < best_load:
                        best = shard
                        best_load = new_loads[shard]
                new_table[slot] = best
                new_loads[best] += loads[slot]
            if max(new_loads) >= current_max:
                return None
            moves = {
                slot: new_table[slot]
                for slot in active
                if new_table[slot] != table[slot]
            }
            if not moves:
                return None
            self.plans_applied += 1
            return moves
        finally:
            for slot, load in enumerate(loads):
                if load:
                    loads[slot] = load >> 1

    def imbalance(self) -> float:
        """Current max/mean ratio of the router's cumulative shard loads
        (1.0 = perfectly even; only meaningful once tuples have routed).
        """
        return load_imbalance(self.router.shard_loads)
