"""Hash routing of input tuples to join shards, through a slot table.

Partitioned execution of an equi-join is exact when every tuple can be
routed by a key value that all components of any join result share (the
shared-nothing stream-join partitioning of Chakraborty's windowed-join
cluster work and PanJoin's hash sub-windows).  The
:class:`KeyRouter` asks the :class:`~repro.join.conditions.JoinCondition`
for such a per-stream key assignment
(:meth:`~repro.join.conditions.JoinCondition.partition_attributes`) and
hash-routes every tuple to exactly one shard.  Conditions without a
complete equi key (pure theta/band predicates, star joins over distinct
attributes, cross joins) fall back to *broadcast*: every shard receives
every tuple and maintains the full join state, which gains no partition
parallelism — callers should prefer one shard there.

Routing is indirect: ``stable_hash(key) → slot → shard``, through a
*slot table* of ``slots_per_shard × num_shards`` virtual slots (the
consistent-slot scheme of partitioned stores, sized so each shard owns
many slots).  The initial table assigns ``slot % num_shards``, which —
because the slot count is a multiple of the shard count — makes the
key→shard map *identical* to direct ``stable_hash(key) % num_shards``
hashing.  The indirection exists so a
:class:`~repro.parallel.rebalancer.Rebalancer` can repair load skew at
slot granularity: reassigning a slot moves one small key cohort between
shards, and the router's per-slot routed-tuple counters are exactly the
load signal the rebalancer plans from.

Hashing must agree across worker processes and across runs, so the
router never uses the builtin ``hash`` (randomized per process for
strings); see :func:`stable_hash`.
"""

from __future__ import annotations

import numbers
import zlib
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.tuples import StreamTuple
from ..join.conditions import JoinCondition

#: Virtual slots per shard in the routing table.  64 keeps the table a
#: few hundred entries at typical shard counts — cheap to scan for the
#: rebalancer, fine-grained enough that one slot holds ~1/64th of a
#: shard's key space.
DEFAULT_SLOTS_PER_SHARD = 64


def stable_hash(value: object) -> int:
    """Deterministic hash, stable across processes and interpreter runs.

    Must be consistent with ``==`` on the key values equi predicates
    compare, or tuples that join would land on different shards.  For
    numbers Python's own ``hash`` already guarantees exactly that across
    numeric types (``hash(5) == hash(5.0) == hash(Decimal(5)) ==
    hash(Fraction(5))``) and — unlike string hashing — is *not*
    randomized per process, so it is used directly.  Tuples (composite
    keys) combine their elements' stable hashes recursively, so
    ``(1, 2) == (1.0, 2.0)`` co-locates too; frozensets combine
    commutatively (their repr order is not canonical).  Everything else
    goes through CRC-32 of its ``repr``, which is process-stable; equal
    keys of other kinds whose reprs differ (e.g. objects with the
    default id-based repr) are not supported for exact routing.
    """
    if isinstance(value, numbers.Number):
        if value != value:  # NaN: id-based hash since 3.10; pin it
            return 0x7FC00000
        return hash(value)  # repro-lint: disable=determinism
    if isinstance(value, tuple):
        combined = 0x345678
        for item in value:
            combined = ((combined * 1000003) ^ stable_hash(item)) & 0xFFFFFFFF
        return combined ^ len(value)
    if isinstance(value, frozenset):
        # Unordered: equal frozensets may repr in different element order,
        # so combine element hashes commutatively.
        combined = 0
        for item in value:
            combined ^= stable_hash(item)
        return combined ^ len(value)
    return zlib.crc32(repr(value).encode("utf-8", "backslashreplace"))


class KeyRouter:
    """Routes each input tuple to one shard by equi-join key, or to all.

    ``attributes`` is the per-stream key assignment (``None`` when the
    condition is not hash-partitionable); :attr:`exact` tells callers
    whether sharded execution partitions the result space exactly.

    Exact routing goes through the virtual-slot table (module
    docstring): :attr:`slot_table` maps each of
    ``slots_per_shard × num_shards`` slots to a shard, and routing a
    tuple increments its slot's entry in :attr:`slot_loads` (the
    rebalancer's planning signal, decayed by it between plans), the
    owning shard's entry in :attr:`shard_loads` (cumulative, for
    imbalance reporting), and advances :attr:`watermark_ts` (the global
    arrival clock the migration barrier drains to) and
    :attr:`stream_progress_ts` (the per-stream progress that floors the
    barrier's forced drain).  Broadcast routing bypasses the table
    entirely — there is no key, hence no slot.
    """

    def __init__(
        self,
        condition: JoinCondition,
        num_streams: int,
        num_shards: int,
        slots_per_shard: int = DEFAULT_SLOTS_PER_SHARD,
    ) -> None:
        if num_shards < 1:
            raise ValueError(f"num_shards must be >= 1, got {num_shards}")
        if slots_per_shard < 1:
            raise ValueError(
                f"slots_per_shard must be >= 1, got {slots_per_shard}"
            )
        self.num_shards = num_shards
        self.num_streams = num_streams
        self.attributes: Optional[Dict[int, str]] = condition.partition_attributes(
            num_streams
        )
        self._all_shards: Tuple[int, ...] = tuple(range(num_shards))
        # Flat per-stream key-attribute lookup for the batched routing
        # path: indexing a tuple beats a dict probe per routed tuple.
        self._attr_by_stream: Optional[Tuple[Optional[str], ...]] = (
            None
            if self.attributes is None
            else tuple(self.attributes.get(s) for s in range(num_streams))
        )
        #: Number of virtual slots; a multiple of ``num_shards`` so the
        #: identity table reproduces direct modulo hashing exactly.
        self.num_slots = slots_per_shard * num_shards
        #: slot → shard.  Starts as ``slot % num_shards``; the
        #: rebalancer rewrites entries via :meth:`reassign`.
        self.slot_table: List[int] = [
            slot % num_shards for slot in range(self.num_slots)
        ]
        #: Routed tuples per slot since the rebalancer last decayed them.
        self.slot_loads: List[int] = [0] * self.num_slots
        #: Cumulative routed tuples per shard (imbalance reporting).
        self.shard_loads: List[int] = [0] * num_shards
        #: Max ``max(arrival, ts)`` over all routed tuples — the global
        #: arrival clock; the migration barrier's beacon.
        self.watermark_ts = 0
        #: Per-stream maximum routed timestamp.  ``min(stream_progress_ts)``
        #: is the completeness-gate progress bound: under lossless
        #: disorder handling (per-stream K covering realized delays) no
        #: future synchronizer input of stream *s* can carry a timestamp
        #: below ``stream_progress_ts[s] - K``, so the migration
        #: barrier's forced drain — floored at ``min(progress) - K`` —
        #: provably never emits past what any shard's completeness gate
        #: could still be holding (a silent or timestamp-trailing stream
        #: pins the floor down, exactly as it pins the gate).
        self.stream_progress_ts: List[int] = [0] * num_streams

    @property
    def exact(self) -> bool:
        """True when hash partitioning preserves the exact result space."""
        return self.attributes is not None

    def key_of(self, t: StreamTuple) -> object:
        """The tuple's partition-key value (requires :attr:`exact`)."""
        if self.attributes is None:
            raise ValueError("condition has no partition key; tuples broadcast")
        return t.get(self.attributes[t.stream])

    def slot_of(self, t: StreamTuple) -> int:
        """The tuple's virtual routing slot (requires :attr:`exact`)."""
        return stable_hash(self.key_of(t)) % self.num_slots

    def shard_of(self, t: StreamTuple) -> Optional[int]:
        """Target shard for ``t``, or ``None`` meaning broadcast.

        A missing key attribute reads as ``None`` and hashes like any
        other value — consistent with ``EquiPredicate``, where ``None``
        only matches ``None``, so all such tuples meet in one shard.
        Pure query: unlike :meth:`route` it updates no load counters.
        """
        if self.attributes is None:
            return None
        return self.slot_table[self.slot_of(t)]

    def grow(self, count: int = 1) -> Dict[int, int]:
        """Admit ``count`` new shards; return the rebalancing moves.

        The slot count is *fixed* at construction — growing adds shards,
        not slots, so every existing key keeps its slot and only slot →
        shard entries change.  The returned moves rebalance ownership to
        an even split (each shard ends within one slot of
        ``num_slots / new_total``), taking the minimum number of slots
        from over-quota shards in slot order — deterministic, so two
        runs that grow at the same point migrate identically.

        Like :class:`~repro.parallel.rebalancer.Rebalancer` plans, the
        moves are **not** applied here: the caller must migrate the
        moved slots' state first and then :meth:`reassign`.  Requires
        :attr:`exact` routing (a broadcast condition has no slots to
        hand over, so every worker already holds full state and growing
        cannot partition it).
        """
        if count < 1:
            raise ValueError(f"grow count must be >= 1, got {count}")
        if self.attributes is None:
            raise ValueError(
                "condition has no partition key; broadcast routing cannot grow"
            )
        new_total = self.num_shards + count
        old_shards = self.num_shards
        self.num_shards = new_total
        self._all_shards = tuple(range(new_total))
        self.shard_loads.extend([0] * count)
        quota, extra = divmod(self.num_slots, new_total)
        target = [quota + (1 if s < extra else 0) for s in range(new_total)]
        owned = [0] * new_total
        overflow: List[int] = []
        for slot, shard in enumerate(self.slot_table):
            if owned[shard] < target[shard]:
                owned[shard] += 1
            else:
                overflow.append(slot)
        moves: Dict[int, int] = {}
        dest = old_shards  # fill the new shards first
        for slot in overflow:
            while owned[dest] >= target[dest]:
                dest = (dest + 1) % new_total
            moves[slot] = dest
            owned[dest] += 1
        return moves

    def reassign(self, moves: Dict[int, int]) -> None:
        """Apply a rebalancing plan: rewrite ``slot → shard`` entries.

        The caller (:class:`~repro.parallel.pipeline.PartitionedPipeline`)
        must have migrated the moved slots' shard state first — the
        router only changes where *future* tuples go.
        """
        for slot, shard in moves.items():
            if not 0 <= slot < self.num_slots:
                raise ValueError(f"slot {slot} outside [0, {self.num_slots})")
            if not 0 <= shard < self.num_shards:
                raise ValueError(
                    f"shard {shard} outside [0, {self.num_shards})"
                )
            self.slot_table[slot] = shard

    def route(self, t: StreamTuple) -> Tuple[int, ...]:
        """Shards that must receive ``t`` (one, or all when broadcasting).

        The single-tuple sibling of :meth:`route_batch`: updates the same
        slot/shard load counters and the arrival watermark.
        """
        if self.attributes is None:
            return self._all_shards
        stream = t.stream
        slot = stable_hash(t.get(self.attributes[stream])) % self.num_slots
        self.slot_loads[slot] += 1
        shard = self.slot_table[slot]
        self.shard_loads[shard] += 1
        ts = t.ts
        arrival = t.arrival
        if arrival < ts:
            arrival = ts
        if arrival > self.watermark_ts:
            self.watermark_ts = arrival
        if ts > self.stream_progress_ts[stream]:
            self.stream_progress_ts[stream] = ts
        return (shard,)

    def route_batch(
        self, batch: Sequence[StreamTuple]
    ) -> Optional[List[List[StreamTuple]]]:
        """Partition a whole arrival batch into per-shard lists, one pass.

        Returns ``None`` for broadcast conditions (no partition key) —
        the caller feeds the batch to every shard unsliced.  The routing
        loop is the vectorized sibling of :meth:`shard_of`: per-stream
        key attributes are hoisted into a flat tuple, the per-shard
        ``append`` methods are pre-bound, and the dominant numeric-key
        case inlines the :func:`stable_hash` fast path (plain ``hash``,
        which ints can never reach the NaN branch of), so each tuple
        pays one dict probe, one hash, one modulo, one slot-table load
        and the counter updates — no per-tuple method dispatch.  Shard
        assignment is identical to :meth:`shard_of` for every tuple.
        """
        if self.attributes is None:
            return None
        per_shard: List[List[StreamTuple]] = [
            [] for _ in range(self.num_shards)
        ]
        appends = [shard_list.append for shard_list in per_shard]
        attr_of = self._attr_by_stream
        num_streams = self.num_streams
        num_slots = self.num_slots
        table = self.slot_table
        loads = self.slot_loads
        totals = self.shard_loads
        watermark = self.watermark_ts
        progress = self.stream_progress_ts
        _hash = stable_hash
        for t in batch:
            stream = t.stream
            if not 0 <= stream < num_streams:
                raise ValueError(
                    f"tuple stream index {stream} outside [0, {num_streams})"
                )
            value = t.values.get(attr_of[stream])
            if type(value) is int:
                # Int fast path: hash(int) is process-stable by design
                # (stable_hash's own numeric branch relies on it).
                slot = hash(value) % num_slots  # repro-lint: disable=determinism
            else:
                slot = _hash(value) % num_slots
            loads[slot] += 1
            shard = table[slot]
            totals[shard] += 1
            ts = t.ts
            arrival = t.arrival
            if arrival < ts:
                arrival = ts
            if arrival > watermark:
                watermark = arrival
            if ts > progress[stream]:
                progress[stream] = ts
            appends[shard](t)
        self.watermark_ts = watermark
        return per_shard
