"""Hash routing of input tuples to join shards.

Partitioned execution of an equi-join is exact when every tuple can be
routed by a key value that all components of any join result share (the
shared-nothing stream-join partitioning of Chakraborty's windowed-join
cluster work and PanJoin's hash sub-windows).  The
:class:`KeyRouter` asks the :class:`~repro.join.conditions.JoinCondition`
for such a per-stream key assignment
(:meth:`~repro.join.conditions.JoinCondition.partition_attributes`) and
hash-routes every tuple to exactly one shard.  Conditions without a
complete equi key (pure theta/band predicates, star joins over distinct
attributes, cross joins) fall back to *broadcast*: every shard receives
every tuple and maintains the full join state, which gains no partition
parallelism — callers should prefer one shard there.

Hashing must agree across worker processes and across runs, so the
router never uses the builtin ``hash`` (randomized per process for
strings); see :func:`stable_hash`.
"""

from __future__ import annotations

import numbers
import zlib
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.tuples import StreamTuple
from ..join.conditions import JoinCondition


def stable_hash(value: object) -> int:
    """Deterministic hash, stable across processes and interpreter runs.

    Must be consistent with ``==`` on the key values equi predicates
    compare, or tuples that join would land on different shards.  For
    numbers Python's own ``hash`` already guarantees exactly that across
    numeric types (``hash(5) == hash(5.0) == hash(Decimal(5)) ==
    hash(Fraction(5))``) and — unlike string hashing — is *not*
    randomized per process, so it is used directly.  Tuples (composite
    keys) combine their elements' stable hashes recursively, so
    ``(1, 2) == (1.0, 2.0)`` co-locates too; frozensets combine
    commutatively (their repr order is not canonical).  Everything else
    goes through CRC-32 of its ``repr``, which is process-stable; equal
    keys of other kinds whose reprs differ (e.g. objects with the
    default id-based repr) are not supported for exact routing.
    """
    if isinstance(value, numbers.Number):
        if value != value:  # NaN: id-based hash since 3.10; pin it
            return 0x7FC00000
        return hash(value)
    if isinstance(value, tuple):
        combined = 0x345678
        for item in value:
            combined = ((combined * 1000003) ^ stable_hash(item)) & 0xFFFFFFFF
        return combined ^ len(value)
    if isinstance(value, frozenset):
        # Unordered: equal frozensets may repr in different element order,
        # so combine element hashes commutatively.
        combined = 0
        for item in value:
            combined ^= stable_hash(item)
        return combined ^ len(value)
    return zlib.crc32(repr(value).encode("utf-8", "backslashreplace"))


class KeyRouter:
    """Routes each input tuple to one shard by equi-join key, or to all.

    ``attributes`` is the per-stream key assignment (``None`` when the
    condition is not hash-partitionable); :attr:`exact` tells callers
    whether sharded execution partitions the result space exactly.
    """

    def __init__(
        self, condition: JoinCondition, num_streams: int, num_shards: int
    ) -> None:
        if num_shards < 1:
            raise ValueError(f"num_shards must be >= 1, got {num_shards}")
        self.num_shards = num_shards
        self.num_streams = num_streams
        self.attributes: Optional[Dict[int, str]] = condition.partition_attributes(
            num_streams
        )
        self._all_shards: Tuple[int, ...] = tuple(range(num_shards))
        # Flat per-stream key-attribute lookup for the batched routing
        # path: indexing a tuple beats a dict probe per routed tuple.
        self._attr_by_stream: Optional[Tuple[Optional[str], ...]] = (
            None
            if self.attributes is None
            else tuple(self.attributes.get(s) for s in range(num_streams))
        )

    @property
    def exact(self) -> bool:
        """True when hash partitioning preserves the exact result space."""
        return self.attributes is not None

    def key_of(self, t: StreamTuple) -> object:
        """The tuple's partition-key value (requires :attr:`exact`)."""
        if self.attributes is None:
            raise ValueError("condition has no partition key; tuples broadcast")
        return t.get(self.attributes[t.stream])

    def shard_of(self, t: StreamTuple) -> Optional[int]:
        """Target shard for ``t``, or ``None`` meaning broadcast.

        A missing key attribute reads as ``None`` and hashes like any
        other value — consistent with ``EquiPredicate``, where ``None``
        only matches ``None``, so all such tuples meet in one shard.
        """
        if self.attributes is None:
            return None
        return stable_hash(self.key_of(t)) % self.num_shards

    def route(self, t: StreamTuple) -> Tuple[int, ...]:
        """Shards that must receive ``t`` (one, or all when broadcasting)."""
        shard = self.shard_of(t)
        if shard is None:
            return self._all_shards
        return (shard,)

    def route_batch(
        self, batch: Sequence[StreamTuple]
    ) -> Optional[List[List[StreamTuple]]]:
        """Partition a whole arrival batch into per-shard lists, one pass.

        Returns ``None`` for broadcast conditions (no partition key) —
        the caller feeds the batch to every shard unsliced.  The routing
        loop is the vectorized sibling of :meth:`shard_of`: per-stream
        key attributes are hoisted into a flat tuple, the per-shard
        ``append`` methods are pre-bound, and the dominant numeric-key
        case inlines the :func:`stable_hash` fast path (plain ``hash``,
        which ints can never reach the NaN branch of), so each tuple
        pays one dict probe, one hash, one modulo and one append —
        no per-tuple method dispatch.  Shard assignment is identical to
        :meth:`shard_of` for every tuple.
        """
        if self.attributes is None:
            return None
        per_shard: List[List[StreamTuple]] = [
            [] for _ in range(self.num_shards)
        ]
        appends = [shard_list.append for shard_list in per_shard]
        attr_of = self._attr_by_stream
        num_streams = self.num_streams
        num_shards = self.num_shards
        _hash = stable_hash
        for t in batch:
            stream = t.stream
            if not 0 <= stream < num_streams:
                raise ValueError(
                    f"tuple stream index {stream} outside [0, {num_streams})"
                )
            value = t.values.get(attr_of[stream])
            if type(value) is int:
                appends[hash(value) % num_shards](t)
            else:
                appends[_hash(value) % num_shards](t)
        return per_shard
