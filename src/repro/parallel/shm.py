"""Single-producer/single-consumer ring buffers over POSIX shared memory.

The pipe transport pays for every hot-path byte twice: once to pickle it
into the pipe and once for the kernel to copy it out again.  A
:class:`ShmRing` removes the second copy — the producer writes a frame
into a ``multiprocessing.shared_memory`` segment exactly once and the
consumer reads it in place.  The ``transport="shm"`` executor keeps the
*control* plane on the pipe (tiny ``(MSG_RING, seq)`` doorbells, replies,
credits), which preserves the pipe's FIFO ordering guarantees — and with
them the supervised executor's epoch/seq accounting — while the *data*
plane rides the ring.

Layout and invariants
---------------------
One segment per ring per direction::

    [ write_pos: u64 | read_pos: u64 | data: capacity bytes ... ]

Both cursors are **monotone logical byte offsets** (they never wrap; the
physical offset is ``pos % capacity``), each written by exactly one side:
``write_pos`` by the producer, ``read_pos`` by the consumer.  A frame is
``<QII`` (seq, payload length, CRC-32) followed by the payload, split
across the physical wrap when needed.  The producer publishes
``write_pos`` only **after** the complete frame is in place, so a torn
write — a producer dying mid-frame — is never observable as data, only
as an unadvanced cursor (the crash-mid-ring-write fault tests pin this).
The consumer checks the frame's sequence number against the doorbell and
its CRC against the payload before advancing ``read_pos``.

Lifecycle: the parent side ``create()``\\ s and later ``unlink()``\\ s
every segment (on *every* unwind path — constructor failure, dead
worker, ``close()`` after failure); workers ``attach()`` and only ever
``close()`` their mapping.  The ``resource_tracker`` registers even the
workers' non-owning attachments (bpo-39959), but worker processes share
the parent's tracker daemon, so the duplicate registration collapses in
its name set and the parent's single ``unlink`` retires it — and if the
whole tree dies without unwinding, the tracker reaps the segment.
"""

from __future__ import annotations

import itertools
import os
import struct
import time
import zlib
from multiprocessing import shared_memory
from typing import Callable, Optional, Tuple

__all__ = [
    "DEFAULT_RING_BYTES",
    "RingAborted",
    "RingError",
    "RingIntegrityError",
    "RingTimeout",
    "ShmRing",
]

#: Default data capacity of one ring.  Large enough that a production
#: batch frame (~batch_size tuples, columnar-encoded) fits many times
#: over; oversized frames transparently fall back to the pipe.
DEFAULT_RING_BYTES = 1 << 20

#: Smallest permitted capacity — below this even a header-only frame
#: could not make progress.  Tests use small-but-valid capacities to
#: force wraparound on every few frames.
MIN_RING_BYTES = 64

#: Cursor block at the head of the segment: write_pos then read_pos.
_CURSORS = struct.Struct("<QQ")
_HEADER_BYTES = _CURSORS.size

#: Per-frame header: sequence number, payload length, CRC-32 of payload.
_FRAME = struct.Struct("<QII")

#: Spin granularity of the blocking waits.  Short enough that a granted
#: credit or freed slot is noticed promptly, long enough not to burn a
#: core while a peer is busy.
_POLL_S = 0.0005

#: Deterministic segment names (no wall clock, no randomness — the
#: determinism lint rule holds for this module too): pid + process-local
#: counter, with a ``FileExistsError`` retry for the pathological case
#: of a recycled pid colliding with a leaked segment.
_NAME_COUNTER = itertools.count()

#: A picklable ``(name, capacity)`` handle that crosses the fork/spawn
#: boundary in the worker ``Process`` args.
RingDescriptor = Tuple[str, int]


class RingError(RuntimeError):
    """Base class of ring transport failures."""


class RingTimeout(RingError):
    """A blocking ring operation exceeded its deadline."""


class RingAborted(RingError):
    """A blocking ring operation observed the peer's death."""


class RingIntegrityError(RingError):
    """A frame failed its sequence or CRC check — torn or corrupt data."""


class ShmRing:
    """One SPSC byte ring over a shared-memory segment.

    Exactly one process writes (:meth:`write_frame`) and exactly one
    reads (:meth:`read_frame`); the executor arms two rings per shard,
    one per direction, so the invariant holds by construction.
    """

    def __init__(
        self, shm: shared_memory.SharedMemory, capacity: int, owner: bool
    ) -> None:
        self._shm = shm
        self._capacity = capacity
        self._owner = owner
        self._closed = False
        self._unlinked = False
        # Local mirrors of the cursors this side owns; peers are read
        # fresh from the segment on every wait check.
        self._write_pos = self._peer_write_pos()
        self._read_pos = self._peer_read_pos()
        self._next_seq = 1

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    @classmethod
    def create(cls, capacity: int = DEFAULT_RING_BYTES) -> "ShmRing":
        """Create and own a fresh zeroed ring segment (parent side)."""
        if capacity < MIN_RING_BYTES:
            raise ValueError(
                f"ring capacity must be >= {MIN_RING_BYTES}, got {capacity}"
            )
        while True:
            name = f"repro-ring-{os.getpid()}-{next(_NAME_COUNTER)}"
            try:
                shm = shared_memory.SharedMemory(
                    name=name, create=True, size=_HEADER_BYTES + capacity
                )
                break
            except FileExistsError:  # pid recycling over a leaked segment
                continue
        _CURSORS.pack_into(shm.buf, 0, 0, 0)
        return cls(shm, capacity, owner=True)

    @classmethod
    def attach(cls, name: str, capacity: int) -> "ShmRing":
        """Attach to an existing ring by descriptor (worker side)."""
        # The attachment registers with the resource tracker as if it
        # owned the segment (bpo-39959); workers share the parent's
        # tracker daemon, so the duplicate collapses in its name set and
        # the parent's unlink retires it — no unregister dance needed
        # (a child-side unregister would steal the parent's entry and
        # make the later unlink complain).
        shm = shared_memory.SharedMemory(name=name)
        if shm.size < _HEADER_BYTES + capacity:
            shm.close()
            raise ValueError(
                f"segment {name!r} holds {shm.size} bytes, ring needs "
                f"{_HEADER_BYTES + capacity}"
            )
        return cls(shm, capacity, owner=False)

    @property
    def name(self) -> str:
        return self._shm.name

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def descriptor(self) -> RingDescriptor:
        """The picklable ``(name, capacity)`` handle workers attach by."""
        return (self._shm.name, self._capacity)

    def close(self) -> None:
        """Drop this side's mapping.  Idempotent."""
        if self._closed:
            return
        self._closed = True
        self._shm.close()

    def unlink(self) -> None:
        """Remove the segment from the system (owner side).  Idempotent,
        tolerant of the segment already being gone."""
        if not self._owner or self._unlinked:
            return
        self._unlinked = True
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already removed
            pass

    # ------------------------------------------------------------------
    # data plane
    # ------------------------------------------------------------------

    def fits(self, payload_len: int) -> bool:
        """Whether a payload of this size can *ever* ride this ring."""
        return _FRAME.size + payload_len <= self._capacity

    def write_frame(
        self,
        payload: bytes,
        *,
        should_abort: Optional[Callable[[], bool]] = None,
        timeout_s: Optional[float] = None,
    ) -> int:
        """Write one frame, blocking until the ring has room.

        Returns the frame's sequence number (what the doorbell message
        carries).  ``should_abort`` is polled while waiting — the parent
        passes a worker-death probe so a dead consumer surfaces as
        :class:`RingAborted` instead of an indefinite stall.
        """
        total = _FRAME.size + len(payload)
        if total > self._capacity:
            raise ValueError(
                f"frame of {total} bytes exceeds ring capacity {self._capacity}"
            )
        deadline = None if timeout_s is None else time.perf_counter() + timeout_s
        while self._capacity - (self._write_pos - self._peer_read_pos()) < total:
            self._wait(should_abort, deadline, "free ring space")
        seq = self._next_seq
        header = _FRAME.pack(seq, len(payload), zlib.crc32(payload))
        self._copy_in(self._write_pos, header)
        self._copy_in(self._write_pos + _FRAME.size, payload)
        # Publish *after* the full frame is in place: a crash anywhere
        # above leaves the cursor unmoved and the torn bytes invisible.
        self._write_pos += total
        struct.pack_into("<Q", self._shm.buf, 0, self._write_pos)
        self._next_seq = seq + 1
        return seq

    def read_frame(
        self,
        expected_seq: int,
        *,
        should_abort: Optional[Callable[[], bool]] = None,
        timeout_s: Optional[float] = None,
    ) -> bytes:
        """Read the next frame, verifying its sequence number and CRC."""
        deadline = None if timeout_s is None else time.perf_counter() + timeout_s
        while self._peer_write_pos() <= self._read_pos:
            self._wait(should_abort, deadline, f"frame {expected_seq}")
        seq, length, crc = _FRAME.unpack(self._copy_out(self._read_pos, _FRAME.size))
        available = self._peer_write_pos() - self._read_pos
        if seq != expected_seq:
            raise RingIntegrityError(
                f"ring frame sequence {seq} != expected {expected_seq}"
            )
        if _FRAME.size + length > available:
            raise RingIntegrityError(
                f"ring frame claims {length} payload bytes, only "
                f"{available - _FRAME.size} published"
            )
        payload = self._copy_out(self._read_pos + _FRAME.size, length)
        if zlib.crc32(payload) != crc:
            raise RingIntegrityError(f"ring frame {seq} failed its CRC check")
        self._read_pos += _FRAME.size + length
        struct.pack_into("<Q", self._shm.buf, 8, self._read_pos)
        return payload

    def torn_write(self, payload: bytes) -> None:
        """Test hook: leave the torn state of a crash mid-write.

        Writes the frame header and *half* the payload without ever
        publishing the write cursor — exactly what a producer dying
        between :meth:`write_frame`'s copies leaves behind.  A correct
        consumer must never observe it as data.
        """
        header = _FRAME.pack(self._next_seq, len(payload), zlib.crc32(payload))
        self._copy_in(self._write_pos, header)
        self._copy_in(self._write_pos + _FRAME.size, payload[: len(payload) // 2])

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _peer_write_pos(self) -> int:
        return int(struct.unpack_from("<Q", self._shm.buf, 0)[0])

    def _peer_read_pos(self) -> int:
        return int(struct.unpack_from("<Q", self._shm.buf, 8)[0])

    def _wait(
        self,
        should_abort: Optional[Callable[[], bool]],
        deadline: Optional[float],
        waiting_for: str,
    ) -> None:
        if should_abort is not None and should_abort():
            raise RingAborted(f"ring peer died while awaiting {waiting_for}")
        if deadline is not None and time.perf_counter() > deadline:
            raise RingTimeout(f"ring timed out awaiting {waiting_for}")
        time.sleep(_POLL_S)

    def _copy_in(self, pos: int, data: bytes) -> None:
        buf = self._shm.buf
        offset = pos % self._capacity
        first = min(len(data), self._capacity - offset)
        start = _HEADER_BYTES + offset
        buf[start : start + first] = data[:first]
        if first < len(data):
            buf[_HEADER_BYTES : _HEADER_BYTES + len(data) - first] = data[first:]

    def _copy_out(self, pos: int, length: int) -> bytes:
        buf = self._shm.buf
        offset = pos % self._capacity
        first = min(length, self._capacity - offset)
        start = _HEADER_BYTES + offset
        chunk = bytes(buf[start : start + first])
        if first < length:
            chunk += bytes(buf[_HEADER_BYTES : _HEADER_BYTES + length - first])
        return chunk
