"""Core framework: K-slack, Synchronizer, adaptation, model, pipeline (paper Fig. 2)."""
