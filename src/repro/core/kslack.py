"""The K-slack input-sorting buffer (paper Sec. III-A, Fig. 3).

K-slack handles *intra-stream* disorder: a buffer of ``K`` time units
holds back tuples of one stream and releases them in timestamp order.
Whenever the stream's local current time ``iT`` (maximum timestamp seen)
advances, every buffered tuple ``e`` with ``e.ts + K <= iT`` is emitted,
smallest timestamp first.  A tuple whose delay exceeds ``K`` cannot be
fully re-ordered and leaves the buffer still out of order, but with its
delay reduced by ``K`` (paper Fig. 3).

The buffer size ``K`` is dynamic: the Buffer-Size Manager updates it at
every adaptation step via :meth:`KSlackBuffer.set_k`.  Shrinking ``K``
releases newly-eligible tuples immediately.

On entry each tuple is annotated with its raw delay
``delay(e) = iT - e.ts`` (paper Sec. IV-B); the annotation rides along to
the join operator for productivity profiling.
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional, Sequence

from .tuples import StreamTuple


class KSlackBuffer:
    """Sorting buffer of one input stream with a dynamic slack ``K``.

    Parameters
    ----------
    k_ms:
        Initial buffer size in milliseconds (``K_i``); 0 means pass-through
        (tuples are forwarded at arrival, still annotated with their delay).
    """

    def __init__(self, k_ms: int = 0) -> None:
        if k_ms < 0:
            raise ValueError(f"K must be non-negative, got {k_ms}")
        self._k = int(k_ms)
        self._local_time: Optional[int] = None
        self._heap: List = []  # (ts, tie, tuple)
        self._tie = 0
        self._flushed = False
        self.tuples_seen = 0
        self.max_observed_delay = 0

    # ------------------------------------------------------------------
    # configuration
    # ------------------------------------------------------------------

    @property
    def k(self) -> int:
        return self._k

    def set_k(self, k_ms: int) -> List[StreamTuple]:
        """Update ``K``; returns tuples released if the buffer shrank."""
        if k_ms < 0:
            raise ValueError(f"K must be non-negative, got {k_ms}")
        shrank = k_ms < self._k
        self._k = int(k_ms)
        return self._drain_ready() if shrank else []

    @property
    def local_time(self) -> int:
        """The stream's local current time ``iT`` (0 before any tuple)."""
        return self._local_time if self._local_time is not None else 0

    @property
    def buffered(self) -> int:
        return len(self._heap)

    @property
    def flushed(self) -> bool:
        """True once :meth:`flush` ran; :meth:`process` then raises and
        further :meth:`flush` calls return empty."""
        return self._flushed

    # ------------------------------------------------------------------
    # streaming interface
    # ------------------------------------------------------------------

    def process(self, t: StreamTuple) -> List[StreamTuple]:
        """Accept one tuple in arrival order; return tuples released now.

        Annotates the tuple's :attr:`~repro.core.tuples.StreamTuple.delay`
        with ``iT - e.ts`` *after* updating ``iT`` (a tuple that advances
        the local time has delay 0).
        """
        if self._flushed:
            raise RuntimeError(
                "K-slack buffer already flushed; create a new instance"
            )
        if self._local_time is None or t.ts > self._local_time:
            self._local_time = t.ts
        t.delay = self._local_time - t.ts
        self.max_observed_delay = max(self.max_observed_delay, t.delay)
        self.tuples_seen += 1
        heapq.heappush(self._heap, (t.ts, self._tie, t))
        self._tie += 1
        return self._drain_ready()

    def process_batch(self, batch: Sequence[StreamTuple]) -> List[StreamTuple]:
        """Accept a burst of tuples in arrival order; return all releases.

        Exactly equivalent to concatenating per-tuple :meth:`process`
        returns (each tuple's arrival advances ``iT`` and drains before
        the next is admitted, so stragglers interleave identically); the
        batched loop hoists the heap and clock bookkeeping out of the
        per-tuple call overhead.
        """
        if self._flushed:
            raise RuntimeError(
                "K-slack buffer already flushed; create a new instance"
            )
        released: List[StreamTuple] = []
        append = released.append
        heap = self._heap
        push = heapq.heappush
        pop = heapq.heappop
        k = self._k
        local_time = self._local_time
        tie = self._tie
        max_delay = self.max_observed_delay
        for t in batch:
            ts = t.ts
            if local_time is None or ts > local_time:
                local_time = ts
            delay = local_time - ts
            t.delay = delay
            if delay > max_delay:
                max_delay = delay
            push(heap, (ts, tie, t))
            tie += 1
            bound = local_time - k
            while heap and heap[0][0] <= bound:
                append(pop(heap)[2])
        self._local_time = local_time
        self._tie = tie
        self.max_observed_delay = max_delay
        self.tuples_seen += len(batch)
        return released

    # ------------------------------------------------------------------
    # state-migration hooks (repro.parallel rebalancing)
    # ------------------------------------------------------------------

    def advance_clock(self, ts: int) -> List[StreamTuple]:
        """Advance the local current time ``iT`` to ``ts`` without a tuple.

        Returns the tuples this releases, smallest timestamp first.  The
        caller asserts that ``ts`` is a genuine arrival-time watermark —
        i.e. that no future tuple of this stream will carry a timestamp
        below ``ts - K`` that the buffer could still have re-ordered.
        The partitioned engine's shard rebalancing uses this as the
        barrier drain before window state migrates: the parent's global
        arrival clock is such a watermark whenever disorder handling is
        lossless (``K`` at least the realized maximum delay).  A clock
        in the past is ignored (``iT`` never moves backwards).
        """
        if self._flushed:
            raise RuntimeError(
                "K-slack buffer already flushed; create a new instance"
            )
        if self._local_time is None or ts > self._local_time:
            self._local_time = ts
        return self._drain_ready()

    def adopt(self, t: StreamTuple) -> None:
        """Insert an already-annotated tuple migrated from a peer buffer.

        Unlike :meth:`process` this neither advances the clock nor
        re-annotates the delay (the tuple's annotation from its original
        buffer is the true one) nor counts the tuple in the arrival
        statistics — the originating buffer already did.  Deliberately
        does **not** release anything either: migrated tuples arrive in
        no particular order, and draining between insertions could hand
        a higher-timestamped adoptee downstream before a lower one.
        Adopt the whole batch, then call :meth:`drain_ready` once —
        releases then come out in timestamp order as usual.
        """
        if self._flushed:
            raise RuntimeError(
                "K-slack buffer already flushed; create a new instance"
            )
        heapq.heappush(self._heap, (t.ts, self._tie, t))
        self._tie += 1

    def drain_ready(self) -> List[StreamTuple]:
        """Release everything the current clock already permits.

        The explicit companion of :meth:`adopt`: after a batch of
        adoptions, one drain hands back — smallest timestamp first —
        every buffered tuple with ``ts + K <= iT`` (possible when this
        buffer's clock runs ahead of the migration source's).
        """
        if self._flushed:
            raise RuntimeError(
                "K-slack buffer already flushed; create a new instance"
            )
        return self._drain_ready()

    def extract(
        self, predicate: Callable[[StreamTuple], bool]
    ) -> List[StreamTuple]:
        """Remove and return buffered tuples matching ``predicate``.

        Returned tuples come back in release (timestamp, then arrival)
        order; the buffer keeps its clock and delay statistics — the
        extracted tuples *did* arrive here, they just leave through the
        migration path instead of the release path.  Used by shard
        rebalancing to pull the in-flight tuples of moved key groups.
        """
        if self._flushed:
            raise RuntimeError(
                "K-slack buffer already flushed; create a new instance"
            )
        matched: List = []
        kept: List = []
        for entry in self._heap:
            (matched if predicate(entry[2]) else kept).append(entry)
        if not matched:
            return []
        heapq.heapify(kept)
        self._heap = kept
        matched.sort()
        return [entry[2] for entry in matched]

    def _drain_ready(self) -> List[StreamTuple]:
        if self._local_time is None:
            return []
        released: List[StreamTuple] = []
        bound = self._local_time - self._k
        while self._heap and self._heap[0][0] <= bound:
            released.append(heapq.heappop(self._heap)[2])
        return released

    def flush(self) -> List[StreamTuple]:
        """Release everything still buffered (end of stream), in ts order.

        Flushing is terminal: the buffer's clock (``iT``) and delay
        statistics stop at their end-of-stream values, so a subsequent
        :meth:`process` would annotate delays against a dead clock —
        it raises instead.  Re-flushing is an idempotent no-op.
        """
        if self._flushed:
            return []
        self._flushed = True
        released = [entry[2] for entry in sorted(self._heap)]
        self._heap.clear()
        return released
