"""Output-side disorder handling: sorting the *result* stream.

The paper's introduction (footnote 2) discusses the alternative to
input-side sorting: let the join emit results out of order and sort the
result stream with a bounded buffer, discarding results that are still
out of order after the buffer so the "in-order output" contract holds —
at the cost of losing exactly those results.

:class:`ResultSorter` implements that operator over
:class:`~repro.core.tuples.JoinResult` streams.  It mirrors the K-slack
release rule on result timestamps (release when ``r.ts + K <= maxTs``)
and *drops* stragglers that arrive with ``ts`` below the already-emitted
high-water mark, counting them in :attr:`ResultSorter.discarded`.

The ablation benchmark uses it to contrast input-side against
output-side handling: output-side sorting cannot recover results the
join never produced, so for the same buffer size it bounds from below
the quality of the paper's input-side approach.
"""

from __future__ import annotations

import heapq
from typing import List

from .tuples import JoinResult


class ResultSorter:
    """Bounded buffer enforcing in-order release of a result stream."""

    def __init__(self, k_ms: int) -> None:
        if k_ms < 0:
            raise ValueError(f"K must be non-negative, got {k_ms}")
        self._k = int(k_ms)
        self._heap: List = []  # (ts, tie, result)
        self._tie = 0
        self._max_seen = 0
        self._emitted_watermark = -1
        self._flushed = False
        self.emitted = 0
        self.discarded = 0

    @property
    def k(self) -> int:
        return self._k

    @property
    def buffered(self) -> int:
        return len(self._heap)

    @property
    def flushed(self) -> bool:
        """True once :meth:`flush` ran; :meth:`process` then raises and
        further :meth:`flush` calls return empty."""
        return self._flushed

    def process(self, result: JoinResult) -> List[JoinResult]:
        """Accept one (possibly out-of-order) result; return releases.

        A result whose timestamp is already below the emission watermark
        cannot be re-ordered by any future release and is discarded to
        preserve the in-order output contract.
        """
        if self._flushed:
            raise RuntimeError(
                "result sorter already flushed; create a new instance"
            )
        if result.ts < self._emitted_watermark:
            self.discarded += 1
            return []
        if result.ts > self._max_seen:
            self._max_seen = result.ts
        heapq.heappush(self._heap, (result.ts, self._tie, result))
        self._tie += 1
        return self._drain_ready()

    def _drain_ready(self) -> List[JoinResult]:
        released: List[JoinResult] = []
        bound = self._max_seen - self._k
        while self._heap and self._heap[0][0] <= bound:
            ts, _, result = heapq.heappop(self._heap)
            self._emitted_watermark = max(self._emitted_watermark, ts)
            self.emitted += 1
            released.append(result)
        return released

    def flush(self) -> List[JoinResult]:
        """Release everything still buffered, in timestamp order.

        Flushing is terminal: the release clock (``_max_seen``) and the
        emission watermark stop at their end-of-stream values, so a
        sorter reused after flush would silently mix pre- and post-flush
        ordering contracts — :meth:`process` raises instead (mirroring
        :class:`~repro.core.pipeline.QualityDrivenPipeline`).  Re-flushing
        is an idempotent no-op.
        """
        if self._flushed:
            return []
        self._flushed = True
        released = [entry[2] for entry in sorted(self._heap)]
        self._heap.clear()
        if released:
            self._emitted_watermark = max(
                self._emitted_watermark, released[-1].ts
            )
        self.emitted += len(released)
        return released
