"""The Statistics Manager (paper Fig. 2, Sec. IV-A).

Monitors the *raw* input streams and maintains, per stream ``S_i``:

* the tuple-delay distribution ``f_{D_i}`` as a histogram over the
  coarse-grained delay (bucket 0 for delay 0, bucket ``d`` for delay in
  ``((d-1)·g, d·g]``), built over a window ``R_i^stat`` of the stream's
  recent history whose length is set adaptively by ADWIN [25] on the raw
  delay signal;
* the average synchronizer slack sample ``K̄_i^sync`` over the same
  window.  Per Proposition 1 the sample is taken on the raw streams as
  ``iT - min_j jT`` regardless of the K value currently applied;
* the arrival rate ``r_i`` (tuples per millisecond), from the arrival
  times of the tuples in ``R_i^stat``;
* ``MaxDH`` inputs: the largest coarse delay present in the window.

All quantities are maintained incrementally (O(1) amortized per tuple):
the deques hold the raw values, a dict of bucket counts backs the
histogram, and running sums back the averages.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional

from ..adwin.adwin import Adwin
from .tuples import StreamTuple


def coarse_delay(delay_ms: int, granularity_ms: int) -> int:
    """Map a delay to its coarse bucket: 0 ↔ 0, ``((d-1)g, dg]`` ↔ ``d``."""
    if delay_ms <= 0:
        return 0
    return (delay_ms + granularity_ms - 1) // granularity_ms


class StreamStatistics:
    """Adaptive-window statistics of one input stream."""

    def __init__(self, granularity_ms: int, adwin_delta: float = 0.002) -> None:
        if granularity_ms <= 0:
            raise ValueError(f"granularity must be positive, got {granularity_ms}")
        self.granularity_ms = granularity_ms
        self._adwin = Adwin(delta=adwin_delta)
        self._delays: Deque[int] = deque()
        self._arrivals: Deque[int] = deque()
        self._ksyncs: Deque[int] = deque()
        self._bucket_counts: Dict[int, int] = {}
        self._ksync_sum = 0
        self.tuples_observed = 0

    # ------------------------------------------------------------------
    # updates
    # ------------------------------------------------------------------

    def observe(self, delay_ms: int, arrival_ms: int, ksync_ms: Optional[int]) -> None:
        """Record one tuple of this stream (delay annotation already set)."""
        self.tuples_observed += 1
        self._adwin.update(float(delay_ms))
        self._delays.append(delay_ms)
        self._arrivals.append(arrival_ms)
        bucket = coarse_delay(delay_ms, self.granularity_ms)
        self._bucket_counts[bucket] = self._bucket_counts.get(bucket, 0) + 1
        if ksync_ms is not None:
            self._ksyncs.append(ksync_ms)
            self._ksync_sum += ksync_ms
        self._trim_to_adwin_width()

    def _trim_to_adwin_width(self) -> None:
        """Keep the deques no longer than ADWIN's current window width."""
        width = max(1, self._adwin.width)
        while len(self._delays) > width:
            old = self._delays.popleft()
            self._arrivals.popleft()
            bucket = coarse_delay(old, self.granularity_ms)
            remaining = self._bucket_counts.get(bucket, 0) - 1
            if remaining <= 0:
                self._bucket_counts.pop(bucket, None)
            else:
                self._bucket_counts[bucket] = remaining
        while len(self._ksyncs) > width:
            self._ksync_sum -= self._ksyncs.popleft()

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    @property
    def window_length(self) -> int:
        """Current length of R_i^stat in tuples."""
        return len(self._delays)

    def delay_pdf(self) -> List[float]:
        """Coarse-delay pdf ``f_{D_i}`` as a dense list (index = bucket).

        Returns ``[1.0]`` (all mass on delay 0) when nothing was observed,
        which makes downstream model code total-probability-safe.
        """
        total = len(self._delays)
        if total == 0:
            return [1.0]
        max_bucket = max(self._bucket_counts)
        pdf = [0.0] * (max_bucket + 1)
        for bucket, count in self._bucket_counts.items():
            pdf[bucket] = count / total
        return pdf

    def max_coarse_delay(self) -> int:
        """Largest coarse delay bucket present in R_i^stat (0 when empty)."""
        return max(self._bucket_counts) if self._bucket_counts else 0

    def mean_ksync(self) -> float:
        """Average synchronizer-slack sample over R_i^stat (ms)."""
        return self._ksync_sum / len(self._ksyncs) if self._ksyncs else 0.0

    def rate_per_ms(self) -> float:
        """Arrival rate in tuples per millisecond over R_i^stat."""
        if len(self._arrivals) < 2:
            return 0.0
        span = self._arrivals[-1] - self._arrivals[0]
        if span <= 0:
            return 0.0
        return (len(self._arrivals) - 1) / span

    @property
    def adwin_detections(self) -> int:
        return self._adwin.detections


class StatisticsManager:
    """Aggregates per-stream statistics over the raw input streams.

    The pipeline calls :meth:`observe_arrival` once per raw tuple, *after*
    the stream's K-slack buffer updated the local time and attached the
    delay annotation.  Local times are tracked here redundantly so the
    manager can also be used standalone (e.g. in tests).
    """

    def __init__(
        self,
        num_streams: int,
        granularity_ms: int,
        adwin_delta: float = 0.002,
    ) -> None:
        if num_streams < 1:
            raise ValueError(f"num_streams must be >= 1, got {num_streams}")
        self.num_streams = num_streams
        self.granularity_ms = granularity_ms
        self.streams = [
            StreamStatistics(granularity_ms, adwin_delta) for _ in range(num_streams)
        ]
        self._local_times = [0] * num_streams
        self._seen = [False] * num_streams

    # ------------------------------------------------------------------
    # updates
    # ------------------------------------------------------------------

    def observe_arrival(self, t: StreamTuple) -> None:
        """Record one raw-arrival tuple (with its delay annotation set)."""
        i = t.stream
        if not 0 <= i < self.num_streams:
            raise ValueError(f"stream index {i} outside [0, {self.num_streams})")
        if not self._seen[i] or t.ts > self._local_times[i]:
            self._local_times[i] = t.ts
            self._seen[i] = True
        ksync = None
        if all(self._seen):
            ksync = self._local_times[i] - min(self._local_times)
        self.streams[i].observe(t.delay, t.arrival, ksync)

    # ------------------------------------------------------------------
    # queries feeding the recall model
    # ------------------------------------------------------------------

    def local_time(self, stream: int) -> int:
        return self._local_times[stream]

    def app_time(self) -> int:
        """Global progress: the maximum local current time over all streams."""
        return max(self._local_times)

    def delay_pdfs(self) -> List[List[float]]:
        return [s.delay_pdf() for s in self.streams]

    def ksync_estimates_ms(self) -> List[float]:
        """Per-stream ``K_i^sync`` estimates: ``K̄_i^sync - min_j K̄_j^sync``.

        (Paper Sec. IV-A; the subtraction re-bases the averages so the
        slowest stream gets 0.)
        """
        means = [s.mean_ksync() for s in self.streams]
        floor = min(means)
        return [mean - floor for mean in means]

    def rates_per_ms(self) -> List[float]:
        return [s.rate_per_ms() for s in self.streams]

    def max_delay_ms(self) -> int:
        """``MaxDH``: the largest delay within the monitored histories (ms).

        Reported as the upper edge of the largest occupied coarse bucket,
        consistent with the g-granular search in Alg. 3.
        """
        worst_bucket = max(s.max_coarse_delay() for s in self.streams)
        return worst_bucket * self.granularity_ms
