"""The Tuple-Productivity Profiler (paper Sec. IV-B).

Learns the correlation between the *delay* and the *productivity* of
tuples (DPcorr) by monitoring the join output — an output-based approach
that works for arbitrary join conditions, unlike input-synopsis methods.

For every tuple the join operator receives, it reports (via the MSWJ
productivity callback) the tuple's raw delay annotation and, when the
tuple arrived in order, the exact cross-join size ``n×(e)`` and actual
result count ``n^on(e)`` at its probe.  The profiler accumulates these in
two maps keyed by the *coarse-grained* delay (granularity ``g``):

    M×[d]  = Σ_{delay(e)=d} n×(e)        M^on[d] = Σ_{delay(e)=d} n^on(e)

For out-of-order tuples no probe happens; their productivities are
estimated conservatively as the *maximum* ``n^on`` / ``n×`` observed over
the in-order tuples of the last adaptation interval (paper Sec. IV-B).

At each adaptation step the Buffer-Size Manager takes a
:class:`ProfileSnapshot` of the maps (and resets them for the next
interval).  The snapshot answers the two questions of Sec. IV-B/IV-C:

* the selectivity ratio ``sel^on(K)/sel^on`` of Eq. 6, and
* the true result-size estimate ``N_true^on(L) = Σ_{d<=MaxDM} M^on[d]``.
"""

from __future__ import annotations

from typing import Dict, Optional

from .statistics import coarse_delay
from .tuples import StreamTuple


class ProfileSnapshot:
    """Frozen productivity maps with O(1) Eq. 6 evaluation.

    ``m_cross`` / ``m_on`` are the maps used for the selectivity ratio
    (possibly smoothed over several intervals, see
    :class:`TupleProductivityProfiler`); ``interval_on`` is the
    just-ended interval's raw ``Σ M^on`` used as the true-result-size
    estimate of Sec. IV-C (defaults to the maps' total).
    """

    def __init__(
        self,
        m_cross: Dict[int, float],
        m_on: Dict[int, float],
        interval_on: Optional[float] = None,
    ) -> None:
        self.max_coarse_delay = max(m_cross) if m_cross else 0
        size = self.max_coarse_delay + 1
        self._cum_cross = [0.0] * size
        self._cum_on = [0.0] * size
        acc_cross = 0.0
        acc_on = 0.0
        for d in range(size):
            acc_cross += m_cross.get(d, 0.0)
            acc_on += m_on.get(d, 0.0)
            self._cum_cross[d] = acc_cross
            self._cum_on[d] = acc_on
        self.total_cross = acc_cross
        self.total_on = acc_on
        self.interval_on = self.total_on if interval_on is None else interval_on

    def cumulative_cross(self, coarse_k: int) -> float:
        """``Σ_{d=0}^{K} M×[d]`` (saturating beyond MaxDM)."""
        if coarse_k < 0:
            return 0.0
        return self._cum_cross[min(coarse_k, self.max_coarse_delay)]

    def cumulative_on(self, coarse_k: int) -> float:
        """``Σ_{d=0}^{K} M^on[d]`` (saturating beyond MaxDM)."""
        if coarse_k < 0:
            return 0.0
        return self._cum_on[min(coarse_k, self.max_coarse_delay)]

    def sel_ratio(self, coarse_k: int) -> float:
        """Eq. 6: ``sel^on(K)/sel^on`` at coarse buffer size ``coarse_k``.

        Degenerate cases (no output observed yet, empty numerators) return
        1.0, falling back to the EqSel assumption.
        """
        cross_k = self.cumulative_cross(coarse_k)
        on_all = self.cumulative_on(self.max_coarse_delay)
        if cross_k <= 0.0 or on_all <= 0.0:
            return 1.0
        on_k = self.cumulative_on(coarse_k)
        cross_all = self.cumulative_cross(self.max_coarse_delay)
        return (on_k / cross_k) * (cross_all / on_all)

    def true_result_estimate(self) -> float:
        """``N_true^on(L)``: total join results the interval's tuples would
        have derived under complete disorder handling (paper Sec. IV-C)."""
        return self.interval_on


class TupleProductivityProfiler:
    """Accumulates per-interval productivity maps (M×, M^on).

    Matches the :data:`repro.join.mswj.ProductivityCallback` signature via
    :meth:`record`, so it can be handed straight to the MSWJ operator.

    ``smoothing`` blends the per-interval maps into exponentially decayed
    running maps used for the Eq. 6 selectivity ratio: at each snapshot,
    ``smooth[d] = smoothing * smooth[d] + interval[d]``.  ``0.0`` (the
    paper-exact setting) uses only the last interval; positive values
    extend the effective horizon to ``1 / (1 - smoothing)`` intervals,
    which suppresses small-sample spikes of the learned ratio when the
    per-interval tuple counts are low (e.g. down-scaled replays — the
    paper's 100 tuples/s yields 10x the per-interval samples of the
    default bench scale).  The true-result-size estimate of Sec. IV-C
    always uses the raw last-interval map.
    """

    def __init__(self, granularity_ms: int, smoothing: float = 0.0) -> None:
        if granularity_ms <= 0:
            raise ValueError(f"granularity must be positive, got {granularity_ms}")
        if not 0.0 <= smoothing < 1.0:
            raise ValueError(f"smoothing must be in [0, 1), got {smoothing}")
        self.granularity_ms = granularity_ms
        self.smoothing = smoothing
        self._m_cross: Dict[int, float] = {}
        self._m_on: Dict[int, float] = {}
        self._smooth_cross: Dict[int, float] = {}
        self._smooth_on: Dict[int, float] = {}
        # Maxima over in-order tuples: current interval and previous one.
        self._interval_max_cross = 0.0
        self._interval_max_on = 0.0
        self._previous_max_cross = 0.0
        self._previous_max_on = 0.0
        # Unbiased per-interval accounting for the N_true(L) estimate: the
        # max-based out-of-order entries in M^on are deliberately
        # conservative for Eq. 6, but summing them (Sec. IV-C) inflates
        # N_true(L) whenever max productivity >> mean productivity, which
        # pegs the Eq. 7 instant requirement at 1 and defeats the
        # calibration entirely (measured on the soccer workload).  The
        # true-size estimate therefore values unseen productivities at the
        # interval *mean* instead.
        self._interval_on_sum = 0.0
        self._interval_in_order = 0
        self._interval_out_of_order = 0
        self._previous_mean_on = 0.0
        self.in_order_recorded = 0
        self.out_of_order_recorded = 0

    # ------------------------------------------------------------------
    # recording (the MSWJ productivity callback)
    # ------------------------------------------------------------------

    def record(
        self,
        t: StreamTuple,
        n_cross: Optional[int],
        n_on: Optional[int],
        in_order: bool,
    ) -> None:
        bucket = coarse_delay(t.delay, self.granularity_ms)
        if in_order:
            assert n_cross is not None and n_on is not None
            self._m_cross[bucket] = self._m_cross.get(bucket, 0.0) + n_cross
            self._m_on[bucket] = self._m_on.get(bucket, 0.0) + n_on
            self._interval_max_cross = max(self._interval_max_cross, float(n_cross))
            self._interval_max_on = max(self._interval_max_on, float(n_on))
            self._interval_on_sum += n_on
            self._interval_in_order += 1
            self.in_order_recorded += 1
        else:
            # No probe happened; use the conservative estimates (paper:
            # maxima over in-order tuples of the last adaptation interval,
            # falling back to the current interval's maxima early on).
            est_cross = self._previous_max_cross or self._interval_max_cross
            est_on = self._previous_max_on or self._interval_max_on
            self._m_cross[bucket] = self._m_cross.get(bucket, 0.0) + est_cross
            self._m_on[bucket] = self._m_on.get(bucket, 0.0) + est_on
            self._interval_out_of_order += 1
            self.out_of_order_recorded += 1

    # ------------------------------------------------------------------
    # adaptation-step interface
    # ------------------------------------------------------------------

    def snapshot_and_reset(self) -> ProfileSnapshot:
        """Freeze the interval's maps and start a new interval."""
        if self._interval_in_order:
            mean_on = self._interval_on_sum / self._interval_in_order
        else:
            mean_on = self._previous_mean_on
        interval_on = self._interval_on_sum + self._interval_out_of_order * mean_on
        if self.smoothing > 0.0:
            # sorted(): canonical decay order — set-union iteration would
            # make the smoothed maps' key insertion order (and any float
            # accumulation over them) depend on per-process hashing.
            for d in sorted(set(self._smooth_cross) | set(self._smooth_on)):
                self._smooth_cross[d] = self._smooth_cross.get(d, 0.0) * self.smoothing
                self._smooth_on[d] = self._smooth_on.get(d, 0.0) * self.smoothing
            for d, value in self._m_cross.items():
                self._smooth_cross[d] = self._smooth_cross.get(d, 0.0) + value
            for d, value in self._m_on.items():
                self._smooth_on[d] = self._smooth_on.get(d, 0.0) + value
            snapshot = ProfileSnapshot(
                dict(self._smooth_cross), dict(self._smooth_on), interval_on
            )
        else:
            snapshot = ProfileSnapshot(self._m_cross, self._m_on, interval_on)
        self._m_cross = {}
        self._m_on = {}
        self._previous_max_cross = self._interval_max_cross
        self._previous_max_on = self._interval_max_on
        if self._interval_in_order:
            self._previous_mean_on = mean_on
        self._interval_max_cross = 0.0
        self._interval_max_on = 0.0
        self._interval_on_sum = 0.0
        self._interval_in_order = 0
        self._interval_out_of_order = 0
        return snapshot

    def peek_snapshot(self) -> ProfileSnapshot:
        """Snapshot of the current raw interval, without resetting."""
        return ProfileSnapshot(dict(self._m_cross), dict(self._m_on))
