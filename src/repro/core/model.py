"""The analytical recall model ``γ(L, K)`` (paper Sec. IV-A, Eqs. 1–5).

Given a candidate buffer size ``K``, the model predicts the recall of the
join results that would be produced during the next adaptation interval:

* Eq. 2 transforms each stream's raw coarse-delay pdf ``f_{D_i}`` into the
  pdf ``f_{D_i^K}`` of delays *as seen by the join operator*: every delay
  is reduced by the total slack ``K + K_i^sync`` (K-slack buffer plus the
  stream's implicit synchronizer slack), clamping at zero.
* Eq. 3 estimates the expected cardinality of each *basic window* segment
  ``w_i^l`` (size ``b``) of the window on ``S_i``: older segments are more
  complete because late tuples whose timestamps fall there have had time
  to arrive and be inserted (Alg. 2 lines 9–10).
* Eq. 1 / Eq. 4 estimate the true and produced result sizes; their ratio,
  scaled by the selectivity ratio ``sel(K)/sel`` (Sec. IV-B), is the
  estimated recall γ(L, K) (Eq. 5).  The interval length ``L`` and the
  rate products cancel in the ratio.

Performance: Alg. 3 evaluates γ for K = 0, g, 2g, … up to MaxDH — easily
thousands of candidates per adaptation step.  A naive evaluation is
O(Σ_i W_i / b) *per candidate*; this module precomputes cumulative and
stride-prefix sums of each pdf once per adaptation step so each candidate
costs O(m).  (This is an implementation optimization only; the computed
values equal the direct evaluation of Eqs. 2–5, which the test suite
checks against a brute-force reference.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence


class CumulativePdf:
    """Cumulative distribution of a coarse-delay pdf with fast range sums.

    ``cdf(x)`` returns ``Pr[D <= x]`` (1.0 beyond the support), and
    :meth:`strided_sum` returns ``sum_{l=0}^{terms-1} cdf(start + l*step)``
    in O(1) using per-residue prefix tables built lazily per step.
    """

    def __init__(self, pdf: Sequence[float]) -> None:
        if not pdf:
            raise ValueError("pdf must be non-empty")
        self._cdf: List[float] = []
        acc = 0.0
        for p in pdf:
            acc += p
            self._cdf.append(min(acc, 1.0))
        self._max_index = len(self._cdf) - 1
        self._stride_tables: Dict[int, List[List[float]]] = {}

    def cdf(self, x: int) -> float:
        if x < 0:
            return 0.0
        if x >= self._max_index:
            return self._cdf[self._max_index]
        return self._cdf[x]

    @property
    def support_max(self) -> int:
        return self._max_index

    def _table_for(self, step: int) -> List[List[float]]:
        table = self._stride_tables.get(step)
        if table is None:
            table = []
            for residue in range(step):
                prefixes: List[float] = []
                acc = 0.0
                index = residue
                while index <= self._max_index:
                    acc += self._cdf[index]
                    prefixes.append(acc)
                    index += step
                table.append(prefixes)
            self._stride_tables[step] = table
        return table

    def strided_sum(self, start: int, step: int, terms: int) -> float:
        """``sum_{l=0}^{terms-1} cdf(start + l * step)`` with step >= 1."""
        if terms <= 0:
            return 0.0
        if step < 1:
            raise ValueError(f"step must be >= 1, got {step}")
        if start < 0:
            # cdf(x) = 0 for x < 0: skip the all-negative prefix.
            skip = min(terms, (-start + step - 1) // step)
            start += skip * step
            terms -= skip
            if terms <= 0:
                return 0.0
        tail_value = self._cdf[self._max_index]
        if start > self._max_index:
            return terms * tail_value
        # Split: indices inside the table vs. saturated tail (cdf == cdf[max]).
        inside_terms = min(terms, (self._max_index - start) // step + 1)
        saturated_terms = terms - inside_terms
        residue = start % step
        offset = start // step
        prefixes = self._table_for(step)[residue]
        total = prefixes[offset + inside_terms - 1]
        if offset > 0:
            total -= prefixes[offset - 1]
        return total + saturated_terms * tail_value


@dataclass
class StreamModelInput:
    """Everything the model needs to know about one input stream."""

    pdf: Sequence[float]       # coarse-delay pdf f_{D_i} (index = bucket)
    ksync_ms: float            # estimated synchronizer slack K_i^sync
    rate_per_ms: float         # arrival rate r_i
    window_ms: int             # window size W_i


class RecallModel:
    """Evaluates Eqs. 1–5 for a fixed adaptation step.

    Build one instance per adaptation step (the pdfs, rates and slacks are
    that step's snapshot), then call :meth:`gamma` for each candidate K.

    Parameters
    ----------
    inputs:
        Per-stream model inputs (``m`` entries).
    basic_window_ms:
        The basic-window size ``b``.
    granularity_ms:
        The K-search granularity ``g`` (also the delay-bucket width).
    """

    def __init__(
        self,
        inputs: Sequence[StreamModelInput],
        basic_window_ms: int,
        granularity_ms: int,
    ) -> None:
        if len(inputs) < 2:
            raise ValueError("the model needs at least two streams")
        if basic_window_ms <= 0 or granularity_ms <= 0:
            raise ValueError("basic window and granularity must be positive")
        self.inputs = list(inputs)
        self.b = int(basic_window_ms)
        self.g = int(granularity_ms)
        self._cpdfs = [CumulativePdf(s.pdf) for s in self.inputs]
        #: ceil(W_i / b): number of basic windows per stream.
        self._segments = [
            (s.window_ms + self.b - 1) // self.b for s in self.inputs
        ]
        #: per-stream synchronizer slack in ms (floored to int).
        self._ksync_ms = [int(s.ksync_ms) for s in self.inputs]
        #: fast path 1: when g divides b, segment completeness indices
        #: advance by a constant integer stride (O(1) strided sums).
        self._uniform_stride = self.b % self.g == 0
        #: fast path 2: when b divides g, the index sequence is a staircase
        #: (g/b consecutive segments share a bucket) — also O(1).
        self._staircase = not self._uniform_stride and self.g % self.b == 0

    # ------------------------------------------------------------------
    # Eq. 2: delay pdf as seen by the join operator
    # ------------------------------------------------------------------

    def slack_ms(self, stream: int, k_ms: int) -> int:
        """Total sorting slack of ``stream`` under K = ``k_ms``: K + K_i^sync."""
        return k_ms + self._ksync_ms[stream]

    def in_order_probability(self, stream: int, k_ms: int) -> float:
        """``f_{D_i^K}(0)``: probability a tuple reaches the join in order.

        A tuple with coarse delay ``d`` is fully re-ordered iff its delay
        does not exceed the total slack, i.e. ``d <= slack // g``.
        """
        return self._cpdfs[stream].cdf(self.slack_ms(stream, k_ms) // self.g)

    # ------------------------------------------------------------------
    # Eq. 3: expected window cardinality
    # ------------------------------------------------------------------

    def expected_window_cardinality(self, stream: int, k_ms: int) -> float:
        """``sum_l |w_stream^l|``: expected live tuples in the window.

        Segment ``l`` (1-based; segment 1 is the most recent) has
        completeness ``Pr[D_i^K <= (l-1)·b]``, i.e. the cdf at coarse index
        ``(slack + (l-1)·b) // g``.
        """
        s = self.inputs[stream]
        cpdf = self._cpdfs[stream]
        slack = self.slack_ms(stream, k_ms)
        n = self._segments[stream]
        if self._uniform_stride:
            # (slack + l·b) // g == slack//g + l·(b//g) exactly when g | b.
            body = self.b * cpdf.strided_sum(slack // self.g, self.b // self.g, n - 1)
        elif self._staircase:
            body = self.b * self._staircase_sum(cpdf, slack, n - 1)
        else:
            body = self.b * sum(
                cpdf.cdf((slack + l * self.b) // self.g) for l in range(n - 1)
            )
        tail_span = s.window_ms - (n - 1) * self.b
        tail = tail_span * cpdf.cdf((slack + (n - 1) * self.b) // self.g)
        return s.rate_per_ms * (body + tail)

    def _staircase_sum(self, cpdf: CumulativePdf, slack: int, terms: int) -> float:
        """``sum_{l=0}^{terms-1} cdf((slack + l·b) // g)`` for b | g, in O(1).

        The index ``(slack + l·b) // g`` stays at ``j0 = slack // g`` for
        the first ``r`` terms (until ``slack + l·b`` crosses the next
        multiple of g) and then advances by one every ``q = g / b`` terms.
        """
        if terms <= 0:
            return 0.0
        q = self.g // self.b
        j0 = slack // self.g
        # Terms still inside bucket j0: l with slack + l*b < (j0+1)*g.
        r = min(terms, ((j0 + 1) * self.g - slack + self.b - 1) // self.b)
        total = r * cpdf.cdf(j0)
        remaining = terms - r
        if remaining <= 0:
            return total
        full_groups = remaining // q
        if full_groups:
            total += q * cpdf.strided_sum(j0 + 1, 1, full_groups)
        leftover = remaining - full_groups * q
        if leftover:
            total += leftover * cpdf.cdf(j0 + 1 + full_groups)
        return total

    # ------------------------------------------------------------------
    # Eqs. 1, 4, 5
    # ------------------------------------------------------------------

    def true_result_rate(self) -> float:
        """Cross-join true-result rate per ms (Eq. 1 without sel and L)."""
        total = 0.0
        for i, s in enumerate(self.inputs):
            product = s.rate_per_ms
            for j, other in enumerate(self.inputs):
                if j != i:
                    product *= other.rate_per_ms * other.window_ms
            total += product
        return total

    def produced_result_rate(self, k_ms: int) -> float:
        """Cross-join produced-result rate per ms under K (Eq. 4 w/o sel, L)."""
        total = 0.0
        for i, s in enumerate(self.inputs):
            product = s.rate_per_ms * self.in_order_probability(i, k_ms)
            for j in range(len(self.inputs)):
                if j != i:
                    product *= self.expected_window_cardinality(j, k_ms)
            total += product
        return total

    def gamma(self, k_ms: int, sel_ratio: float = 1.0) -> float:
        """Estimated recall γ(L, K) for buffer size ``k_ms`` (Eq. 5).

        ``sel_ratio`` is ``sel(K)/sel`` from the selectivity strategy
        (1.0 under EqSel).  The result is clamped to [0, 1]: the model's
        independence assumptions can otherwise push the estimate slightly
        above 1 when windows are effectively complete.
        """
        true_rate = self.true_result_rate()
        if true_rate <= 0.0:
            return 1.0
        ratio = sel_ratio * self.produced_result_rate(k_ms) / true_rate
        return max(0.0, min(1.0, ratio))

    def estimated_true_results(self, interval_ms: int, selectivity: float = 1.0) -> float:
        """``N_true^on(L)`` via Eq. 1 (used as a cross-check; the pipeline
        prefers the profiler-based estimate, paper Sec. IV-C)."""
        return selectivity * self.true_result_rate() * interval_ms
