"""The Result-Size Monitor and instant-requirement derivation (Sec. IV-C).

The monitor watches the *produced* result stream and keeps the number of
results whose timestamps fall within the last ``P - L`` time units
(``N_prod^on(P-L)``), plus a history of the per-interval true-result-size
estimates ``N_true^on(L)`` handed over by the Buffer-Size Manager at each
adaptation step (these come from the profiler: ``Σ_d M^on[d]``).

From these, :meth:`ResultSizeMonitor.instant_requirement` solves Eq. 7
for the recall the *next* interval must reach so that the recall measured
over the whole period ``P`` still meets the user requirement ``Γ``:

    (N_prod(P-L) + N_true(L)·Γ') / (N_true(P-L) + N_true(L)) >= Γ

The derived ``Γ'`` is clamped to ``[0, 1]``.  (The paper's text says the
applied value is ``max{Γ', 1}``, which would always force full recall and
void the calibration — we read it as a typo for ``min{Γ', 1}``; see
DESIGN.md §4.)  A ``Γ'`` below Γ means earlier intervals overshot and the
next interval may relax; above Γ means it must compensate.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Tuple


class ResultSizeMonitor:
    """Sliding accounting of produced results and true-size estimates.

    Parameters
    ----------
    period_ms:
        The user-specified result-quality measurement period ``P``.
    interval_ms:
        The adaptation interval ``L`` (must satisfy ``L <= P``).
    """

    def __init__(self, period_ms: int, interval_ms: int) -> None:
        if interval_ms <= 0:
            raise ValueError(f"adaptation interval must be positive, got {interval_ms}")
        if period_ms < interval_ms:
            raise ValueError(
                f"period P ({period_ms}) must be >= adaptation interval L ({interval_ms})"
            )
        self.period_ms = period_ms
        self.interval_ms = interval_ms
        #: number of completed intervals the true-size history spans
        self._history_length = max(0, (period_ms - interval_ms) // interval_ms)
        # The produced-results window must cover the same horizon as the
        # true-size history, or Eq. 7 would subtract produced results that
        # have no true-size counterpart and drag Γ' spuriously low (this
        # matters when P < 2L, where (P-L)/L rounds down to zero).
        self._window_ms = self._history_length * interval_ms
        self._produced: Deque[Tuple[int, int]] = deque()  # (result_ts, count)
        self._produced_sum = 0
        self._true_history: Deque[float] = deque(maxlen=max(1, self._history_length))

    # ------------------------------------------------------------------
    # updates
    # ------------------------------------------------------------------

    def record_produced(self, result_ts: int, count: int = 1) -> None:
        """Record ``count`` produced results timestamped ``result_ts``."""
        if count <= 0:
            return
        self._produced.append((result_ts, count))
        self._produced_sum += count

    def record_true_estimate(self, n_true_interval: float) -> None:
        """Record one interval's ``N_true^on(L)`` estimate (adaptation step)."""
        self._true_history.append(max(0.0, n_true_interval))

    def advance_to(self, now_ts: int) -> None:
        """Drop produced results older than ``now - (P - L)``."""
        bound = now_ts - self._window_ms
        while self._produced and self._produced[0][0] <= bound:
            _, count = self._produced.popleft()
            self._produced_sum -= count

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def produced_in_window(self, now_ts: int) -> int:
        """``N_prod^on(P-L)`` with respect to ``now_ts``."""
        self.advance_to(now_ts)
        return self._produced_sum

    def true_in_window(self) -> float:
        """``N_true^on(P-L)``: sum of the last ``(P-L)/L`` interval estimates."""
        if self._history_length == 0:
            return 0.0
        return sum(self._true_history)

    def instant_requirement(
        self, gamma_target: float, n_true_next: float, now_ts: int
    ) -> float:
        """Derive ``Γ'`` for the next interval from Eq. 7, clamped to [0, 1].

        ``n_true_next`` is the expected true result size of the coming
        interval; with nothing to go on (``<= 0``) the user target is used
        unchanged.
        """
        if n_true_next <= 0.0:
            return min(max(gamma_target, 0.0), 1.0)
        produced = self.produced_in_window(now_ts)
        true_window = self.true_in_window()
        required = (gamma_target * (true_window + n_true_next) - produced) / n_true_next
        return min(max(required, 0.0), 1.0)
