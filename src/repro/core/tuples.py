"""Core tuple and time model for the stream-join framework.

The whole library uses **integer milliseconds** as the application-time unit.
Using integers keeps every comparison in the K-slack release condition
(``e.ts + K <= iT``), window expiration (``e.ts < trigger.ts - W``) and the
adaptation schedule exact; there is no floating-point drift anywhere in the
time arithmetic.  Helpers :func:`seconds` and :func:`ms` convert to and from
this canonical unit.

Two tuple kinds flow through the system:

* :class:`StreamTuple` — an input tuple.  It carries the application
  timestamp ``ts`` assigned at the data source, the payload ``values``
  (a mapping from attribute name to value), and bookkeeping metadata filled
  in as the tuple travels through the framework (its stream index, a
  per-stream sequence number, the simulated arrival time, and the delay
  annotation attached by the disorder-handling layer, cf. paper Sec. IV-B).

* :class:`JoinResult` — a result tuple derived from one input tuple per
  stream.  Its timestamp is the timestamp of the in-order tuple whose
  arrival triggered the probe (paper Alg. 2), which equals the maximum
  timestamp among the deriving tuples for in-order processing.
"""

from __future__ import annotations

from typing import Any, Mapping, Optional, Tuple

#: Number of milliseconds per second; the canonical unit is the millisecond.
MS_PER_SECOND = 1000


def seconds(value: float) -> int:
    """Convert ``value`` seconds to integer milliseconds.

    >>> seconds(5)
    5000
    >>> seconds(0.25)
    250
    """
    return int(round(value * MS_PER_SECOND))


def ms(value: float) -> int:
    """Return ``value`` coerced to an integer number of milliseconds.

    Exists for symmetry with :func:`seconds` so call sites can state their
    unit explicitly: ``window=seconds(5), granularity=ms(10)``.
    """
    return int(round(value))


def to_seconds(value_ms: float) -> float:
    """Convert milliseconds back to (float) seconds, for reporting."""
    return value_ms / MS_PER_SECOND


class StreamTuple:
    """A single input tuple of one stream.

    Parameters
    ----------
    ts:
        Application timestamp in integer milliseconds, assigned at the data
        source.
    values:
        Attribute name → value mapping (the payload the join condition sees).
    stream:
        Index of the owning stream in ``[0, m)``.  Filled by the source or
        generator; ``-1`` when not yet assigned.
    seq:
        Arrival sequence number within the stream (0-based).
    arrival:
        Simulated arrival (wall-clock) time in milliseconds; drives the
        interleaving of streams in arrival order.

    The attribute :attr:`delay` is *not* a constructor argument: it is the
    delay annotation ``delay(e) = iT - e.ts`` attached when the tuple enters
    the disorder-handling layer (paper Sec. II-A / IV-B) and carried through
    the Synchronizer to the join operator.
    """

    __slots__ = ("ts", "values", "stream", "seq", "arrival", "delay")

    def __init__(
        self,
        ts: int,
        values: Optional[Mapping[str, Any]] = None,
        stream: int = -1,
        seq: int = -1,
        arrival: int = -1,
    ) -> None:
        if ts < 0:
            raise ValueError(f"timestamp must be non-negative, got {ts}")
        self.ts = int(ts)
        self.values = dict(values) if values else {}
        self.stream = stream
        self.seq = seq
        self.arrival = arrival
        self.delay: int = 0

    def __getitem__(self, attribute: str) -> Any:
        return self.values[attribute]

    def get(self, attribute: str, default: Any = None) -> Any:
        return self.values.get(attribute, default)

    @classmethod
    def restore(
        cls,
        ts: int,
        values: dict,
        stream: int,
        seq: int,
        arrival: int,
        delay: int,
    ) -> "StreamTuple":
        """Rebuild a tuple from already-validated parts, skipping ``__init__``.

        The decode hot path of the columnar transport
        (:mod:`repro.core.blocks`) materializes whole batches through
        this constructor: no ``ts`` validation, no defensive ``values``
        copy — the caller owns the dict and guarantees the invariants
        the public constructor enforces.
        """
        t = cls.__new__(cls)
        t.ts = ts
        t.values = values
        t.stream = stream
        t.seq = seq
        t.arrival = arrival
        t.delay = delay
        return t

    # Compact pickling: tuples cross process boundaries in bulk on the
    # partitioned pipeline's IPC path, and the default slotted-object
    # protocol (a per-object {slot: value} state dict) is measurably
    # slower than a bare state tuple on both ends of the pipe.
    def __getstate__(self) -> Tuple:
        return (self.ts, self.values, self.stream, self.seq, self.arrival, self.delay)

    def __setstate__(self, state: Tuple) -> None:
        self.ts, self.values, self.stream, self.seq, self.arrival, self.delay = state

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        payload = ", ".join(f"{k}={v!r}" for k, v in self.values.items())
        return f"StreamTuple(ts={self.ts}, stream={self.stream}, {{{payload}}})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, StreamTuple):
            return NotImplemented
        return (
            self.ts == other.ts
            and self.stream == other.stream
            and self.seq == other.seq
            and self.values == other.values
        )

    def __hash__(self) -> int:
        return hash((self.ts, self.stream, self.seq))

    def identity(self) -> Tuple[int, int, int]:
        """Stable identity triple used by ground-truth comparison code."""
        return (self.stream, self.seq, self.ts)


class JoinResult:
    """A join result tuple ``<e_1, ..., e_m>``.

    ``components`` holds one :class:`StreamTuple` per input stream, indexed
    by stream position.  ``ts`` is the timestamp assigned by the operator
    (the triggering tuple's timestamp, paper Alg. 2 line 7).
    """

    __slots__ = ("ts", "components")

    def __init__(self, ts: int, components: Tuple[StreamTuple, ...]) -> None:
        self.ts = int(ts)
        self.components = components

    def key(self) -> Tuple[Tuple[int, int, int], ...]:
        """Canonical identity of the result: the identities of its parts.

        Two runs that derive a result from the same input tuples produce
        the same key, which is what the recall machinery compares.
        """
        return tuple(component.identity() for component in self.components)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = ", ".join(
            f"S{c.stream}#{c.seq}@{c.ts}" for c in self.components
        )
        return f"JoinResult(ts={self.ts}, [{parts}])"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, JoinResult):
            return NotImplemented
        return self.ts == other.ts and self.key() == other.key()

    def __hash__(self) -> int:
        return hash((self.ts, self.key()))
