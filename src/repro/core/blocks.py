"""Columnar tuple-block codec for bulk tuple movement between processes.

The partitioned pipeline's scale-out ceiling is set by how cheaply a
routed batch crosses the parent→worker pipe.  Pickling N
:class:`~repro.core.tuples.StreamTuple` objects ships N object graphs:
per tuple a class reference, a state tuple, and a payload dict that
re-frames the same attribute names over and over.  This module packs a
whole batch into one flat *block* instead — shared-nothing stream joins
(Chakraborty's windowed-join cluster, runtime-optimized m-way operators)
get their scaling from exactly this kind of cheap bulk transport:

* :class:`TupleBlock` — parallel columns ``ts`` / ``stream`` / ``seq`` /
  ``arrival`` / ``delay`` plus one column per payload attribute.  One
  pipe message carries one small picklable object whose state is a
  handful of flat lists, not N nested graphs.
* :class:`ResultBlock` — the return path: a batch of
  :class:`~repro.core.tuples.JoinResult` objects as a ``ts`` column, a
  flat component-index array, and one :class:`TupleBlock` of the
  *distinct* component tuples (components repeat heavily across results;
  they are interned once and shared again after decode).
* :class:`StateBlock` — the rebalancing path: the window + in-flight
  state of migrated routing slots, shipped source worker → parent →
  destination worker when the skew-aware router moves slots between
  shards (see :mod:`repro.parallel.rebalancer`).
* :class:`ColdSegment` — the tiered window store's cold-tier unit
  (see :mod:`repro.join.store`): one slot-ordered run of window tuples
  frozen into a :class:`TupleBlock`, carrying the slot ids, the time
  range, and per-attribute value summaries probes use to skip the
  segment without decoding.  Cold segments are *already encoded*, so a
  shard-state migration ships them inside the :class:`StateBlock`
  window leg verbatim — no decode/re-encode round trip.

Schema negotiation
------------------
Payload attribute names travel **once per (connection, attribute-set)**:
the :class:`BlockEncoder` interns each distinct attribute set, inlines
the names in the first block that uses it, and afterwards sends only the
small integer ``schema_id``; the :class:`BlockDecoder` on the other end
caches ``schema_id → names``.  Encoder and decoder are therefore a
stateful pair — one encoder must feed one decoder (the executor keeps
one pair per shard connection).

Tuples within one block may disagree on their attribute sets; absent
attributes are carried as the pickle-stable :data:`MISSING` sentinel and
dropped again on decode, so ``None`` payload values stay distinguishable
from absent attributes.
"""

from __future__ import annotations

import pickle
import zlib
from typing import (
    Any,
    Dict,
    FrozenSet,
    List,
    Optional,
    Sequence,
    Tuple,
    Type,
    Union,
    cast,
)

from .tuples import JoinResult, StreamTuple

#: Pickle protocol for block messages (out-of-band-buffer capable;
#: available on every supported interpreter, 3.8+).
PICKLE_PROTOCOL = 5

#: A state-block payload leg: raw tuples (serial executor / object
#: transport) or one columnar block (block transport).
StatePayload = Union[List[StreamTuple], "TupleBlock"]

#: One item of a state-block *window* leg in decoded (adoptable) form:
#: a raw tuple, or a still-frozen cold segment that the destination
#: store installs without decoding.
WindowStateItem = Union[StreamTuple, "ColdSegment"]

#: The window leg of a :class:`StateBlock`, kept in source slot (=
#: insertion) order: raw tuples (serial executor), :class:`TupleBlock`
#: runs (block transport packs consecutive raw tuples), and
#: :class:`ColdSegment` items (either executor — they are already
#: encoded and ship verbatim).
WindowPayload = List[Union[StreamTuple, "TupleBlock", "ColdSegment"]]

#: Bare pickle-state tuples (kept positional — see the ``__getstate__``
#: comments); the aliases keep the mypy-strict signatures readable.
_TupleBlockState = Tuple[
    int,
    Optional[Tuple[str, ...]],
    bool,
    List[int],
    List[int],
    List[int],
    List[int],
    List[int],
    List[List[Any]],
]
_ResultBlockState = Tuple[int, List[int], List[int], "TupleBlock"]
_StateBlockState = Tuple[int, int, Tuple[int, ...], "WindowPayload", StatePayload]
_ColdSegmentState = Tuple[
    "TupleBlock",
    Tuple[int, ...],
    int,
    int,
    Dict[str, FrozenSet[Any]],
    int,
]


class _MissingType:
    """Singleton marking an absent payload attribute inside a column.

    Distinct from ``None`` (a legal payload value) and pickle-stable:
    unpickling yields the same singleton, so decoders can test with
    ``is MISSING``.
    """

    __slots__ = ()
    _instance: Optional["_MissingType"] = None

    def __new__(cls) -> "_MissingType":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __reduce__(self) -> Tuple[Type["_MissingType"], Tuple[()]]:
        return (_MissingType, ())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "MISSING"


MISSING = _MissingType()


class TupleBlock:
    """A batch of stream tuples in columnar form (see module docstring).

    ``attributes`` is the inlined schema (first block of its attribute
    set on a connection) or ``None`` when ``schema_id`` refers to a
    schema the receiving decoder has already cached.  ``columns`` holds
    one payload column per schema attribute, in schema order;
    ``has_missing`` tells the decoder whether any cell is the
    :data:`MISSING` sentinel (dense blocks skip the per-cell check).
    """

    __slots__ = (
        "schema_id",
        "attributes",
        "has_missing",
        "ts",
        "stream",
        "seq",
        "arrival",
        "delay",
        "columns",
    )

    def __init__(
        self,
        schema_id: int,
        attributes: Optional[Tuple[str, ...]],
        has_missing: bool,
        ts: List[int],
        stream: List[int],
        seq: List[int],
        arrival: List[int],
        delay: List[int],
        columns: List[List[Any]],
    ) -> None:
        self.schema_id = schema_id
        self.attributes = attributes
        self.has_missing = has_missing
        self.ts = ts
        self.stream = stream
        self.seq = seq
        self.arrival = arrival
        self.delay = delay
        self.columns = columns

    def __len__(self) -> int:
        return len(self.ts)

    # Bare state tuple: the block is the unit of IPC, so its own pickle
    # framing is kept as small as the tuples' (cf. StreamTuple).
    def __getstate__(self) -> _TupleBlockState:
        return (
            self.schema_id,
            self.attributes,
            self.has_missing,
            self.ts,
            self.stream,
            self.seq,
            self.arrival,
            self.delay,
            self.columns,
        )

    def __setstate__(self, state: _TupleBlockState) -> None:
        (
            self.schema_id,
            self.attributes,
            self.has_missing,
            self.ts,
            self.stream,
            self.seq,
            self.arrival,
            self.delay,
            self.columns,
        ) = state

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TupleBlock(n={len(self.ts)}, schema={self.schema_id}, "
            f"attrs={self.attributes})"
        )


class ResultBlock:
    """A batch of join results: ts column + component indexes + one
    :class:`TupleBlock` of the distinct component tuples.

    ``component_indexes`` is flat, ``arity`` entries per result, indexing
    into the decoded component list — decoding restores the sharing of
    component tuples across results instead of duplicating them.
    """

    __slots__ = ("arity", "ts", "component_indexes", "components")

    def __init__(
        self,
        arity: int,
        ts: List[int],
        component_indexes: List[int],
        components: TupleBlock,
    ) -> None:
        self.arity = arity
        self.ts = ts
        self.component_indexes = component_indexes
        self.components = components

    def __len__(self) -> int:
        return len(self.ts)

    def __getstate__(self) -> _ResultBlockState:
        return (self.arity, self.ts, self.component_indexes, self.components)

    def __setstate__(self, state: _ResultBlockState) -> None:
        self.arity, self.ts, self.component_indexes, self.components = state

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ResultBlock(n={len(self.ts)}, arity={self.arity}, "
            f"distinct_components={len(self.components)})"
        )


class StateBlock:
    """Window + in-flight state of migrated routing slots, one hop.

    The third block message (alongside :class:`TupleBlock` and
    :class:`ResultBlock`): when the partitioned engine's rebalancer moves
    virtual routing slots between shards, the source shard's state for
    those slots crosses the parent twice — source worker → parent →
    destination worker — as one ``StateBlock`` per destination.

    ``window`` carries the state removed from the source's join windows
    as a :data:`WindowPayload` — slot-ordered items that are raw tuples,
    :class:`TupleBlock` runs, or already-frozen :class:`ColdSegment`
    objects from a tiered store's cold tier (re-adopting the items in
    sequence reproduces probe candidate order); ``pending`` carries the
    tuples still in flight in the source's disorder-handling front,
    either as a raw :class:`~repro.core.tuples.StreamTuple` list (serial
    executor / object transport) or as :class:`TupleBlock` columns
    (block transport).  Unlike the steady-state tuple stream, state
    blocks are rare one-shot messages, so each is self-contained:
    :func:`encode_state` uses fresh encoders whose schemas travel
    inline, and :func:`decode_state` pairs them with fresh decoders — no
    connection-level schema negotiation.
    """

    __slots__ = ("source", "dest", "slots", "window", "pending")

    def __init__(
        self,
        source: int,
        dest: int,
        slots: Tuple[int, ...],
        window: WindowPayload,
        pending: StatePayload,
    ) -> None:
        self.source = source
        self.dest = dest
        self.slots = slots
        self.window = window
        self.pending = pending

    def __getstate__(self) -> _StateBlockState:
        return (self.source, self.dest, self.slots, self.window, self.pending)

    def __setstate__(self, state: _StateBlockState) -> None:
        self.source, self.dest, self.slots, self.window, self.pending = state

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"StateBlock({self.source}->{self.dest}, slots={self.slots}, "
            f"window={len(self.window)}, pending={len(self.pending)})"
        )


class ColdSegment:
    """A frozen cold-tier window segment (see :mod:`repro.join.store`).

    One slot-ordered run of a single stream's window tuples in columnar
    form.  ``slots`` are the owning store's slot ids (strictly
    increasing within the segment); ``min_ts`` / ``max_ts`` bound the
    contained timestamps, so expiry can drop or thaw a segment without
    decoding; ``summaries`` maps each indexed attribute to the frozenset
    of its distinct values, so an equality probe skips the segment when
    the probed value cannot match; ``encoded_bytes`` is the segment's
    pickled size, the cold tier's memory-accounting unit.

    The block inside is self-contained (fresh encoder, schema inline),
    so a segment can cross a process boundary verbatim — the tier-aware
    migration path ships cold state this way, with no decode/re-encode
    round trip.
    """

    __slots__ = ("block", "slots", "min_ts", "max_ts", "summaries", "encoded_bytes")

    def __init__(
        self,
        block: TupleBlock,
        slots: Tuple[int, ...],
        min_ts: int,
        max_ts: int,
        summaries: Dict[str, FrozenSet[Any]],
        encoded_bytes: int,
    ) -> None:
        self.block = block
        self.slots = slots
        self.min_ts = min_ts
        self.max_ts = max_ts
        self.summaries = summaries
        self.encoded_bytes = encoded_bytes

    def __len__(self) -> int:
        return len(self.slots)

    def stream(self) -> int:
        """The owning stream (segments are single-stream by construction)."""
        return self.block.stream[0]

    def with_slots(self, slots: Tuple[int, ...]) -> "ColdSegment":
        """The same frozen content under new (destination) slot ids."""
        return ColdSegment(
            self.block, slots, self.min_ts, self.max_ts,
            self.summaries, self.encoded_bytes,
        )

    def __getstate__(self) -> _ColdSegmentState:
        return (
            self.block,
            self.slots,
            self.min_ts,
            self.max_ts,
            self.summaries,
            self.encoded_bytes,
        )

    def __setstate__(self, state: _ColdSegmentState) -> None:
        (
            self.block,
            self.slots,
            self.min_ts,
            self.max_ts,
            self.summaries,
            self.encoded_bytes,
        ) = state

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ColdSegment(n={len(self.slots)}, ts=[{self.min_ts},{self.max_ts}], "
            f"bytes={self.encoded_bytes})"
        )


def freeze_segment(
    batch: Sequence[StreamTuple],
    slots: Sequence[int],
    summary_attributes: Sequence[str],
) -> ColdSegment:
    """Freeze a slot-ordered run of window tuples into a cold segment.

    The entire tuple payload travels through :meth:`BlockEncoder.encode`
    — the single cold-tier encode path — so every
    :class:`~repro.core.tuples.StreamTuple` slot the codec covers is
    covered here too (the repro-lint ``codec-coverage`` rule pins this
    delegation).  ``summary_attributes`` are the store's indexed
    attributes; their distinct values become the probe-skip summaries.
    """
    if not batch:
        raise ValueError("cannot freeze an empty segment")
    if len(batch) != len(slots):
        raise ValueError(f"{len(batch)} tuples but {len(slots)} slots")
    block = BlockEncoder().encode(batch)
    summaries: Dict[str, FrozenSet[Any]] = {
        attr: frozenset(t.get(attr) for t in batch) for attr in summary_attributes
    }
    encoded_bytes = len(pickle.dumps(block, PICKLE_PROTOCOL))
    return ColdSegment(
        block, tuple(slots), min(block.ts), max(block.ts), summaries, encoded_bytes
    )


def thaw_segment(segment: ColdSegment) -> List[StreamTuple]:
    """Decode a cold segment back into tuples (segment slot order)."""
    return BlockDecoder().decode(segment.block)


def segment_column(segment: ColdSegment, attr: str) -> List[Any]:
    """Per-tuple payload values of ``attr`` without decoding the segment.

    Absent cells (attribute missing from a tuple's payload) come back as
    ``None`` — exactly what ``t.values.get(attr)`` would have produced —
    so migration classifiers can partition a frozen segment by reading
    one column instead of materializing tuple objects.
    """
    block = segment.block
    attrs = block.attributes  # always inline: segments use fresh encoders
    if attrs is None or attr not in attrs:
        return [None] * len(block)
    column = block.columns[attrs.index(attr)]
    if block.has_missing:
        return [None if v is MISSING else v for v in column]
    return list(column)


def encode_state(
    source: int,
    dest: int,
    slots: Tuple[int, ...],
    window: Sequence[WindowStateItem],
    pending: Sequence[StreamTuple],
) -> StateBlock:
    """Pack a migration payload columnar-side for the pipe (see
    :class:`StateBlock`).

    Runs of consecutive raw tuples in the window leg are packed into
    :class:`TupleBlock` columns (one shared encoder, schemas inline on
    first use); :class:`ColdSegment` items are already encoded and pass
    through untouched — the tier-aware half of the migration path.
    """
    encoder = BlockEncoder()
    packed: WindowPayload = []
    run: List[StreamTuple] = []
    for item in window:
        if isinstance(item, ColdSegment):
            if run:
                packed.append(encoder.encode(run))
                run = []
            packed.append(item)
        else:
            run.append(item)
    if run:
        packed.append(encoder.encode(run))
    return StateBlock(source, dest, slots, packed, BlockEncoder().encode(pending))


def decode_state(
    block: StateBlock,
) -> Tuple[List[WindowStateItem], List[StreamTuple]]:
    """Unpack a columnar :class:`StateBlock` into ``(window, pending)``.

    Window-leg :class:`TupleBlock` runs decode back into raw tuples
    (one decoder across the runs, pairing the encoder's schema
    negotiation); :class:`ColdSegment` items stay frozen — the adopting
    store installs them without a decode.
    """
    decoder = BlockDecoder()
    window: List[WindowStateItem] = []
    for item in block.window:
        if isinstance(item, TupleBlock):
            window.extend(decoder.decode(item))
        else:
            window.append(item)
    # A decoded StateBlock always carries a TupleBlock pending leg
    # (encode_state built it); the cast states that invariant for mypy.
    return window, BlockDecoder().decode(cast(TupleBlock, block.pending))


class BlockEncoder:
    """Stateful encoder end of a connection (see module docstring)."""

    __slots__ = ("_schemas",)

    def __init__(self) -> None:
        # attribute-set → (schema_id, canonical attribute order).  The
        # first block of a set fixes the column order for every later
        # block of that set, so decoders index columns consistently.
        self._schemas: Dict[FrozenSet[str], Tuple[int, Tuple[str, ...]]] = {}

    def encode(
        self,
        batch: Sequence[StreamTuple],
        start: int = 0,
        stop: Optional[int] = None,
    ) -> TupleBlock:
        """Pack ``batch[start:stop]`` into one block — without slicing.

        The index window keeps large pending buffers drain-able in
        ``batch_size`` chunks with zero intermediate list copies.
        """
        if stop is None:
            stop = len(batch)
        ts_col: List[int] = []
        stream_col: List[int] = []
        seq_col: List[int] = []
        arrival_col: List[int] = []
        delay_col: List[int] = []
        payloads: List[Dict[str, Any]] = []
        for i in range(start, stop):
            t = batch[i]
            ts_col.append(t.ts)
            stream_col.append(t.stream)
            seq_col.append(t.seq)
            arrival_col.append(t.arrival)
            delay_col.append(t.delay)
            payloads.append(t.values)

        if payloads:
            first_keys = payloads[0].keys()
            uniform = all(v.keys() == first_keys for v in payloads)
        else:
            uniform = True
        if uniform and payloads:
            attr_set = frozenset(first_keys)
            natural: Tuple[str, ...] = tuple(first_keys)
        elif payloads:
            union: Dict[str, None] = {}
            for values in payloads:
                for name in values:
                    if name not in union:
                        union[name] = None
            attr_set = frozenset(union)
            natural = tuple(union)
        else:
            attr_set = frozenset()
            natural = ()

        entry = self._schemas.get(attr_set)
        if entry is None:
            schema_id = len(self._schemas)
            self._schemas[attr_set] = (schema_id, natural)
            attrs, inline = natural, natural
        else:
            schema_id, attrs = entry
            inline = None

        columns: List[List[Any]]
        if uniform and attrs == natural:
            columns = [[v[a] for v in payloads] for a in attrs]
            has_missing = False
        else:
            # Mixed attribute sets (or a schema whose canonical order was
            # fixed by an earlier block): absent cells carry MISSING.
            columns = [[v.get(a, MISSING) for v in payloads] for a in attrs]
            has_missing = not uniform
        return TupleBlock(
            schema_id,
            inline,
            has_missing,
            ts_col,
            stream_col,
            seq_col,
            arrival_col,
            delay_col,
            columns,
        )

    def encode_results(self, results: Sequence[JoinResult]) -> ResultBlock:
        """Pack join results, interning each distinct component tuple once.

        Components are deduplicated by object identity — exactly the
        sharing the operator created (one window tuple appears in many
        results), which is also what pickle's memo would discover, minus
        the per-object graph walk.
        """
        ts_col: List[int] = []
        flat: List[int] = []
        distinct: List[StreamTuple] = []
        index_of: Dict[int, int] = {}
        arity = len(results[0].components) if results else 0
        for result in results:
            ts_col.append(result.ts)
            for component in result.components:
                key = id(component)
                idx = index_of.get(key)
                if idx is None:
                    idx = len(distinct)
                    index_of[key] = idx
                    distinct.append(component)
                flat.append(idx)
        return ResultBlock(arity, ts_col, flat, self.encode(distinct))


class BlockDecoder:
    """Stateful decoder end of a connection (see module docstring)."""

    __slots__ = ("_schemas",)

    def __init__(self) -> None:
        self._schemas: Dict[int, Tuple[str, ...]] = {}

    def decode(self, block: TupleBlock) -> List[StreamTuple]:
        """Unpack a block back into :class:`StreamTuple` objects.

        Preserves everything the transport carries: payload (``None``
        values kept, :data:`MISSING` cells dropped), ``delay`` and
        ``arrival`` annotations included.
        """
        attrs = block.attributes
        if attrs is not None:
            self._schemas[block.schema_id] = attrs
        else:
            try:
                attrs = self._schemas[block.schema_id]
            except KeyError:
                raise ValueError(
                    f"block references unknown schema {block.schema_id}; "
                    "encoder and decoder must form one connection pair"
                ) from None
        restore = StreamTuple.restore
        if not attrs:
            return [
                restore(ts, {}, stream, seq, arrival, delay)
                for ts, stream, seq, arrival, delay in zip(
                    block.ts, block.stream, block.seq, block.arrival, block.delay
                )
            ]
        rows = zip(
            block.ts, block.stream, block.seq, block.arrival, block.delay,
            *block.columns,
        )
        if block.has_missing:
            return [
                restore(
                    row[0],
                    {
                        a: v
                        for a, v in zip(attrs, row[5:])
                        if v is not MISSING
                    },
                    row[1],
                    row[2],
                    row[3],
                    row[4],
                )
                for row in rows
            ]
        return [
            restore(row[0], dict(zip(attrs, row[5:])), row[1], row[2], row[3], row[4])
            for row in rows
        ]

    def decode_results(self, block: ResultBlock) -> List[JoinResult]:
        """Unpack a result block, re-sharing decoded component tuples."""
        components = self.decode(block.components)
        arity = block.arity
        flat = block.component_indexes
        results: List[JoinResult] = []
        append = results.append
        pos = 0
        for ts in block.ts:
            end = pos + arity
            append(JoinResult(ts, tuple(components[i] for i in flat[pos:end])))
            pos = end
        return results


_CheckpointFrameState = Tuple[int, int, int, bytes, int]


class CheckpointIntegrityError(ValueError):
    """A checkpoint frame failed its CRC check and must be rejected."""


class CheckpointFrame:
    """One shard checkpoint: a pickled :class:`StateBlock` plus a CRC.

    The supervised executor's recovery unit (see
    :mod:`repro.parallel.supervision`).  The worker pickles its full
    shard state — the same :class:`StateBlock` shape the migration
    barrier ships — *immediately* at capture time, so the frame is a
    true snapshot: later mutation of the live window store cannot leak
    into a frame already held by the parent.  ``crc`` (CRC-32 of the
    payload) lets the parent reject a frame corrupted in flight or by a
    misbehaving worker before it ever becomes the recovery point;
    ``epoch`` and ``seq`` identify which worker incarnation produced it
    and how many batches it covers (batches ``1..seq`` of that shard,
    by pipe ordering).
    """

    __slots__ = ("shard", "epoch", "seq", "payload", "crc")

    def __init__(
        self, shard: int, epoch: int, seq: int, payload: bytes, crc: int
    ) -> None:
        self.shard = shard
        self.epoch = epoch
        self.seq = seq
        self.payload = payload
        self.crc = crc

    def __getstate__(self) -> _CheckpointFrameState:
        return (self.shard, self.epoch, self.seq, self.payload, self.crc)

    def __setstate__(self, state: _CheckpointFrameState) -> None:
        self.shard, self.epoch, self.seq, self.payload, self.crc = state

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CheckpointFrame(shard={self.shard}, epoch={self.epoch}, "
            f"seq={self.seq}, {len(self.payload)}B)"
        )


def frame_checkpoint(
    shard: int, epoch: int, seq: int, state: StateBlock
) -> CheckpointFrame:
    """Freeze ``state`` into an integrity-checked checkpoint frame."""
    payload = pickle.dumps(state, protocol=PICKLE_PROTOCOL)
    return CheckpointFrame(shard, epoch, seq, payload, zlib.crc32(payload))


def unframe_checkpoint(frame: CheckpointFrame) -> StateBlock:
    """Verify and unpickle a checkpoint frame's :class:`StateBlock`.

    Raises :class:`CheckpointIntegrityError` on CRC mismatch — callers
    must treat the whole checkpoint record as never having existed.
    """
    verify_checkpoint(frame)
    return cast(StateBlock, pickle.loads(frame.payload))


def verify_checkpoint(frame: CheckpointFrame) -> None:
    """CRC-check a frame without paying for the unpickle."""
    actual = zlib.crc32(frame.payload)
    if actual != frame.crc:
        raise CheckpointIntegrityError(
            f"checkpoint frame for shard {frame.shard} "
            f"(epoch {frame.epoch}, seq {frame.seq}) fails CRC: "
            f"stored {frame.crc:#010x}, computed {actual:#010x}"
        )
