"""The end-to-end quality-driven disorder handling pipeline (paper Fig. 2).

Wires together, per input stream, a :class:`~repro.core.kslack.KSlackBuffer`
(intra-stream disorder), then a shared
:class:`~repro.core.synchronizer.Synchronizer` (inter-stream disorder), the
:class:`~repro.join.mswj.MSWJOperator`, and the management plane: the
Statistics Manager, the Tuple-Productivity Profiler, the Result-Size
Monitor, and a :class:`~repro.core.adaptation.BufferSizePolicy` acting as
the Buffer-Size Manager.

The pipeline is driven in *arrival order*: call :meth:`process` once per
raw tuple.  Every ``L`` milliseconds of application time (the maximum
local current time across streams) an adaptation step runs: the profiler
maps are snapshotted, the instant requirement is derived, the policy
picks the next K, and all K-slack buffers are updated together (the
Same-K policy).  An optional ``on_adaptation`` callback fires right
before each step — the experiment harness uses it to take the paper's
γ(P) measurements.

Call :meth:`flush` after the last tuple to drain all buffers (finite
datasets; the paper's streams are endless so Alg. 1/2 never flush).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from ..join.conditions import JoinCondition
from ..join.mswj import MSWJOperator
from ..join.ordering import ProbeOrderPolicy
from ..join.store import StateItem, StoreMetrics, StoreSpec, ValueClassifier
from .adaptation import AdaptationContext, BufferSizePolicy, ModelBasedPolicy
from .blocks import ColdSegment, WindowStateItem
from .kslack import KSlackBuffer
from .profiler import TupleProductivityProfiler
from .result_monitor import ResultSizeMonitor
from .selectivity import NonEqSel
from .statistics import StatisticsManager
from .synchronizer import Synchronizer
from .tuples import JoinResult, StreamTuple

#: What a pipeline emits: collected results or a bare count, depending on
#: ``PipelineConfig.collect_results``.
Outputs = Union[List[JoinResult], int]


def empty_outputs(collect: bool) -> Outputs:
    return [] if collect else 0


def merge_outputs(collect: bool, accumulated: Outputs, new: Outputs) -> Outputs:
    if collect:
        accumulated.extend(new)  # type: ignore[union-attr,arg-type]
        return accumulated
    return accumulated + new  # type: ignore[operator]


@dataclass
class PipelineConfig:
    """User-facing configuration of the framework (paper Table I symbols).

    ``gamma`` is the recall requirement Γ, ``period_ms`` the measurement
    period P, ``interval_ms`` the adaptation interval L (must not exceed
    P), ``basic_window_ms`` the basic-window size b, and
    ``granularity_ms`` the K-search granularity g.  Defaults follow the
    paper's default parameter configuration (P = 1 min, b = g = 10 ms,
    L = 1 s).
    """

    window_sizes_ms: Sequence[int]
    condition: JoinCondition
    gamma: float = 0.95
    period_ms: int = 60_000
    interval_ms: int = 1_000
    basic_window_ms: int = 10
    granularity_ms: int = 10
    policy: Optional[BufferSizePolicy] = None
    probe_order: Optional[ProbeOrderPolicy] = None
    collect_results: bool = True
    adwin_delta: float = 0.002
    initial_k_ms: int = 0
    #: DPcorr-map smoothing across adaptation intervals (0 = paper-exact
    #: last-interval-only; see TupleProductivityProfiler).
    profiler_smoothing: float = 0.5
    #: Window state representation (see :mod:`repro.join.store`):
    #: ``None`` / ``"memory"`` keeps every live tuple as an object;
    #: ``"tiered"`` or a :class:`~repro.join.store.TieredStoreConfig`
    #: bounds the hot object tier and compacts older tuples into
    #: columnar cold segments.  Plain data — it crosses process
    #: boundaries inside the pickled config.  Store choice never
    #: changes join output, only memory shape.
    store: StoreSpec = None

    def __post_init__(self) -> None:
        if not 0.0 < self.gamma <= 1.0:
            raise ValueError(f"gamma must be in (0, 1], got {self.gamma}")
        if self.interval_ms > self.period_ms:
            raise ValueError(
                f"adaptation interval L ({self.interval_ms}) must not exceed "
                f"measurement period P ({self.period_ms})"
            )
        if self.basic_window_ms <= 0 or self.granularity_ms <= 0:
            raise ValueError("basic window b and granularity g must be positive")


@dataclass
class PipelineMetrics:
    """Metrics accumulated over one pipeline run."""

    #: (app_time_ms, k_ms) pairs; a new entry whenever K changes.
    k_history: List[Tuple[int, int]] = field(default_factory=list)
    #: wall-clock seconds spent inside policy.decide() per adaptation step.
    adaptation_seconds: List[float] = field(default_factory=list)
    adaptations: int = 0
    results_produced: int = 0
    tuples_processed: int = 0
    latency_sum_ms: int = 0
    latency_count: int = 0
    latency_max_ms: int = 0
    #: Populated by :meth:`merge` only: each constituent shard's own
    #: ``k_history``, kept so :meth:`average_k_ms` can average the
    #: per-shard K trajectories instead of misreading the interleaved
    #: union as one trajectory.
    shard_k_histories: List[List[Tuple[int, int]]] = field(default_factory=list)
    #: Per-stream window-state sizes, sampled at every adaptation
    #: boundary and at flush (so they are *sampled peaks*, not exact
    #: maxima).  ``stream_resident_objects`` counts tuples held as
    #: Python objects (hot tier + decode cache), ``stream_hot_objects``
    #: the hot tier alone, ``stream_encoded_bytes`` the cold tier's
    #: encoded footprint; ``stream_evicted`` is the cumulative expired
    #: count.  :meth:`merge` sums them element-wise across shards
    #: (shards hold disjoint state concurrently).
    stream_resident_objects: List[int] = field(default_factory=list)
    stream_hot_objects: List[int] = field(default_factory=list)
    stream_encoded_bytes: List[int] = field(default_factory=list)
    stream_evicted: List[int] = field(default_factory=list)
    #: Cumulative cold-segment decode-cache traffic (tiered stores only;
    #: zero for in-memory stores), summed across streams and shards.
    decode_hits: int = 0
    decode_misses: int = 0

    def average_latency_ms(self) -> float:
        return self.latency_sum_ms / self.latency_count if self.latency_count else 0.0

    def average_adaptation_seconds(self) -> float:
        if not self.adaptation_seconds:
            return 0.0
        return sum(self.adaptation_seconds) / len(self.adaptation_seconds)

    @classmethod
    def merge(cls, parts: Sequence["PipelineMetrics"]) -> "PipelineMetrics":
        """Aggregate metrics of several (shard) pipelines into one.

        Counters and latency moments add up; ``latency_max_ms`` is the
        maximum across parts; ``adaptation_seconds`` are concatenated
        (each shard runs its own adaptation loop); ``k_history`` is the
        time-sorted interleaving of all shard histories with the
        duplicated initial epochs collapsed — every shard starts with the
        same ``(0, initial_k)`` entry, and naively interleaving N copies
        of it skews any reading of the merged history (equal *later*
        entries are genuine concurrent adaptation events and are kept).
        The shards' individual histories are preserved in
        :attr:`shard_k_histories` so :meth:`average_k_ms` can average the
        per-shard time-weighted trajectories instead of treating the
        interleaving as one.
        """
        merged = cls()
        for part in parts:
            merged.k_history.extend(part.k_history)
            merged.adaptation_seconds.extend(part.adaptation_seconds)
            merged.adaptations += part.adaptations
            merged.results_produced += part.results_produced
            merged.tuples_processed += part.tuples_processed
            merged.latency_sum_ms += part.latency_sum_ms
            merged.latency_count += part.latency_count
            merged.latency_max_ms = max(merged.latency_max_ms, part.latency_max_ms)
            merged.decode_hits += part.decode_hits
            merged.decode_misses += part.decode_misses
            for name in (
                "stream_resident_objects",
                "stream_hot_objects",
                "stream_encoded_bytes",
                "stream_evicted",
            ):
                ours: List[int] = getattr(merged, name)
                theirs: List[int] = getattr(part, name)
                if len(ours) < len(theirs):
                    ours.extend([0] * (len(theirs) - len(ours)))
                for i, value in enumerate(theirs):
                    ours[i] += value
            # Merging merged metrics flattens to the leaf shard
            # trajectories — a part's interleaved union is not a
            # trajectory any shard actually ran.
            if part.shard_k_histories:
                merged.shard_k_histories.extend(
                    list(history) for history in part.shard_k_histories
                )
            else:
                merged.shard_k_histories.append(list(part.k_history))
        # Stable ts sort preserves each shard's own same-timestamp event
        # order; then only the duplicated *initial* epochs collapse —
        # every shard opens with the same (0, initial_k) entry, while
        # equal later entries are real concurrent adaptation events that
        # consumers (e.g. K-change counts) must still see.
        merged.k_history.sort(key=lambda entry: entry[0])
        deduped: List[Tuple[int, int]] = []
        seen_initial: set = set()
        for entry in merged.k_history:
            if entry[0] == 0:
                if entry[1] in seen_initial:
                    continue
                seen_initial.add(entry[1])
            deduped.append(entry)
        merged.k_history = deduped
        return merged

    @staticmethod
    def _time_weighted_k(
        history: Sequence[Tuple[int, int]], end_time_ms: Optional[int]
    ) -> float:
        if not history:
            return 0.0
        if end_time_ms is None:
            end_time_ms = history[-1][0]
        weighted = 0.0
        span = 0
        for index, (start, k) in enumerate(history):
            end = (
                history[index + 1][0]
                if index + 1 < len(history)
                else max(end_time_ms, start)
            )
            duration = max(0, end - start)
            weighted += k * duration
            span += duration
        if span == 0:
            return float(history[-1][1])
        return weighted / span

    def average_k_ms(self, end_time_ms: Optional[int] = None) -> float:
        """Time-weighted average K over the run (the paper's "Avg. K").

        On merged metrics this is the mean of the per-shard time-weighted
        averages — the shards buffer concurrently, so their trajectories
        average rather than concatenate.  When no explicit end time is
        given, every shard is evaluated up to the latest K-change across
        all shards (a shard that stopped adapting early still spent the
        rest of the run at its final K).
        """
        if self.shard_k_histories:
            if end_time_ms is None:
                end_time_ms = max(
                    (h[-1][0] for h in self.shard_k_histories if h), default=None
                )
            averages = [
                self._time_weighted_k(history, end_time_ms)
                for history in self.shard_k_histories
            ]
            return sum(averages) / len(averages)
        return self._time_weighted_k(self.k_history, end_time_ms)


#: Invoked right before each adaptation step: (pipeline, app_time_ms).
AdaptationCallback = Callable[["QualityDrivenPipeline", int], None]
#: Invoked whenever results are produced: (result_ts_ms, count).
ResultsCallback = Callable[[int, int], None]


class QualityDrivenPipeline:
    """The complete framework of paper Fig. 2 as a push-based operator.

    One instance wires, per input stream, a
    :class:`~repro.core.kslack.KSlackBuffer` (intra-stream disorder) into
    a shared :class:`~repro.core.synchronizer.Synchronizer` (inter-stream
    disorder), the :class:`~repro.join.mswj.MSWJOperator`, and the
    management plane that adapts the buffer size K against the recall
    requirement Γ.  Drive it in *arrival order*: :meth:`process` per raw
    tuple (or :meth:`process_batch` per burst — sequence-identical, just
    cheaper per tuple), then :meth:`flush` exactly once at end of input.

    Parameters
    ----------
    config:
        The :class:`PipelineConfig` — window sizes (which also fix the
        stream count), join condition, recall target Γ, measurement
        period P, adaptation interval L, and the buffer-size policy
        (model-based by default; ``FixedKPolicy`` pins K, which makes
        disorder handling lossless whenever K covers the realized
        maximum delay).
    on_adaptation:
        Optional callback ``(pipeline, app_time_ms)`` fired right before
        each adaptation step; the experiment harness hooks its γ(P)
        measurements here.
    on_results:
        Optional callback ``(result_ts_ms, count)`` fired whenever the
        join produces results.

    The per-shard pipelines of the partitioned engine
    (:mod:`repro.parallel`) are instances of this class; the
    ``prepare_migration`` / ``adopt_migration`` pair is the shard-state
    handoff its rebalancer drives.
    """

    def __init__(
        self,
        config: PipelineConfig,
        on_adaptation: Optional[AdaptationCallback] = None,
        on_results: Optional[ResultsCallback] = None,
    ) -> None:
        self.config = config
        self.num_streams = len(config.window_sizes_ms)
        self.policy = config.policy or ModelBasedPolicy(NonEqSel())
        self.kslacks = [
            KSlackBuffer(config.initial_k_ms) for _ in range(self.num_streams)
        ]
        self.synchronizer = Synchronizer(self.num_streams)
        self.profiler = TupleProductivityProfiler(
            config.granularity_ms, smoothing=config.profiler_smoothing
        )
        self.statistics = StatisticsManager(
            self.num_streams, config.granularity_ms, config.adwin_delta
        )
        self.monitor = ResultSizeMonitor(config.period_ms, config.interval_ms)
        self.join = MSWJOperator(
            config.window_sizes_ms,
            config.condition,
            probe_order=config.probe_order,
            productivity_callback=self.profiler.record,
            collect_results=config.collect_results,
            store=config.store,
        )
        self.metrics = PipelineMetrics()
        self.metrics.k_history.append((0, config.initial_k_ms))
        self._current_k = config.initial_k_ms
        self._next_adaptation_ms = config.interval_ms
        self._on_adaptation = on_adaptation
        self._on_results = on_results
        self._flushed = False

    # ------------------------------------------------------------------
    # properties
    # ------------------------------------------------------------------

    @property
    def current_k_ms(self) -> int:
        return self._current_k

    @property
    def flushed(self) -> bool:
        """True once :meth:`flush` ran; :meth:`process` then raises and
        further :meth:`flush` calls return empty."""
        return self._flushed

    def app_time_ms(self) -> int:
        """Global application-time progress (max local time across streams)."""
        return self.statistics.app_time()

    def store_metrics(self) -> List[StoreMetrics]:
        """Live per-stream window-store snapshots (state sizes, codec
        traffic); see :class:`~repro.join.store.StoreMetrics`."""
        return [window.store.metrics() for window in self.join.windows]

    def _sample_state_metrics(self) -> None:
        """Fold the current store snapshots into the run metrics
        (sampled peaks for sizes, latest values for cumulative counters)."""
        metrics = self.metrics
        snapshots = self.store_metrics()
        for name in (
            "stream_resident_objects",
            "stream_hot_objects",
            "stream_encoded_bytes",
            "stream_evicted",
        ):
            series: List[int] = getattr(metrics, name)
            if len(series) < len(snapshots):
                series.extend([0] * (len(snapshots) - len(series)))
        hits = 0
        misses = 0
        for i, snap in enumerate(snapshots):
            if snap.resident_objects > metrics.stream_resident_objects[i]:
                metrics.stream_resident_objects[i] = snap.resident_objects
            if snap.hot_objects > metrics.stream_hot_objects[i]:
                metrics.stream_hot_objects[i] = snap.hot_objects
            if snap.encoded_bytes > metrics.stream_encoded_bytes[i]:
                metrics.stream_encoded_bytes[i] = snap.encoded_bytes
            metrics.stream_evicted[i] = snap.evicted  # cumulative
            hits += snap.decode_hits
            misses += snap.decode_misses
        metrics.decode_hits = hits
        metrics.decode_misses = misses

    # ------------------------------------------------------------------
    # streaming interface
    # ------------------------------------------------------------------

    def process(self, t: StreamTuple) -> Union[List[JoinResult], int]:
        """Feed one raw tuple (arrival order); return results produced now."""
        if self._flushed:
            raise RuntimeError("pipeline already flushed; create a new instance")
        if not 0 <= t.stream < self.num_streams:
            raise ValueError(
                f"tuple stream index {t.stream} outside [0, {self.num_streams})"
            )
        self.metrics.tuples_processed += 1
        released = self.kslacks[t.stream].process(t)
        self.statistics.observe_arrival(t)

        # Continuous policies (Max-K-slack) may bump K at any arrival.
        immediate_k = self.policy.on_arrival(t)
        if immediate_k is not None and immediate_k != self._current_k:
            released.extend(self._apply_k(immediate_k))

        outputs = self._route_to_join(released)

        # Interval adaptation on application-time boundaries.
        while self.app_time_ms() >= self._next_adaptation_ms:
            boundary = self._next_adaptation_ms
            self._next_adaptation_ms += self.config.interval_ms
            outputs = self._merge(outputs, self._adapt(boundary))
        return outputs

    def process_batch(
        self, batch: Sequence[StreamTuple]
    ) -> Union[List[JoinResult], int]:
        """Feed a burst of raw tuples in arrival order; return all results.

        Exactly equivalent to concatenating per-tuple :meth:`process`
        returns — every tuple still advances the statistics clock, may
        trigger a continuous-policy K bump, and adaptation boundaries are
        honoured mid-batch.  The batched loop amortizes the per-tuple
        attribute lookups and the adaptation-boundary bookkeeping, and
        routes each tuple's K-slack releases through the Synchronizer and
        the join as one burst.
        """
        if self._flushed:
            raise RuntimeError("pipeline already flushed; create a new instance")
        collect = self.config.collect_results
        outputs = empty_outputs(collect)
        kslacks = self.kslacks
        num_streams = self.num_streams
        observe_arrival = self.statistics.observe_arrival
        on_arrival = self.policy.on_arrival
        app_time = self.statistics.app_time
        metrics = self.metrics
        interval_ms = self.config.interval_ms
        for t in batch:
            stream = t.stream
            if not 0 <= stream < num_streams:
                raise ValueError(
                    f"tuple stream index {stream} outside [0, {num_streams})"
                )
            metrics.tuples_processed += 1
            released = kslacks[stream].process(t)
            observe_arrival(t)

            immediate_k = on_arrival(t)
            if immediate_k is not None and immediate_k != self._current_k:
                released.extend(self._apply_k(immediate_k))

            if released:
                outputs = self._merge(outputs, self._route_to_join(released))

            while app_time() >= self._next_adaptation_ms:
                boundary = self._next_adaptation_ms
                self._next_adaptation_ms += interval_ms
                outputs = self._merge(outputs, self._adapt(boundary))
        return outputs

    def flush(self) -> Union[List[JoinResult], int]:
        """Drain every buffer at end of input; returns the final results."""
        if self._flushed:
            return empty_outputs(self.config.collect_results)
        self._flushed = True
        outputs = empty_outputs(self.config.collect_results)
        for stream, kslack in enumerate(self.kslacks):
            outputs = self._merge(outputs, self._route_to_join(kslack.flush()))
            emitted = self.synchronizer.close_stream(stream)
            outputs = self._merge(outputs, self._feed_join(emitted))
        outputs = self._merge(outputs, self._feed_join(self.synchronizer.flush()))
        self._sample_state_metrics()
        return outputs

    # ------------------------------------------------------------------
    # shard-state migration (repro.parallel rebalancing)
    # ------------------------------------------------------------------

    def prepare_migration(
        self,
        classify: Callable[[StreamTuple], Optional[object]],
        beacon_ts: int,
        drain_floor_ts: Optional[int] = None,
        attr_by_stream: Optional[Sequence[Optional[str]]] = None,
        value_classifier: Optional[ValueClassifier] = None,
    ) -> Tuple[
        Union[List[JoinResult], int],
        Dict[object, List[StateItem]],
        Dict[object, List[StreamTuple]],
    ]:
        """Drain to the barrier watermark, then carve out the state of
        the tuples ``classify`` marks as migrating.

        ``classify`` maps a tuple to its migration group (for the
        partitioned engine: the destination shard) or ``None`` for
        tuples that stay; it must be pure (stores may evaluate it in
        tier order and skip it for column-classified cold segments).
        When ``attr_by_stream`` + ``value_classifier`` are given, a
        tiered store classifies frozen cold segments by reading the
        stream's partition-attribute column — a uniformly-classified
        segment moves *as the already-encoded block* with no
        decode/re-encode round trip.  Returns ``(outputs,
        window_groups, pending_groups)``:

        * ``outputs`` — join results produced by the barrier drain (the
          caller emits them exactly like :meth:`process` returns);
        * ``window_groups`` — group → window state removed from the
          join windows: raw tuples and/or frozen
          :class:`~repro.core.blocks.ColdSegment` items, in per-window
          slot (= insertion) order (re-adopting them in sequence at the
          peer reproduces the probe candidate order);
        * ``pending_groups`` — group → tuples still in flight in the
          disorder-handling front, for re-buffering at the peer.

        The barrier drain advances every K-slack clock to ``beacon_ts``
        (the caller's global arrival clock) and force-drains the
        Synchronizer down to ``min(beacon_ts, drain_floor_ts) - K``.
        ``drain_floor_ts`` is the caller's per-stream progress bound
        (minimum over streams of the maximum timestamp routed so far):
        a stream may trail the others in timestamp — or be entirely
        silent — while internally in order, and only the synchronizer's
        completeness gate keeps such runs exact; since under lossless
        disorder handling no future input of any stream sits more than
        K below that stream's progress, the floored drain provably
        never emits past what the gate could still be holding.  Every
        still-pending tuple therefore sits *above* the drained
        watermark — which is what lets the peer adopt the pending set
        without ever presenting its join an out-of-order tuple.  The
        drain changes only *when* tuples reach the join, never their
        order, so the result sequence and join statistics are
        unaffected (buffering-latency metrics and delay annotations can
        shift, as tuples leave the buffers earlier than they would
        have).
        """
        if self._flushed:
            raise RuntimeError("pipeline already flushed; create a new instance")
        outputs = empty_outputs(self.config.collect_results)
        for kslack in self.kslacks:
            released = kslack.advance_clock(beacon_ts)
            if released:
                outputs = self._merge(outputs, self._route_to_join(released))
        drain_base = beacon_ts
        if drain_floor_ts is not None and drain_floor_ts < drain_base:
            drain_base = drain_floor_ts
        watermark = min(drain_base - kslack.k for kslack in self.kslacks)
        emitted = self.synchronizer.drain_below(watermark)
        if emitted:
            outputs = self._merge(outputs, self._feed_join(emitted))

        window_groups: Dict[object, List[StateItem]] = {}
        pending_groups: Dict[object, List[StreamTuple]] = {}

        for stream, window in enumerate(self.join.windows):
            attr = (
                attr_by_stream[stream] if attr_by_stream is not None else None
            )
            extracted = window.extract_state(
                classify,
                partition_attr=attr,
                value_classifier=value_classifier if attr is not None else None,
            )
            for group, items in extracted.items():
                window_groups.setdefault(group, []).extend(items)

        def collect_into(groups):
            def matches(t: StreamTuple) -> bool:
                group = classify(t)
                if group is None:
                    return False
                groups.setdefault(group, []).append(t)
                return True

            return matches

        pending_predicate = collect_into(pending_groups)
        for kslack in self.kslacks:
            kslack.extract(pending_predicate)
        # Load-bearing sweep: the floored drain routinely leaves tuples
        # buffered between the progress floor and the beacon (any run
        # where one stream trails the others in timestamp); migrating
        # keys among them must travel as pending state, or they would
        # later join against windows whose partners moved away.
        self.synchronizer.extract(pending_predicate)
        return outputs, window_groups, pending_groups

    def adopt_migration(
        self,
        window_state: Sequence[WindowStateItem],
        pending_tuples: Sequence[StreamTuple],
    ) -> Union[List[JoinResult], int]:
        """Absorb state carved out of a peer by :meth:`prepare_migration`.

        Window state arrives as raw tuples and/or frozen
        :class:`~repro.core.blocks.ColdSegment` items in source slot
        order: tuples are inserted straight into the join windows,
        segments are adopted by the window's store — a tiered store
        installs them still-encoded in its cold tier (they were already
        disorder-handled and probed at the peer — only their *future*
        partner role migrates).  Pending tuples re-enter the K-slack
        front with their original delay annotations and continue through
        the normal release path.  Returns any join results the adoption
        makes available immediately (possible when this pipeline's
        clocks run ahead of the peer's).
        """
        if self._flushed:
            raise RuntimeError("pipeline already flushed; create a new instance")
        windows = self.join.windows
        for item in window_state:
            if isinstance(item, ColdSegment):
                windows[item.stream()].adopt_frozen(item)
            else:
                windows[item.stream].insert(item)
        kslacks = self.kslacks
        # Two-phase: buffer every migrated tuple first, drain after —
        # pending state arrives in no particular order, and releasing
        # between insertions could emit a higher timestamp before a
        # lower one on the same stream.
        for t in pending_tuples:
            kslacks[t.stream].adopt(t)
        released: List[StreamTuple] = []
        if pending_tuples:
            for kslack in kslacks:
                released.extend(kslack.drain_ready())
        return self._route_to_join(released)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _merge(
        self,
        accumulated: Union[List[JoinResult], int],
        new: Union[List[JoinResult], int],
    ) -> Union[List[JoinResult], int]:
        return merge_outputs(self.config.collect_results, accumulated, new)

    def _route_to_join(self, released: List[StreamTuple]) -> Union[List[JoinResult], int]:
        # One synchronizer burst + one join feed: identical to routing
        # tuple-by-tuple (the app-time clock cannot advance in between),
        # without the per-tuple dispatch overhead.
        if not released:
            return empty_outputs(self.config.collect_results)
        return self._feed_join(self.synchronizer.process_batch(released))

    def _feed_join(self, emitted: List[StreamTuple]) -> Union[List[JoinResult], int]:
        collect = self.config.collect_results
        app_now = self.app_time_ms()
        metrics = self.metrics
        join_process = self.join.process
        record_produced = self.monitor.record_produced
        on_results = self._on_results
        if collect:
            outputs: Union[List[JoinResult], int] = []
            extend = outputs.extend
        else:
            outputs = 0
        for t in emitted:
            if t.arrival >= 0:
                waited = app_now - t.arrival
                if waited > 0:
                    metrics.latency_sum_ms += waited
                    if waited > metrics.latency_max_ms:
                        metrics.latency_max_ms = waited
                metrics.latency_count += 1
            produced = join_process(t)
            count = len(produced) if collect else produced
            if count:
                metrics.results_produced += count
                record_produced(t.ts, count)
                if on_results is not None:
                    on_results(t.ts, count)
            if collect:
                extend(produced)
            else:
                outputs += produced
        return outputs

    def _apply_k(self, k_ms: int) -> List[StreamTuple]:
        """Set K on all K-slack buffers (Same-K); collect early releases."""
        self._current_k = k_ms
        self.metrics.k_history.append((self.app_time_ms(), k_ms))
        released: List[StreamTuple] = []
        for kslack in self.kslacks:
            released.extend(kslack.set_k(k_ms))
        return released

    def _adapt(self, boundary_ms: int) -> Union[List[JoinResult], int]:
        """One adaptation step at application time ``boundary_ms``."""
        if self._on_adaptation is not None:
            self._on_adaptation(self, boundary_ms)
        self._sample_state_metrics()
        snapshot = self.profiler.snapshot_and_reset()
        self.monitor.record_true_estimate(snapshot.true_result_estimate())
        context = AdaptationContext(
            statistics=self.statistics,
            profile=snapshot,
            monitor=self.monitor,
            gamma_target=self.config.gamma,
            interval_ms=self.config.interval_ms,
            basic_window_ms=self.config.basic_window_ms,
            granularity_ms=self.config.granularity_ms,
            window_sizes_ms=self.config.window_sizes_ms,
            now_ts=boundary_ms,
            current_k_ms=self._current_k,
        )
        started = time.perf_counter()
        new_k = self.policy.decide(context)
        self.metrics.adaptation_seconds.append(time.perf_counter() - started)
        self.metrics.adaptations += 1
        released: List[StreamTuple] = []
        if new_k != self._current_k:
            released = self._apply_k(new_k)
        return self._route_to_join(released)
