"""The Synchronizer: inter-stream disorder handling (paper Alg. 1).

The Synchronizer merges the output streams of all K-slack components into
a single stream that is (partially) sorted and synchronized.  It keeps a
buffer ``SyncBuf`` and a variable ``T_sync`` tracking the maximum
timestamp among tuples that have left the buffer:

* A tuple ``e`` with ``e.ts > T_sync`` is inserted into the buffer; then,
  while the buffer holds at least one tuple of *each* stream, the minimum
  timestamp present becomes the new ``T_sync`` and every buffered tuple
  with that timestamp is emitted (Alg. 1 lines 4–8).
* A tuple with ``e.ts <= T_sync`` is a straggler the buffer cannot fix; it
  is emitted immediately, still out of order (lines 9–10).

The buffer thereby implicitly re-orders the *leading* streams with an
effective extra slack ``K_i^sync`` equal to the stream's timestamp lead
over the slowest stream — the quantity the Same-K analysis (Theorem 1)
is built on.

Finite-run additions (not in the paper's pseudocode, which assumes
endless streams): :meth:`close_stream` marks a stream as ended so it no
longer gates emission, and :meth:`flush` drains the buffer at end of
input.  Both preserve the ordering invariants.
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Sequence

from .tuples import StreamTuple


class Synchronizer:
    """Merge m (partially sorted) streams into one synchronized stream."""

    def __init__(self, num_streams: int) -> None:
        if num_streams < 1:
            raise ValueError(f"num_streams must be >= 1, got {num_streams}")
        self.num_streams = num_streams
        self._t_sync = 0
        self._heap: List = []  # (ts, tie, tuple)
        self._tie = 0
        self._counts = [0] * num_streams
        self._closed = [False] * num_streams
        self._buffered_total = 0
        # Number of *open* streams with an empty buffer — the streams
        # gating emission.  Maintained incrementally so the drain loop's
        # completeness check is O(1) instead of an all-streams scan.
        self._gating = num_streams

    # ------------------------------------------------------------------
    # properties
    # ------------------------------------------------------------------

    @property
    def t_sync(self) -> int:
        """Maximum timestamp among tuples that have left the buffer."""
        return self._t_sync

    @property
    def buffered(self) -> int:
        return self._buffered_total

    def buffered_of(self, stream: int) -> int:
        return self._counts[stream]

    # ------------------------------------------------------------------
    # Alg. 1
    # ------------------------------------------------------------------

    def process(self, t: StreamTuple) -> List[StreamTuple]:
        """Accept one tuple from any K-slack output; return tuples emitted.

        Follows Alg. 1 exactly: tuples with ``ts <= T_sync`` are stragglers
        the buffer cannot fix and are forwarded immediately (with the
        ``T_sync`` initial value 0, a tuple timestamped 0 passes straight
        through — harmless, as nothing can precede it).
        """
        if not 0 <= t.stream < self.num_streams:
            raise ValueError(
                f"tuple stream index {t.stream} outside [0, {self.num_streams})"
            )
        if t.ts <= self._t_sync:
            return [t]
        self._push(t)
        return self._drain_while_complete()

    def process_batch(self, batch: Sequence[StreamTuple]) -> List[StreamTuple]:
        """Accept a burst of K-slack output tuples; return tuples emitted.

        Exactly equivalent to concatenating per-tuple :meth:`process`
        returns — the loop only hoists the straggler fast path and the
        emission accumulator out of the per-tuple call overhead.
        """
        emitted: List[StreamTuple] = []
        append = emitted.append
        extend = emitted.extend
        num_streams = self.num_streams
        for t in batch:
            if not 0 <= t.stream < num_streams:
                raise ValueError(
                    f"tuple stream index {t.stream} outside [0, {num_streams})"
                )
            if t.ts <= self._t_sync:
                append(t)
                continue
            self._push(t)
            extend(self._drain_while_complete())
        return emitted

    def close_stream(self, stream: int) -> List[StreamTuple]:
        """Mark ``stream`` as ended; it stops gating emission.

        Returns any tuples that become emittable because of the closure.
        Closing an already-closed stream is a no-op (returns no tuples):
        the closure cannot unlock anything a previous drain did not.
        """
        if not 0 <= stream < self.num_streams:
            raise ValueError(
                f"stream index {stream} outside [0, {self.num_streams})"
            )
        if self._closed[stream]:
            return []
        self._closed[stream] = True
        if self._counts[stream] == 0:
            self._gating -= 1
        return self._drain_while_complete()

    # ------------------------------------------------------------------
    # state-migration hooks (repro.parallel rebalancing)
    # ------------------------------------------------------------------

    def drain_below(self, watermark_ts: int) -> List[StreamTuple]:
        """Emit every buffered tuple with ``ts <= watermark_ts``, in order.

        The completeness gate (Alg. 1 line 4) is conservative: it holds a
        leading stream's tuples until every other stream has buffered
        content, because for endless streams nothing else bounds what a
        lagging stream may still deliver.  A caller that *does* hold such
        a bound — the partitioned engine's rebalancing barrier, where the
        parent's global arrival clock guarantees no future release below
        ``watermark_ts`` — may force the buffer out early.  Emission stays
        timestamp-ordered and advances ``T_sync`` exactly as a regular
        drain would, so downstream ordering invariants are preserved.
        """
        heap = self._heap
        if not heap or heap[0][0] > watermark_ts:
            return []
        emitted: List[StreamTuple] = []
        pop = heapq.heappop
        while heap and heap[0][0] <= watermark_ts:
            ts, _, t = pop(heap)
            self._pop_count(t.stream)
            if ts > self._t_sync:
                self._t_sync = ts
            emitted.append(t)
        return emitted

    def extract(
        self, predicate: Callable[[StreamTuple], bool]
    ) -> List[StreamTuple]:
        """Remove and return buffered tuples matching ``predicate``.

        Returned in timestamp (then insertion) order.  ``T_sync`` and the
        gating bookkeeping are maintained; the extracted tuples simply
        leave through the migration path instead of being emitted.  This
        is a load-bearing leg of the rebalancing barrier: the barrier's
        :meth:`drain_below` is floored at the cross-stream progress
        bound, so any tuple buffered between that floor and the beacon —
        routine whenever one stream trails the others in timestamp —
        stays here and must migrate through this sweep (it also covers
        leftovers under heterogeneous per-stream ``K``).
        """
        matched: List = []
        kept: List = []
        for entry in self._heap:
            (matched if predicate(entry[2]) else kept).append(entry)
        if not matched:
            return []
        heapq.heapify(kept)
        self._heap = kept
        matched.sort()
        extracted = []
        for entry in matched:
            t = entry[2]
            self._pop_count(t.stream)
            extracted.append(t)
        return extracted

    def flush(self) -> List[StreamTuple]:
        """Emit the whole buffer in timestamp order (end of all input)."""
        emitted: List[StreamTuple] = []
        while self._heap:
            ts, _, t = heapq.heappop(self._heap)
            self._pop_count(t.stream)
            if ts > self._t_sync:
                self._t_sync = ts
            emitted.append(t)
        return emitted

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _push(self, t: StreamTuple) -> None:
        heapq.heappush(self._heap, (t.ts, self._tie, t))
        self._tie += 1
        stream = t.stream
        self._counts[stream] += 1
        self._buffered_total += 1
        if self._counts[stream] == 1 and not self._closed[stream]:
            self._gating -= 1

    def _pop_count(self, stream: int) -> None:
        self._counts[stream] -= 1
        self._buffered_total -= 1
        if self._counts[stream] == 0 and not self._closed[stream]:
            self._gating += 1

    def _drain_while_complete(self) -> List[StreamTuple]:
        heap = self._heap
        if not heap or self._gating:
            return []
        emitted: List[StreamTuple] = []
        append = emitted.append
        pop = heapq.heappop
        while heap and not self._gating:
            min_ts = heap[0][0]
            if min_ts > self._t_sync:
                self._t_sync = min_ts
            while heap and heap[0][0] == min_ts:
                _, _, t = pop(heap)
                self._pop_count(t.stream)
                append(t)
        return emitted
