"""Buffer-Size Manager policies (paper Sec. III-A, IV; Alg. 3).

The Buffer-Size Manager decides, at the end of every adaptation interval
``L``, the common buffer size ``K`` that all K-slack components will use
during the next interval (the Same-K policy, Theorem 1).  This module
provides the paper's model-based manager and the baselines it is
evaluated against:

* :class:`ModelBasedPolicy` — Alg. 3: derive the instant requirement
  ``Γ'`` (Eq. 7), then search ``k* = 0, g, 2g, …`` until the model
  predicts ``γ(L, k*) >= Γ'`` or ``k*`` exceeds the maximum observed
  delay ``MaxDH``.  The selectivity strategy (EqSel / NonEqSel) supplies
  ``sel(K)/sel`` per candidate.
* :class:`NoKSlackPolicy` — ``K = 0``: inter-stream synchronization only
  (paper Sec. VI baseline).
* :class:`MaxKSlackPolicy` — ``K`` equals the maximum delay among
  so-far-observed tuples, updated continuously (the state-of-the-art
  baseline, after Mutschler & Philippsen [12]).
* :class:`FixedKPolicy` — a user-pinned ``K`` (the "latency-constrained"
  mode offered by prior work, kept for ablations).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import List, Optional, Sequence

from .model import RecallModel, StreamModelInput
from .profiler import ProfileSnapshot
from .result_monitor import ResultSizeMonitor
from .selectivity import SelectivityStrategy
from .statistics import StatisticsManager
from .tuples import StreamTuple


@dataclass
class AdaptationContext:
    """Everything a policy may consult at an adaptation step."""

    statistics: StatisticsManager
    profile: Optional[ProfileSnapshot]
    monitor: ResultSizeMonitor
    gamma_target: float
    interval_ms: int
    basic_window_ms: int
    granularity_ms: int
    window_sizes_ms: Sequence[int]
    now_ts: int
    current_k_ms: int


class BufferSizePolicy(ABC):
    """Strategy object deciding the shared K-slack buffer size."""

    name: str = "abstract"

    def on_arrival(self, t: StreamTuple) -> Optional[int]:
        """Hook called for every raw tuple (delay annotation set).

        Continuous policies (Max-K-slack) return a new K to apply
        immediately; interval policies return None.
        """
        return None

    @abstractmethod
    def decide(self, context: AdaptationContext) -> int:
        """Return the K (ms) to use for the next adaptation interval."""


class NoKSlackPolicy(BufferSizePolicy):
    """Baseline: no intra-stream disorder handling (K = 0)."""

    name = "No-K-slack"

    def decide(self, context: AdaptationContext) -> int:
        return 0


class FixedKPolicy(BufferSizePolicy):
    """A constant, user-chosen K (latency-constrained disorder handling)."""

    name = "Fixed-K"

    def __init__(self, k_ms: int) -> None:
        if k_ms < 0:
            raise ValueError(f"K must be non-negative, got {k_ms}")
        self.k_ms = int(k_ms)

    def decide(self, context: AdaptationContext) -> int:
        return self.k_ms


class MaxKSlackPolicy(BufferSizePolicy):
    """Baseline: K tracks the maximum delay among so-far-observed tuples.

    Each increase is triggered by an out-of-order tuple whose delay
    exceeds the current K — that tuple itself is therefore *not* fully
    re-ordered, which is why Max-K-slack does not guarantee recall 1.0
    (paper Sec. VI-A).
    """

    name = "Max-K-slack"

    def __init__(self) -> None:
        self._max_delay = 0

    def on_arrival(self, t: StreamTuple) -> Optional[int]:
        if t.delay > self._max_delay:
            self._max_delay = t.delay
            return self._max_delay
        return None

    def decide(self, context: AdaptationContext) -> int:
        return self._max_delay


class ModelBasedPolicy(BufferSizePolicy):
    """The paper's contribution: model-based K search (Alg. 3).

    Parameters
    ----------
    selectivity:
        The strategy supplying ``sel(K)/sel`` (EqSel or NonEqSel).
    shrink_damping:
        Stability guard on the downward direction: the applied K never
        drops below ``shrink_damping * previous K`` in one step (growth
        is instantaneous).  Without damping, the Eq. 7 calibration
        bang-bangs: an interval of full recall relaxes Γ' sharply, K
        collapses, the next interval undershoots, Γ' snaps to 1, K jumps
        to MaxDH, and so on — the thrash drags Φ(Γ) down at the *same*
        average K.  Geometric decay (default 0.5 per interval) removes
        the oscillation; it plays the role the PD controller's derivative
        term played in the authors' earlier aggregate-query work [16, 17].
        Set to 0.0 for the undamped, paper-literal Alg. 3.
    search:
        ``"linear"`` is the paper's trial-and-error scan (Alg. 3);
        ``"binary"`` bisects over the g-grid in [0, MaxDH] — O(log) model
        evaluations instead of O(MaxDH/g).  The paper explicitly leaves
        "other algorithms for searching for k*" as future work; binary
        search is exact whenever the quality estimate is non-decreasing
        in K (always true under EqSel; under NonEqSel the learned ratio
        can dip locally, in which case bisection may return a slightly
        different grid point than the scan).
    """

    def __init__(
        self,
        selectivity: SelectivityStrategy,
        shrink_damping: float = 0.5,
        search: str = "linear",
    ) -> None:
        if not 0.0 <= shrink_damping < 1.0:
            raise ValueError(f"shrink_damping must be in [0, 1), got {shrink_damping}")
        if search not in ("linear", "binary"):
            raise ValueError(f"search must be 'linear' or 'binary', got {search!r}")
        self.selectivity = selectivity
        self.shrink_damping = shrink_damping
        self.search = search
        self.name = f"Model-based({selectivity.name})"
        #: Exposed after each decide() call, for diagnostics and tests.
        self.last_instant_requirement: float = 0.0
        self.last_search_steps: int = 0
        self.last_undamped_k: int = 0

    def decide(self, context: AdaptationContext) -> int:
        g = context.granularity_ms
        max_dh = context.statistics.max_delay_ms()
        profile = context.profile
        n_true_next = profile.true_result_estimate() if profile else 0.0
        instant = context.monitor.instant_requirement(
            context.gamma_target, n_true_next, context.now_ts
        )
        self.last_instant_requirement = instant
        model = build_recall_model(context)

        def estimate(k_ms: int) -> float:
            ratio = self.selectivity.ratio(profile, k_ms // g)
            return model.gamma(k_ms, sel_ratio=ratio)

        if self.search == "binary":
            k_star = self._binary_search(estimate, instant, g, max_dh)
        else:
            k_star = self._linear_search(estimate, instant, g, max_dh)
        self.last_undamped_k = k_star
        floor = int(context.current_k_ms * self.shrink_damping)
        return max(k_star, floor)

    def _linear_search(self, estimate, instant: float, g: int, max_dh: int) -> int:
        """Alg. 3: scan k* = 0, g, 2g, ... until the estimate clears Γ'."""
        k_star = 0
        steps = 0
        while k_star <= max_dh:
            steps += 1
            if estimate(k_star) >= instant:
                break
            k_star += g
        self.last_search_steps = steps
        return k_star

    def _binary_search(self, estimate, instant: float, g: int, max_dh: int) -> int:
        """Bisect for the smallest grid point whose estimate clears Γ'."""
        steps = 1
        if estimate(0) >= instant:
            self.last_search_steps = steps
            return 0
        low = 0  # known insufficient
        high = (max_dh // g + 1) * g  # Alg. 3's "give up" point
        while high - low > g:
            mid = ((low + high) // (2 * g)) * g
            steps += 1
            if estimate(mid) >= instant:
                high = mid
            else:
                low = mid
        self.last_search_steps = steps
        return high


def build_recall_model(context: AdaptationContext) -> RecallModel:
    """Assemble the Eq. 1–5 model from the current runtime statistics."""
    stats = context.statistics
    pdfs = stats.delay_pdfs()
    ksyncs = stats.ksync_estimates_ms()
    rates = stats.rates_per_ms()
    inputs: List[StreamModelInput] = [
        StreamModelInput(
            pdf=pdfs[i],
            ksync_ms=ksyncs[i],
            rate_per_ms=rates[i],
            window_ms=context.window_sizes_ms[i],
        )
        for i in range(stats.num_streams)
    ]
    return RecallModel(
        inputs,
        basic_window_ms=context.basic_window_ms,
        granularity_ms=context.granularity_ms,
    )
