"""Selectivity strategies: EqSel and NonEqSel (paper Sec. IV-B).

The recall model (Eq. 5) needs the ratio ``sel^on(K)/sel^on`` — how the
join selectivity under incomplete disorder handling relates to the ideal
selectivity.  The paper compares two strategies:

* **EqSel** assumes ``sel^on(K) = sel^on`` (ratio 1), i.e. estimates the
  recall from cross-join result sizes only.  Simple, but wrong whenever
  delayed tuples are more (or less) productive than punctual ones.
* **NonEqSel** estimates the ratio from the delay↔productivity maps
  learned by the Tuple-Productivity Profiler (Eq. 6), capturing DPcorr.

Both implement :class:`SelectivityStrategy`, parameterized per adaptation
step with the interval's :class:`~repro.core.profiler.ProfileSnapshot`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Optional

from .profiler import ProfileSnapshot


class SelectivityStrategy(ABC):
    """Computes ``sel^on(K)/sel^on`` for candidate coarse buffer sizes."""

    name: str = "abstract"

    @abstractmethod
    def ratio(self, snapshot: Optional[ProfileSnapshot], coarse_k: int) -> float:
        """Selectivity ratio at coarse K (``K / g``)."""


class EqSel(SelectivityStrategy):
    """Assume the selectivity is unaffected by K (ratio always 1.0)."""

    name = "EqSel"

    def ratio(self, snapshot: Optional[ProfileSnapshot], coarse_k: int) -> float:
        return 1.0


class NonEqSel(SelectivityStrategy):
    """Estimate the ratio from the learned DPcorr maps (Eq. 6).

    ``cap_at_one`` (default True) clamps the learned ratio to <= 1.  A
    ratio above 1 claims that incompletely-handled streams join *more*
    selectively than ideal ones; feeding that into Alg. 3 — which stops
    at the first K whose estimate clears the requirement — lets a single
    small-sample spike pick a far-too-small buffer and crash the recall
    of the whole interval.  The clamp keeps NonEqSel's correction
    one-sided: it can only demand a *larger* K than EqSel, which is the
    behaviour the paper reports ("NonEqSel produces a bit higher average
    K than EqSel", Sec. VI-B).  Pass ``cap_at_one=False`` for the
    literal Eq. 6 ratio.
    """

    name = "NonEqSel"

    def __init__(self, cap_at_one: bool = True) -> None:
        self.cap_at_one = cap_at_one

    def ratio(self, snapshot: Optional[ProfileSnapshot], coarse_k: int) -> float:
        if snapshot is None:
            return 1.0
        ratio = snapshot.sel_ratio(coarse_k)
        return min(1.0, ratio) if self.cap_at_one else ratio


def strategy_from_name(name: str) -> SelectivityStrategy:
    """Factory used by experiment configs (``"eqsel"`` / ``"noneqsel"``)."""
    normalized = name.strip().lower()
    if normalized == "eqsel":
        return EqSel()
    if normalized == "noneqsel":
        return NonEqSel()
    raise ValueError(f"unknown selectivity strategy {name!r}")
