"""Watermark/punctuation-based disorder handling (related-work baseline).

The paper assumes no stream-progress metadata is available and therefore
buffers with K-slack (Sec. III: "we assume that there are no special
tuples such as punctuations [15] or watermarks [22]").  Systems like
MillWheel [22] and modern engines (Flink) take the other route: sources
embed *watermarks* — promises that no tuple with a smaller timestamp will
follow — and operators buffer until the watermark passes.

This module provides that alternative front end so the two philosophies
can be compared inside one framework:

* :class:`WatermarkGenerator` — turns a raw stream into watermark
  signals using the standard bounded-out-of-orderness heuristic
  ``watermark = max_ts_seen - bound``.  A too-small bound breaks the
  watermark promise exactly like real systems' heuristic watermarks do.
* :class:`WatermarkBuffer` — a per-stream sorting buffer that releases
  tuples (in timestamp order) once the watermark passes them; tuples
  arriving below the watermark are *late* and forwarded immediately
  (they will be out of order downstream), mirroring the K-slack
  straggler behaviour so the downstream Synchronizer + MSWJ pipeline is
  reused unchanged.

With a perfectly chosen bound the watermark buffer behaves exactly like
K-slack with ``K = bound`` — which is the paper's point: without oracle
knowledge of the delay distribution, a fixed bound either over-buffers
(latency) or breaks its promise (quality), whereas the quality-driven
manager *adapts* the slack to the user's recall requirement.
"""

from __future__ import annotations

import heapq
from typing import List, Optional

from .tuples import StreamTuple


class WatermarkGenerator:
    """Bounded-out-of-orderness watermarks: ``max_ts_seen - bound``.

    ``emit_every`` controls the watermark period in arrival counts
    (real sources emit periodically rather than per tuple).
    """

    def __init__(self, bound_ms: int, emit_every: int = 1) -> None:
        if bound_ms < 0:
            raise ValueError(f"bound must be non-negative, got {bound_ms}")
        if emit_every < 1:
            raise ValueError(f"emit_every must be >= 1, got {emit_every}")
        self.bound_ms = int(bound_ms)
        self.emit_every = emit_every
        self._max_ts: Optional[int] = None
        self._since_emit = 0
        self._last_watermark: Optional[int] = None

    def observe(self, t: StreamTuple) -> Optional[int]:
        """Observe one arrival; return a new watermark when one is due."""
        if self._max_ts is None or t.ts > self._max_ts:
            self._max_ts = t.ts
        self._since_emit += 1
        if self._since_emit < self.emit_every:
            return None
        self._since_emit = 0
        watermark = max(0, self._max_ts - self.bound_ms)
        if self._last_watermark is not None and watermark <= self._last_watermark:
            return None
        self._last_watermark = watermark
        return watermark

    @property
    def current(self) -> int:
        return self._last_watermark if self._last_watermark is not None else 0


class WatermarkBuffer:
    """Sorts one stream by holding tuples until the watermark passes them.

    Tuples with ``ts <= watermark`` at arrival are *late* under the
    watermark contract; they are forwarded immediately (still out of
    order) and counted in :attr:`late_tuples` — the quality loss this
    approach trades for its bounded latency.
    """

    def __init__(self) -> None:
        self._heap: List = []  # (ts, tie, tuple)
        self._tie = 0
        self._watermark = -1
        self.late_tuples = 0
        self.tuples_seen = 0

    @property
    def watermark(self) -> int:
        return max(0, self._watermark)

    @property
    def buffered(self) -> int:
        return len(self._heap)

    def process(self, t: StreamTuple) -> List[StreamTuple]:
        """Accept one tuple; returns it immediately if late, else buffers."""
        self.tuples_seen += 1
        if t.ts <= self._watermark:
            self.late_tuples += 1
            return [t]
        heapq.heappush(self._heap, (t.ts, self._tie, t))
        self._tie += 1
        return []

    def advance(self, watermark: int) -> List[StreamTuple]:
        """Raise the watermark; release all tuples with ``ts <= watermark``."""
        if watermark <= self._watermark:
            return []
        self._watermark = watermark
        released: List[StreamTuple] = []
        while self._heap and self._heap[0][0] <= watermark:
            released.append(heapq.heappop(self._heap)[2])
        return released

    def flush(self) -> List[StreamTuple]:
        """Release everything still buffered, in timestamp order."""
        released = [entry[2] for entry in sorted(self._heap)]
        self._heap.clear()
        return released


class WatermarkFrontEnd:
    """Per-stream watermark generation + buffering, K-slack-compatible.

    Drop-in replacement for a :class:`~repro.core.kslack.KSlackBuffer`
    bank: feed raw tuples with :meth:`process`, get (mostly) sorted
    tuples back, flush at end of input.  The delay annotation is set the
    same way K-slack sets it, so the downstream statistics and profiling
    keep working.
    """

    def __init__(self, num_streams: int, bound_ms: int, emit_every: int = 1) -> None:
        self.generators = [
            WatermarkGenerator(bound_ms, emit_every) for _ in range(num_streams)
        ]
        self.buffers = [WatermarkBuffer() for _ in range(num_streams)]
        self._local_times = [0] * num_streams

    def process(self, t: StreamTuple) -> List[StreamTuple]:
        i = t.stream
        if t.ts > self._local_times[i]:
            self._local_times[i] = t.ts
        t.delay = self._local_times[i] - t.ts
        released = self.buffers[i].process(t)
        watermark = self.generators[i].observe(t)
        if watermark is not None:
            released.extend(self.buffers[i].advance(watermark))
        return released

    def flush(self, stream: int) -> List[StreamTuple]:
        return self.buffers[stream].flush()

    def late_tuples(self) -> int:
        return sum(b.late_tuples for b in self.buffers)
