"""repro-lint: AST-based contract & determinism checking for the engine.

A custom static-analysis pass over Python ``ast`` that cross-checks the
hand-maintained invariants the runtime tests can only catch on executed
paths: codec field coverage, ``MSG_*`` protocol exhaustiveness,
determinism hygiene, the terminal-flush contracts, and IPC picklability.
``tools/lint.py`` is the CLI; ``tests/test_lint.py`` wires the pass into
tier-1; ``docs/STATIC_ANALYSIS.md`` documents every rule and the
suppression syntax.

>>> from repro.analysis import analyze_sources
>>> findings = analyze_sources({"snippet.py": "x = hash('key')\\n"})
>>> [f.rule for f in findings]
['determinism']
"""

from .core import (
    Finding,
    ModuleIndex,
    Rule,
    SourceModule,
    all_rules,
    analyze,
    analyze_paths,
    analyze_sources,
    load_paths,
    register,
    select_rules,
)

__all__ = [
    "Finding",
    "ModuleIndex",
    "Rule",
    "SourceModule",
    "all_rules",
    "analyze",
    "analyze_paths",
    "analyze_sources",
    "load_paths",
    "register",
    "select_rules",
]
