"""Small AST helpers shared by the repro-lint rules.

Everything here is purely syntactic — no name resolution, no type
inference.  The rules accept the imprecision (a receiver they cannot
name is skipped, an attribute harvested anywhere in a module counts as
a use) because the contracts they guard are *structural*: a codec field
list, a protocol tag set, a flush-then-process ordering.  Missing an
exotic construction is fine; never crashing on one is mandatory.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for Name/Attribute chains, else ``None``.

    Subscripts, calls, and other computed receivers return ``None`` —
    callers treat that as "cannot track this target".
    """
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = dotted_name(node.value)
        if base is None:
            return None
        return f"{base}.{node.attr}"
    return None


def call_attr(call: ast.Call) -> Optional[str]:
    """Just the final attribute of a method call (``conn.send`` → ``send``),
    or the bare name for plain-name calls."""
    if isinstance(call.func, ast.Attribute):
        return call.func.attr
    if isinstance(call.func, ast.Name):
        return call.func.id
    return None


def string_constants(node: ast.AST) -> Optional[str]:
    """The value of a string-literal node, else ``None``."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def class_slots(classdef: ast.ClassDef) -> Optional[List[str]]:
    """The ``__slots__`` field list of a class body, or ``None``.

    Understands tuple/list-of-string-literal assignments (the only form
    the engine uses); anything fancier reads as "no slots declared".
    """
    for statement in classdef.body:
        if not isinstance(statement, ast.Assign):
            continue
        if not any(
            isinstance(target, ast.Name) and target.id == "__slots__"
            for target in statement.targets
        ):
            continue
        value = statement.value
        if isinstance(value, (ast.Tuple, ast.List)):
            names: List[str] = []
            for element in value.elts:
                name = string_constants(element)
                if name is None:
                    return None
                names.append(name)
            return names
        single = string_constants(value)
        if single is not None:
            return [single]
        return None
    return None


def dataclass_field_names(classdef: ast.ClassDef) -> List[str]:
    """Annotated field names of a (dataclass-style) class body, in order."""
    names: List[str] = []
    for statement in classdef.body:
        if isinstance(statement, ast.AnnAssign) and isinstance(
            statement.target, ast.Name
        ):
            names.append(statement.target.id)
    return names


def method(classdef: ast.ClassDef, name: str) -> Optional[ast.FunctionDef]:
    for statement in classdef.body:
        if isinstance(statement, ast.FunctionDef) and statement.name == name:
            return statement
    return None


def attributes_read(tree: ast.AST, receiver: Optional[str] = None) -> Set[str]:
    """Attribute names loaded within ``tree``.

    With ``receiver`` (e.g. ``"self"``), only attributes of that exact
    name; otherwise attributes of *any* receiver — the harvest the
    consumed-field checks run on.
    """
    found: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Attribute) and isinstance(node.ctx, ast.Load):
            if receiver is None or (
                isinstance(node.value, ast.Name) and node.value.id == receiver
            ):
                found.add(node.attr)
    return found


def attributes_assigned(tree: ast.AST, receiver: str) -> Set[str]:
    """Attribute names stored on ``receiver`` within ``tree`` (plain
    assigns, tuple-unpack targets, and augmented assigns all carry the
    Store context on the target attribute)."""
    found: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Attribute) and isinstance(node.ctx, ast.Store):
            if isinstance(node.value, ast.Name) and node.value.id == receiver:
                found.add(node.attr)
    return found


def flatten_container_values(node: ast.AST) -> Iterator[ast.AST]:
    """Yield ``node`` and, for display containers, every nested value.

    Used by the IPC-safety rule: a lambda is just as unpicklable inside
    ``(MSG_BATCH, lambda: ...)`` as it is as a bare argument.
    """
    yield node
    if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
        for element in node.elts:
            yield from flatten_container_values(element)
    elif isinstance(node, ast.Dict):
        for value in node.values:
            if value is not None:
                yield from flatten_container_values(value)
    elif isinstance(node, ast.Starred):
        yield from flatten_container_values(node.value)
