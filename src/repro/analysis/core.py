"""repro-lint engine: parsed modules, the rule registry, suppressions.

The runtime test suite only catches an invariant violation on the paths
it executes; the rules in :mod:`repro.analysis.rules` catch *schema
drift* — a codec field added on one side of the transport but not the
other, a ``MSG_*`` protocol tag without a dispatch arm, a builtin
``hash()`` sneaking onto a routing path — the moment it is written,
by inspecting the source as Python ``ast`` trees.  This module is the
rule-agnostic machinery:

* :class:`SourceModule` — one parsed file (path, source, tree, a lazy
  parent map for upward navigation, and the suppression pragmas);
* :class:`ModuleIndex` — the set of modules one analysis run sees.
  Rules are *project-scoped*: cross-module contracts (codec coverage,
  protocol exhaustiveness) need to see the whole tree at once;
* :class:`Rule` + :func:`register` — the registry.  A rule is a named
  check ``ModuleIndex → findings``; registration is import-time, so
  importing :mod:`repro.analysis.rules` is what populates the registry;
* :func:`analyze_paths` / :func:`analyze_sources` — the entry points
  the CLI (``tools/lint.py``) and the fixture-based rule tests share.

Suppressions
------------
A finding is suppressed by a pragma comment **on the flagged line**::

    slot = hash(value) % num_slots  # repro-lint: disable=determinism

or for a whole file by a ``disable-file`` pragma anywhere in it::

    # repro-lint: disable-file=flush-contract

Either form takes a comma-separated rule-name list, or ``all``.
Pragmas are read from real COMMENT tokens (via :mod:`tokenize`), so the
pattern inside a string literal does not suppress anything.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass
from pathlib import Path
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Type,
)

#: Matches one suppression pragma inside a comment token.
PRAGMA = re.compile(
    r"#\s*repro-lint:\s*(?P<kind>disable(?:-file)?)\s*=\s*"
    r"(?P<rules>[A-Za-z0-9_\-]+(?:\s*,\s*[A-Za-z0-9_\-]+)*)"
)

#: Pseudo-rule name findings about unparseable files are reported under.
PARSE_RULE = "parse-error"


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule}: {self.message}"

    def sort_key(self) -> Tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule)


def _pragmas(source: str) -> Tuple[Dict[int, FrozenSet[str]], FrozenSet[str]]:
    """Extract ``(line → suppressed rules, file-wide suppressed rules)``.

    Reads real comment tokens; a file that fails to tokenize (it will
    also fail to parse, reported separately) has no pragmas.
    """
    per_line: Dict[int, FrozenSet[str]] = {}
    file_wide: FrozenSet[str] = frozenset()
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return per_line, file_wide
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = PRAGMA.search(token.string)
        if match is None:
            continue
        rules = frozenset(
            name.strip() for name in match.group("rules").split(",")
        )
        if match.group("kind") == "disable-file":
            file_wide = file_wide | rules
        else:
            line = token.start[0]
            per_line[line] = per_line.get(line, frozenset()) | rules
    return per_line, file_wide


class SourceModule:
    """One parsed source file of an analysis run."""

    def __init__(self, path: str, source: str) -> None:
        self.path = path
        self.source = source
        self.tree: Optional[ast.AST] = None
        self.parse_error: Optional[SyntaxError] = None
        try:
            self.tree = ast.parse(source, filename=path)
        except SyntaxError as exc:
            self.parse_error = exc
        self.line_suppressions, self.file_suppressions = _pragmas(source)
        self._parents: Optional[Dict[ast.AST, ast.AST]] = None

    @property
    def parents(self) -> Dict[ast.AST, ast.AST]:
        """child node → parent node, built on first use."""
        if self._parents is None:
            parents: Dict[ast.AST, ast.AST] = {}
            if self.tree is not None:
                for node in ast.walk(self.tree):
                    for child in ast.iter_child_nodes(node):
                        parents[child] = node
            self._parents = parents
        return self._parents

    def enclosing_function(self, node: ast.AST) -> Optional[ast.AST]:
        """Nearest enclosing function definition, or ``None`` at module
        scope."""
        current = self.parents.get(node)
        while current is not None:
            if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return current
            current = self.parents.get(current)
        return None

    def walk(self) -> Iterator[ast.AST]:
        if self.tree is None:
            return iter(())
        return ast.walk(self.tree)

    def suppresses(self, rule: str, line: int) -> bool:
        if {rule, "all"} & self.file_suppressions:
            return True
        on_line = self.line_suppressions.get(line)
        return on_line is not None and bool({rule, "all"} & on_line)


class ModuleIndex:
    """Every module one analysis run sees, with cross-module lookups."""

    def __init__(self, modules: Sequence[SourceModule]) -> None:
        self.modules = list(modules)

    def classes(self, name: str) -> Iterator[Tuple[SourceModule, ast.ClassDef]]:
        """All class definitions called ``name`` across the index."""
        for module in self.modules:
            for node in module.walk():
                if isinstance(node, ast.ClassDef) and node.name == name:
                    yield module, node

    def functions(
        self, name: str
    ) -> Iterator[Tuple[SourceModule, ast.FunctionDef]]:
        """All (sync) function definitions called ``name``."""
        for module in self.modules:
            for node in module.walk():
                if isinstance(node, ast.FunctionDef) and node.name == name:
                    yield module, node


class Rule:
    """Base class of every repro-lint rule.

    Subclasses set :attr:`name` (the kebab-case slug used in CLI output
    and suppression pragmas) and :attr:`summary`, implement
    :meth:`check`, and register themselves with :func:`register`.
    """

    name: str = ""
    summary: str = ""

    def check(self, index: ModuleIndex) -> Iterable[Finding]:
        raise NotImplementedError


_REGISTRY: Dict[str, Type[Rule]] = {}


def register(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the registry (name must be new)."""
    if not cls.name:
        raise ValueError(f"rule {cls.__name__} has no name")
    if cls.name in _REGISTRY and _REGISTRY[cls.name] is not cls:
        raise ValueError(f"duplicate rule name {cls.name!r}")
    _REGISTRY[cls.name] = cls
    return cls


def all_rules() -> List[Rule]:
    """Fresh instances of every registered rule, sorted by name.

    Importing :mod:`repro.analysis.rules` populates the registry; doing
    it here keeps ``analyze_*`` self-contained for callers that import
    only :mod:`repro.analysis.core`.
    """
    from . import rules as _rules  # noqa: F401  (import-time registration)

    return [_REGISTRY[name]() for name in sorted(_REGISTRY)]


def select_rules(names: Optional[Sequence[str]]) -> List[Rule]:
    rules = all_rules()
    if names is None:
        return rules
    wanted = set(names)
    unknown = wanted - {rule.name for rule in rules}
    if unknown:
        known = ", ".join(sorted(rule.name for rule in rules))
        raise ValueError(
            f"unknown rule(s) {sorted(unknown)}; known rules: {known}"
        )
    return [rule for rule in rules if rule.name in wanted]


def analyze(
    index: ModuleIndex, rules: Optional[Sequence[str]] = None
) -> List[Finding]:
    """Run rules over an index; return unsuppressed findings, sorted."""
    by_path = {module.path: module for module in index.modules}
    findings: List[Finding] = []
    for module in index.modules:
        if module.parse_error is not None:
            error = module.parse_error
            findings.append(
                Finding(
                    PARSE_RULE,
                    module.path,
                    error.lineno or 1,
                    (error.offset or 1) - 1,
                    f"file does not parse: {error.msg}",
                )
            )
    for rule in select_rules(rules):
        for finding in rule.check(index):
            module = by_path.get(finding.path)
            if module is not None and module.suppresses(
                finding.rule, finding.line
            ):
                continue
            findings.append(finding)
    findings.sort(key=Finding.sort_key)
    return findings


def load_paths(paths: Sequence[str]) -> ModuleIndex:
    """Build an index from files and/or directories (``*.py``, sorted)."""
    files: List[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        else:
            files.append(path)
    modules = [
        SourceModule(str(path), path.read_text(encoding="utf-8"))
        for path in files
    ]
    return ModuleIndex(modules)


def analyze_paths(
    paths: Sequence[str], rules: Optional[Sequence[str]] = None
) -> List[Finding]:
    """Lint files/directories; the CLI and the clean-tree test share it."""
    return analyze(load_paths(paths), rules)


def analyze_sources(
    sources: Dict[str, str], rules: Optional[Sequence[str]] = None
) -> List[Finding]:
    """Lint in-memory ``{path: source}`` snippets (fixture tests)."""
    index = ModuleIndex(
        [SourceModule(path, text) for path, text in sorted(sources.items())]
    )
    return analyze(index, rules)
