"""Rule ``determinism``: no nondeterminism sources on engine paths.

Every correctness claim the engine makes — shard-count invariance,
byte-identity of rebalanced vs static routing, the soak harness's
cross-variant digests — reduces to "the same input bytes produce the
same output bytes".  Four well-known Python constructs silently break
that:

* **builtin ``hash()``** — randomized per process for strings; routing
  or grouping through it diverges across workers and runs.  Use
  :func:`repro.parallel.router.stable_hash`.  (Calls inside ``__hash__``
  methods are exempt: object hashing for in-process dict/set use is
  what builtin ``hash`` is *for*.)
* **module-global / unseeded randomness** — ``random.random()`` &
  friends share interpreter-global state, and an argument-less
  ``random.Random()`` seeds from OS entropy.  Pass a seeded
  ``random.Random`` (see :mod:`repro.streams.seeding`).
* **wall-clock reads** — ``time.time()`` / ``datetime.now()`` etc. leak
  the host clock into data.  (``time.perf_counter`` / ``monotonic`` are
  *not* flagged: measuring durations for metrics is legitimate and does
  not flow into results.)
* **unordered set iteration** — ``for x in {...}`` / ``list(set(...))``
  order depends on hash values, which for strings differ per process.
  Iteration wrapped in an order-insensitive consumer (``sorted``,
  ``min``/``max``, ``sum``, ``len``, ``any``/``all``, ``set`` /
  ``frozenset``) is fine.

Deliberate uses (e.g. the documented int fast path inside
``stable_hash`` itself) carry a line pragma::

    return hash(value)  # repro-lint: disable=determinism
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator, List, Set, Tuple

from ..astutils import dotted_name
from ..core import Finding, ModuleIndex, Rule, SourceModule, register

#: ``random`` module attributes that are fine to call (seeded-RNG and
#: inspection entry points rather than draws from shared state).
RANDOM_SAFE_ATTRS = {"Random", "SystemRandom"}

#: Wall-clock callables by dotted suffix.
WALL_CLOCK_ATTRS = {"now", "utcnow", "today"}
WALL_CLOCK_CALLS = {"time.time", "time.time_ns"}

#: Consumers whose output does not depend on iteration order.
ORDER_INSENSITIVE_CALLEES = {
    "sorted",
    "min",
    "max",
    "sum",
    "len",
    "any",
    "all",
    "set",
    "frozenset",
}


def _is_set_expression(node: ast.AST) -> bool:
    """Syntactically-recognizable unordered expressions."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)
    ):
        return _is_set_expression(node.left) or _is_set_expression(node.right)
    return False


@register
class DeterminismRule(Rule):
    name = "determinism"
    summary = (
        "no builtin hash(), module-global/unseeded random, wall-clock "
        "reads, or unordered set iteration on engine paths"
    )

    def check(self, index: ModuleIndex) -> Iterable[Finding]:
        findings: List[Finding] = []
        for module in index.modules:
            from_random = self._from_random_imports(module)
            for node in module.walk():
                if isinstance(node, ast.Call):
                    self._check_call(module, node, from_random, findings)
                elif isinstance(node, (ast.For, ast.AsyncFor)):
                    if _is_set_expression(node.iter):
                        findings.append(
                            self._set_iteration_finding(module, node.iter)
                        )
                elif isinstance(
                    node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
                ):
                    self._check_comprehension(module, node, findings)
        return findings

    # -- imports -------------------------------------------------------

    def _from_random_imports(self, module: SourceModule) -> Set[str]:
        """Local names bound by ``from random import X`` to unsafe draws."""
        names: Set[str] = set()
        for node in module.walk():
            if isinstance(node, ast.ImportFrom) and node.module == "random":
                for alias in node.names:
                    if alias.name not in RANDOM_SAFE_ATTRS:
                        names.add(alias.asname or alias.name)
        return names

    # -- calls ---------------------------------------------------------

    def _check_call(
        self,
        module: SourceModule,
        call: ast.Call,
        from_random: Set[str],
        findings: List[Finding],
    ) -> None:
        func = call.func
        callee = dotted_name(func)

        # builtin hash() outside __hash__ methods
        if isinstance(func, ast.Name) and func.id == "hash":
            enclosing = module.enclosing_function(call)
            if not (
                isinstance(enclosing, (ast.FunctionDef, ast.AsyncFunctionDef))
                and enclosing.name == "__hash__"
            ):
                findings.append(
                    Finding(
                        self.name,
                        module.path,
                        call.lineno,
                        call.col_offset,
                        "builtin hash() is randomized per process for "
                        "strings; use repro.parallel.router.stable_hash "
                        "for anything that routes, groups, or persists",
                    )
                )
            return

    # module-global random draws and unseeded Random()
        if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
            if func.value.id == "random":
                if func.attr not in RANDOM_SAFE_ATTRS:
                    findings.append(
                        Finding(
                            self.name,
                            module.path,
                            call.lineno,
                            call.col_offset,
                            f"random.{func.attr}() draws from the "
                            "interpreter-global RNG; pass a seeded "
                            "random.Random (see repro.streams.seeding)",
                        )
                    )
                    return
                if (
                    func.attr == "Random"
                    and not call.args
                    and not call.keywords
                ):
                    findings.append(
                        Finding(
                            self.name,
                            module.path,
                            call.lineno,
                            call.col_offset,
                            "random.Random() without a seed draws its "
                            "state from OS entropy; seed it (see "
                            "repro.streams.seeding.derived_rng)",
                        )
                    )
                    return
        if isinstance(func, ast.Name) and func.id in from_random:
            findings.append(
                Finding(
                    self.name,
                    module.path,
                    call.lineno,
                    call.col_offset,
                    f"{func.id}() (from random import ...) draws from the "
                    "interpreter-global RNG; pass a seeded random.Random",
                )
            )
            return

        # materializing a set in order: list({...}) / tuple({...})
        if (
            isinstance(func, ast.Name)
            and func.id in ("list", "tuple")
            and call.args
            and _is_set_expression(call.args[0])
        ):
            findings.append(self._set_iteration_finding(module, call.args[0]))
            return

        # wall clock
        if callee is not None:
            if callee in WALL_CLOCK_CALLS:
                findings.append(self._wall_clock_finding(module, call, callee))
                return
            if isinstance(func, ast.Attribute) and func.attr in WALL_CLOCK_ATTRS:
                base = dotted_name(func.value) or ""
                if "datetime" in base or base == "date" or base.endswith(".date"):
                    findings.append(
                        self._wall_clock_finding(module, call, callee)
                    )
                    return

    def _wall_clock_finding(
        self, module: SourceModule, call: ast.Call, callee: str
    ) -> Finding:
        return Finding(
            self.name,
            module.path,
            call.lineno,
            call.col_offset,
            f"{callee}() reads the wall clock; application time must come "
            "from tuple timestamps (time.perf_counter for duration "
            "metrics is fine and not flagged)",
        )

    # -- set iteration -------------------------------------------------

    def _comprehension_iterables(
        self, node: ast.AST
    ) -> Iterator[Tuple[ast.AST, ast.expr]]:
        for generator in getattr(node, "generators", []):
            yield node, generator.iter

    def _check_comprehension(
        self,
        module: SourceModule,
        node: ast.AST,
        findings: List[Finding],
    ) -> None:
        for owner, iterable in self._comprehension_iterables(node):
            if not _is_set_expression(iterable):
                continue
            if self._consumed_order_insensitively(module, owner):
                continue
            findings.append(self._set_iteration_finding(module, iterable))

    def _consumed_order_insensitively(
        self, module: SourceModule, node: ast.AST
    ) -> bool:
        """True when the comprehension feeds straight into an
        order-insensitive consumer (``sorted(x for x in {...})``), or is
        itself unordered (a set comprehension builds a set again)."""
        if isinstance(node, ast.SetComp):
            return True
        parent = module.parents.get(node)
        return (
            isinstance(parent, ast.Call)
            and isinstance(parent.func, ast.Name)
            and parent.func.id in ORDER_INSENSITIVE_CALLEES
            and parent.args
            and parent.args[0] is node
        )

    def _set_iteration_finding(
        self, module: SourceModule, iterable: ast.AST
    ) -> Finding:
        return Finding(
            self.name,
            module.path,
            getattr(iterable, "lineno", 1),
            getattr(iterable, "col_offset", 0),
            "iteration over an unordered set; order depends on per-process "
            "string hashing — wrap the set in sorted(...) before iterating",
        )
