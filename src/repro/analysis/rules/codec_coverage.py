"""Rule ``codec-coverage``: transport field lists must match the model.

The columnar transport (:mod:`repro.core.blocks`) re-states the field
list of every state-carrying class it ships: ``StreamTuple.__slots__``
appears again as the per-tuple columns of ``TupleBlock``, as the
attribute reads in ``BlockEncoder.encode``, and as the positional
arguments of the ``StreamTuple.restore`` calls in ``BlockDecoder.decode``;
every slotted block class re-states its own slots in its
``__getstate__``/``__setstate__`` pair; ``MigrationSpec`` fields are
consumed by the worker-side barrier code.  A field added on one side
but not the other is silent data loss on the wire — exactly the drift
this rule flags:

* **slots↔pickle** — any class defining both ``__slots__`` and
  ``__getstate__`` must read every slot in ``__getstate__`` and (when
  present) store every slot in ``__setstate__``;
* **StreamTuple↔codec** — every ``StreamTuple`` slot must be read in
  ``BlockEncoder.encode``; every non-payload slot must be a
  ``TupleBlock`` slot; each ``.restore(...)`` call in
  ``BlockDecoder.decode`` must pass exactly one argument per slot
  (``values`` is the payload and travels as the per-attribute
  ``columns``, so it is exempt from the column check);
* **consumed-fields** — every field of :data:`CONSUMED_FIELD_CLASSES`
  (``MigrationSpec``, ``ShardOutcome``) must be read as an attribute
  *somewhere* in the analyzed tree; a field nobody consumes is protocol
  payload the other side silently ignores.
* **cold-segment** — ``ColdSegment`` (the tiered window store's frozen
  cold-tier unit) must define the ``__getstate__``/``__setstate__`` pair
  (otherwise the slots↔pickle check above is silently inert on it and a
  new slot would vanish from migrated state); ``freeze_segment`` must
  delegate to a ``.encode(...)`` call and ``thaw_segment`` to a
  ``.decode(...)`` call, so a slot added to ``StreamTuple`` rides the
  cold-tier encode path through the same ``BlockEncoder``/``BlockDecoder``
  the StreamTuple↔codec check pins; and every ``ColdSegment(...)``
  construction inside ``freeze_segment`` must pass exactly one argument
  per ``ColdSegment`` slot, so a new cold-segment field cannot be left
  unset at the one place segments are born.

All checks only fire when the named classes are present in the analyzed
module set, so the rule is inert on unrelated code.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Set

from ..astutils import (
    attributes_assigned,
    attributes_read,
    class_slots,
    dataclass_field_names,
    method,
)
from ..core import Finding, ModuleIndex, Rule, register

#: Dataclasses whose every field must be consumed somewhere in the tree.
CONSUMED_FIELD_CLASSES = ("MigrationSpec", "ShardOutcome")

#: The StreamTuple slot that travels as the payload ``columns`` instead
#: of as its own flat column.
PAYLOAD_SLOT = "values"


@register
class CodecCoverageRule(Rule):
    name = "codec-coverage"
    summary = (
        "every transported field list (StreamTuple slots, block-class "
        "pickle state, MigrationSpec fields) must cover the model exactly"
    )

    def check(self, index: ModuleIndex) -> Iterable[Finding]:
        findings: List[Finding] = []
        self._check_slots_vs_pickle(index, findings)
        self._check_streamtuple_vs_codec(index, findings)
        self._check_consumed_fields(index, findings)
        self._check_cold_segment(index, findings)
        return findings

    # -- slots ↔ __getstate__/__setstate__ -----------------------------

    def _check_slots_vs_pickle(
        self, index: ModuleIndex, findings: List[Finding]
    ) -> None:
        for module in index.modules:
            for node in module.walk():
                if not isinstance(node, ast.ClassDef):
                    continue
                slots = class_slots(node)
                if not slots:
                    continue
                getstate = method(node, "__getstate__")
                if getstate is not None:
                    read = attributes_read(getstate, "self")
                    for slot in slots:
                        if slot not in read:
                            findings.append(
                                Finding(
                                    self.name,
                                    module.path,
                                    getstate.lineno,
                                    getstate.col_offset,
                                    f"{node.name}.__getstate__ never reads "
                                    f"slot {slot!r}; the field is silently "
                                    "dropped from the pickled wire state",
                                )
                            )
                setstate = method(node, "__setstate__")
                if setstate is not None:
                    stored = attributes_assigned(setstate, "self")
                    for slot in slots:
                        if slot not in stored:
                            findings.append(
                                Finding(
                                    self.name,
                                    module.path,
                                    setstate.lineno,
                                    setstate.col_offset,
                                    f"{node.name}.__setstate__ never stores "
                                    f"slot {slot!r}; decoding leaves the "
                                    "field unset",
                                )
                            )

    # -- StreamTuple ↔ BlockEncoder/BlockDecoder/TupleBlock ------------

    def _check_streamtuple_vs_codec(
        self, index: ModuleIndex, findings: List[Finding]
    ) -> None:
        tuple_classes = list(index.classes("StreamTuple"))
        if not tuple_classes:
            return
        _, tuple_class = tuple_classes[0]
        slots = class_slots(tuple_class)
        if not slots:
            return
        slot_set: Set[str] = set(slots)

        for module, encoder in index.classes("BlockEncoder"):
            encode = method(encoder, "encode")
            if encode is None:
                continue
            read = attributes_read(encode)
            for slot in slots:
                if slot not in read:
                    findings.append(
                        Finding(
                            self.name,
                            module.path,
                            encode.lineno,
                            encode.col_offset,
                            f"BlockEncoder.encode never reads StreamTuple "
                            f"slot {slot!r}; the codec drops it on encode",
                        )
                    )

        for module, block in index.classes("TupleBlock"):
            block_slots = class_slots(block) or []
            for slot in sorted(slot_set - {PAYLOAD_SLOT}):
                if slot not in block_slots:
                    findings.append(
                        Finding(
                            self.name,
                            module.path,
                            block.lineno,
                            block.col_offset,
                            f"TupleBlock has no column for StreamTuple "
                            f"slot {slot!r}; the transport cannot carry it",
                        )
                    )

        for module, decoder in index.classes("BlockDecoder"):
            decode = method(decoder, "decode")
            if decode is None:
                continue
            for node in ast.walk(decode):
                # Both spellings the decoder uses: the direct
                # ``StreamTuple.restore(...)`` and calls through a local
                # hoisted alias ``restore = StreamTuple.restore``.
                if isinstance(node, ast.Call) and (
                    (
                        isinstance(node.func, ast.Attribute)
                        and node.func.attr == "restore"
                    )
                    or (
                        isinstance(node.func, ast.Name)
                        and node.func.id == "restore"
                    )
                ):
                    if len(node.args) != len(slots):
                        findings.append(
                            Finding(
                                self.name,
                                module.path,
                                node.lineno,
                                node.col_offset,
                                f"StreamTuple.restore call passes "
                                f"{len(node.args)} argument(s) but "
                                f"StreamTuple has {len(slots)} slots; "
                                "decode does not rebuild every field",
                            )
                        )

    # -- ColdSegment ↔ freeze/thaw delegation --------------------------

    def _check_cold_segment(
        self, index: ModuleIndex, findings: List[Finding]
    ) -> None:
        segment_classes = list(index.classes("ColdSegment"))
        if not segment_classes:
            return
        for module, segment in segment_classes:
            for required in ("__getstate__", "__setstate__"):
                if method(segment, required) is None:
                    findings.append(
                        Finding(
                            self.name,
                            module.path,
                            segment.lineno,
                            segment.col_offset,
                            f"ColdSegment defines no {required}; without the "
                            "explicit pickle pair the slots↔pickle check "
                            "cannot pin its wire state and a new slot would "
                            "silently vanish from migrated cold segments",
                        )
                    )
        segment_slots = class_slots(segment_classes[0][1])

        for fn_name, codec_call in (
            ("freeze_segment", "encode"),
            ("thaw_segment", "decode"),
        ):
            defs = list(index.functions(fn_name))
            if not defs:
                findings.append(
                    Finding(
                        self.name,
                        segment_classes[0][0].path,
                        segment_classes[0][1].lineno,
                        segment_classes[0][1].col_offset,
                        f"ColdSegment is defined but no {fn_name}() exists; "
                        "the cold tier has lost its codec entry point",
                    )
                )
                continue
            for module, fn in defs:
                delegates = any(
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == codec_call
                    for node in ast.walk(fn)
                )
                if not delegates:
                    findings.append(
                        Finding(
                            self.name,
                            module.path,
                            fn.lineno,
                            fn.col_offset,
                            f"{fn_name} never calls .{codec_call}(...); the "
                            "cold tier must delegate to the columnar codec "
                            "so StreamTuple slot coverage carries over to "
                            "frozen segments",
                        )
                    )
                if fn_name != "freeze_segment" or not segment_slots:
                    continue
                for node in ast.walk(fn):
                    if (
                        isinstance(node, ast.Call)
                        and isinstance(node.func, ast.Name)
                        and node.func.id == "ColdSegment"
                    ):
                        supplied = len(node.args) + len(node.keywords)
                        if supplied != len(segment_slots):
                            findings.append(
                                Finding(
                                    self.name,
                                    module.path,
                                    node.lineno,
                                    node.col_offset,
                                    f"ColdSegment(...) in freeze_segment "
                                    f"passes {supplied} argument(s) but "
                                    f"ColdSegment has {len(segment_slots)} "
                                    "slots; a cold-segment field is left "
                                    "unset where segments are built",
                                )
                            )

    # -- dataclass fields must be consumed somewhere -------------------

    def _check_consumed_fields(
        self, index: ModuleIndex, findings: List[Finding]
    ) -> None:
        consumed: Set[str] = set()
        for module in index.modules:
            if module.tree is not None:
                consumed |= attributes_read(module.tree)
        for class_name in CONSUMED_FIELD_CLASSES:
            for module, node in index.classes(class_name):
                for field_name in dataclass_field_names(node):
                    if field_name not in consumed:
                        findings.append(
                            Finding(
                                self.name,
                                module.path,
                                node.lineno,
                                node.col_offset,
                                f"{class_name} field {field_name!r} is never "
                                "read anywhere in the analyzed tree; the "
                                "receiving side silently ignores it",
                            )
                        )
