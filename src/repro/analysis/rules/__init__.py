"""The repro-lint rule set — importing this package registers every rule.

Each module holds one engine-specific rule (see the individual module
docstrings and ``docs/STATIC_ANALYSIS.md`` for what they guard and why):

========================  ============================================
``codec-coverage``        transport field lists match the tuple model
``protocol-exhaustiveness``  every MSG_* tag has a sender + dispatch arm
``determinism``           no hash()/global random/wall clock/set order
``flush-contract``        no process()/submit() after terminal flush()
``ipc-safety``            no unpicklable expressions on IPC arguments
========================  ============================================

Adding a rule: create a module here, subclass
:class:`repro.analysis.core.Rule`, decorate it with
:func:`repro.analysis.core.register`, and import the module below.
"""

from . import (  # noqa: F401  (import-time rule registration)
    codec_coverage,
    determinism,
    flush_contract,
    ipc_safety,
    protocol,
)
