"""Rule ``ipc-safety``: nothing statically unpicklable on IPC paths.

Everything handed to the partitioned engine's process boundary — the
executors' ``submit`` / ``submit_batch`` / ``migrate`` / ``adopt``
surface, pipe ``send`` calls, and ``Process(...)`` construction — is
pickled (or block-encoded) to cross it.  Three expression shapes are
*never* picklable and fail only at runtime, possibly deep inside a
worker:

* ``lambda`` expressions (pickle refuses functions without a module
  path);
* generator expressions (live frames cannot be serialized);
* freshly ``open(...)``-ed file objects (OS handles do not travel).

This rule flags any of the three appearing as an argument — bare or
nested inside tuple/list/set/dict display literals, the shape protocol
messages actually take (``conn.send((MSG_BATCH, payload))``) — of a
call to one of :data:`IPC_CALLEES` or a ``Process`` constructor.  A
plain name that happens to be bound to a lambda is out of scope (no
data-flow analysis); the rule catches the written-in-place cases, which
is where this mistake actually occurs.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Optional

from ..astutils import call_attr, flatten_container_values
from ..core import Finding, ModuleIndex, Rule, register

#: Method/function names whose arguments cross a process boundary.
#: ``_send_message`` / ``_reply`` pickle their message themselves (to
#: frame it for a shared-memory ring), and ``send_frame`` is the socket
#: transport's framing layer, so their arguments face exactly the same
#: constraints as a pipe ``send``.
IPC_CALLEES = (
    "submit",
    "submit_batch",
    "migrate",
    "adopt",
    "send",
    "_send",
    "send_bytes",
    "send_frame",
    "_send_message",
    "_reply",
)

#: Constructor names treated as process spawns.
PROCESS_CONSTRUCTORS = ("Process",)


def _unpicklable_reason(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Lambda):
        return "a lambda is not picklable (no module-level name)"
    if isinstance(node, ast.GeneratorExp):
        return "a generator expression is not picklable (live frame)"
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "open"
    ):
        return "an open file object is not picklable (OS handle)"
    return None


@register
class IpcSafetyRule(Rule):
    name = "ipc-safety"
    summary = (
        "arguments of submit/migrate/adopt/send and Process(...) must not "
        "contain lambdas, generator expressions, or open files"
    )

    def check(self, index: ModuleIndex) -> Iterable[Finding]:
        findings: List[Finding] = []
        for module in index.modules:
            for node in module.walk():
                if not isinstance(node, ast.Call):
                    continue
                callee = call_attr(node)
                if callee in IPC_CALLEES:
                    context = f"argument of {callee}()"
                elif callee in PROCESS_CONSTRUCTORS:
                    context = f"argument of {callee}(...)"
                else:
                    continue
                arguments = list(node.args) + [
                    keyword.value for keyword in node.keywords
                ]
                for argument in arguments:
                    for value in flatten_container_values(argument):
                        reason = _unpicklable_reason(value)
                        if reason is None:
                            continue
                        findings.append(
                            Finding(
                                self.name,
                                module.path,
                                getattr(value, "lineno", node.lineno),
                                getattr(value, "col_offset", node.col_offset),
                                f"{context} crosses a process boundary but "
                                f"{reason}; pass a module-level callable or "
                                "block-encodable data instead",
                            )
                        )
        return findings
