"""Rule ``protocol-exhaustiveness``: every ``MSG_*`` tag sent and handled.

The parent↔worker protocol of the partitioned engine is a set of
module-level string constants (``MSG_BATCH``, ``MSG_FLUSH``, ...) in
:mod:`repro.parallel.shard`, senders in the executors, and a dispatch
loop in ``shard_worker``.  Nothing ties the three together at runtime:
a tag added without a dispatch arm is silently misinterpreted by the
worker, a dispatch arm without a sender is dead protocol.  This rule
closes the loop statically:

* every defined ``MSG_*`` constant must appear in at least one **send**
  — as the first element of a tuple passed to a call whose callee is
  named ``send`` / ``_send`` / ``send_bytes`` / ``_send_message`` /
  ``_reply`` (the latter two wrap pipe-or-ring delivery for the
  shared-memory transport);
* every defined ``MSG_*`` constant must appear in at least one
  **dispatch arm** — an ``==`` / ``!=`` comparison against it;
* a comparison against an *undefined* ``MSG_*`` name is a stale arm
  (the constant was renamed or removed) — flagged at the comparison;
* within one dispatch function, comparing the same tag twice is an
  unreachable duplicate arm;
* within a dispatch function (one that compares ``MSG_*`` names), an
  equality comparison against a raw string literal that equals one of
  the defined tag *values* bypasses the constant and silently decouples
  from renames — flagged.  (Reply tags like ``"ok"``/``"state"`` are
  not ``MSG_*`` values, so the executors' reply checks stay clean.)

The rule is inert on module sets that define no ``MSG_*`` constants.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterable, List, Set, Tuple

from ..astutils import call_attr, string_constants
from ..core import Finding, ModuleIndex, Rule, SourceModule, register

MSG_NAME = re.compile(r"^MSG_[A-Z0-9_]+$")

#: Callee names whose tuple arguments count as protocol sends.  The
#: ``_send_message`` / ``_reply`` wrappers route one already-built
#: protocol tuple through either the pipe or a shared-memory ring, and
#: ``send_frame`` is the socket transport's framing layer
#: (:class:`repro.distributed.runtime.SocketConnection`) — a tag whose
#: only sender goes through any of them is live, not dead, protocol.
SEND_CALLEES = (
    "send",
    "_send",
    "send_bytes",
    "send_frame",
    "_send_message",
    "_reply",
)


def _defined_tags(
    index: ModuleIndex,
) -> Dict[str, Tuple[SourceModule, int, str]]:
    """``MSG_X → (module, line, tag value)`` for every module-level
    string-constant assignment matching the tag naming scheme."""
    defined: Dict[str, Tuple[SourceModule, int, str]] = {}
    for module in index.modules:
        if not isinstance(module.tree, ast.Module):
            continue
        for statement in module.tree.body:
            if not isinstance(statement, ast.Assign):
                continue
            value = string_constants(statement.value)
            if value is None:
                continue
            for target in statement.targets:
                if isinstance(target, ast.Name) and MSG_NAME.match(target.id):
                    defined.setdefault(
                        target.id, (module, statement.lineno, value)
                    )
    return defined


@register
class ProtocolExhaustivenessRule(Rule):
    name = "protocol-exhaustiveness"
    summary = (
        "every MSG_* protocol tag needs both a sender and a dispatch arm; "
        "no stale, duplicate, or constant-bypassing arms"
    )

    def check(self, index: ModuleIndex) -> Iterable[Finding]:
        defined = _defined_tags(index)
        if not defined:
            return []
        findings: List[Finding] = []
        tag_values = {value: name for name, (_, _, value) in defined.items()}

        sent: Set[str] = set()
        handled: Set[str] = set()

        for module in index.modules:
            for node in module.walk():
                if isinstance(node, ast.Call):
                    self._collect_sends(node, defined, sent)
            # Dispatch arms are examined per function so duplicates are
            # scoped the way control flow is.
            for node in module.walk():
                if not isinstance(
                    node, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    continue
                self._check_dispatch_function(
                    module, node, defined, tag_values, handled, findings
                )

        for name in sorted(defined):
            module, line, _ = defined[name]
            if name not in handled:
                findings.append(
                    Finding(
                        self.name,
                        module.path,
                        line,
                        0,
                        f"protocol tag {name} has no dispatch arm (no "
                        "== / != comparison anywhere); receivers will "
                        "misinterpret or drop it",
                    )
                )
            if name not in sent:
                findings.append(
                    Finding(
                        self.name,
                        module.path,
                        line,
                        0,
                        f"protocol tag {name} is never sent (no tuple "
                        f"({name}, ...) passed to any "
                        f"{'/'.join(SEND_CALLEES)} call); dead protocol arm",
                    )
                )
        return findings

    def _collect_sends(
        self,
        call: ast.Call,
        defined: Dict[str, Tuple[SourceModule, int, str]],
        sent: Set[str],
    ) -> None:
        if call_attr(call) not in SEND_CALLEES:
            return
        for argument in list(call.args) + [kw.value for kw in call.keywords]:
            for node in ast.walk(argument):
                if (
                    isinstance(node, ast.Tuple)
                    and node.elts
                    and isinstance(node.elts[0], ast.Name)
                    and node.elts[0].id in defined
                ):
                    sent.add(node.elts[0].id)

    def _check_dispatch_function(
        self,
        module: SourceModule,
        function: ast.AST,
        defined: Dict[str, Tuple[SourceModule, int, str]],
        tag_values: Dict[str, str],
        handled: Set[str],
        findings: List[Finding],
    ) -> None:
        compared_here: Dict[str, int] = {}
        literal_compares: List[Tuple[int, int, str]] = []
        for node in ast.walk(function):
            if not isinstance(node, ast.Compare):
                continue
            if not all(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
                continue
            for side in [node.left] + list(node.comparators):
                if isinstance(side, ast.Name) and MSG_NAME.match(side.id):
                    if side.id not in defined:
                        findings.append(
                            Finding(
                                self.name,
                                module.path,
                                node.lineno,
                                node.col_offset,
                                f"comparison against undefined protocol "
                                f"tag {side.id}; stale dispatch arm",
                            )
                        )
                        continue
                    handled.add(side.id)
                    if side.id in compared_here:
                        findings.append(
                            Finding(
                                self.name,
                                module.path,
                                node.lineno,
                                node.col_offset,
                                f"duplicate dispatch arm for {side.id} "
                                "(first compared on line "
                                f"{compared_here[side.id]}); the later arm "
                                "is unreachable",
                            )
                        )
                    else:
                        compared_here[side.id] = node.lineno
                else:
                    literal = string_constants(side)
                    if literal is not None and literal in tag_values:
                        literal_compares.append(
                            (node.lineno, node.col_offset, literal)
                        )
        if compared_here:
            # Only a function that actually dispatches on MSG_* tags is
            # held to the use-the-constant rule; elsewhere an equal
            # string literal is a coincidence, not a bypass.
            for line, col, literal in literal_compares:
                findings.append(
                    Finding(
                        self.name,
                        module.path,
                        line,
                        col,
                        f"dispatch compares against raw tag literal "
                        f"{literal!r}; use the {tag_values[literal]} "
                        "constant so renames cannot desynchronize",
                    )
                )
