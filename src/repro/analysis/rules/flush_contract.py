"""Rule ``flush-contract``: no processing after a terminal flush.

The PR 2 contracts made ``flush()`` terminal on every stage that buffers
state — :class:`~repro.core.kslack.KSlackBuffer`,
:class:`~repro.core.synchronizer.Synchronizer`,
:class:`~repro.core.result_sorter.ResultSorter`, and
:class:`~repro.core.pipeline.QualityDrivenPipeline` — because a stage
reused after flush silently mixes pre- and post-flush ordering
contracts.  The stages raise at runtime; this rule catches the pattern
before it ever runs.

The check is deliberately **flow-insensitive within one function** (per
the contract's own documentation): inside each function body, a call
``<target>.flush()`` followed on a later line by
``<target>.process(...)`` / ``<target>.process_batch(...)`` /
``<target>.submit(...)`` / ``<target>.submit_batch(...)`` on the same
dotted receiver is flagged — unless the receiver is re-assigned in
between (a fresh instance is exactly the documented remedy).  Receivers
that are not plain dotted names (``self.kslacks[i]``) are not tracked;
loops that textually process before flushing are accepted noise the
pragma escape covers.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Tuple

from ..astutils import dotted_name
from ..core import Finding, ModuleIndex, Rule, register

#: Method names that feed new work into a flushed stage.
PROCESS_METHODS = ("process", "process_batch", "submit", "submit_batch")


@register
class FlushContractRule(Rule):
    name = "flush-contract"
    summary = (
        "within a function, a receiver must not process/submit after its "
        "terminal flush() (re-assignment between the two resets tracking)"
    )

    def check(self, index: ModuleIndex) -> Iterable[Finding]:
        findings: List[Finding] = []
        for module in index.modules:
            for node in module.walk():
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    self._check_function(module.path, node, findings)
        return findings

    def _check_function(
        self, path: str, function: ast.AST, findings: List[Finding]
    ) -> None:
        flushes: Dict[str, int] = {}
        processes: List[Tuple[str, int, int, str]] = []
        assigns: Dict[str, List[int]] = {}
        for node in ast.walk(function):
            if isinstance(node, ast.Call) and isinstance(
                node.func, ast.Attribute
            ):
                target = dotted_name(node.func.value)
                if target is None:
                    continue
                if node.func.attr == "flush" and not node.args:
                    line = node.lineno
                    if target not in flushes or line < flushes[target]:
                        flushes[target] = line
                elif node.func.attr in PROCESS_METHODS:
                    processes.append(
                        (target, node.lineno, node.col_offset, node.func.attr)
                    )
            elif isinstance(node, ast.Assign):
                for target_node in node.targets:
                    target = dotted_name(target_node)
                    if target is not None:
                        assigns.setdefault(target, []).append(node.lineno)
        for target, line, col, attr in processes:
            flush_line = flushes.get(target)
            if flush_line is None or line <= flush_line:
                continue
            if any(
                flush_line < assign_line <= line
                for assign_line in assigns.get(target, [])
            ):
                continue
            findings.append(
                Finding(
                    self.name,
                    path,
                    line,
                    col,
                    f"{target}.{attr}() after {target}.flush() on line "
                    f"{flush_line}; flush is terminal — create a new "
                    "instance instead of reusing the flushed stage",
                )
            )
