"""Seeded, deterministic fault plans for the supervised shard executor.

Fault tolerance that is only exercised by real outages is untested fault
tolerance.  This module injects failures *deterministically*: a
:class:`FaultPlan` is plain picklable data (it crosses the fork/spawn
boundary inside the worker ``Process`` args), each :class:`FaultSpec`
names a shard, a fault kind, and the 1-based occurrence count at which
it fires, and the worker-side :class:`FaultInjector` counts protocol
events (batches, migrations, checkpoints) and acts at exactly the
configured points.  Two runs with the same plan fail at the same
tuple — which is what lets the recovery tests assert *byte-identity*
between a crashed-and-recovered run and an undisturbed one, and lets
the chaos soak replay a seeded kill schedule as a sixth invariant.

Fault kinds
-----------
* ``crash-before-batch`` / ``crash-after-batch`` — ``os._exit`` around
  the Nth tuple batch: the abrupt-death path (no error reply, no
  unwind), before or after the batch's results exist.
* ``sigkill-before-batch`` — the worker SIGKILLs itself before the Nth
  batch: indistinguishable from an OOM-killer or operator kill.
* ``hang-before-batch`` — sleep ``param`` seconds (default 600) before
  the Nth batch: the liveness failure heartbeats exist for — the
  process stays alive, so only a ping timeout can surface it.
* ``slow-recv`` — sleep ``param`` seconds (default 0.05) before *every*
  batch from the Nth on: degraded-but-alive, must NOT trip supervision.
* ``stall-recv`` — sleep ``param`` seconds (default 1.0) before the Nth
  batch, once: a worker that stops consuming long enough for the
  pipelined feeder's credit window (and a small shm ring) to fill.  The
  observable outcome must be *backpressure* — the feeder stalls and
  resumes, byte-identical output, zero respawns — never a deadlock or a
  spurious supervision trip (keep ``param`` under the heartbeat
  timeout).
* ``crash-on-migrate`` — ``os._exit`` on the Nth ``MSG_MIGRATE_OUT``,
  after draining/extracting but before the state reply leaves: a crash
  in the middle of the rebalancing barrier.
* ``corrupt-checkpoint`` — flip one byte of the Nth checkpoint frame's
  payload before it ships: the parent's CRC check must reject it and
  recover from the previous checkpoint.
* ``crash-mid-ring-write`` — on the Nth reply-ring write (shm transport
  only), tear the frame — header plus half the payload, write cursor
  never published — then ``os._exit``: a crash in the middle of a
  shared-memory write.  The parent must see a dead worker, never the
  torn bytes, and replay must stay byte-identical.
* ``socket-drop`` — before the Nth batch, close the worker's transport
  connection (the injector's ``connection`` attribute, armed by
  ``shard_worker``) and then ``os._exit``: a TCP connection reset as the
  remote side sees it.  The parent's next poll/recv/send on that socket
  must surface a :class:`ShardFailure`, never a hang.
* ``node-sigkill`` — before the Nth batch, SIGKILL the hosting
  :class:`~repro.distributed.runtime.NodeServer` process (the injector's
  ``node_pid``, set to ``os.getppid()`` by node-hosted workers), then
  SIGKILL itself for determinism.  The node's PDEATHSIG arms take the
  sibling workers down with it — a whole-machine loss, so recovery must
  reconnect surviving shards to the *other* nodes.  Degrades to a plain
  self-SIGKILL when no node pid is armed (single-process runs).

Occurrence counters live in the worker process and restart from zero in
every incarnation.  By default a spec is *one-shot across the run*: the
supervisor strips non-``persistent`` specs from the plan it hands a
respawned worker, so recovery succeeds.  ``persistent=True`` keeps the
spec armed across respawns — the way tests exhaust the respawn budget
and force slot failover.
"""

from __future__ import annotations

import os
import signal
import time
from dataclasses import dataclass, field
from typing import Optional, Tuple

KIND_CRASH_BEFORE_BATCH = "crash-before-batch"
KIND_CRASH_AFTER_BATCH = "crash-after-batch"
KIND_SIGKILL_BEFORE_BATCH = "sigkill-before-batch"
KIND_HANG_BEFORE_BATCH = "hang-before-batch"
KIND_SLOW_RECV = "slow-recv"
KIND_STALL_RECV = "stall-recv"
KIND_CRASH_ON_MIGRATE = "crash-on-migrate"
KIND_CORRUPT_CHECKPOINT = "corrupt-checkpoint"
KIND_CRASH_MID_RING_WRITE = "crash-mid-ring-write"
KIND_SOCKET_DROP = "socket-drop"
KIND_NODE_SIGKILL = "node-sigkill"

#: Process-wide fallback for :attr:`FaultInjector.node_pid`, armed by
#: :func:`repro.distributed.runtime._node_worker` *before* the shard
#: loop constructs its injector — the injector cannot be reached from
#: the node accept path, so the hosting pid travels through the module.
NODE_PID: Optional[int] = None

FAULT_KINDS = (
    KIND_CRASH_BEFORE_BATCH,
    KIND_CRASH_AFTER_BATCH,
    KIND_SIGKILL_BEFORE_BATCH,
    KIND_HANG_BEFORE_BATCH,
    KIND_SLOW_RECV,
    KIND_STALL_RECV,
    KIND_CRASH_ON_MIGRATE,
    KIND_CORRUPT_CHECKPOINT,
    KIND_CRASH_MID_RING_WRITE,
    KIND_SOCKET_DROP,
    KIND_NODE_SIGKILL,
)

#: ``os._exit`` status of injected crashes — distinct from Python's
#: generic 1 so a test watching exit codes can tell an injected crash
#: from an accidental worker exception.
CRASH_EXIT_CODE = 70

#: Default sleep of a ``hang-before-batch`` fault.  Long enough that
#: only the supervisor's heartbeat timeout — never the sleep running
#: out — ends the hang.
DEFAULT_HANG_S = 600.0

#: Default per-batch sleep of a ``slow-recv`` fault.
DEFAULT_SLOW_S = 0.05

#: Default one-shot sleep of a ``stall-recv`` fault: long enough that a
#: small credit window demonstrably fills (the feeder measurably
#: stalls), short enough to stay under any sane heartbeat timeout.
DEFAULT_STALL_S = 1.0


@dataclass(frozen=True)
class FaultSpec:
    """One deterministic fault: ``kind`` fires on ``shard`` at the
    ``at``-th occurrence of its trigger event (1-based)."""

    shard: int
    kind: str
    at: int = 1
    #: Kind-specific parameter: sleep seconds for ``hang-before-batch``
    #: and ``slow-recv``; unused elsewhere.
    param: Optional[float] = None
    #: Survive respawns.  Default off: the supervisor disarms one-shot
    #: faults when it respawns the worker, so recovery converges.
    persistent: bool = False

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of {FAULT_KINDS}"
            )
        if self.shard < 0:
            raise ValueError(f"fault shard must be >= 0, got {self.shard}")
        if self.at < 1:
            raise ValueError(f"fault occurrence 'at' must be >= 1, got {self.at}")


@dataclass(frozen=True)
class FaultPlan:
    """A picklable bundle of :class:`FaultSpec` entries for one run."""

    specs: Tuple[FaultSpec, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        # Tolerate list literals at construction; store a tuple so the
        # plan stays hashable/frozen.
        object.__setattr__(self, "specs", tuple(self.specs))

    def __len__(self) -> int:
        return len(self.specs)

    def for_shard(self, shard: int) -> Tuple[FaultSpec, ...]:
        """The specs targeting ``shard`` (what its injector arms)."""
        return tuple(spec for spec in self.specs if spec.shard == shard)

    def respawn_plan(self, shard: int) -> Optional["FaultPlan"]:
        """The plan a *respawned* incarnation of ``shard`` receives.

        Non-persistent faults already did their damage; re-arming them
        would crash every incarnation and make recovery impossible by
        construction.  Other shards' specs are kept verbatim (the plan
        is filtered per shard again inside each worker).
        """
        kept = tuple(
            spec
            for spec in self.specs
            if spec.shard != shard or spec.persistent
        )
        return FaultPlan(kept) if kept else None


class FaultInjector:
    """Worker-side fault arm: counts events, acts at configured points.

    Lives in the worker process (constructed by ``shard_worker`` from
    the plan in its ``Process`` args); counters restart at zero per
    incarnation, which keeps the schedule deterministic under replay.
    """

    def __init__(self, specs: Tuple[FaultSpec, ...]) -> None:
        self._specs = specs
        self._batches = 0
        self._migrates = 0
        self._checkpoints = 0
        self._ring_writes = 0
        #: Armed by ``shard_worker``: the worker's transport connection,
        #: torn down by the ``socket-drop`` fault (duck-typed ``close``).
        self.connection: Optional[object] = None
        #: Armed by node-hosted workers: the hosting ``NodeServer`` pid,
        #: the ``node-sigkill`` fault's target.
        self.node_pid: Optional[int] = None

    def _fire(self, kind: str, count: int) -> Optional[FaultSpec]:
        for spec in self._specs:
            if spec.kind != kind:
                continue
            if kind == KIND_SLOW_RECV:
                if count >= spec.at:
                    return spec
            elif count == spec.at:
                return spec
        return None

    def before_batch(self) -> None:
        """Hook before the Nth tuple batch is decoded/processed."""
        self._batches += 1
        n = self._batches
        if self._fire(KIND_SIGKILL_BEFORE_BATCH, n) is not None:
            os.kill(os.getpid(), signal.SIGKILL)
        if self._fire(KIND_CRASH_BEFORE_BATCH, n) is not None:
            os._exit(CRASH_EXIT_CODE)
        if self._fire(KIND_SOCKET_DROP, n) is not None:
            connection = self.connection
            if connection is not None:
                try:
                    connection.close()  # type: ignore[attr-defined]
                except OSError:
                    pass
            os._exit(CRASH_EXIT_CODE)
        if self._fire(KIND_NODE_SIGKILL, n) is not None:
            target = self.node_pid if self.node_pid is not None else NODE_PID
            if target is not None:
                os.kill(target, signal.SIGKILL)
            # Die too (PDEATHSIG would deliver this anyway when the node
            # goes first; doing it explicitly keeps the schedule exact
            # and covers the degraded single-process case).
            os.kill(os.getpid(), signal.SIGKILL)
        hang = self._fire(KIND_HANG_BEFORE_BATCH, n)
        if hang is not None:
            time.sleep(hang.param if hang.param is not None else DEFAULT_HANG_S)
        slow = self._fire(KIND_SLOW_RECV, n)
        if slow is not None:
            time.sleep(slow.param if slow.param is not None else DEFAULT_SLOW_S)
        stall = self._fire(KIND_STALL_RECV, n)
        if stall is not None:
            time.sleep(stall.param if stall.param is not None else DEFAULT_STALL_S)

    def after_batch(self) -> None:
        """Hook after the Nth batch's results joined the accumulator."""
        if self._fire(KIND_CRASH_AFTER_BATCH, self._batches) is not None:
            os._exit(CRASH_EXIT_CODE)

    def on_migrate(self) -> None:
        """Hook between state extraction and the migration state reply."""
        self._migrates += 1
        if self._fire(KIND_CRASH_ON_MIGRATE, self._migrates) is not None:
            os._exit(CRASH_EXIT_CODE)

    def on_ring_write(self, ring: object, frame: bytes) -> None:
        """Hook before the Nth worker reply-ring write (shm transport).

        Fires ``crash-mid-ring-write``: leaves the ring's torn state via
        its ``torn_write`` test hook — frame header and half the payload
        in place, write cursor never published — then dies abruptly.
        ``ring`` is duck-typed (anything with ``torn_write``) so this
        module stays import-light.
        """
        self._ring_writes += 1
        if self._fire(KIND_CRASH_MID_RING_WRITE, self._ring_writes) is not None:
            torn = getattr(ring, "torn_write", None)
            if torn is not None:
                torn(frame)
            os._exit(CRASH_EXIT_CODE)

    def corrupt_payload(self, payload: bytes) -> bytes:
        """Flip one byte of the Nth checkpoint frame payload (else pass
        it through untouched)."""
        self._checkpoints += 1
        if self._fire(KIND_CORRUPT_CHECKPOINT, self._checkpoints) is None:
            return payload
        if not payload:
            return b"\xff"
        index = len(payload) // 2
        flipped = payload[index] ^ 0xFF
        return payload[:index] + bytes((flipped,)) + payload[index + 1:]


def chaos_plan(seed: int, num_shards: int) -> FaultPlan:
    """The seeded kill schedule of the ``--chaos`` soak.

    Deterministic in ``(seed, num_shards)``: a SIGKILL mid-phase on one
    shard, a mid-batch hang on another, a crash *after* results existed
    on a third, a checkpoint corruption, and a crash inside the
    migration barrier armed on every shard (whichever shard the
    rebalancer drains first trips it).  Occurrence counts stay small so
    the schedule fires even at CI smoke scale.
    """
    import random

    if num_shards < 1:
        raise ValueError(f"num_shards must be >= 1, got {num_shards}")
    rng = random.Random(seed * 10_007 + num_shards)
    specs = [
        FaultSpec(0, KIND_SIGKILL_BEFORE_BATCH, at=rng.randint(3, 6)),
        # Early (before the first rebalance check can select this shard
        # as a migration source and its crash-on-migrate spec preempts
        # the hang): the parent must prove hang *detection*, not just
        # crash detection.
        FaultSpec(
            1 % num_shards,
            KIND_HANG_BEFORE_BATCH,
            at=rng.randint(2, 4),
            param=30.0,
        ),
        FaultSpec(2 % num_shards, KIND_CRASH_AFTER_BATCH, at=rng.randint(14, 18)),
        # On its own shard (mod the bank size): a shard's first fault
        # strips its remaining one-shot specs at respawn, so a kind only
        # reliably fires when no earlier fault shares its shard.
        FaultSpec(3 % num_shards, KIND_CORRUPT_CHECKPOINT, at=1),
    ]
    # Crash inside the rebalancing barrier: armed on every shard because
    # which shard the planner drains first depends on the realized skew.
    for shard in range(num_shards):
        specs.append(FaultSpec(shard, KIND_CRASH_ON_MIGRATE, at=1))
    return FaultPlan(tuple(specs))
