"""Deterministic fault injection for the parallel execution layer.

See :mod:`repro.faults.plan` for the fault model.  The package is
import-light (stdlib only) because :class:`FaultPlan` instances cross
the process boundary inside worker ``Process`` args.
"""

from .plan import (
    CRASH_EXIT_CODE,
    FAULT_KINDS,
    KIND_CORRUPT_CHECKPOINT,
    KIND_CRASH_AFTER_BATCH,
    KIND_CRASH_BEFORE_BATCH,
    KIND_CRASH_MID_RING_WRITE,
    KIND_CRASH_ON_MIGRATE,
    KIND_HANG_BEFORE_BATCH,
    KIND_NODE_SIGKILL,
    KIND_SIGKILL_BEFORE_BATCH,
    KIND_SLOW_RECV,
    KIND_SOCKET_DROP,
    KIND_STALL_RECV,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    chaos_plan,
)

__all__ = [
    "CRASH_EXIT_CODE",
    "FAULT_KINDS",
    "KIND_CORRUPT_CHECKPOINT",
    "KIND_CRASH_AFTER_BATCH",
    "KIND_CRASH_BEFORE_BATCH",
    "KIND_CRASH_MID_RING_WRITE",
    "KIND_CRASH_ON_MIGRATE",
    "KIND_HANG_BEFORE_BATCH",
    "KIND_NODE_SIGKILL",
    "KIND_SIGKILL_BEFORE_BATCH",
    "KIND_SLOW_RECV",
    "KIND_SOCKET_DROP",
    "KIND_STALL_RECV",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "chaos_plan",
]
