"""The experiment runner: one disordered replay, fully instrumented.

Runs a :class:`~repro.experiments.configs.ExperimentConfig` through a
:class:`~repro.core.pipeline.QualityDrivenPipeline` under a chosen policy
and pipeline parameters, measuring exactly what the paper reports:

* γ(P) right before every adaptation step (via a
  :class:`~repro.quality.recall.RecallMeter` against the cached ground
  truth), with the first measurement period excluded;
* Φ(Γ) and Φ(.99Γ) over those measurements;
* the time-weighted average K (the latency proxy);
* the average per-step adaptation time (Alg. 3 runtime, Fig. 11).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..core.adaptation import (
    BufferSizePolicy,
    MaxKSlackPolicy,
    ModelBasedPolicy,
    NoKSlackPolicy,
)
from ..core.pipeline import PipelineConfig, QualityDrivenPipeline
from ..core.selectivity import strategy_from_name
from ..core.tuples import to_seconds
from ..quality.latency import LatencySummary, summarize_latency
from ..quality.recall import RecallMeasurement, RecallMeter
from .configs import ExperimentConfig


@dataclass
class RunResult:
    """Everything one instrumented run yields."""

    experiment: str
    policy: str
    gamma: float
    period_ms: int
    interval_ms: int
    granularity_ms: int
    basic_window_ms: int
    average_k_s: float
    average_recall: float
    phi: float
    phi99: float
    measurements: List[RecallMeasurement] = field(default_factory=list)
    results_produced: int = 0
    truth_total: int = 0
    adaptations: int = 0
    average_adaptation_ms: float = 0.0
    latency: Optional[LatencySummary] = None

    def overall_recall(self) -> float:
        """Full-history recall (produced / true), for sanity checks."""
        if self.truth_total == 0:
            return 1.0
        return min(1.0, self.results_produced / self.truth_total)


def make_policy(name: str, gamma: float = 0.95) -> BufferSizePolicy:
    """Policy factory used by benches: ``no-k-slack`` / ``max-k-slack`` /
    ``model-eqsel`` / ``model-noneqsel``."""
    normalized = name.strip().lower()
    if normalized == "no-k-slack":
        return NoKSlackPolicy()
    if normalized == "max-k-slack":
        return MaxKSlackPolicy()
    if normalized == "model-eqsel":
        return ModelBasedPolicy(strategy_from_name("eqsel"))
    if normalized == "model-noneqsel":
        return ModelBasedPolicy(strategy_from_name("noneqsel"))
    raise ValueError(f"unknown policy {name!r}")


def run_experiment(
    experiment: ExperimentConfig,
    policy: BufferSizePolicy,
    gamma: float = 0.95,
    period_ms: int = 60_000,
    interval_ms: int = 1_000,
    basic_window_ms: int = 10,
    granularity_ms: int = 10,
    warmup_ms: Optional[int] = None,
) -> RunResult:
    """Run one instrumented replay; see module docstring for what's measured."""
    dataset = experiment.dataset()
    truth = experiment.truth()
    meter = RecallMeter(truth.index, period_ms, warmup_ms=warmup_ms)

    def on_adaptation(pipeline: QualityDrivenPipeline, boundary_ms: int) -> None:
        # Anchor the measurement at the join's output progress: the result
        # stream is ordered, so counts below onT are final (DESIGN.md §4).
        meter.measure(pipeline.join.on_t)

    pipeline = QualityDrivenPipeline(
        PipelineConfig(
            window_sizes_ms=experiment.window_sizes_ms,
            condition=experiment.condition,
            gamma=gamma,
            period_ms=period_ms,
            interval_ms=interval_ms,
            basic_window_ms=basic_window_ms,
            granularity_ms=granularity_ms,
            policy=policy,
            collect_results=False,
        ),
        on_adaptation=on_adaptation,
        on_results=meter.record_produced,
    )
    for t in dataset.arrivals():
        pipeline.process(t)
    pipeline.flush()

    end_time = pipeline.app_time_ms()
    metrics = pipeline.metrics
    return RunResult(
        experiment=experiment.name,
        policy=getattr(policy, "name", type(policy).__name__),
        gamma=gamma,
        period_ms=period_ms,
        interval_ms=interval_ms,
        granularity_ms=granularity_ms,
        basic_window_ms=basic_window_ms,
        average_k_s=to_seconds(metrics.average_k_ms(end_time)),
        average_recall=meter.average_recall(),
        phi=meter.fulfillment(gamma),
        phi99=meter.fulfillment(gamma, slack=0.99),
        measurements=list(meter.measurements),
        results_produced=metrics.results_produced,
        truth_total=truth.index.total,
        adaptations=metrics.adaptations,
        average_adaptation_ms=metrics.average_adaptation_seconds() * 1000.0,
        latency=summarize_latency(metrics, end_time),
    )
