"""Command-line experiment runner: ``python -m repro.experiments``.

Runs one of the paper's (dataset, query) pairs under a chosen policy and
prints the measured quality/latency outcomes, e.g.::

    python -m repro.experiments --experiment d3 --policy model-noneqsel \
        --gamma 0.95 --period 15 --interval 1

    python -m repro.experiments --experiment soccer --policy max-k-slack

    python -m repro.experiments --experiment d4 --policy model-eqsel \
        --gamma 0.99 --series        # also dump the gamma(P) time series
"""

from __future__ import annotations

import argparse
import sys

from ..core.tuples import seconds
from .configs import all_experiments
from .runner import make_policy, run_experiment


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Run one paper experiment and print the measured outcomes.",
    )
    parser.add_argument(
        "--experiment",
        choices=("soccer", "d3", "d4", "nexmark", "nexmark-pab"),
        default="d3",
        help="(dataset, query) pair (default: d3)",
    )
    parser.add_argument(
        "--policy",
        choices=("no-k-slack", "max-k-slack", "model-eqsel", "model-noneqsel"),
        default="model-noneqsel",
        help="buffer-size policy (default: model-noneqsel)",
    )
    parser.add_argument("--gamma", type=float, default=0.95, help="recall requirement Γ")
    parser.add_argument("--period", type=float, default=15.0, help="measurement period P (s)")
    parser.add_argument("--interval", type=float, default=1.0, help="adaptation interval L (s)")
    parser.add_argument("--basic-window", type=float, default=0.01, help="basic window b (s)")
    parser.add_argument("--granularity", type=float, default=0.01, help="search granularity g (s)")
    parser.add_argument("--scale", type=float, default=1.0, help="workload duration scale")
    parser.add_argument(
        "--paper-scale",
        action="store_true",
        help="use the paper's full workload parameters (slow)",
    )
    parser.add_argument(
        "--series", action="store_true", help="print the gamma(P) time series"
    )
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    experiment = all_experiments(scale=args.scale, paper_scale=args.paper_scale)[
        args.experiment
    ]
    print(experiment.dataset().describe())
    print(f"computing ground truth ...", flush=True)
    print(f"true join results: {experiment.truth().index.total}")

    outcome = run_experiment(
        experiment,
        make_policy(args.policy, args.gamma),
        gamma=args.gamma,
        period_ms=seconds(args.period),
        interval_ms=seconds(args.interval),
        basic_window_ms=max(1, seconds(args.basic_window)),
        granularity_ms=max(1, seconds(args.granularity)),
    )

    print(f"\npolicy:               {outcome.policy}")
    print(f"recall requirement:   Γ = {outcome.gamma}  over P = {args.period} s")
    print(f"average K:            {outcome.average_k_s:.3f} s")
    print(f"average recall γ(P):  {outcome.average_recall:.4f}")
    print(f"Φ(Γ):                 {outcome.phi:.3f}")
    print(f"Φ(.99Γ):              {outcome.phi99:.3f}")
    print(f"results produced:     {outcome.results_produced} / {outcome.truth_total}")
    print(f"adaptation steps:     {outcome.adaptations}")
    print(f"avg adaptation time:  {outcome.average_adaptation_ms:.3f} ms")
    if outcome.latency is not None:
        print(f"avg buffering latency: {outcome.latency.average_buffering_latency_s:.3f} s")

    if args.series:
        print("\ngamma(P) time series:")
        for m in outcome.measurements:
            print(f"  t={m.at_ms / 1000.0:8.1f}s  recall={m.recall:.4f} "
                  f"({m.produced}/{m.true})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
