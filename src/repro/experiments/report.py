"""Plain-text report formatting for benchmark outputs.

Every benchmark regenerates one paper table or figure as text: a header
naming the experiment, fixed-width columns, and (for figures) one row per
x-axis point and series.  Reports are printed and also written under
``results/`` so EXPERIMENTS.md can reference them.
"""

from __future__ import annotations

import os
from typing import Iterable, List, Optional, Sequence

#: Default output directory for report files (created on demand).
RESULTS_DIR = os.environ.get(
    "REPRO_RESULTS_DIR",
    os.path.join(os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))))), "results"),
)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Render a fixed-width text table.

    Floats are shown with 4 significant decimals; everything else via
    ``str``.  Column widths fit the widest cell.
    """
    def render(cell: object) -> str:
        if isinstance(cell, float):
            return f"{cell:.4f}"
        return str(cell)

    rendered_rows: List[List[str]] = [[render(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    header_line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in rendered_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def write_report(name: str, text: str, directory: Optional[str] = None) -> str:
    """Write ``text`` to ``<results>/<name>.txt``; returns the path."""
    directory = directory or RESULTS_DIR
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, f"{name}.txt")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text)
        if not text.endswith("\n"):
            handle.write("\n")
    return path


def print_and_save(name: str, text: str) -> str:
    """Print a report and persist it; returns the saved path."""
    print()
    print(text)
    return write_report(name, text)
