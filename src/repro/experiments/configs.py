"""Dataset + query configurations matching the paper's evaluation (Sec. VI).

Three (dataset, query) pairs:

* ``soccer`` — D×2real substitute + Q×2: 2-way join of two team-position
  streams on ``dist(x1,y1,x2,y2) < 5`` within 5-second windows.
* ``d3`` — D×3syn + Q×3: 3-way chain equi-join on ``a1`` within 5-second
  windows.
* ``d4`` — D×4syn + Q×4: 4-way star equi-join (``S1.a1=S2.a1 AND
  S1.a2=S3.a2 AND S1.a3=S4.a3``) within 3-second windows.

Paper-scale runs (23–30 minutes, 100 tuples/s) are expensive in a pure
Python simulator, so each factory takes a ``scale`` knob: ``scale=1.0``
uses laptop defaults (tens of seconds of stream time, 10–25 tuples/s)
that preserve the workloads' structure — window sizes, delay
distributions, value domains and skews keep the paper's values.
EXPERIMENTS.md records the scales used for the reported numbers; passing
``paper_scale=True`` reproduces the paper's full parameters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Sequence, Tuple

from ..core.tuples import seconds
from ..join.conditions import (
    JoinCondition,
    ThetaPredicate,
    equi_join_chain,
    star_equi_join,
)
from ..quality.truth import TruthResult, compute_truth
from ..streams.generators import make_d3_syn, make_d4_syn
from ..streams.nexmark import (
    NexmarkConfig,
    auction_bid_query,
    make_auction_bids,
    make_person_auction_bid,
    person_auction_bid_query,
)
from ..streams.soccer import SoccerConfig, make_soccer_dataset, player_distance
from ..streams.source import Dataset


@dataclass
class ExperimentConfig:
    """One (dataset, query) pair with lazily cached dataset and truth.

    The dataset and its ground truth are computed once and reused across
    parameter sweeps (e.g. the Γ sweep of Fig. 7 runs the same dataset
    under eight pipeline configurations).
    """

    name: str
    dataset_factory: Callable[[], Dataset]
    window_sizes_ms: Sequence[int]
    condition: JoinCondition
    _dataset: Optional[Dataset] = field(default=None, repr=False)
    _truth: Optional[TruthResult] = field(default=None, repr=False)

    @property
    def num_streams(self) -> int:
        return len(self.window_sizes_ms)

    def dataset(self) -> Dataset:
        if self._dataset is None:
            self._dataset = self.dataset_factory()
        return self._dataset

    def truth(self) -> TruthResult:
        if self._truth is None:
            self._truth = compute_truth(
                self.dataset(), self.window_sizes_ms, self.condition
            )
        return self._truth

    def invalidate(self) -> None:
        """Drop cached dataset/truth (tests that mutate parameters)."""
        self._dataset = None
        self._truth = None


# ----------------------------------------------------------------------
# Q×2 over the simulated soccer data
# ----------------------------------------------------------------------

def soccer_experiment(
    scale: float = 1.0,
    seed: int = 7,
    paper_scale: bool = False,
    proximity_m: float = 5.0,
) -> ExperimentConfig:
    """(D×2real-sim, Q×2): players of opposite teams within 5 m, 5 s windows."""
    if paper_scale:
        config = SoccerConfig(
            duration_ms=seconds(23 * 60),
            players_per_team=16,
            sample_period_ms=50,
            seed=seed,
        )
    else:
        config = SoccerConfig(
            duration_ms=int(seconds(90) * scale),
            players_per_team=8,
            sample_period_ms=400,
            max_delay_ms=(11_000, 13_000),
            seed=seed,
        )
    condition = JoinCondition(
        [
            ThetaPredicate(
                (0, 1),
                lambda a, b: player_distance(a["x"], a["y"], b["x"], b["y"])
                < proximity_m,
                name=f"dist<{proximity_m}",
            )
        ]
    )
    return ExperimentConfig(
        name="(D2real-sim, Q2)",
        dataset_factory=lambda: make_soccer_dataset(config),
        window_sizes_ms=[seconds(5), seconds(5)],
        condition=condition,
    )


# ----------------------------------------------------------------------
# Q×3 over D×3syn
# ----------------------------------------------------------------------

def d3_experiment(
    scale: float = 1.0,
    seed: int = 1,
    paper_scale: bool = False,
) -> ExperimentConfig:
    """(D×3syn, Q×3): 3-way chain equi-join on ``a1``, 5 s windows."""
    if paper_scale:
        factory = lambda: make_d3_syn(seed=seed)  # noqa: E731 - paper defaults
    else:
        duration = int(seconds(90) * scale)

        def factory() -> Dataset:
            return make_d3_syn(
                duration_ms=duration,
                seed=seed,
                inter_arrival_ms=100,  # 10 tuples/s
                max_delay_ms=10_000,
                skew_change_interval_ms=(seconds(5), seconds(20)),
                # Cap the value skew: at the paper's upper skew of 5.0 a
                # single value dominates and the result rate explodes,
                # which a pure-Python joiner cannot sustain at bench scale.
                value_skew_range=(0.0, 2.5),
            )

    return ExperimentConfig(
        name="(D3syn, Q3)",
        dataset_factory=factory,
        window_sizes_ms=[seconds(5)] * 3,
        condition=equi_join_chain("a1", 3),
    )


# ----------------------------------------------------------------------
# Q×4 over D×4syn
# ----------------------------------------------------------------------

def d4_experiment(
    scale: float = 1.0,
    seed: int = 1,
    paper_scale: bool = False,
) -> ExperimentConfig:
    """(D×4syn, Q×4): 4-way star equi-join, 3 s windows."""
    if paper_scale:
        factory = lambda: make_d4_syn(seed=seed)  # noqa: E731 - paper defaults
    else:
        duration = int(seconds(90) * scale)

        def factory() -> Dataset:
            return make_d4_syn(
                duration_ms=duration,
                seed=seed,
                inter_arrival_ms=100,  # 10 tuples/s
                max_delay_ms=10_000,
                skew_change_interval_ms=(seconds(5), seconds(20)),
                value_skew_range=(0.0, 2.5),  # see d3_experiment note
            )

    return ExperimentConfig(
        name="(D4syn, Q4)",
        dataset_factory=factory,
        window_sizes_ms=[seconds(3)] * 4,
        condition=star_equi_join(0, {1: "a1", 2: "a2", 3: "a3"}),
    )


# ----------------------------------------------------------------------
# NEXMark-style auction workloads (extension family; ISSUE 5)
# ----------------------------------------------------------------------

def _nexmark_config(
    scale: float, seed: int, paper_scale: bool, bid_channels: int = 2
) -> NexmarkConfig:
    """Shared NEXMark shape: more/longer phases at paper scale.

    Bench scale runs 4 phases (steady → burst → silence → drift) of
    ``8 s × scale``; paper scale stretches to 8 phases of 30 s so every
    archetype recurs and the drift rotation visits the whole domain.
    """
    if paper_scale:
        return NexmarkConfig(
            num_bid_channels=bid_channels,
            num_phases=8,
            phase_duration_ms=30_000,
            seed=seed,
        )
    return NexmarkConfig(
        num_bid_channels=bid_channels,
        num_phases=4,
        phase_duration_ms=max(1_000, int(8_000 * scale)),
        seed=seed,
    )


def nexmark_experiment(
    scale: float = 1.0,
    seed: int = 7,
    paper_scale: bool = False,
    bid_channels: int = 2,
) -> ExperimentConfig:
    """(NEXMark-AB, Qab): auction announcements ⋈ every bid channel.

    Chain equi-join on ``auction`` over ``1 + bid_channels`` streams with
    1-second windows; a single equi component covers all streams, so the
    partitioned engine routes exactly and the rebalancer is available —
    the heterogeneous-rate, drifting-skew complement to (D×3syn, Q×3).
    """
    config = _nexmark_config(scale, seed, paper_scale, bid_channels)
    return ExperimentConfig(
        name="(NEXMark-AB, Qab)",
        dataset_factory=lambda: make_auction_bids(config),
        window_sizes_ms=[seconds(1)] * (1 + bid_channels),
        condition=auction_bid_query(bid_channels),
    )


def nexmark_pab_experiment(
    scale: float = 1.0,
    seed: int = 7,
    paper_scale: bool = False,
) -> ExperimentConfig:
    """(NEXMark-PAB, Qpab): Person ⋈ Auction ⋈ Bid, two equi components.

    ``Person.person = Auction.seller AND Auction.auction = Bid.auction``
    is *not* exactly hash-partitionable (no single component covers all
    three streams), so the partitioned engine broadcasts — the NEXMark
    workload for the non-partitionable regime.
    """
    config = _nexmark_config(scale, seed, paper_scale)
    return ExperimentConfig(
        name="(NEXMark-PAB, Qpab)",
        dataset_factory=lambda: make_person_auction_bid(config),
        window_sizes_ms=[seconds(1)] * 3,
        condition=person_auction_bid_query(),
    )


def all_experiments(
    scale: float = 1.0, paper_scale: bool = False
) -> Dict[str, ExperimentConfig]:
    """The paper's three (dataset, query) pairs plus the NEXMark family."""
    return {
        "soccer": soccer_experiment(scale=scale, paper_scale=paper_scale),
        "d3": d3_experiment(scale=scale, paper_scale=paper_scale),
        "d4": d4_experiment(scale=scale, paper_scale=paper_scale),
        "nexmark": nexmark_experiment(scale=scale, paper_scale=paper_scale),
        "nexmark-pab": nexmark_pab_experiment(scale=scale, paper_scale=paper_scale),
    }


#: The Γ values examined in Fig. 7 / Fig. 11.
PAPER_GAMMA_VALUES: Tuple[float, ...] = (0.9, 0.95, 0.99, 0.999)
#: The P values examined in Fig. 8, in ms.
PAPER_PERIOD_VALUES_MS: Tuple[int, ...] = (30_000, 60_000, 180_000, 300_000)
#: The L values examined in Fig. 9, in ms.
PAPER_INTERVAL_VALUES_MS: Tuple[int, ...] = (100, 500, 1_000, 5_000, 10_000)
#: The g values examined in Fig. 10 / Fig. 11, in ms.
PAPER_GRANULARITY_VALUES_MS: Tuple[int, ...] = (1, 10, 100, 1_000)
