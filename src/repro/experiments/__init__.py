"""Experiment harness: paper workload configs, instrumented runner, report formatting."""
