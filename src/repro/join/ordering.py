"""Probe-order heuristics for the MSWJ operator.

Finding the optimal join order is orthogonal to the paper's contribution
(Sec. II-A: "any existing work in this area can be applied"), but the
operator still needs *some* order in which to bind the remaining streams
when a new tuple triggers a probe.  Two standard heuristics are provided:

* :class:`SmallestWindowFirst` — bind the stream with the smallest current
  window cardinality next; cheap and effective when rates differ.
* :class:`IndexAwareOrder` — prefer streams reachable through an equality
  index from the already-bound set (so hash lookups replace scans), using
  window cardinality as the tie-breaker.  This mirrors the classic
  "connected, selective-first" ordering of MJoin implementations.

Both are stateless policies over the current window cardinalities, so they
re-adapt automatically as rates or window sizes drift.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import List, Sequence

from .conditions import EquiPredicate, JoinCondition
from .window import SlidingWindow


class ProbeOrderPolicy(ABC):
    """Chooses the order in which non-trigger streams are bound."""

    @abstractmethod
    def order(
        self,
        trigger_stream: int,
        windows: Sequence[SlidingWindow],
        condition: JoinCondition,
    ) -> List[int]:
        """Return the probe order (stream indices, excluding the trigger)."""


class SmallestWindowFirst(ProbeOrderPolicy):
    """Bind streams in ascending order of current window cardinality."""

    def order(
        self,
        trigger_stream: int,
        windows: Sequence[SlidingWindow],
        condition: JoinCondition,
    ) -> List[int]:
        others = [i for i in range(len(windows)) if i != trigger_stream]
        others.sort(key=lambda i: (windows[i].cardinality, i))
        return others


class IndexAwareOrder(ProbeOrderPolicy):
    """Prefer index-reachable streams; break ties by window cardinality.

    Greedy construction: starting from the trigger stream, repeatedly pick
    the unbound stream that (a) has an equality predicate connecting it to
    a bound stream if any such stream exists, and (b) has the smallest
    window among the candidates.  Streams not connected by any equality
    predicate are appended last (they require scans anyway).

    The equi-connectivity graph is static per condition, so it is derived
    once and memoized — ``order`` runs on every probe trigger, and
    re-deriving connectivity through ``condition.equi_lookups`` there is
    pure allocation churn.
    """

    def __init__(self) -> None:
        self._condition: JoinCondition = None  # memo key for _adjacency
        self._adjacency: dict = {}

    def _adjacency_of(self, condition: JoinCondition) -> dict:
        if condition is not self._condition:
            adjacency: dict = {}
            for predicate in condition.predicates:
                if isinstance(predicate, EquiPredicate):
                    left, right = predicate.left_stream, predicate.right_stream
                    adjacency.setdefault(left, set()).add(right)
                    adjacency.setdefault(right, set()).add(left)
            self._adjacency = adjacency
            self._condition = condition
        return self._adjacency

    def order(
        self,
        trigger_stream: int,
        windows: Sequence[SlidingWindow],
        condition: JoinCondition,
    ) -> List[int]:
        adjacency = self._adjacency_of(condition)
        get_adjacent = adjacency.get
        remaining = [i for i in range(len(windows)) if i != trigger_stream]
        bound = {trigger_stream}
        ordered: List[int] = []
        while remaining:
            # Two-pass argmin by (cardinality, index): connected streams
            # first, the rest only when nothing connects.  Equivalent to
            # min() over the filtered pool, without per-step list/lambda
            # allocations — this runs on every probe trigger.
            best = -1
            best_card = -1
            for i in remaining:
                adjacent = get_adjacent(i)
                if adjacent is not None and not adjacent.isdisjoint(bound):
                    card = windows[i].cardinality
                    if best < 0 or card < best_card:
                        best = i
                        best_card = card
            if best < 0:
                for i in remaining:
                    card = windows[i].cardinality
                    if best < 0 or card < best_card:
                        best = i
                        best_card = card
            ordered.append(best)
            remaining.remove(best)
            bound.add(best)
        return ordered


def default_policy(condition: JoinCondition) -> ProbeOrderPolicy:
    """Pick a sensible default: index-aware when equality predicates exist."""
    has_equi = any(
        condition.indexed_attributes(stream)
        for stream in condition.referenced_streams()
    )
    return IndexAwareOrder() if has_equi else SmallestWindowFirst()
