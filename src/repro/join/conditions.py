"""Join condition algebra for m-way stream joins with arbitrary predicates.

The paper's framework is generic: "supports MSWJs with arbitrary join
conditions" (Sec. I) — equality predicates (Q×3, Q×4), user-defined theta
predicates like the soccer distance function (Q×2), and conjunctions of
both.  This module models a join condition as a conjunction of predicates,
each declaring which streams it references so the MSWJ probe can evaluate
a predicate as soon as all referenced streams are bound and can use hash
indexes for equality predicates.

Classes
-------
* :class:`EquiPredicate` — ``S_i.attr_a == S_j.attr_b``; index-assisted.
* :class:`BandPredicate` — ``|S_i.attr_a - S_j.attr_b| <= band``; a common
  stream-join shape (value proximity), evaluated by scan.
* :class:`ThetaPredicate` — arbitrary boolean function over the bound
  tuples of the streams it references (e.g. the soccer ``dist()`` UDF).
* :class:`JoinCondition` — a conjunction; ``JoinCondition([])`` is the
  cross join (always true).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable, Dict, FrozenSet, List, Mapping, Optional, Sequence, Tuple

from ..core.tuples import StreamTuple


class Predicate(ABC):
    """A boolean predicate over tuples of a fixed subset of streams."""

    @property
    @abstractmethod
    def streams(self) -> FrozenSet[int]:
        """Indices of the streams this predicate references."""

    @abstractmethod
    def evaluate(self, bound: Mapping[int, StreamTuple]) -> bool:
        """Evaluate against ``bound`` (stream index → tuple).

        Callers guarantee every referenced stream is present in ``bound``.
        """


class EquiPredicate(Predicate):
    """Equality between one attribute of each of two streams.

    ``EquiPredicate(0, "a1", 1, "a1")`` is ``S0.a1 == S1.a1``.
    """

    def __init__(self, left_stream: int, left_attr: str, right_stream: int, right_attr: str) -> None:
        if left_stream == right_stream:
            raise ValueError("equi predicate must reference two distinct streams")
        self.left_stream = left_stream
        self.left_attr = left_attr
        self.right_stream = right_stream
        self.right_attr = right_attr
        self._streams = frozenset((left_stream, right_stream))

    @property
    def streams(self) -> FrozenSet[int]:
        return self._streams

    def evaluate(self, bound: Mapping[int, StreamTuple]) -> bool:
        # Missing attributes read as None (mirroring the hash-index
        # behaviour), so None == None matches rather than raising.
        return (
            bound[self.left_stream].get(self.left_attr)
            == bound[self.right_stream].get(self.right_attr)
        )

    def side_for(self, stream: int) -> Tuple[str, int, str]:
        """Return ``(attr_on_stream, other_stream, attr_on_other)``.

        Used by the probe to turn "stream being bound next" into an index
        lookup key derived from an already-bound stream.
        """
        if stream == self.left_stream:
            return (self.left_attr, self.right_stream, self.right_attr)
        if stream == self.right_stream:
            return (self.right_attr, self.left_stream, self.left_attr)
        raise ValueError(f"stream {stream} not referenced by this predicate")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"S{self.left_stream}.{self.left_attr} == "
            f"S{self.right_stream}.{self.right_attr}"
        )


class BandPredicate(Predicate):
    """``|S_i.attr_a - S_j.attr_b| <= band`` between two streams."""

    def __init__(
        self,
        left_stream: int,
        left_attr: str,
        right_stream: int,
        right_attr: str,
        band: float,
    ) -> None:
        if left_stream == right_stream:
            raise ValueError("band predicate must reference two distinct streams")
        if band < 0:
            raise ValueError(f"band must be non-negative, got {band}")
        self.left_stream = left_stream
        self.left_attr = left_attr
        self.right_stream = right_stream
        self.right_attr = right_attr
        self.band = band
        self._streams = frozenset((left_stream, right_stream))

    @property
    def streams(self) -> FrozenSet[int]:
        return self._streams

    def evaluate(self, bound: Mapping[int, StreamTuple]) -> bool:
        left = bound[self.left_stream].get(self.left_attr)
        right = bound[self.right_stream].get(self.right_attr)
        if left is None or right is None:
            return False
        return abs(left - right) <= self.band

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"|S{self.left_stream}.{self.left_attr} - "
            f"S{self.right_stream}.{self.right_attr}| <= {self.band}"
        )


class ThetaPredicate(Predicate):
    """Arbitrary user-defined predicate over tuples of given streams.

    ``fn`` receives the bound tuples of ``streams`` in the order given.
    Example (the paper's Q×2 soccer condition)::

        ThetaPredicate(
            (0, 1),
            lambda a, b: player_distance(a["x"], a["y"], b["x"], b["y"]) < 5,
            name="dist<5",
        )
    """

    def __init__(
        self,
        streams: Sequence[int],
        fn: Callable[..., bool],
        name: Optional[str] = None,
    ) -> None:
        if len(set(streams)) != len(streams):
            raise ValueError("streams must be distinct")
        if not streams:
            raise ValueError("theta predicate must reference at least one stream")
        self._ordered_streams = tuple(streams)
        self._streams = frozenset(streams)
        self._fn = fn
        self.name = name or getattr(fn, "__name__", "theta")

    @property
    def streams(self) -> FrozenSet[int]:
        return self._streams

    def evaluate(self, bound: Mapping[int, StreamTuple]) -> bool:
        return bool(self._fn(*(bound[s] for s in self._ordered_streams)))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        refs = ", ".join(f"S{s}" for s in self._ordered_streams)
        return f"{self.name}({refs})"


class JoinCondition:
    """Conjunction of predicates; the empty conjunction is the cross join.

    Pre-computes, for each stream, the equality predicates touching it and
    the indexed attributes it needs, so the window layer knows which hash
    indexes to maintain and the probe knows which lookups are available.
    """

    def __init__(self, predicates: Sequence[Predicate] = ()) -> None:
        self.predicates: List[Predicate] = list(predicates)
        self._equi_by_stream: Dict[int, List[EquiPredicate]] = {}
        for predicate in self.predicates:
            if isinstance(predicate, EquiPredicate):
                for stream in predicate.streams:
                    self._equi_by_stream.setdefault(stream, []).append(predicate)

    @property
    def is_cross_join(self) -> bool:
        return not self.predicates

    def referenced_streams(self) -> FrozenSet[int]:
        refs: set = set()
        for predicate in self.predicates:
            refs |= predicate.streams
        return frozenset(refs)

    def indexed_attributes(self, stream: int) -> List[str]:
        """Attributes of ``stream`` that appear in equality predicates.

        The window on ``stream`` maintains one hash index per entry.
        """
        attrs: List[str] = []
        for predicate in self._equi_by_stream.get(stream, ()):
            attr, _, _ = predicate.side_for(stream)
            if attr not in attrs:
                attrs.append(attr)
        return attrs

    def equi_lookups(
        self, stream: int, bound_streams: FrozenSet[int]
    ) -> List[Tuple[str, int, str]]:
        """Index lookups usable when binding ``stream`` given ``bound_streams``.

        Returns ``(attr_on_stream, bound_stream, attr_on_bound)`` triples:
        candidate tuples of ``stream`` can be fetched from the hash index
        on ``attr_on_stream`` keyed by the bound tuple's value of
        ``attr_on_bound``.
        """
        lookups: List[Tuple[str, int, str]] = []
        for predicate in self._equi_by_stream.get(stream, ()):
            attr, other, other_attr = predicate.side_for(stream)
            if other in bound_streams:
                lookups.append((attr, other, other_attr))
        return lookups

    def predicates_closed_by(
        self, new_stream: int, bound_streams: FrozenSet[int]
    ) -> List[Predicate]:
        """Predicates that become fully bound when ``new_stream`` joins.

        These are exactly the checks to run when extending a partial
        binding by ``new_stream``: every referenced stream is either
        already bound or is ``new_stream`` itself, and ``new_stream`` is
        referenced (otherwise the predicate was checked earlier).
        """
        closed: List[Predicate] = []
        extended = bound_streams | {new_stream}
        for predicate in self.predicates:
            if new_stream in predicate.streams and predicate.streams <= extended:
                closed.append(predicate)
        return closed

    def evaluate(self, bound: Mapping[int, StreamTuple]) -> bool:
        """Full evaluation; requires all referenced streams bound."""
        return all(predicate.evaluate(bound) for predicate in self.predicates)

    def partition_attributes(self, num_streams: int) -> Optional[Dict[int, str]]:
        """Per-stream attributes that co-partition the join, if any exist.

        Hash partitioning an m-way join is exact when every stream can be
        routed on an attribute such that all m components of any join
        result carry the *same* value — then hashing that value sends all
        contributing tuples to the same partition.  Equality propagates
        transitively through equi predicates, so this runs a union-find
        over ``(stream, attr)`` nodes with one edge per
        :class:`EquiPredicate`: a connected component that covers **all**
        ``num_streams`` streams yields a valid assignment (its attribute
        on each stream).

        Returns ``{stream: attr}`` for the first qualifying component (in
        predicate order, so the choice is deterministic), or ``None`` when
        the condition cannot be hash-partitioned exactly — e.g. a star
        equi-join whose center matches each satellite on a different
        attribute, band/theta predicates only, or the cross join.
        """
        if num_streams < 1:
            raise ValueError(f"num_streams must be >= 1, got {num_streams}")
        parent: Dict[Tuple[int, str], Tuple[int, str]] = {}

        def find(node: Tuple[int, str]) -> Tuple[int, str]:
            root = node
            while parent[root] != root:
                root = parent[root]
            while parent[node] != root:  # path compression
                parent[node], node = root, parent[node]
            return root

        for predicate in self.predicates:
            if not isinstance(predicate, EquiPredicate):
                continue
            left = (predicate.left_stream, predicate.left_attr)
            right = (predicate.right_stream, predicate.right_attr)
            parent.setdefault(left, left)
            parent.setdefault(right, right)
            parent[find(left)] = find(right)

        components: Dict[Tuple[int, str], Dict[int, str]] = {}
        for node in parent:
            stream, attr = node
            members = components.setdefault(find(node), {})
            # Keep the first attribute seen per stream (predicate order).
            members.setdefault(stream, attr)
        for members in components.values():
            if len(members) == num_streams and set(members) == set(
                range(num_streams)
            ):
                return dict(sorted(members.items()))
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if not self.predicates:
            return "JoinCondition(<cross join>)"
        return "JoinCondition(" + " AND ".join(map(repr, self.predicates)) + ")"


def equi_join_chain(attr: str, num_streams: int) -> JoinCondition:
    """Chain equi-join ``S0.attr == S1.attr AND S1.attr == S2.attr ...``.

    Matches the paper's Q×3 shape (``S1.a1=S2.a1 AND S2.a1=S3.a1``).
    """
    predicates = [
        EquiPredicate(i, attr, i + 1, attr) for i in range(num_streams - 1)
    ]
    return JoinCondition(predicates)


def star_equi_join(center: int, attr_map: Mapping[int, str]) -> JoinCondition:
    """Star equi-join: the center stream matches each satellite on one attr.

    ``star_equi_join(0, {1: "a1", 2: "a2", 3: "a3"})`` is the paper's Q×4
    (``S1.a1=S2.a1 AND S1.a2=S3.a2 AND S1.a3=S4.a3``).
    """
    predicates = [
        EquiPredicate(center, attr, satellite, attr)
        for satellite, attr in attr_map.items()
    ]
    return JoinCondition(predicates)
