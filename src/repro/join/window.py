"""Time-based sliding windows with hash indexes for equality predicates.

Each input stream of an MSWJ carries a time-based sliding window of
``W_i`` milliseconds (paper Sec. II-A).  The window supports the three
operations Alg. 2 needs:

* :meth:`SlidingWindow.insert` — add a tuple (in- or out-of-order);
* :meth:`SlidingWindow.expire_before` — invalidate tuples with
  ``ts < bound`` (Alg. 2 line 6);
* probe access — either a full scan (:meth:`tuples`) or, for equality
  predicates, an index lookup (:meth:`lookup`) on a maintained attribute.

Out-of-order inserts mean window content is not timestamp-sorted on
arrival, so expiration uses a min-heap on ``ts`` with lazy deletion: the
heap may hold stale entries for already-removed tuples; they are skipped
when popped.  All live tuples are kept in a dict keyed by an increasing
slot id to give O(1) removal and stable iteration.

Representation contract: the MSWJ operator's hot paths
(:mod:`repro.join.mswj`) peek at ``_heap[0]`` to skip no-op expiration
calls and read ``_slots`` for cardinality — changing either field's
meaning requires updating those call sites.
"""

from __future__ import annotations

import heapq
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Sequence

from ..core.tuples import StreamTuple


class SlidingWindow:
    """Window content of one stream, with optional per-attribute hash indexes.

    Parameters
    ----------
    size_ms:
        Window size ``W_i`` in milliseconds.
    indexed_attributes:
        Attribute names to maintain equality hash indexes for (derived
        from the join condition via
        :meth:`repro.join.conditions.JoinCondition.indexed_attributes`).
    """

    def __init__(self, size_ms: int, indexed_attributes: Sequence[str] = ()) -> None:
        if size_ms <= 0:
            raise ValueError(f"window size must be positive, got {size_ms}")
        self.size_ms = int(size_ms)
        self._slots: Dict[int, StreamTuple] = {}
        self._next_slot = 0
        self._heap: List = []  # (ts, slot)
        # Buckets are insertion-ordered Dict[int, None] rather than sets:
        # slot ids are assigned monotonically and only ever removed, so
        # dict order == sorted slot order, giving lookup() deterministic
        # insertion-order candidates with no per-probe sort.
        self._indexes: Dict[str, Dict[object, Dict[int, None]]] = {
            attr: {} for attr in indexed_attributes
        }

    # ------------------------------------------------------------------
    # content maintenance
    # ------------------------------------------------------------------

    def insert(self, t: StreamTuple) -> None:
        slot = self._next_slot
        self._next_slot += 1
        self._slots[slot] = t
        heapq.heappush(self._heap, (t.ts, slot))
        for attr, index in self._indexes.items():
            value = t.get(attr)
            index.setdefault(value, {})[slot] = None

    def expire_before(self, bound_ts: int) -> int:
        """Remove all tuples with ``ts < bound_ts``; return how many."""
        removed = 0
        while self._heap and self._heap[0][0] < bound_ts:
            ts, slot = heapq.heappop(self._heap)
            t = self._slots.pop(slot, None)
            if t is None:
                continue  # lazily deleted earlier
            removed += 1
            for attr, index in self._indexes.items():
                value = t.get(attr)
                bucket = index.get(value)
                if bucket is not None:
                    bucket.pop(slot, None)
                    if not bucket:
                        del index[value]
        return removed

    def extract(
        self, predicate: Callable[[StreamTuple], bool]
    ) -> List[StreamTuple]:
        """Remove and return live tuples matching ``predicate``.

        Returned in slot-id (= insertion) order — the same order
        :meth:`lookup` would have yielded them — so a peer window that
        re-inserts the extracted tuples in sequence reproduces the exact
        per-bucket candidate order, which is what keeps result
        *sequences* (not just sets) stable across a shard-state
        migration.  Heap entries of removed slots go stale and are
        skipped lazily by :meth:`expire_before` / :meth:`min_ts`, exactly
        like ordinary removals.
        """
        removed: List[int] = []
        extracted: List[StreamTuple] = []
        for slot, t in self._slots.items():
            if predicate(t):
                removed.append(slot)
                extracted.append(t)
        for slot in removed:
            t = self._slots.pop(slot)
            for attr, index in self._indexes.items():
                value = t.get(attr)
                bucket = index.get(value)
                if bucket is not None:
                    bucket.pop(slot, None)
                    if not bucket:
                        del index[value]
        return extracted

    def clear(self) -> None:
        self._slots.clear()
        self._heap.clear()
        for index in self._indexes.values():
            index.clear()

    # ------------------------------------------------------------------
    # probe access
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._slots)

    @property
    def cardinality(self) -> int:
        return len(self._slots)

    def tuples(self) -> Iterator[StreamTuple]:
        """Iterate over live window content (unspecified order)."""
        return iter(self._slots.values())

    def has_index(self, attr: str) -> bool:
        return attr in self._indexes

    def lookup(self, attr: str, value: object) -> Iterable[StreamTuple]:
        """Tuples whose ``attr`` equals ``value`` (requires an index on attr).

        Candidates come back in slot-id (= insertion) order — probe order
        decides the order of emitted results within one trigger, so this
        is what makes two identical runs produce identical result
        *sequences* (not just sets).  The order falls out of the
        insertion-ordered buckets; no per-probe sort.

        Returns a lazy single-pass iterable over the bucket (no list
        materialization on the probe hot path).  The window must not be
        mutated while it is being consumed — the probe loop guarantees
        that: expiration happens before the probe and the trigger is
        inserted after it.
        """
        index = self._indexes.get(attr)
        if index is None:
            raise KeyError(f"no index maintained on attribute {attr!r}")
        slots = index.get(value)
        if not slots:
            return ()
        return map(self._slots.__getitem__, slots)

    def min_ts(self) -> Optional[int]:
        """Smallest live timestamp (None when empty); compacts stale heap heads."""
        while self._heap:
            ts, slot = self._heap[0]
            if slot in self._slots:
                return ts
            heapq.heappop(self._heap)
        return None

    def timestamps(self) -> List[int]:
        """Sorted list of live timestamps (test/diagnostic helper)."""
        return sorted(t.ts for t in self._slots.values())
