"""Time-based sliding windows with hash indexes for equality predicates.

Each input stream of an MSWJ carries a time-based sliding window of
``W_i`` milliseconds (paper Sec. II-A).  The window supports the three
operations Alg. 2 needs:

* :meth:`SlidingWindow.insert` — add a tuple (in- or out-of-order);
* :meth:`SlidingWindow.expire_before` — invalidate tuples with
  ``ts < bound`` (Alg. 2 line 6);
* probe access — either a full scan (:meth:`tuples`) or, for equality
  predicates, an index lookup (:meth:`lookup`) on a maintained attribute.

The window itself is a thin façade: live state lives behind a pluggable
:class:`~repro.join.store.WindowStore` — :class:`~repro.join.store.InMemoryStore`
(all tuples as objects; the default) or
:class:`~repro.join.store.TieredStore` (bounded hot object tier + cold
``TupleBlock``-encoded segments).  Every store honours the same probe
contract — candidates in slot (= insertion) order, exact expiry — so
the choice changes memory shape, never join output (the byte-identity
differential tests pin this).

Representation contract: the MSWJ operator's hot paths
(:mod:`repro.join.mswj`) call :meth:`needs_expiry` to skip no-op
expiration calls and ``len(window.store)`` for cardinality — the store
interface is the hot-path surface, not private fields.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Union

from ..core.blocks import ColdSegment
from ..core.tuples import StreamTuple
from .store import (
    Classifier,
    StateItem,
    StoreMetrics,
    StoreSpec,
    ValueClassifier,
    WindowStore,
    make_store,
)


class SlidingWindow:
    """Window content of one stream, with optional per-attribute hash indexes.

    Parameters
    ----------
    size_ms:
        Window size ``W_i`` in milliseconds.
    indexed_attributes:
        Attribute names to maintain equality hash indexes for (derived
        from the join condition via
        :meth:`repro.join.conditions.JoinCondition.indexed_attributes`).
    store:
        A :data:`~repro.join.store.StoreSpec` (``None`` / ``"memory"`` /
        ``"tiered"`` / a :class:`~repro.join.store.TieredStoreConfig`),
        or an already-constructed empty
        :class:`~repro.join.store.WindowStore` to adopt as-is.
    """

    def __init__(
        self,
        size_ms: int,
        indexed_attributes: Sequence[str] = (),
        store: Union[StoreSpec, WindowStore] = None,
    ) -> None:
        if size_ms <= 0:
            raise ValueError(f"window size must be positive, got {size_ms}")
        self.size_ms = int(size_ms)
        if isinstance(store, WindowStore):
            self.store: WindowStore = store
        else:
            self.store = make_store(store, indexed_attributes)

    # ------------------------------------------------------------------
    # content maintenance
    # ------------------------------------------------------------------

    def insert(self, t: StreamTuple) -> None:
        self.store.insert(t)

    def needs_expiry(self, bound_ts: int) -> bool:
        """Cheap guard: may any live tuple have ``ts < bound_ts``?
        (Conservative — a stale heap head can answer True; the
        subsequent :meth:`expire_before` is exact either way.)"""
        return self.store.needs_expiry(bound_ts)

    def expire_before(self, bound_ts: int) -> int:
        """Remove all tuples with ``ts < bound_ts``; return how many."""
        return self.store.expire_before(bound_ts)

    def extract(
        self, predicate: Callable[[StreamTuple], bool]
    ) -> List[StreamTuple]:
        """Remove and return live tuples matching ``predicate``.

        Returned in slot-id (= insertion) order — the same order
        :meth:`lookup` would have yielded them — so a peer window that
        re-inserts the extracted tuples in sequence reproduces the exact
        per-bucket candidate order, which is what keeps result
        *sequences* (not just sets) stable across a shard-state
        migration.  ``predicate`` must be pure: a tiered store evaluates
        it in tier order, not slot order.
        """
        return self.store.extract(predicate)

    def extract_state(
        self,
        classify: Classifier,
        partition_attr: Optional[str] = None,
        value_classifier: Optional[ValueClassifier] = None,
    ) -> Dict[object, List[StateItem]]:
        """Remove migrating state grouped by destination (tier-aware).

        See :meth:`repro.join.store.WindowStore.extract_state`: cold
        segments whose ``partition_attr`` column maps uniformly to one
        destination move as already-encoded blocks.
        """
        return self.store.extract_state(classify, partition_attr, value_classifier)

    def adopt_frozen(self, segment: ColdSegment) -> None:
        """Absorb a migrated cold segment (store decides whether it
        stays frozen or decodes)."""
        self.store.adopt_frozen(segment)

    def clear(self) -> None:
        self.store.clear()

    # ------------------------------------------------------------------
    # probe access
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.store)

    @property
    def cardinality(self) -> int:
        return len(self.store)

    def tuples(self) -> Iterator[StreamTuple]:
        """Iterate over live window content (slot order)."""
        return self.store.tuples()

    def has_index(self, attr: str) -> bool:
        return self.store.has_index(attr)

    def lookup(self, attr: str, value: object) -> Iterable[StreamTuple]:
        """Tuples whose ``attr`` equals ``value`` (requires an index on attr).

        Candidates come back in slot-id (= insertion) order — probe order
        decides the order of emitted results within one trigger, so this
        is what makes two identical runs produce identical result
        *sequences* (not just sets), whichever store holds the state.

        May return a lazy single-pass iterable; the window must not be
        mutated while it is being consumed — the probe loop guarantees
        that: expiration happens before the probe and the trigger is
        inserted after it.
        """
        return self.store.lookup(attr, value)

    def min_ts(self) -> Optional[int]:
        """Smallest live timestamp (None when empty)."""
        return self.store.min_ts()

    def timestamps(self) -> List[int]:
        """Sorted list of live timestamps (test/diagnostic helper)."""
        return self.store.timestamps()

    def store_metrics(self) -> StoreMetrics:
        """The backing store's state-size snapshot."""
        return self.store.metrics()
