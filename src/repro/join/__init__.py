"""The m-way sliding window join engine: conditions, windows, probe ordering, Alg. 2."""
