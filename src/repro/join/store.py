"""Pluggable window state stores: hot in-memory and tiered hot/cold.

:class:`~repro.join.window.SlidingWindow` holds *what* a window means
(size, index attributes); a :class:`WindowStore` holds *how* its live
tuples are represented.  Two implementations ship:

* :class:`InMemoryStore` — every live tuple is a Python object.  A
  byte-identical extraction of the original ``SlidingWindow`` internals:
  slot-id dict + lazy-deletion ts-heap + insertion-ordered hash indexes.
* :class:`TieredStore` — a bounded **hot tier** of recent tuples as
  objects, and a **cold tier** of older tuples compacted into
  time-range buckets of :class:`~repro.core.blocks.ColdSegment`
  (``TupleBlock``-encoded columns, the PR 3 codec).  Probes touch cold
  state only when a segment's per-attribute value summary admits the
  probed value, decoding lazily through a bounded LRU cache; expiry is
  bucket-granular — segments wholly below the bound drop without
  decoding, the one straddling segment *thaws* back into the hot tier
  so expiration stays exact.

Both stores observe the same externally visible contract — candidate
order is slot-id (= insertion) order, expiration is exact, ``len`` is
the live count — so a pipeline over a :class:`TieredStore` produces
result sequences and :class:`~repro.join.mswj.JoinStatistics`
byte-identical to :class:`InMemoryStore` (proven by the differential
tests and the soak bank).

Slot ids are assigned monotonically per store and never reused; a
frozen segment remembers its slots, so merged hot+cold candidates sort
back into exact insertion order.  Shard-state migration moves cold
segments as already-encoded blocks (:meth:`WindowStore.extract_state` /
:meth:`WindowStore.adopt_frozen`) — no decode/re-encode round trip —
unless a segment's slot range interleaves with other moving tuples, in
which case it is exploded to preserve candidate order.
"""

from __future__ import annotations

import heapq
from abc import ABC, abstractmethod
from collections import OrderedDict
from dataclasses import dataclass
from operator import itemgetter
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from ..core.blocks import (
    ColdSegment,
    freeze_segment,
    segment_column,
    thaw_segment,
)
from ..core.tuples import StreamTuple

#: ``tuple → migration group (or None to stay)``; must be pure — stores
#: may evaluate it in any order and skip it entirely for cold segments
#: classified by column (see ``extract_state``).
Classifier = Callable[[StreamTuple], Optional[object]]
#: ``partition-attribute value → migration group (or None)``; the
#: column-level fast path equivalent of a :data:`Classifier`.
ValueClassifier = Callable[[object], Optional[object]]
#: What ``extract_state`` yields per group: raw tuples and/or frozen
#: segments, in source slot (= insertion) order.
StateItem = Union[StreamTuple, ColdSegment]

_SLOT = itemgetter(0)


@dataclass
class StoreMetrics:
    """A point-in-time snapshot of one store's state-size counters.

    ``resident_objects`` counts live :class:`StreamTuple` objects the
    store currently holds in Python-object form (hot tier plus decode
    cache); ``cold_tuples`` live only as encoded columns.  ``evicted``,
    ``decode_hits`` / ``decode_misses``, ``freezes`` and ``thaws`` are
    cumulative over the store's lifetime.
    """

    resident_objects: int = 0
    hot_objects: int = 0
    cold_tuples: int = 0
    encoded_bytes: int = 0
    segments: int = 0
    evicted: int = 0
    decode_hits: int = 0
    decode_misses: int = 0
    freezes: int = 0
    thaws: int = 0


@dataclass(frozen=True)
class TieredStoreConfig:
    """Tuning knobs of a :class:`TieredStore`.

    ``hot_budget`` is the compaction trigger: when the hot tier exceeds
    it, every tuple outside the *active* time bucket (the one containing
    the store's maximum seen timestamp) and above the expiry bound is
    frozen.  Hot residency can therefore transiently exceed the budget
    by the active bucket's population plus the one thawed straddling
    bucket — callers deriving a hard assertion bound add that slack from
    the workload's analytic rates (see
    :meth:`repro.workloads.Workload.analytic_caps`).

    ``bucket_span_ms`` is the cold tier's time-bucket width (expiry
    granularity: a whole bucket drops undecoded; the straddler thaws).
    ``cache_tuples`` bounds the decoded-segment LRU cache, in tuples.
    """

    hot_budget: int = 4096
    bucket_span_ms: int = 1_000
    cache_tuples: int = 4096

    def __post_init__(self) -> None:
        if self.hot_budget <= 0:
            raise ValueError(f"hot_budget must be positive, got {self.hot_budget}")
        if self.bucket_span_ms <= 0:
            raise ValueError(
                f"bucket_span_ms must be positive, got {self.bucket_span_ms}"
            )
        if self.cache_tuples < 0:
            raise ValueError(f"cache_tuples must be >= 0, got {self.cache_tuples}")


#: How callers select a store: ``None`` / ``"memory"`` for
#: :class:`InMemoryStore`, ``"tiered"`` for a default-configured
#: :class:`TieredStore`, or a :class:`TieredStoreConfig`.  Plain data —
#: it must survive pickling into worker processes inside a
#: ``PipelineConfig``.
StoreSpec = Union[None, str, TieredStoreConfig]


class WindowStore(ABC):
    """State container behind one stream's sliding window.

    The contract every implementation must honour (the byte-identity
    differential tests enforce it):

    * slot ids are per-store monotonic and never reused; every probe
      surface (:meth:`lookup`, :meth:`tuples`) yields candidates in
      slot (= insertion) order;
    * :meth:`expire_before` is exact — afterwards no live tuple has
      ``ts < bound`` — and returns the evicted count;
    * :meth:`__len__` is the exact live count (the join's ``n×``
      productivity input).
    """

    @abstractmethod
    def insert(self, t: StreamTuple) -> None:
        """Add a tuple under the next slot id."""

    @abstractmethod
    def needs_expiry(self, bound_ts: int) -> bool:
        """Cheap, possibly-conservative check whether any live tuple may
        have ``ts < bound_ts`` (hot-path guard for :meth:`expire_before`;
        false positives allowed, false negatives not)."""

    @abstractmethod
    def expire_before(self, bound_ts: int) -> int:
        """Remove all tuples with ``ts < bound_ts``; return how many."""

    @abstractmethod
    def extract(self, predicate: Callable[[StreamTuple], bool]) -> List[StreamTuple]:
        """Remove and return live tuples matching ``predicate``, in slot
        order.  ``predicate`` must be pure (evaluation order is
        implementation-defined)."""

    @abstractmethod
    def extract_state(
        self,
        classify: Classifier,
        partition_attr: Optional[str] = None,
        value_classifier: Optional[ValueClassifier] = None,
    ) -> Dict[object, List[StateItem]]:
        """Remove migrating state, grouped by destination.

        ``classify`` maps a tuple to its group or ``None`` (stay).  When
        ``partition_attr`` + ``value_classifier`` are given, a tiered
        store classifies frozen segments by reading that payload column —
        a uniformly-classified segment moves *as the encoded segment*
        without decoding.  Each group's items come back in source slot
        order; adopting them in sequence reproduces candidate order."""

    @abstractmethod
    def adopt_frozen(self, segment: ColdSegment) -> None:
        """Absorb a migrated frozen segment (its tuples get this store's
        next slot ids, preserving their relative order)."""

    @abstractmethod
    def clear(self) -> None:
        """Drop all content (slot counter keeps advancing)."""

    @abstractmethod
    def __len__(self) -> int:
        """Exact live tuple count."""

    @abstractmethod
    def tuples(self) -> Iterator[StreamTuple]:
        """Iterate all live tuples in slot order."""

    @abstractmethod
    def has_index(self, attr: str) -> bool:
        """Whether equality lookups on ``attr`` are supported."""

    @abstractmethod
    def lookup(self, attr: str, value: object) -> Iterable[StreamTuple]:
        """Live tuples with ``attr == value`` in slot order (requires an
        index on ``attr``; raises ``KeyError`` otherwise)."""

    @abstractmethod
    def min_ts(self) -> Optional[int]:
        """Smallest live timestamp, or ``None`` when empty."""

    @abstractmethod
    def timestamps(self) -> List[int]:
        """Sorted live timestamps (diagnostics)."""

    @abstractmethod
    def metrics(self) -> StoreMetrics:
        """Current state-size / codec-traffic snapshot."""


class InMemoryStore(WindowStore):
    """All live tuples as Python objects (the original representation).

    Slot-id dict (dict order == slot order: ids are monotonic and only
    ever removed), ts-min-heap with lazy deletion for expiry, and
    insertion-ordered ``Dict[int, None]`` index buckets so lookups yield
    deterministic insertion-order candidates with no per-probe sort.
    """

    def __init__(self, indexed_attributes: Sequence[str] = ()) -> None:
        self._slots: Dict[int, StreamTuple] = {}
        self._next_slot = 0
        self._heap: List[Tuple[int, int]] = []  # (ts, slot)
        self._indexes: Dict[str, Dict[object, Dict[int, None]]] = {
            attr: {} for attr in indexed_attributes
        }
        self._evicted = 0

    # -- content maintenance ------------------------------------------

    def insert(self, t: StreamTuple) -> None:
        slot = self._next_slot
        self._next_slot += 1
        self._slots[slot] = t
        heapq.heappush(self._heap, (t.ts, slot))
        for attr, index in self._indexes.items():
            index.setdefault(t.get(attr), {})[slot] = None

    def needs_expiry(self, bound_ts: int) -> bool:
        heap = self._heap
        return bool(heap) and heap[0][0] < bound_ts

    def expire_before(self, bound_ts: int) -> int:
        removed = 0
        while self._heap and self._heap[0][0] < bound_ts:
            _, slot = heapq.heappop(self._heap)
            t = self._slots.pop(slot, None)
            if t is None:
                continue  # lazily deleted earlier
            removed += 1
            self._unindex(slot, t)
        self._evicted += removed
        return removed

    def _unindex(self, slot: int, t: StreamTuple) -> None:
        for attr, index in self._indexes.items():
            value = t.get(attr)
            bucket = index.get(value)
            if bucket is not None:
                bucket.pop(slot, None)
                if not bucket:
                    del index[value]

    def extract(self, predicate: Callable[[StreamTuple], bool]) -> List[StreamTuple]:
        removed: List[int] = []
        extracted: List[StreamTuple] = []
        for slot, t in self._slots.items():
            if predicate(t):
                removed.append(slot)
                extracted.append(t)
        for slot in removed:
            self._unindex(slot, self._slots.pop(slot))
        return extracted

    def extract_state(
        self,
        classify: Classifier,
        partition_attr: Optional[str] = None,
        value_classifier: Optional[ValueClassifier] = None,
    ) -> Dict[object, List[StateItem]]:
        groups: Dict[object, List[StateItem]] = {}
        removed: List[int] = []
        for slot, t in self._slots.items():
            group = classify(t)
            if group is not None:
                removed.append(slot)
                groups.setdefault(group, []).append(t)
        for slot in removed:
            self._unindex(slot, self._slots.pop(slot))
        return groups

    def adopt_frozen(self, segment: ColdSegment) -> None:
        for t in thaw_segment(segment):
            self.insert(t)

    def clear(self) -> None:
        self._slots.clear()
        self._heap.clear()
        for index in self._indexes.values():
            index.clear()

    # -- probe access -------------------------------------------------

    def __len__(self) -> int:
        return len(self._slots)

    def tuples(self) -> Iterator[StreamTuple]:
        return iter(self._slots.values())

    def has_index(self, attr: str) -> bool:
        return attr in self._indexes

    def lookup(self, attr: str, value: object) -> Iterable[StreamTuple]:
        index = self._indexes.get(attr)
        if index is None:
            raise KeyError(f"no index maintained on attribute {attr!r}")
        slots = index.get(value)
        if not slots:
            return ()
        # Lazy single-pass iterable; the window must not be mutated
        # while it is consumed (the probe loop guarantees that).
        return map(self._slots.__getitem__, slots)

    def min_ts(self) -> Optional[int]:
        while self._heap:
            ts, slot = self._heap[0]
            if slot in self._slots:
                return ts
            heapq.heappop(self._heap)
        return None

    def timestamps(self) -> List[int]:
        return sorted(t.ts for t in self._slots.values())

    def metrics(self) -> StoreMetrics:
        return StoreMetrics(
            resident_objects=len(self._slots),
            hot_objects=len(self._slots),
            evicted=self._evicted,
        )


class _CacheEntry:
    """One decoded segment in the LRU cache: (slot, tuple) pairs plus
    lazily-built per-attribute equality indexes."""

    __slots__ = ("pairs", "indexes")

    def __init__(self, pairs: List[Tuple[int, StreamTuple]]) -> None:
        self.pairs = pairs
        self.indexes: Dict[str, Dict[object, List[Tuple[int, StreamTuple]]]] = {}


class TieredStore(WindowStore):
    """Hot object tier + cold columnar tier (see module docstring).

    Hot tier: same structures as :class:`InMemoryStore` (slot dict,
    lazy-deletion heap, insertion-ordered indexes) — but bounded.  When
    it outgrows ``config.hot_budget``, every hot tuple that lies in a
    *completed* time bucket (strictly below the bucket of the maximum
    seen timestamp) and above the expiry bound is frozen: grouped by
    ``ts // bucket_span_ms``, sorted by slot, and encoded into one
    :class:`~repro.core.blocks.ColdSegment` per bucket.

    Cold tier: ``bucket key → [segments]``.  Expiry drops segments with
    ``max_ts < bound`` whole (no decode) and *thaws* a straddling
    segment back into the hot tier under its original slot ids, so the
    subsequent heap sweep stays exact; a bucket thaws at most once
    because frozen buckets always sit fully above the expiry bound.
    Probes consult per-attribute value summaries to skip segments, and
    decode through a bounded LRU keyed by segment identity.  Merged
    hot+cold candidates sort by slot id — exactly the insertion order an
    :class:`InMemoryStore` would have yielded.
    """

    def __init__(
        self,
        indexed_attributes: Sequence[str] = (),
        config: Optional[TieredStoreConfig] = None,
    ) -> None:
        self.config = config or TieredStoreConfig()
        self._attrs: Tuple[str, ...] = tuple(indexed_attributes)
        self._span = self.config.bucket_span_ms
        # hot tier
        self._hot: Dict[int, StreamTuple] = {}
        self._next_slot = 0
        self._heap: List[Tuple[int, int]] = []  # (ts, slot)
        self._hot_indexes: Dict[str, Dict[object, Dict[int, None]]] = {
            attr: {} for attr in self._attrs
        }
        # cold tier
        self._buckets: Dict[int, List[ColdSegment]] = {}
        self._cold_count = 0
        self._cold_min: Optional[int] = None
        self._encoded_bytes = 0
        # decode cache (LRU by segment identity; entries are invalidated
        # explicitly whenever a segment leaves the cold tier)
        self._cache: "OrderedDict[int, _CacheEntry]" = OrderedDict()
        self._cached_tuples = 0
        # compaction state
        self._max_ts_seen: Optional[int] = None
        self._expire_bound: Optional[int] = None
        self._compact_trigger = self.config.hot_budget
        # cumulative metrics
        self._evicted = 0
        self._decode_hits = 0
        self._decode_misses = 0
        self._freezes = 0
        self._thaws = 0

    # -- content maintenance ------------------------------------------

    def insert(self, t: StreamTuple) -> None:
        slot = self._next_slot
        self._next_slot += 1
        self._hot[slot] = t
        heapq.heappush(self._heap, (t.ts, slot))
        for attr, index in self._hot_indexes.items():
            index.setdefault(t.get(attr), {})[slot] = None
        if self._max_ts_seen is None or t.ts > self._max_ts_seen:
            self._max_ts_seen = t.ts
        if len(self._hot) > self._compact_trigger:
            self._compact()

    def needs_expiry(self, bound_ts: int) -> bool:
        heap = self._heap
        if heap and heap[0][0] < bound_ts:
            return True
        return self._cold_min is not None and self._cold_min < bound_ts

    def expire_before(self, bound_ts: int) -> int:
        if self._expire_bound is None or bound_ts > self._expire_bound:
            self._expire_bound = bound_ts
        removed = 0
        if self._cold_min is not None and self._cold_min < bound_ts:
            span = self._span
            for key in sorted(self._buckets):
                if key * span >= bound_ts:
                    break
                kept: List[ColdSegment] = []
                for seg in self._buckets[key]:
                    if seg.max_ts < bound_ts:
                        removed += len(seg)
                        self._drop_segment(seg)
                    elif seg.min_ts < bound_ts:
                        # Straddler: thaw into the hot tier (original
                        # slots) so the heap sweep below expires exactly.
                        self._thaw(seg)
                    else:
                        kept.append(seg)
                if kept:
                    self._buckets[key] = kept
                else:
                    del self._buckets[key]
            self._recompute_cold_min()
        while self._heap and self._heap[0][0] < bound_ts:
            _, slot = heapq.heappop(self._heap)
            t = self._hot.pop(slot, None)
            if t is None:
                continue  # lazily deleted earlier
            removed += 1
            self._unindex(slot, t)
        self._evicted += removed
        # Expiry changes freeze eligibility; re-arm the compaction probe.
        self._compact_trigger = self.config.hot_budget
        return removed

    def extract(self, predicate: Callable[[StreamTuple], bool]) -> List[StreamTuple]:
        moved: List[Tuple[int, StreamTuple]] = []
        dead: List[int] = []
        for slot, t in self._hot.items():
            if predicate(t):
                dead.append(slot)
                moved.append((slot, t))
        for slot in dead:
            self._unindex(slot, self._hot.pop(slot))
        if self._cold_count:
            for key in sorted(self._buckets):
                kept: List[ColdSegment] = []
                for seg in self._buckets[key]:
                    movers: List[Tuple[int, StreamTuple]] = []
                    stayers: List[Tuple[int, StreamTuple]] = []
                    for pair in self._pairs_of(seg):
                        if predicate(pair[1]):
                            movers.append(pair)
                        else:
                            stayers.append(pair)
                    if not movers:
                        kept.append(seg)
                        continue
                    self._drop_segment(seg)
                    if stayers:
                        kept.append(self._refreeze(stayers))
                    moved.extend(movers)
                if kept:
                    self._buckets[key] = kept
                else:
                    del self._buckets[key]
            self._recompute_cold_min()
        moved.sort(key=_SLOT)
        return [t for _, t in moved]

    def extract_state(
        self,
        classify: Classifier,
        partition_attr: Optional[str] = None,
        value_classifier: Optional[ValueClassifier] = None,
    ) -> Dict[object, List[StateItem]]:
        # (first slot, last slot, group, item) — slots kept so the final
        # per-group assembly can detect slot-range interleavings.
        moved: List[Tuple[int, int, object, StateItem]] = []
        dead: List[int] = []
        for slot, t in self._hot.items():
            group = classify(t)
            if group is not None:
                dead.append(slot)
                moved.append((slot, slot, group, t))
        for slot in dead:
            self._unindex(slot, self._hot.pop(slot))
        if self._cold_count:
            for key in sorted(self._buckets):
                kept: List[ColdSegment] = []
                for seg in self._buckets[key]:
                    if value_classifier is not None and partition_attr is not None:
                        # Column fast path: classify without decoding.
                        per_tuple = [
                            value_classifier(v)
                            for v in segment_column(seg, partition_attr)
                        ]
                    else:
                        per_tuple = [
                            classify(t) for _, t in self._pairs_of(seg)
                        ]
                    first = per_tuple[0]
                    if all(g is None for g in per_tuple):
                        kept.append(seg)
                        continue
                    if first is not None and all(g == first for g in per_tuple):
                        # Uniform destination: the whole segment moves
                        # as the already-encoded block.
                        self._drop_segment(seg)
                        moved.append((seg.slots[0], seg.slots[-1], first, seg))
                        continue
                    # Mixed destinations: decode and split per tuple.
                    pairs = self._pairs_of(seg)
                    self._drop_segment(seg)
                    stayers: List[Tuple[int, StreamTuple]] = []
                    for (slot, t), group in zip(pairs, per_tuple):
                        if group is None:
                            stayers.append((slot, t))
                        else:
                            moved.append((slot, slot, group, t))
                    if stayers:
                        kept.append(self._refreeze(stayers))
                if kept:
                    self._buckets[key] = kept
                else:
                    del self._buckets[key]
            self._recompute_cold_min()
        moved.sort(key=_SLOT)
        grouped: Dict[object, List[Tuple[int, int, StateItem]]] = {}
        for lo, hi, group, item in moved:
            grouped.setdefault(group, []).append((lo, hi, item))
        return {
            group: self._assemble(triples) for group, triples in grouped.items()
        }

    def _assemble(
        self, triples: List[Tuple[int, int, StateItem]]
    ) -> List[StateItem]:
        """Order one group's moved items; explode segments on overlap.

        Items are sorted by first slot.  If some segment's slot range
        contains another moved item's slot (a hot tuple frozen past, or
        two segments of one bucket with interleaved slots), shipping the
        segment whole would misorder candidates at the destination — so
        the rare overlapping group is flattened to plain slot-sorted
        tuples instead.
        """
        prev_hi = -1
        overlap = False
        for lo, hi, _ in triples:
            if lo <= prev_hi:
                overlap = True
                break
            prev_hi = max(prev_hi, hi)
        if not overlap:
            return [item for _, _, item in triples]
        flat: List[Tuple[int, StreamTuple]] = []
        for lo, _, item in triples:
            if isinstance(item, ColdSegment):
                self._decode_misses += 1
                flat.extend(zip(item.slots, thaw_segment(item)))
            else:
                flat.append((lo, item))
        flat.sort(key=_SLOT)
        return [t for _, t in flat]

    def adopt_frozen(self, segment: ColdSegment) -> None:
        missing = [a for a in self._attrs if a not in segment.summaries]
        if missing:
            # Summaries don't cover this store's probe indexes (peer had
            # different attrs); fall back to object adoption.
            for t in thaw_segment(segment):
                self.insert(t)
            return
        n = len(segment)
        base = self._next_slot
        self._next_slot = base + n
        seg = segment.with_slots(tuple(range(base, base + n)))
        self._buckets.setdefault(seg.min_ts // self._span, []).append(seg)
        self._cold_count += n
        self._encoded_bytes += seg.encoded_bytes
        if self._cold_min is None or seg.min_ts < self._cold_min:
            self._cold_min = seg.min_ts
        if self._max_ts_seen is None or seg.max_ts > self._max_ts_seen:
            self._max_ts_seen = seg.max_ts

    def clear(self) -> None:
        self._hot.clear()
        self._heap.clear()
        for index in self._hot_indexes.values():
            index.clear()
        self._buckets.clear()
        self._cold_count = 0
        self._cold_min = None
        self._encoded_bytes = 0
        self._cache.clear()
        self._cached_tuples = 0
        self._max_ts_seen = None
        self._expire_bound = None
        self._compact_trigger = self.config.hot_budget

    # -- probe access -------------------------------------------------

    def __len__(self) -> int:
        return len(self._hot) + self._cold_count

    def tuples(self) -> Iterator[StreamTuple]:
        pairs: List[Tuple[int, StreamTuple]] = list(self._hot.items())
        for key in sorted(self._buckets):
            for seg in self._buckets[key]:
                pairs.extend(self._pairs_of(seg))
        pairs.sort(key=_SLOT)
        return iter([t for _, t in pairs])

    def has_index(self, attr: str) -> bool:
        return attr in self._hot_indexes

    def lookup(self, attr: str, value: object) -> Iterable[StreamTuple]:
        index = self._hot_indexes.get(attr)
        if index is None:
            raise KeyError(f"no index maintained on attribute {attr!r}")
        bucket = index.get(value)
        pairs: List[Tuple[int, StreamTuple]] = (
            [(slot, self._hot[slot]) for slot in bucket] if bucket else []
        )
        if self._cold_count:
            for key in sorted(self._buckets):
                for seg in self._buckets[key]:
                    summary = seg.summaries.get(attr)
                    if summary is not None and value in summary:
                        pairs.extend(self._segment_lookup(seg, attr, value))
        if not pairs:
            return ()
        # Slot sort restores exact insertion order across tiers (hot
        # buckets alone can be out of slot order after a thaw).
        pairs.sort(key=_SLOT)
        return [t for _, t in pairs]

    def min_ts(self) -> Optional[int]:
        hot_min: Optional[int] = None
        while self._heap:
            ts, slot = self._heap[0]
            if slot in self._hot:
                hot_min = ts
                break
            heapq.heappop(self._heap)
        if hot_min is None:
            return self._cold_min
        if self._cold_min is None:
            return hot_min
        return min(hot_min, self._cold_min)

    def timestamps(self) -> List[int]:
        out = [t.ts for t in self._hot.values()]
        for segments in self._buckets.values():
            for seg in segments:
                out.extend(seg.block.ts)
        return sorted(out)

    def metrics(self) -> StoreMetrics:
        return StoreMetrics(
            resident_objects=len(self._hot) + self._cached_tuples,
            hot_objects=len(self._hot),
            cold_tuples=self._cold_count,
            encoded_bytes=self._encoded_bytes,
            segments=sum(len(segs) for segs in self._buckets.values()),
            evicted=self._evicted,
            decode_hits=self._decode_hits,
            decode_misses=self._decode_misses,
            freezes=self._freezes,
            thaws=self._thaws,
        )

    # -- internals ----------------------------------------------------

    def _unindex(self, slot: int, t: StreamTuple) -> None:
        for attr, index in self._hot_indexes.items():
            value = t.get(attr)
            bucket = index.get(value)
            if bucket is not None:
                bucket.pop(slot, None)
                if not bucket:
                    del index[value]

    def _compact(self) -> None:
        """Freeze completed-bucket hot tuples into cold segments.

        Eligible: bucket strictly below the active bucket (the maximum
        seen timestamp's) and fully above the expiry bound — frozen
        buckets never need immediate thawing.  When nothing is eligible
        (all hot content is recent), back off so the scan doesn't rerun
        on every insert while the hot tier legitimately exceeds the
        budget by the active bucket's population.
        """
        span = self._span
        assert self._max_ts_seen is not None  # insert() set it
        active_key = self._max_ts_seen // span
        bound = self._expire_bound
        groups: Dict[int, List[int]] = {}
        frozen = 0
        for slot, t in self._hot.items():
            key = t.ts // span
            if key < active_key and (bound is None or key * span >= bound):
                groups.setdefault(key, []).append(slot)
        for key in sorted(groups):
            slots = sorted(groups[key])
            batch = [self._hot[slot] for slot in slots]
            seg = freeze_segment(batch, slots, self._attrs)
            for slot, t in zip(slots, batch):
                del self._hot[slot]
                self._unindex(slot, t)
            self._buckets.setdefault(key, []).append(seg)
            self._cold_count += len(seg)
            self._encoded_bytes += seg.encoded_bytes
            if self._cold_min is None or seg.min_ts < self._cold_min:
                self._cold_min = seg.min_ts
            self._freezes += 1
            frozen += len(seg)
        if frozen:
            self._compact_trigger = self.config.hot_budget
        else:
            self._compact_trigger = len(self._hot) + max(
                1, self.config.hot_budget // 8
            )

    def _refreeze(self, stayers: List[Tuple[int, StreamTuple]]) -> ColdSegment:
        """Re-encode a split segment's staying tuples (slot order kept)."""
        seg = freeze_segment(
            [t for _, t in stayers], [s for s, _ in stayers], self._attrs
        )
        self._cold_count += len(seg)
        self._encoded_bytes += seg.encoded_bytes
        if self._cold_min is None or seg.min_ts < self._cold_min:
            self._cold_min = seg.min_ts
        self._freezes += 1
        return seg

    def _drop_segment(self, seg: ColdSegment) -> None:
        """Remove a segment from cold accounting + decode cache (the
        caller removes it from its bucket list)."""
        self._cold_count -= len(seg)
        self._encoded_bytes -= seg.encoded_bytes
        entry = self._cache.pop(id(seg), None)
        if entry is not None:
            self._cached_tuples -= len(entry.pairs)

    def _thaw(self, seg: ColdSegment) -> None:
        """Move a straddling segment's tuples back to the hot tier under
        their original slot ids (exact expiry then proceeds on the heap)."""
        pairs = self._entry_of(seg).pairs
        self._drop_segment(seg)
        for slot, t in pairs:
            self._hot[slot] = t
            heapq.heappush(self._heap, (t.ts, slot))
            for attr, index in self._hot_indexes.items():
                index.setdefault(t.get(attr), {})[slot] = None
        self._thaws += 1

    def _recompute_cold_min(self) -> None:
        cold_min: Optional[int] = None
        for segments in self._buckets.values():
            for seg in segments:
                if cold_min is None or seg.min_ts < cold_min:
                    cold_min = seg.min_ts
        self._cold_min = cold_min

    def _entry_of(self, seg: ColdSegment) -> _CacheEntry:
        key = id(seg)
        entry = self._cache.get(key)
        if entry is not None:
            self._cache.move_to_end(key)
            self._decode_hits += 1
            return entry
        self._decode_misses += 1
        entry = _CacheEntry(list(zip(seg.slots, thaw_segment(seg))))
        self._cache[key] = entry
        self._cached_tuples += len(entry.pairs)
        budget = self.config.cache_tuples
        while self._cached_tuples > budget and len(self._cache) > 1:
            _, old = self._cache.popitem(last=False)
            self._cached_tuples -= len(old.pairs)
        return entry

    def _pairs_of(self, seg: ColdSegment) -> List[Tuple[int, StreamTuple]]:
        return self._entry_of(seg).pairs

    def _segment_lookup(
        self, seg: ColdSegment, attr: str, value: object
    ) -> List[Tuple[int, StreamTuple]]:
        entry = self._entry_of(seg)
        index = entry.indexes.get(attr)
        if index is None:
            index = {}
            for slot, t in entry.pairs:
                index.setdefault(t.get(attr), []).append((slot, t))
            entry.indexes[attr] = index
        return index.get(value, [])


def make_store(
    spec: StoreSpec, indexed_attributes: Sequence[str] = ()
) -> WindowStore:
    """Construct a fresh store from a :data:`StoreSpec`.

    ``None`` / ``"memory"`` → :class:`InMemoryStore`; ``"tiered"`` →
    default-configured :class:`TieredStore`; a
    :class:`TieredStoreConfig` → :class:`TieredStore` with it.
    """
    if spec is None or spec == "memory":
        return InMemoryStore(indexed_attributes)
    if spec == "tiered":
        return TieredStore(indexed_attributes)
    if isinstance(spec, TieredStoreConfig):
        return TieredStore(indexed_attributes, spec)
    raise ValueError(f"unknown window-store spec {spec!r}")
