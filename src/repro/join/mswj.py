"""The m-way sliding window join operator (paper Alg. 2).

The operator consumes the (partially) sorted, synchronized stream produced
by the disorder-handling front end and keeps one sliding window per input
stream.  For each received tuple ``e_i``:

* **in order** (``e_i.ts >= onT``): update the high-water mark ``onT``,
  invalidate expired tuples in the windows of all *other* streams
  (``e_j.ts < e_i.ts - W_j``), probe those windows to derive result tuples
  satisfying the join condition (timestamped ``e_i.ts``), then insert
  ``e_i`` into its own window;
* **out of order but still inside its window scope**
  (``e_i.ts > onT - W_i``): skip probing — its results are lost — but
  insert it so it can contribute to *future* results;
* otherwise drop it.

After either path the operator reports the tuple's productivity to an
optional callback (paper Alg. 2 line 11): for in-order tuples the exact
cross-join size ``n×(e)`` (product of the other windows' cardinalities)
and actual result count ``n^on(e)``; for out-of-order tuples no counts
(the Tuple-Productivity Profiler estimates them).

Probing binds the remaining streams one at a time in the order chosen by
a :class:`~repro.join.ordering.ProbeOrderPolicy`, fetching candidates via
equality-hash-index lookups where the condition allows and evaluating each
predicate as soon as all streams it references are bound.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from ..core.tuples import JoinResult, StreamTuple
from .conditions import JoinCondition
from .ordering import ProbeOrderPolicy, default_policy
from .store import StoreSpec
from .window import SlidingWindow

#: ``callback(tuple, n_cross, n_on, in_order)``; counts are None when the
#: tuple was out of order (no probe happened).
ProductivityCallback = Callable[[StreamTuple, Optional[int], Optional[int], bool], None]


class ProbePlan:
    """A cached probe plan: everything about a probe that is fixed once the
    probe order is chosen.

    The per-depth closed-predicate lists and the chosen index lookups
    depend only on the trigger stream, the order, the (immutable) join
    condition, and which window indexes exist (fixed at operator
    construction) — not on window *content*.  Rebuilding them per tuple is
    pure allocation churn on the hottest path, so the operator caches one
    plan per ``(trigger stream, order)`` and only builds a new one when
    the :class:`~repro.join.ordering.ProbeOrderPolicy` actually changes
    the order (cardinality drift).
    """

    __slots__ = ("order", "closed_per_depth", "lookup_per_depth")

    def __init__(
        self,
        order: Tuple[int, ...],
        closed_per_depth: List[list],
        lookup_per_depth: List[Optional[Tuple[str, int, str]]],
    ) -> None:
        self.order = order
        self.closed_per_depth = closed_per_depth
        self.lookup_per_depth = lookup_per_depth


class JoinStatistics:
    """Running counters the operator maintains (diagnostics + tests)."""

    __slots__ = (
        "tuples_in_order",
        "tuples_out_of_order_kept",
        "tuples_dropped",
        "results_produced",
        "probes",
    )

    def __init__(self) -> None:
        self.tuples_in_order = 0
        self.tuples_out_of_order_kept = 0
        self.tuples_dropped = 0
        self.results_produced = 0
        self.probes = 0

    def as_dict(self) -> Dict[str, int]:
        return {name: getattr(self, name) for name in self.__slots__}


class MSWJOperator:
    """MJoin-style m-way sliding window join (paper Alg. 2).

    Parameters
    ----------
    window_sizes_ms:
        Per-stream window sizes ``W_i`` in milliseconds.
    condition:
        The join condition; ``JoinCondition([])`` gives the cross join.
    probe_order:
        Optional probe-order policy; defaults to an index-aware order when
        the condition has equality predicates.
    productivity_callback:
        Invoked once per received tuple with its productivity counts.
    collect_results:
        When False, :meth:`process` returns only the number of results
        (all results of one call share the trigger's timestamp), skipping
        result-object construction.  Benchmarks use this mode.
    probe_out_of_order:
        Alg. 2 (the default, False) skips probing for out-of-order
        tuples, losing their results but keeping the output stream
        ordered.  With True the operator probes on *every* arrival — the
        out-of-order-tolerating join of the paper's footnote 2 / Fig. 1,
        whose output stream is itself out of order (a result derived from
        a late tuple is timestamped with its maximum component timestamp,
        which can lie below previously emitted results).  Pair it with
        :class:`~repro.core.result_sorter.ResultSorter` to restore an
        ordered output.  Requires ``collect_results=True`` (each result's
        timestamp is individually meaningful).
    store:
        A :data:`~repro.join.store.StoreSpec` selecting the window state
        representation — ``None`` / ``"memory"`` (all tuples as
        objects), ``"tiered"``, or a
        :class:`~repro.join.store.TieredStoreConfig` (bounded hot tier +
        columnar cold tier).  Store choice never changes join output.
    """

    def __init__(
        self,
        window_sizes_ms: Sequence[int],
        condition: JoinCondition,
        probe_order: Optional[ProbeOrderPolicy] = None,
        productivity_callback: Optional[ProductivityCallback] = None,
        collect_results: bool = True,
        probe_out_of_order: bool = False,
        store: StoreSpec = None,
    ) -> None:
        if len(window_sizes_ms) < 2:
            raise ValueError("an MSWJ needs at least two input streams")
        bad = condition.referenced_streams() - set(range(len(window_sizes_ms)))
        if bad:
            raise ValueError(f"condition references unknown streams {sorted(bad)}")
        self.num_streams = len(window_sizes_ms)
        self.window_sizes_ms = [int(w) for w in window_sizes_ms]
        self.condition = condition
        self.store_spec = store
        self.windows: List[SlidingWindow] = [
            SlidingWindow(size, condition.indexed_attributes(i), store=store)
            for i, size in enumerate(self.window_sizes_ms)
        ]
        # Hot-path handle: the batched loop talks to stores directly
        # (needs_expiry / len) instead of peeking window internals.
        self._stores = [w.store for w in self.windows]
        if probe_out_of_order and not collect_results:
            raise ValueError("probe_out_of_order requires collect_results=True")
        self._policy = probe_order or default_policy(condition)
        self._callback = productivity_callback
        self._collect_results = collect_results
        self._probe_out_of_order = probe_out_of_order
        self.on_t = 0  # the operator's high-water mark ``onT``
        self.stats = JoinStatistics()
        # One plan dict per trigger stream, keyed by the order tuple the
        # policy returned; see ProbePlan.  Orders cycle among a handful of
        # permutations, so the dicts stay tiny.
        self._plans: List[Dict[Tuple[int, ...], ProbePlan]] = [
            {} for _ in range(self.num_streams)
        ]

    # ------------------------------------------------------------------
    # Alg. 2 main loop
    # ------------------------------------------------------------------

    def process(self, t: StreamTuple) -> Union[List[JoinResult], int]:
        """Process one received tuple; return its derived results (or count)."""
        i = t.stream
        if not 0 <= i < self.num_streams:
            raise ValueError(f"tuple stream index {i} outside [0, {self.num_streams})")

        if t.ts >= self.on_t:
            results = self._process_in_order(t)
        else:
            results = [] if self._collect_results else 0
            if t.ts > self.on_t - self.window_sizes_ms[i]:
                if self._probe_out_of_order:
                    results = self._probe_late(t)
                self.windows[i].insert(t)
                self.stats.tuples_out_of_order_kept += 1
            else:
                self.stats.tuples_dropped += 1
            if self._callback is not None:
                self._callback(t, None, None, False)
        return results

    def process_batch(
        self, batch: Sequence[StreamTuple]
    ) -> Union[List[JoinResult], int]:
        """Process a burst of synchronized tuples in sequence.

        Exactly equivalent to concatenating per-tuple :meth:`process`
        outputs — the batched loop only amortizes the per-tuple driver
        overhead (attribute lookups, branch dispatch, window-expiration
        heap peeks) over the burst.
        """
        collect = self._collect_results
        windows = self.windows
        stores = self._stores
        sizes = self.window_sizes_ms
        num_streams = self.num_streams
        stats = self.stats
        callback = self._callback
        probe_ooo = self._probe_out_of_order
        if collect:
            outputs: Union[List[JoinResult], int] = []
            extend = outputs.extend
        else:
            outputs = 0
        for t in batch:
            i = t.stream
            if not 0 <= i < num_streams:
                raise ValueError(
                    f"tuple stream index {i} outside [0, {num_streams})"
                )
            ts = t.ts
            if ts >= self.on_t:
                self.on_t = ts
                stats.tuples_in_order += 1
                n_cross = 1
                for j in range(num_streams):
                    if j == i:
                        continue
                    store = stores[j]
                    bound = ts - sizes[j]
                    if store.needs_expiry(bound):
                        store.expire_before(bound)
                    n_cross *= len(store)
                results = self._probe(t)
                n_on = len(results) if collect else results
                stats.results_produced += n_on
                stats.probes += 1
                windows[i].insert(t)
                if callback is not None:
                    callback(t, n_cross, n_on, True)
                if collect:
                    extend(results)
                else:
                    outputs += results
            else:
                if ts > self.on_t - sizes[i]:
                    if probe_ooo:
                        late = self._probe_late(t)
                        if collect:
                            extend(late)
                        else:
                            outputs += len(late)
                    windows[i].insert(t)
                    stats.tuples_out_of_order_kept += 1
                else:
                    stats.tuples_dropped += 1
                if callback is not None:
                    callback(t, None, None, False)
        return outputs

    def _process_in_order(self, t: StreamTuple) -> Union[List[JoinResult], int]:
        i = t.stream
        self.on_t = t.ts
        self.stats.tuples_in_order += 1
        n_cross = 1
        for j in range(self.num_streams):
            if j == i:
                continue
            store = self._stores[j]
            bound = t.ts - self.window_sizes_ms[j]
            if store.needs_expiry(bound):
                store.expire_before(bound)
            n_cross *= len(store)
        results = self._probe(t)
        n_on = len(results) if self._collect_results else results
        self.stats.results_produced += n_on
        self.stats.probes += 1
        self.windows[i].insert(t)
        if self._callback is not None:
            self._callback(t, n_cross, n_on, True)
        return results

    # ------------------------------------------------------------------
    # out-of-order probing (footnote-2 mode)
    # ------------------------------------------------------------------

    def _probe_late(self, trigger: StreamTuple) -> List[JoinResult]:
        """Probe for a late trigger; every pairwise window bound is checked.

        Unlike the in-order path, window content can hold tuples with
        timestamps *above* the trigger's, and two candidates that each
        match the trigger's range may violate the window constraint
        between themselves — so the DFS validates each new binding
        against all already-bound tuples.  Result timestamps are the
        maximum component timestamp (which may exceed the trigger's).
        """
        plan = self._plan_for(trigger.stream)
        bound: Dict[int, StreamTuple] = {trigger.stream: trigger}
        results: List[JoinResult] = []
        self._probe_late_depth(
            0, plan.order, bound, plan.closed_per_depth, plan.lookup_per_depth, results
        )
        self.stats.results_produced += len(results)
        self.stats.probes += 1
        return results

    def _window_compatible(self, a: StreamTuple, b: StreamTuple) -> bool:
        return (
            b.ts >= a.ts - self.window_sizes_ms[b.stream]
            and a.ts >= b.ts - self.window_sizes_ms[a.stream]
        )

    def _probe_late_depth(
        self,
        depth: int,
        order: Sequence[int],
        bound: Dict[int, StreamTuple],
        closed_per_depth: Sequence[Sequence],
        lookup_per_depth: Sequence,
        results: List[JoinResult],
    ) -> None:
        if depth == len(order):
            components = tuple(bound[s] for s in range(self.num_streams))
            results.append(JoinResult(max(c.ts for c in components), components))
            return
        j = order[depth]
        lookup = lookup_per_depth[depth]
        if lookup is not None:
            attr, other, other_attr = lookup
            candidates = self.windows[j].lookup(attr, bound[other][other_attr])
        else:
            candidates = self.windows[j].tuples()
        closed = closed_per_depth[depth]
        for candidate in candidates:
            if not all(
                self._window_compatible(candidate, partner)
                for partner in bound.values()
            ):
                continue
            bound[j] = candidate
            if all(predicate.evaluate(bound) for predicate in closed):
                self._probe_late_depth(
                    depth + 1,
                    order,
                    bound,
                    closed_per_depth,
                    lookup_per_depth,
                    results,
                )
        bound.pop(j, None)

    # ------------------------------------------------------------------
    # probing
    # ------------------------------------------------------------------

    def _plan_for(self, trigger_stream: int) -> ProbePlan:
        """The probe plan for the policy's current order (cached).

        The policy is consulted every trigger (orders shift with window
        cardinalities), but the per-depth closed-predicate lists and index
        lookups are only rebuilt when the returned order is one the cache
        has not seen for this trigger stream.
        """
        order = tuple(
            self._policy.order(trigger_stream, self.windows, self.condition)
        )
        plans = self._plans[trigger_stream]
        plan = plans.get(order)
        if plan is None:
            # Per depth: the predicates that close and the best available
            # index lookup; the bound-stream set at each depth is fixed
            # once the order is chosen.
            bound_set = frozenset({trigger_stream})
            closed_per_depth = []
            lookup_per_depth = []
            for j in order:
                closed_per_depth.append(
                    self.condition.predicates_closed_by(j, bound_set)
                )
                lookups = [
                    lk
                    for lk in self.condition.equi_lookups(j, bound_set)
                    if self.windows[j].has_index(lk[0])
                ]
                lookup_per_depth.append(lookups[0] if lookups else None)
                bound_set = bound_set | {j}
            plan = ProbePlan(order, closed_per_depth, lookup_per_depth)
            plans[order] = plan
        return plan

    def _probe(self, trigger: StreamTuple) -> Union[List[JoinResult], int]:
        """Bind the remaining streams depth-first and collect matches."""
        plan = self._plan_for(trigger.stream)
        # Short-circuit: any empty window means no results.
        stores = self._stores
        for j in plan.order:
            if not len(stores[j]):
                return [] if self._collect_results else 0

        bound: Dict[int, StreamTuple] = {trigger.stream: trigger}
        collected: List[JoinResult] = []
        count = self._probe_depth(
            0,
            plan.order,
            bound,
            plan.closed_per_depth,
            plan.lookup_per_depth,
            trigger.ts,
            collected,
        )
        return collected if self._collect_results else count

    def _probe_depth(
        self,
        depth: int,
        order: Sequence[int],
        bound: Dict[int, StreamTuple],
        closed_per_depth: Sequence[Sequence],
        lookup_per_depth: Sequence,
        result_ts: int,
        collected: List[JoinResult],
    ) -> int:
        if depth == len(order):
            if self._collect_results:
                components = tuple(bound[s] for s in range(self.num_streams))
                collected.append(JoinResult(result_ts, components))
            return 1
        j = order[depth]
        lookup = lookup_per_depth[depth]
        if lookup is not None:
            attr, other, other_attr = lookup
            candidates = self.windows[j].lookup(attr, bound[other][other_attr])
        else:
            candidates = self.windows[j].tuples()
        closed = closed_per_depth[depth]
        count = 0
        for candidate in candidates:
            bound[j] = candidate
            if all(predicate.evaluate(bound) for predicate in closed):
                count += self._probe_depth(
                    depth + 1,
                    order,
                    bound,
                    closed_per_depth,
                    lookup_per_depth,
                    result_ts,
                    collected,
                )
        bound.pop(j, None)
        return count

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    def window_cardinalities(self) -> List[int]:
        return [w.cardinality for w in self.windows]

    def reset(self) -> None:
        """Clear all windows and counters (reuse across experiment runs)."""
        for window in self.windows:
            window.clear()
        self.on_t = 0
        self.stats = JoinStatistics()
