"""Workload layer: named scenarios the whole engine can be validated on.

A :class:`Workload` bundles everything a validation or benchmark harness
needs to run one scenario end to end: the generated
:class:`~repro.streams.source.Dataset`, the join condition and window
sizes, the phase schedule it was generated from, and the *analytic*
state-size caps derived from the configured rates (not measured from the
run) that the soak harness checks realized memory against.

Factories
---------
* :func:`auction_bids_workload` — NEXMark-style Auction × Bid-channel
  chain equi-join; exactly partitionable (rebalancer available).
* :func:`person_auction_bid_workload` — the Person/Auction/Bid
  two-component join; broadcast regime.

Both are deterministic under ``NexmarkConfig.seed`` (see
:mod:`repro.streams.nexmark`).  The soak/differential harness lives in
:mod:`repro.workloads.soak`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional

from ..core.tuples import seconds
from ..join.conditions import JoinCondition
from ..streams.nexmark import (
    NexmarkConfig,
    auction_bid_query,
    make_auction_bids,
    make_person_auction_bid,
    max_stall_ms,
    peak_rates_per_ms,
    person_auction_bid_query,
    phase_boundaries_ms,
)
from ..streams.source import Dataset


@dataclass(frozen=True)
class WorkloadCaps:
    """Analytic state-size caps (tuple counts, summed across streams)."""

    #: Max live tuples across all join windows (union over shards).
    window_cap: int
    #: Max tuples in flight in the disorder-handling front (K-slack
    #: buffers + synchronizer, union over shards).
    pending_cap: int


@dataclass
class Workload:
    """One runnable scenario plus the metadata harnesses reason about."""

    name: str
    dataset: Dataset
    condition: JoinCondition
    window_sizes_ms: List[int]
    #: Cumulative phase end times in arrival ms (one entry per phase).
    phase_boundaries_ms: List[int]
    #: Per-stream worst-case arrival rates in tuples/ms (burst phases
    #: included) — configured, not measured.
    peak_rates_per_ms: List[float]
    #: Longest consecutive silence of any stream (ms); while a stream is
    #: silent the synchronizer buffers every other stream for it.
    max_stall_ms: int
    #: Upper bound of the generators' delay models (ms).
    max_delay_ms: int
    #: Largest nominal inter-arrival gap (ms); grace term of the caps.
    max_gap_ms: int

    @property
    def num_streams(self) -> int:
        return self.dataset.num_streams

    @property
    def num_phases(self) -> int:
        return len(self.phase_boundaries_ms)

    def phase_ranges(self) -> List[tuple]:
        """``(lo_exclusive, hi_inclusive)`` timestamp range per phase."""
        ranges = []
        lo = -1
        for hi in self.phase_boundaries_ms:
            ranges.append((lo, hi))
            lo = hi
        return ranges

    def analytic_caps(self, k_ms: int) -> WorkloadCaps:
        """State-size caps implied by the configured rates and phases.

        Derivation (per stream ``i`` with peak rate ``r_i`` tuples/ms):

        * A join window holds tuples with ``ts`` in ``(T - W, T]``.
          Timestamps are arrivals shifted down by at most
          ``max_delay``, so the timestamp density over any interval is
          bounded by the arrival density over an interval widened by
          ``max_delay``; with the K-slack front releasing up to ``K``
          behind the arrival clock, the window holds at most
          ``r_i * (W + K + max_delay + gap)`` tuples of stream ``i``.
        * The K-slack buffer holds ``ts > iT - K``, bounded the same way
          by ``r_i * (K + max_delay + gap)``; the synchronizer
          additionally buffers every live stream for the duration of the
          longest stall (silent stream), adding ``r_i * stall``.

        The constant slack (8 per stream) absorbs boundary tuples.
        Under exact partitioning the caps apply to the *union* of shard
        states (each tuple lives on exactly one shard); under broadcast
        every shard replicates the full state, so callers multiply by
        the shard count.
        """
        grace = self.max_gap_ms
        window_cap = pending_cap = 8 * self.num_streams
        for rate, window in zip(self.peak_rates_per_ms, self.window_sizes_ms):
            window_cap += math.ceil(
                rate * (window + k_ms + self.max_delay_ms + grace)
            )
            pending_cap += math.ceil(
                rate * (k_ms + self.max_delay_ms + self.max_stall_ms + grace)
            )
        return WorkloadCaps(window_cap=window_cap, pending_cap=pending_cap)


def auction_bids_workload(
    config: Optional[NexmarkConfig] = None, window_s: float = 1.0
) -> Workload:
    """The exactly-partitionable NEXMark scenario (chain on ``auction``)."""
    config = config if config is not None else NexmarkConfig()
    dataset = make_auction_bids(config)
    num_streams = dataset.num_streams
    gaps = [config.auction_gap_ms] + [config.bid_gap_ms] * config.num_bid_channels
    return Workload(
        name=dataset.name,
        dataset=dataset,
        condition=auction_bid_query(config.num_bid_channels),
        window_sizes_ms=[seconds(window_s)] * num_streams,
        phase_boundaries_ms=phase_boundaries_ms(config, num_streams),
        peak_rates_per_ms=peak_rates_per_ms(config, gaps),
        max_stall_ms=max_stall_ms(config, num_streams),
        max_delay_ms=config.max_delay_ms,
        max_gap_ms=max(gaps),
    )


def person_auction_bid_workload(
    config: Optional[NexmarkConfig] = None, window_s: float = 1.0
) -> Workload:
    """The broadcast-regime NEXMark scenario (Person/Auction/Bid)."""
    config = config if config is not None else NexmarkConfig()
    dataset = make_person_auction_bid(config)
    gaps = [config.person_gap_ms, config.auction_gap_ms, config.bid_gap_ms]
    return Workload(
        name=dataset.name,
        dataset=dataset,
        condition=person_auction_bid_query(),
        window_sizes_ms=[seconds(window_s)] * 3,
        phase_boundaries_ms=phase_boundaries_ms(config, 3),
        peak_rates_per_ms=peak_rates_per_ms(config, gaps),
        max_stall_ms=max_stall_ms(config, 3),
        max_delay_ms=config.max_delay_ms,
        max_gap_ms=max(gaps),
    )


__all__ = [
    "Workload",
    "WorkloadCaps",
    "auction_bids_workload",
    "person_auction_bid_workload",
    "NexmarkConfig",
]
