"""Deterministic soak & differential-oracle harness.

Replays a seeded NEXMark-style workload (:mod:`repro.workloads`) for N
phases through a *bank* of pipeline variants — the single-shard serial
reference, partitioned runs at several shard counts, and a rebalanced
run — while checking six invariants:

1. **subset** — every produced result is a true result
   (produced ⊆ true against
   :class:`~repro.quality.truth.TruthIndex` keys), checked on each
   phase's freshly produced results and on the terminal flush.  The
   true result set holds distinct results, so a *duplicate* produced
   result also violates the (multiset) subset relation and is counted
   here.
2. **recall** — per phase, the *distinct* results whose timestamps fall
   in the phase's range must reach the configured recall requirement
   (distinct, so duplicates cannot mask dropped results); the harness
   runs under *lossless* settings (fixed K covering the realized
   maximum delay), so the expectation is exactly 1.0.
3. **identity** — the canonical merged output (the byte serialization of
   the ``(ts, result key)`` sequence) must be identical across shard
   counts 1/2/4 and between static and rebalanced routing.  This is the
   differential oracle: any divergence in routing, transport, migration
   or merge logic shows up as a byte mismatch.
4. **memory** — at every phase boundary, realized state sizes (join
   windows; K-slack + synchronizer pending) must stay under the
   workload's *analytic* caps (:meth:`~repro.workloads.Workload.analytic_caps`),
   proving the engine's footprint is bounded by configured rates, not by
   stream length.  State is probed on serially-executed variants (under
   exact partitioning the union of shard states equals the
   single-pipeline state; process workers are not introspectable
   mid-run, which is why the serial reference always rides along).
5. **hot-tier** (only when the bank has tiered-store variants) — at
   every phase boundary, each tiered variant's per-stream hot-tier
   residency must stay under the configured
   :attr:`~repro.join.store.TieredStoreConfig.hot_budget` plus the
   analytic slack the tier legitimately holds as objects: the active
   bucket (tuples too recent to freeze), one straddler bucket thawed
   back during expiry, and the compaction back-off hysteresis — all
   derived from the workload's configured peak rates, like the memory
   caps.  Together with the identity check this is the tiered-store
   contract: bounded object residency, byte-identical output.
6. **recovery** (only in ``chaos`` mode) — the bank gains a supervised
   variant running under the seeded fault plan
   (:func:`~repro.faults.chaos_plan`: crashes, SIGKILLs, hangs,
   checkpoint corruption).  The identity oracle must not be able to
   tell its output from a clean run, and the supervision counters must
   show the faults actually fired (>= 1 respawn, >= 1 admitted
   checkpoint) so the chaos run cannot pass vacuously.

Determinism: the workload is seeded, the replay is arrival-driven, and
every check compares exact counts/bytes — a soak run either passes
reproducibly or fails reproducibly.  ``tools/soak.py`` is the CLI.

Failure injection: the harness takes a ``driver_factory`` so tests can
wrap variants in deliberately broken drivers and prove each of the four
checks actually fails (see ``tests/test_soak.py``).
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core.adaptation import FixedKPolicy
from ..core.kslack import KSlackBuffer
from ..core.pipeline import PipelineConfig
from ..core.tuples import JoinResult, StreamTuple
from ..distributed.tree import TreeJoinOperator
from ..faults import chaos_plan
from ..join.store import StoreSpec, TieredStore, TieredStoreConfig
from ..parallel.executors import SerialExecutor
from ..parallel.pipeline import PartitionedPipeline
from ..parallel.shard import TRANSPORT_BLOCKS
from ..parallel.supervision import SupervisedExecutor, SupervisionConfig
from ..quality.truth import compute_truth
from . import Workload, WorkloadCaps, NexmarkConfig, auction_bids_workload

#: The six invariant check identifiers.
CHECK_SUBSET = "subset"
CHECK_RECALL = "recall"
CHECK_IDENTITY = "identity"
CHECK_MEMORY = "memory"
CHECK_HOT_TIER = "hot-tier"
#: Chaos mode only: the supervised chaos variant must both survive its
#: seeded fault plan byte-identically (the identity oracle covers the
#: output) *and* actually exercise recovery — at least one respawn and
#: one admitted checkpoint, so a plan whose faults never fire cannot
#: pass vacuously.
CHECK_RECOVERY = "recovery"
ALL_CHECKS = (
    CHECK_SUBSET, CHECK_RECALL, CHECK_IDENTITY, CHECK_MEMORY, CHECK_HOT_TIER,
    CHECK_RECOVERY,
)


def resolve_tiered(store: StoreSpec) -> Optional[TieredStoreConfig]:
    """The :class:`TieredStoreConfig` a store spec denotes, else ``None``."""
    if isinstance(store, TieredStoreConfig):
        return store
    if store == "tiered":
        return TieredStoreConfig()
    return None


@dataclass(frozen=True)
class VariantSpec:
    """One pipeline variant of the differential bank."""

    name: str
    shards: int
    executor: str = "serial"
    transport: str = TRANSPORT_BLOCKS
    rebalance: bool = False
    #: Window-store selection for this variant's shard pipelines
    #: (``None`` = the in-memory default).  Tiered variants ride the
    #: same bank, so the identity oracle proves store byte-identity.
    store: StoreSpec = None
    #: Chaos twin: run under the ``"supervised"`` executor with the
    #: seeded :func:`~repro.faults.chaos_plan` armed — crashes, SIGKILLs,
    #: hangs and checkpoint corruption injected mid-run, which the
    #: identity oracle must not be able to tell apart from a clean run.
    chaos: bool = False
    #: Tree twin: execute through the paper Sec. V tree of binary joins
    #: (:class:`~repro.distributed.tree.TreeJoinOperator`) instead of
    #: the MSWJ pipeline — the identity oracle then differentially
    #: proves the tree decomposition result-identical to the m-way
    #: operator over the workload's disorder and burst phases.
    tree: bool = False


@dataclass
class SoakConfig:
    """Soak-run parameters (everything derives deterministically from these)."""

    phases: int = 3
    seed: int = 7
    phase_duration_ms: int = 8_000
    #: Shard counts of the differential bank (1 is always forced in as
    #: the serial reference).
    shard_counts: Tuple[int, ...] = (1, 2, 4)
    #: Executor of the multi-shard variants: ``"serial"`` or ``"process"``.
    executor: str = "serial"
    transport: str = TRANSPORT_BLOCKS
    window_s: float = 1.0
    #: Recall requirement per phase; the run is lossless, so any value
    #: below 1.0 also documents the slack the check grants.
    recall_requirement: float = 0.95
    bid_channels: int = 2
    #: Arrival-stream burst size fed per ``process_batch`` call.
    chunk_size: int = 64
    rebalance_interval: int = 512
    rebalance_threshold: float = 1.05
    #: When set (``"tiered"`` or a :class:`TieredStoreConfig`), the bank
    #: gains tiered-store twins of the serial reference and the top
    #: shard-count variant, and the hot-tier residency check arms.
    store: StoreSpec = None
    #: Chaos mode: the bank gains a supervised twin of the top shard
    #: count running under the seeded fault plan
    #: (:func:`~repro.faults.chaos_plan`), and the recovery check arms.
    chaos: bool = False
    #: Tree mode: the bank gains a tree-of-binary-joins twin
    #: (paper Sec. V), held to the same subset/recall checks and to
    #: byte-identity with every MSWJ variant by the identity oracle.
    tree: bool = False
    #: IPC dispatch window of the chaos variant — deliberately small so
    #: the plan's batch-indexed faults fire within smoke-scale runs.
    chaos_batch_size: int = 32

    def tiered_config(self) -> Optional[TieredStoreConfig]:
        return resolve_tiered(self.store)

    def workload(self) -> Workload:
        return auction_bids_workload(
            NexmarkConfig(
                num_bid_channels=self.bid_channels,
                num_phases=self.phases,
                phase_duration_ms=self.phase_duration_ms,
                seed=self.seed,
            ),
            window_s=self.window_s,
        )

    def variants(self) -> List[VariantSpec]:
        """The differential bank: serial reference + shard sweeps + rebalance."""
        specs = [VariantSpec("serial-1", 1, "serial")]
        multi = sorted({n for n in self.shard_counts if n > 1})
        for shards in multi:
            specs.append(
                VariantSpec(
                    f"{self.executor}-{shards}",
                    shards,
                    self.executor,
                    self.transport,
                )
            )
        if multi:
            top = multi[-1]
            specs.append(
                VariantSpec(
                    f"{self.executor}-{top}-rebalanced",
                    top,
                    self.executor,
                    self.transport,
                    rebalance=True,
                )
            )
        tiered = self.tiered_config()
        if tiered is not None:
            # Tiered twins: the serial reference (hot-tier check probes
            # it) and, when multi-shard variants exist, the top shard
            # count under rebalancing — the store must survive migration
            # byte-identically too.
            specs.append(
                VariantSpec("serial-1-tiered", 1, "serial", store=tiered)
            )
            if multi:
                specs.append(
                    VariantSpec(
                        f"{self.executor}-{multi[-1]}-tiered",
                        multi[-1],
                        self.executor,
                        self.transport,
                        rebalance=True,
                        store=tiered,
                    )
                )
        if self.chaos:
            # The chaos twin needs >= 2 shards: the plan injects
            # respawn-budget pressure and the identity oracle must keep
            # holding across recoveries, which is only interesting with
            # partitioned state to restore.
            top = multi[-1] if multi else 2
            specs.append(
                VariantSpec(
                    f"supervised-{top}-chaos",
                    top,
                    "supervised",
                    self.transport,
                    rebalance=True,
                    chaos=True,
                )
            )
        if self.tree:
            # The tree twin is an independent *execution model*, not an
            # executor: the identity oracle differentially proves the
            # paper's Sec. V tree decomposition result-identical to the
            # m-way operator under the same disorder/burst phases.
            specs.append(VariantSpec("tree-differential", 1, tree=True))
        return specs


class PipelineDriver:
    """Default variant driver: a :class:`PartitionedPipeline` wrapper.

    The driver surface (``feed`` / ``flush`` / ``state_sizes`` /
    ``close``) is what failure-injection tests stub out.
    """

    def __init__(self, spec: VariantSpec, config: PipelineConfig,
                 soak: SoakConfig) -> None:
        self.spec = spec
        if spec.store is not None:
            config = replace(config, store=spec.store)
        kwargs = {}
        if spec.rebalance:
            kwargs = dict(
                rebalance=True,
                rebalance_interval=soak.rebalance_interval,
                rebalance_threshold=soak.rebalance_threshold,
            )
        if spec.chaos:
            # Tight cadences so heartbeats, checkpoints and the seeded
            # faults all fire within a smoke-scale run; a generous
            # respawn budget because the plan injects several distinct
            # faults per shard.
            kwargs.update(
                batch_size=soak.chaos_batch_size,
                supervision=SupervisionConfig(
                    heartbeat_interval=4,
                    heartbeat_timeout_s=2.0,
                    checkpoint_interval=8,
                    max_respawns=6,
                    backoff_base_s=0.01,
                ),
                fault_plan=chaos_plan(soak.seed, spec.shards),
            )
        self.pipeline = PartitionedPipeline(
            config,
            spec.shards,
            executor=spec.executor,
            transport=spec.transport,
            **kwargs,
        )

    def feed(self, batch: Sequence[StreamTuple]) -> List[JoinResult]:
        return self.pipeline.process_batch(batch)

    def flush(self) -> List[JoinResult]:
        return self.pipeline.flush()

    def state_sizes(self) -> Optional[Tuple[int, int]]:
        """``(window_tuples, pending_tuples)`` summed over shards.

        ``None`` when the executor's state is not introspectable
        (worker processes) — the memory check then skips this variant.
        """
        executor = self.pipeline.executor
        if not isinstance(executor, SerialExecutor):
            return None
        windows = 0
        pending = 0
        for shard in executor.pipelines:
            windows += sum(w.cardinality for w in shard.join.windows)
            pending += sum(k.buffered for k in shard.kslacks)
            pending += shard.synchronizer.buffered
        return windows, pending

    def hot_sizes(self) -> Optional[List[int]]:
        """Per-stream hot-tier resident objects, summed over shards.

        ``None`` when the state is not introspectable (process workers)
        or no shard uses a :class:`~repro.join.store.TieredStore` — the
        hot-tier check then skips this variant.
        """
        executor = self.pipeline.executor
        if not isinstance(executor, SerialExecutor):
            return None
        hot: Optional[List[int]] = None
        for shard in executor.pipelines:
            for stream, window in enumerate(shard.join.windows):
                if not isinstance(window.store, TieredStore):
                    return None
                if hot is None:
                    hot = [0] * len(shard.join.windows)
                hot[stream] += window.store_metrics().hot_objects
        return hot

    def recovery_stats(self) -> Optional[Dict[str, int]]:
        """Supervision counters of a chaos variant, else ``None``.

        Safe to read after :meth:`close` — the counters are plain
        executor attributes that outlive the worker processes.
        """
        executor = self.pipeline.executor
        if not isinstance(executor, SupervisedExecutor):
            return None
        return {
            "respawns": executor.respawns,
            "checkpoints_taken": executor.checkpoints_taken,
            "checkpoints_rejected": executor.checkpoints_rejected,
            "replayed_batches": executor.replayed_batches,
            "failovers": self.pipeline.failovers,
        }

    def close(self) -> None:
        self.pipeline.close()


class TreeDriver:
    """Tree-twin driver: the Sec. V tree of binary joins as a variant.

    Same driver surface as :class:`PipelineDriver` over a
    :class:`~repro.distributed.tree.TreeJoinOperator`.  Mirroring the
    paper's architecture — disorder handling sits in front of each
    operator — the driver runs the same per-stream
    :class:`~repro.core.kslack.KSlackBuffer` frontend as the MSWJ
    variants (fixed lossless K), so the tree sees per-stream-ordered
    input and its per-node Alg. 2 always takes the in-order path.  The
    state/hot-tier probes report "not introspectable" and the memory
    checks skip it; subset, recall and — decisively — byte-identity
    against every MSWJ variant apply in full.
    """

    def __init__(self, spec: VariantSpec, config: PipelineConfig,
                 soak: SoakConfig) -> None:
        self.spec = spec
        self.tree = TreeJoinOperator(
            config.window_sizes_ms, config.condition, collect_results=True
        )
        self.kslacks = [
            KSlackBuffer(config.initial_k_ms)
            for _ in range(len(config.window_sizes_ms))
        ]
        self._flushed = False

    def feed(self, batch: Sequence[StreamTuple]) -> List[JoinResult]:
        out: List[JoinResult] = []
        for t in batch:
            for released in self.kslacks[t.stream].process(t):
                out.extend(self.tree.process(released))
        return out

    def flush(self) -> List[JoinResult]:
        self._flushed = True
        out: List[JoinResult] = []
        for kslack in self.kslacks:
            for released in kslack.flush():
                out.extend(self.tree.process(released))
        out.extend(self.tree.flush())
        return out

    def state_sizes(self) -> None:
        return None

    def hot_sizes(self) -> None:
        return None

    def recovery_stats(self) -> None:
        return None

    def close(self) -> None:
        if not self._flushed:
            self.flush()


def default_driver(spec: VariantSpec, config: PipelineConfig,
                   soak: SoakConfig):
    """The stock factory: tree twins get a :class:`TreeDriver`,
    everything else a :class:`PipelineDriver`."""
    if spec.tree:
        return TreeDriver(spec, config, soak)
    return PipelineDriver(spec, config, soak)


#: Builds one driver per variant; tests swap this for broken stubs.
DriverFactory = Callable[[VariantSpec, PipelineConfig, SoakConfig], PipelineDriver]


@dataclass
class SoakViolation:
    """One failed invariant check."""

    check: str
    phase: int  # -1 for run-level checks (terminal identity)
    variant: str
    detail: str

    def __str__(self) -> str:
        where = f"phase {self.phase}" if self.phase >= 0 else "run"
        return f"[{self.check}] {where}, {self.variant}: {self.detail}"


@dataclass
class PhaseReport:
    """Per-phase accounting of one soak run."""

    index: int
    lo_ms: int
    hi_ms: int
    true_count: int
    #: variant name -> distinct results with ts in this phase's range.
    produced: Dict[str, int] = field(default_factory=dict)
    #: variant name -> recall against ``true_count`` (1.0 when no truth).
    recall: Dict[str, float] = field(default_factory=dict)
    #: variant name -> (windows, pending) probed at the phase boundary.
    state: Dict[str, Tuple[int, int]] = field(default_factory=dict)
    #: variant name -> per-stream hot-tier resident objects (tiered
    #: serial variants only).
    hot: Dict[str, Tuple[int, ...]] = field(default_factory=dict)


@dataclass
class SoakReport:
    """Everything one soak run yields."""

    workload: str
    executor: str
    variants: List[str]
    truth_total: int
    k_ms: int
    caps: WorkloadCaps
    phases: List[PhaseReport] = field(default_factory=list)
    violations: List[SoakViolation] = field(default_factory=list)
    checks_run: Tuple[str, ...] = ALL_CHECKS
    #: canonical output fingerprint (hex digest) per variant.
    fingerprints: Dict[str, str] = field(default_factory=dict)
    #: chaos variants only: supervision counters (respawns,
    #: checkpoints taken/rejected, replayed batches, failovers).
    recovery: Dict[str, Dict[str, int]] = field(default_factory=dict)

    @property
    def passed(self) -> bool:
        return not self.violations

    def render(self) -> str:
        """Human-readable phase table + verdict (saved under results/)."""
        from ..experiments.report import format_table

        headers = ["phase", "range (ms)", "true", "variant", "produced",
                   "recall", "windows", "pending", "hot"]
        rows = []
        for phase in self.phases:
            for variant in self.variants:
                windows, pending = phase.state.get(variant, (None, None))
                hot = phase.hot.get(variant)
                rows.append(
                    (
                        phase.index,
                        f"({phase.lo_ms}, {phase.hi_ms}]",
                        phase.true_count,
                        variant,
                        phase.produced.get(variant, 0),
                        f"{phase.recall.get(variant, 1.0):.4f}",
                        "-" if windows is None else windows,
                        "-" if pending is None else pending,
                        "-" if hot is None else sum(hot),
                    )
                )
        title = (
            f"Soak — {self.workload}, executor={self.executor}, "
            f"K={self.k_ms} ms, truth={self.truth_total}, caps: "
            f"windows<={self.caps.window_cap} pending<={self.caps.pending_cap}"
        )
        lines = [format_table(headers, rows, title=title), ""]
        lines.append("output fingerprints (byte-identity oracle):")
        for variant in self.variants:
            lines.append(f"  {variant}: {self.fingerprints.get(variant, '-')}")
        lines.append("")
        if self.recovery:
            lines.append("recovery counters (chaos variants):")
            for variant, stats in self.recovery.items():
                rendered = " ".join(
                    f"{name}={value}" for name, value in stats.items()
                )
                lines.append(f"  {variant}: {rendered}")
            lines.append("")
        if self.passed:
            lines.append(
                f"PASS — all checks held: {', '.join(self.checks_run)}"
            )
        else:
            lines.append(f"FAIL — {len(self.violations)} violation(s):")
            for violation in self.violations:
                lines.append(f"  {violation}")
        return "\n".join(lines)


def canonical_results(results: Sequence[JoinResult]) -> List[tuple]:
    """Routing-independent total order: ``(ts, result identity key)``."""
    return sorted(((r.ts, r.key()) for r in results))


def canonical_bytes(results: Sequence[JoinResult]) -> bytes:
    """Byte serialization the identity oracle compares."""
    return repr(canonical_results(results)).encode("utf-8")


def _fingerprint(payload: bytes) -> str:
    import hashlib

    return hashlib.sha256(payload).hexdigest()[:16]


class SoakHarness:
    """One deterministic soak run over a workload and a variant bank."""

    def __init__(
        self,
        config: SoakConfig,
        workload: Optional[Workload] = None,
        driver_factory: Optional[DriverFactory] = None,
    ) -> None:
        self.config = config
        self.workload = workload if workload is not None else config.workload()
        self.driver_factory = driver_factory or default_driver

    # ------------------------------------------------------------------
    # setup helpers
    # ------------------------------------------------------------------

    def _pipeline_config(self, k_ms: int) -> PipelineConfig:
        """A fresh lossless config per variant (policies are per-pipeline)."""
        return PipelineConfig(
            window_sizes_ms=list(self.workload.window_sizes_ms),
            condition=self.workload.condition,
            gamma=self.config.recall_requirement,
            period_ms=max(self.config.phase_duration_ms, 1_000),
            interval_ms=1_000,
            policy=FixedKPolicy(k_ms),
            initial_k_ms=k_ms,
            collect_results=True,
        )

    # ------------------------------------------------------------------
    # the run
    # ------------------------------------------------------------------

    def run(self) -> SoakReport:
        workload = self.workload
        config = self.config
        dataset = workload.dataset
        # Lossless disorder handling: fixed K covering the realized
        # maximum delay makes every variant's output the exact join.
        k_ms = dataset.max_delay()
        truth = compute_truth(
            dataset, workload.window_sizes_ms, workload.condition,
            keep_keys=True,
        )
        caps = workload.analytic_caps(k_ms)
        specs = config.variants()
        report = SoakReport(
            workload=workload.name,
            executor=config.executor,
            variants=[spec.name for spec in specs],
            truth_total=truth.index.total,
            k_ms=k_ms,
            caps=caps,
        )

        skipped = set()
        if len(specs) == 1:
            # A single-variant bank has nothing to differentially
            # compare; be explicit that the identity oracle did not run
            # rather than reporting it vacuously held.
            skipped.add(CHECK_IDENTITY)
        if not any(resolve_tiered(spec.store) for spec in specs):
            # No tiered variant in the bank — the hot-tier residency
            # check has nothing to probe.
            skipped.add(CHECK_HOT_TIER)
        if not any(spec.chaos for spec in specs):
            # No chaos variant — there is no fault plan whose recovery
            # could be (non-vacuously) asserted.
            skipped.add(CHECK_RECOVERY)
        if skipped:
            report.checks_run = tuple(
                check for check in ALL_CHECKS if check not in skipped
            )

        arrivals = list(dataset.arrivals())
        arrival_keys = [t.arrival for t in arrivals]
        drivers = [
            self.driver_factory(spec, self._pipeline_config(k_ms), config)
            for spec in specs
        ]
        collected: Dict[str, List[JoinResult]] = {
            spec.name: [] for spec in specs
        }
        seen_keys: Dict[str, set] = {spec.name: set() for spec in specs}
        try:
            position = 0
            for phase_index, boundary in enumerate(
                workload.phase_boundaries_ms
            ):
                end = bisect.bisect_right(arrival_keys, boundary)
                phase_batch = arrivals[position:end]
                position = end
                for spec, driver in zip(specs, drivers):
                    fresh: List[JoinResult] = []
                    for start in range(0, len(phase_batch), config.chunk_size):
                        fresh.extend(
                            driver.feed(
                                phase_batch[start:start + config.chunk_size]
                            )
                        )
                    collected[spec.name].extend(fresh)
                    self._check_subset(
                        report, truth, fresh, phase_index, spec.name,
                        seen_keys[spec.name],
                    )
                self._check_memory(report, specs, drivers, caps, phase_index)
                self._check_hot_tier(report, specs, drivers, phase_index)
            # Terminal flush: the remaining (buffered) results.
            for spec, driver in zip(specs, drivers):
                final = driver.flush()
                collected[spec.name].extend(final)
                self._check_subset(
                    report, truth, final, workload.num_phases - 1, spec.name,
                    seen_keys[spec.name],
                )
        finally:
            for driver in drivers:
                driver.close()

        self._account_phases(report, truth, specs, collected)
        self._check_recall(report, specs)
        self._check_identity(report, specs, collected)
        self._check_recovery(report, specs, drivers)
        return report

    # ------------------------------------------------------------------
    # the four checks
    # ------------------------------------------------------------------

    def _check_subset(self, report, truth, results, phase_index, variant,
                      seen_keys):
        assert truth.keys is not None
        bogus = 0
        duplicates = 0
        for r in results:
            key = r.key()
            if key not in truth.keys:
                bogus += 1
            elif key in seen_keys:
                # The true result set is distinct, so the subset
                # relation is a multiset one: a re-produced result is
                # just as spurious as a fabricated one.
                duplicates += 1
            else:
                seen_keys.add(key)
        if bogus:
            report.violations.append(
                SoakViolation(
                    CHECK_SUBSET,
                    phase_index,
                    variant,
                    f"{bogus} produced result(s) not in the true result set",
                )
            )
        if duplicates:
            report.violations.append(
                SoakViolation(
                    CHECK_SUBSET,
                    phase_index,
                    variant,
                    f"{duplicates} duplicate produced result(s)",
                )
            )

    def _check_memory(self, report, specs, drivers, caps, phase_index):
        phase = self._phase_slot(report, phase_index)
        for spec, driver in zip(specs, drivers):
            sizes = driver.state_sizes()
            if sizes is None:
                continue
            windows, pending = sizes
            phase.state[spec.name] = (windows, pending)
            if windows > caps.window_cap:
                report.violations.append(
                    SoakViolation(
                        CHECK_MEMORY,
                        phase_index,
                        spec.name,
                        f"window tuples {windows} exceed analytic cap "
                        f"{caps.window_cap}",
                    )
                )
            if pending > caps.pending_cap:
                report.violations.append(
                    SoakViolation(
                        CHECK_MEMORY,
                        phase_index,
                        spec.name,
                        f"pending tuples {pending} exceed analytic cap "
                        f"{caps.pending_cap}",
                    )
                )

    def hot_tier_caps(
        self, tiered: TieredStoreConfig, shards: int
    ) -> List[int]:
        """Per-stream hot-tier residency caps, analytically derived.

        Beyond its budget, a shard's hot tier legitimately holds as
        objects: the active bucket (tuples within ``bucket_span_ms`` of
        the newest timestamp are never frozen), up to one straddler
        bucket thawed back during expiry, and the compaction back-off
        hysteresis (``hot_budget // 8``).  Budgets and hysteresis are
        per shard (each shard owns a store per stream); the bucket
        populations are bounded by the stream's configured peak rate
        regardless of how the key space is sharded.
        """
        budget = tiered.hot_budget + max(1, tiered.hot_budget // 8)
        return [
            shards * budget
            + 2 * math.ceil(rate * tiered.bucket_span_ms)
            + 8
            for rate in self.workload.peak_rates_per_ms
        ]

    def _check_hot_tier(self, report, specs, drivers, phase_index):
        phase = self._phase_slot(report, phase_index)
        for spec, driver in zip(specs, drivers):
            tiered = resolve_tiered(spec.store)
            if tiered is None:
                continue
            hot = driver.hot_sizes()
            if hot is None:
                continue
            phase.hot[spec.name] = tuple(hot)
            caps = self.hot_tier_caps(tiered, spec.shards)
            for stream, (resident, cap) in enumerate(zip(hot, caps)):
                if resident > cap:
                    report.violations.append(
                        SoakViolation(
                            CHECK_HOT_TIER,
                            phase_index,
                            spec.name,
                            f"stream {stream} hot-tier residency {resident} "
                            f"exceeds budget-derived cap {cap} "
                            f"(hot_budget={tiered.hot_budget})",
                        )
                    )

    def _phase_slot(self, report: SoakReport, index: int) -> PhaseReport:
        while len(report.phases) <= index:
            lo, hi = self.workload.phase_ranges()[len(report.phases)]
            report.phases.append(
                PhaseReport(index=len(report.phases), lo_ms=lo, hi_ms=hi,
                            true_count=0)
            )
        return report.phases[index]

    def _account_phases(self, report, truth, specs, collected):
        """Bucket every variant's results by phase timestamp range.

        Counts are over *distinct* result identities: the true result
        set is distinct by construction, and deduplicating here keeps a
        duplicate-emitting engine bug from masking dropped results in
        the recall ratio (duplicates themselves are flagged by the
        subset check).
        """
        distinct: Dict[str, List[int]] = {
            spec.name: sorted(
                ts for ts, _ in {(r.ts, r.key()) for r in collected[spec.name]}
            )
            for spec in specs
        }
        for index, (lo, hi) in enumerate(self.workload.phase_ranges()):
            phase = self._phase_slot(report, index)
            phase.true_count = truth.index.count_in(lo, hi)
            for spec in specs:
                timestamps = distinct[spec.name]
                produced = bisect.bisect_right(timestamps, hi) - (
                    bisect.bisect_right(timestamps, lo)
                )
                phase.produced[spec.name] = produced
                phase.recall[spec.name] = (
                    min(1.0, produced / phase.true_count)
                    if phase.true_count
                    else 1.0
                )

    def _check_recall(self, report, specs):
        requirement = self.config.recall_requirement
        for phase in report.phases:
            for spec in specs:
                recall = phase.recall.get(spec.name, 1.0)
                if recall < requirement:
                    report.violations.append(
                        SoakViolation(
                            CHECK_RECALL,
                            phase.index,
                            spec.name,
                            f"phase recall {recall:.4f} below requirement "
                            f"{requirement} under lossless settings "
                            f"({phase.produced.get(spec.name, 0)}/"
                            f"{phase.true_count})",
                        )
                    )

    def _check_recovery(self, report, specs, drivers):
        """Chaos variants must have actually recovered, not dodged faults.

        The identity oracle already proves the chaos variant's *output*
        is indistinguishable from a clean run; this check proves the
        run was genuinely disturbed — at least one worker respawn and
        at least one admitted checkpoint (the restore path has nothing
        to restore from otherwise).
        """
        for spec, driver in zip(specs, drivers):
            if not spec.chaos:
                continue
            stats = driver.recovery_stats()
            if stats is None:
                report.violations.append(
                    SoakViolation(
                        CHECK_RECOVERY, -1, spec.name,
                        "chaos variant exposes no supervision counters "
                        "(not running under the supervised executor?)",
                    )
                )
                continue
            report.recovery[spec.name] = stats
            if stats["respawns"] < 1:
                report.violations.append(
                    SoakViolation(
                        CHECK_RECOVERY, -1, spec.name,
                        "no worker respawns — the seeded fault plan "
                        "never fired (vacuous chaos run)",
                    )
                )
            if stats["checkpoints_taken"] < 1:
                report.violations.append(
                    SoakViolation(
                        CHECK_RECOVERY, -1, spec.name,
                        "no checkpoints admitted — recovery ran without "
                        "restorable state",
                    )
                )

    def _check_identity(self, report, specs, collected):
        reference = specs[0].name
        reference_bytes = canonical_bytes(collected[reference])
        report.fingerprints[reference] = _fingerprint(reference_bytes)
        for spec in specs[1:]:
            payload = canonical_bytes(collected[spec.name])
            report.fingerprints[spec.name] = _fingerprint(payload)
            if payload != reference_bytes:
                detail = (
                    f"merged output diverges from {reference}: "
                    f"{len(collected[spec.name])} vs "
                    f"{len(collected[reference])} results"
                )
                # Locate the first divergent phase for the report.
                for phase in report.phases:
                    if phase.produced.get(spec.name) != phase.produced.get(
                        reference
                    ):
                        detail += f" (first count divergence in phase {phase.index})"
                        break
                report.violations.append(
                    SoakViolation(CHECK_IDENTITY, -1, spec.name, detail)
                )


def run_soak(
    config: Optional[SoakConfig] = None,
    workload: Optional[Workload] = None,
    driver_factory: Optional[DriverFactory] = None,
) -> SoakReport:
    """Run one soak; see :class:`SoakHarness`."""
    return SoakHarness(
        config if config is not None else SoakConfig(),
        workload=workload,
        driver_factory=driver_factory,
    ).run()


__all__ = [
    "ALL_CHECKS",
    "CHECK_HOT_TIER",
    "CHECK_IDENTITY",
    "CHECK_MEMORY",
    "CHECK_RECALL",
    "CHECK_RECOVERY",
    "CHECK_SUBSET",
    "resolve_tiered",
    "PhaseReport",
    "PipelineDriver",
    "SoakConfig",
    "SoakHarness",
    "SoakReport",
    "SoakViolation",
    "VariantSpec",
    "canonical_bytes",
    "canonical_results",
    "run_soak",
]
