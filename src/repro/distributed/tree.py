"""Tree-of-binary-joins execution of an MSWJ (paper Sec. V).

The paper notes that an MSWJ can equivalently be implemented as a tree of
binary join operators, and that the quality-driven disorder handling
framework applies unchanged as long as (a) every operator instance follows
the Alg. 2 processing semantics and (b) each instance synchronizes its
inputs with a Synchronizer before joining ("prior-join synchronization").

This module implements that execution strategy:

* :class:`BinaryJoinNode` — a two-input join operator.  Each input port
  carries either a base stream or the output of a child node.  The node
  keeps one window per port, synchronizes its two inputs with a private
  :class:`~repro.core.synchronizer.Synchronizer`, processes in-order
  arrivals with probe + insert and out-of-order survivors with
  insert-only, exactly like Alg. 2.
* :class:`PartialResult` — a composite tuple covering a subset of the
  original streams; its timestamp is the maximum component timestamp and
  its expiry is ``min_j (ts_j + W_j)`` over its components, which is
  exactly when no future partner can satisfy the pairwise window
  constraints anymore.
* :class:`TreeJoinOperator` — builds a left-deep tree over m streams,
  routes base tuples to the right leaves, propagates delay annotations
  (Sec. V: intermediate results are annotated with the triggering
  tuple's delay) and exposes the same ``process`` / ``on_t`` surface as
  :class:`~repro.join.mswj.MSWJOperator`, so it can be compared head to
  head and driven by the same front end.

Correctness note: a combination ``<e_1, ..., e_m>`` is an MSWJ result iff
every pair satisfies ``e_j.ts >= e_i.ts - W_j``.  The node's probe checks
the pairwise constraints across the two sides explicitly, so on in-order
input the tree produces exactly the MJoin result set (the test suite
verifies this against the reference).
"""

from __future__ import annotations

import heapq
from typing import Callable, Dict, List, Sequence, Tuple, Union

from ..core.synchronizer import Synchronizer
from ..core.tuples import JoinResult, StreamTuple
from ..join.conditions import JoinCondition


class PartialResult:
    """A composite tuple covering one or more base streams.

    ``components`` maps original stream index → base tuple.  ``ts`` is the
    max component timestamp (the MSWJ result-timestamp rule) and ``delay``
    carries the propagated delay annotation of the tuple that triggered
    the derivation (paper Sec. V instrumentation).
    """

    __slots__ = ("components", "ts", "delay", "_expiry")

    def __init__(self, components: Dict[int, StreamTuple], delay: int = 0) -> None:
        self.components = components
        self.ts = max(t.ts for t in components.values())
        self.delay = delay
        self._expiry: Union[int, None] = None

    def expiry(self, window_sizes_ms: Sequence[int]) -> int:
        """Latest trigger timestamp this composite can still join with.

        The components and the operator's window sizes are both fixed for
        the composite's lifetime, so the value is computed once and cached
        (it is consulted on every insert and every pairwise probe).
        """
        cached = self._expiry
        if cached is None:
            cached = self._expiry = min(
                t.ts + window_sizes_ms[stream]
                for stream, t in self.components.items()
            )
        return cached

    @staticmethod
    def of(base: StreamTuple) -> "PartialResult":
        return PartialResult({base.stream: base}, delay=base.delay)


class _PortWindow:
    """Window of composites on one input port, expired by composite expiry."""

    def __init__(self, window_sizes_ms: Sequence[int]) -> None:
        self._window_sizes = window_sizes_ms
        self._slots: Dict[int, PartialResult] = {}
        self._next = 0
        self._heap: List[Tuple[int, int]] = []  # (expiry, slot)

    def insert(self, item: PartialResult) -> None:
        slot = self._next
        self._next += 1
        self._slots[slot] = item
        heapq.heappush(self._heap, (item.expiry(self._window_sizes), slot))

    def expire(self, trigger_ts: int) -> None:
        """Drop composites that no trigger at ``trigger_ts`` or later can join."""
        while self._heap and self._heap[0][0] < trigger_ts:
            _, slot = heapq.heappop(self._heap)
            self._slots.pop(slot, None)

    def items(self) -> List[PartialResult]:
        return list(self._slots.values())

    @property
    def cardinality(self) -> int:
        return len(self._slots)


def _pairwise_windows_ok(
    left: PartialResult, right: PartialResult, window_sizes_ms: Sequence[int]
) -> bool:
    for i, a in left.components.items():
        for j, b in right.components.items():
            if b.ts < a.ts - window_sizes_ms[j]:
                return False
            if a.ts < b.ts - window_sizes_ms[i]:
                return False
    return True


class BinaryJoinNode:
    """One binary join operator instance with prior-join synchronization."""

    def __init__(
        self,
        window_sizes_ms: Sequence[int],
        condition: JoinCondition,
        left_cover: frozenset,
        right_cover: frozenset,
        output: Callable[[PartialResult], None],
    ) -> None:
        self.window_sizes_ms = window_sizes_ms
        self.condition = condition
        self.covers = (left_cover, right_cover)
        self.cover = left_cover | right_cover
        self._windows = (_PortWindow(window_sizes_ms), _PortWindow(window_sizes_ms))
        self._sync = Synchronizer(2)
        self._output = output
        self.on_t = 0
        #: composites in flight inside the synchronizer, keyed by carrier seq.
        self._carrier_map: Dict[int, PartialResult] = {}
        self._carrier_seq = 0
        self._port_closed = [False, False]
        #: predicates fully bound once both sides are present, and not
        #: already closed within either side alone.
        self._closing_predicates = [
            p
            for p in condition.predicates
            if p.streams <= self.cover
            and not p.streams <= left_cover
            and not p.streams <= right_cover
        ]

    # ------------------------------------------------------------------
    # input handling
    # ------------------------------------------------------------------

    def feed(self, port: int, item: PartialResult) -> None:
        """Accept a composite on ``port`` (0 = left, 1 = right).

        Composites ride through the per-node Synchronizer inside light
        carrier tuples; the carrier's ``seq`` keys the composite so it can
        be recovered on emission.
        """
        if self._port_closed[port]:
            raise ValueError(f"input port {port} already closed")
        carrier = StreamTuple(ts=item.ts, stream=port)
        carrier.delay = item.delay
        key = self._carrier_seq
        self._carrier_seq += 1
        self._carrier_map[key] = item
        carrier.seq = key
        for emitted in self._sync.process(carrier):
            self._process(emitted.stream, self._carrier_map.pop(emitted.seq))

    @property
    def exhausted(self) -> bool:
        """Both input ports closed: the node can produce nothing further."""
        return self._port_closed[0] and self._port_closed[1]

    def flush_input(self, port: int) -> None:
        """Signal end of input on ``port``; idempotent.

        Closing a port stops it gating the node's synchronizer, so tuples
        buffered on the other port drain immediately instead of waiting on
        a partner that will never arrive.  Once both ports are closed the
        synchronizer is fully drained and the carrier map must be empty —
        anything still in it would be a leaked composite, so it is swept
        through processing as a defensive flush.
        """
        if self._port_closed[port]:
            return
        self._port_closed[port] = True
        for emitted in self._sync.close_stream(port):
            self._process(emitted.stream, self._carrier_map.pop(emitted.seq))
        if self.exhausted and self._carrier_map:
            self.flush()

    def flush(self) -> None:
        for emitted in self._sync.flush():
            self._process(emitted.stream, self._carrier_map.pop(emitted.seq))
        # A closed synchronizer cannot retain carriers; any map residue
        # after a full drain would leak composites for the node's
        # lifetime, so the invariant is restored here unconditionally.
        self._carrier_map.clear()

    # ------------------------------------------------------------------
    # Alg. 2 semantics on composites
    # ------------------------------------------------------------------

    def _process(self, port: int, item: PartialResult) -> None:
        other = 1 - port
        if item.ts >= self.on_t:
            self.on_t = item.ts
            self._windows[other].expire(item.ts)
            for candidate in self._windows[other].items():
                self._try_emit(item, candidate, port)
            self._windows[port].insert(item)
        else:
            # Out of order: keep it if it can still join a future trigger.
            if item.expiry(self.window_sizes_ms) >= self.on_t:
                self._windows[port].insert(item)

    def _try_emit(self, item: PartialResult, candidate: PartialResult, port: int) -> None:
        left, right = (candidate, item) if port == 1 else (item, candidate)
        if not _pairwise_windows_ok(left, right, self.window_sizes_ms):
            return
        merged = dict(left.components)
        merged.update(right.components)
        for predicate in self._closing_predicates:
            if not predicate.evaluate(merged):
                return
        self._output(PartialResult(merged, delay=item.delay))


class TreeJoinOperator:
    """Left-deep tree of binary joins, drop-in comparable to MJoin.

    The node over streams {0, 1} feeds the node over {0, 1, 2}, and so
    on.  ``process`` accepts base-stream tuples in (partially sorted)
    order — e.g. straight from a K-slack + Synchronizer front end — and
    returns the final results produced by the root.
    """

    def __init__(
        self,
        window_sizes_ms: Sequence[int],
        condition: JoinCondition,
        collect_results: bool = True,
    ) -> None:
        if len(window_sizes_ms) < 2:
            raise ValueError("a join tree needs at least two streams")
        self.window_sizes_ms = [int(w) for w in window_sizes_ms]
        self.condition = condition
        self.num_streams = len(window_sizes_ms)
        self._collect = collect_results
        #: results produced since the last drain — handed over (not
        #: sliced) by :meth:`_drain`, so residency stays bounded by one
        #: call's output instead of the whole stream's history.
        self._results: List[JoinResult] = []
        self._count = 0
        self._closed = [False] * self.num_streams
        self.nodes: List[BinaryJoinNode] = []
        left_cover = frozenset({0})
        for stream in range(1, self.num_streams):
            is_root = stream == self.num_streams - 1
            sink = self._root_sink if is_root else self._make_forwarder(len(self.nodes) + 1)
            node = BinaryJoinNode(
                self.window_sizes_ms,
                condition,
                left_cover,
                frozenset({stream}),
                output=sink,
            )
            self.nodes.append(node)
            left_cover = left_cover | {stream}

    def _make_forwarder(self, next_index: int) -> Callable[[PartialResult], None]:
        def forward(item: PartialResult) -> None:
            self.nodes[next_index].feed(0, item)

        return forward

    def _root_sink(self, item: PartialResult) -> None:
        self._count += 1
        if self._collect:
            components = tuple(
                item.components[s] for s in range(self.num_streams)
            )
            self._results.append(JoinResult(item.ts, components))

    # ------------------------------------------------------------------
    # public surface
    # ------------------------------------------------------------------

    @property
    def on_t(self) -> int:
        return self.nodes[-1].on_t

    def process(self, t: StreamTuple) -> Union[List[JoinResult], int]:
        """Feed one base tuple; return results completed by the root."""
        if not 0 <= t.stream < self.num_streams:
            raise ValueError(
                f"tuple stream index {t.stream} outside [0, {self.num_streams})"
            )
        if self._closed[t.stream]:
            raise ValueError(f"stream {t.stream} already closed")
        before = self._count
        if t.stream == 0:
            self.nodes[0].feed(0, PartialResult.of(t))
        else:
            self.nodes[t.stream - 1].feed(1, PartialResult.of(t))
        return self._drain(before)

    def close_stream(self, stream: int) -> Union[List[JoinResult], int]:
        """Signal end of input on one base stream (finite-run surface).

        Mirrors the pipeline's per-stream ``Synchronizer.close_stream``
        semantics at the tree level: the stream stops gating its node's
        synchronizer, and exhaustion propagates down the left-deep chain —
        once both of a node's ports are closed, its output can never grow
        again, which closes the downstream node's port 0, and so on.
        Closing every base stream is therefore equivalent to a full
        :meth:`flush`.  Idempotent per stream; returns the results the
        closure unlocked.
        """
        if not 0 <= stream < self.num_streams:
            raise ValueError(
                f"stream index {stream} outside [0, {self.num_streams})"
            )
        before = self._count
        if self._closed[stream]:
            return self._drain(before)
        self._closed[stream] = True
        if stream == 0:
            self.nodes[0].flush_input(0)
        else:
            self.nodes[stream - 1].flush_input(1)
        # Left-deep cascade: an exhausted node closes its parent's port 0.
        for index, node in enumerate(self.nodes[:-1]):
            if node.exhausted:
                self.nodes[index + 1].flush_input(0)
            else:
                break
        return self._drain(before)

    def flush(self) -> Union[List[JoinResult], int]:
        """Flush every node's synchronizer, left to right."""
        before = self._count
        for node in self.nodes:
            node.flush()
        return self._drain(before)

    def _drain(self, before: int) -> Union[List[JoinResult], int]:
        if self._collect:
            new = self._results
            self._results = []
            return new
        return self._count - before

    @property
    def results_produced(self) -> int:
        return self._count
