"""Socket-distributed execution: NodeServers, socket executors, tree stages.

The partitioned pipeline's process executors talk to their shard workers
through ``multiprocessing`` pipes — which confines a run to one machine.
This module lifts the *same* executor ↔ worker protocol onto TCP:

* :class:`SocketConnection` — a ``Connection``-shaped wrapper over a TCP
  socket carrying pickled ``(tag, payload)`` protocol messages in
  length-prefixed, CRC-tagged, sequence-numbered frames (the same
  ``<QII`` header discipline as :class:`~repro.parallel.shm.ShmRing`).
  It satisfies the ``send`` / ``send_bytes`` / ``recv`` / ``poll`` /
  ``close`` surface the executors and :func:`~repro.parallel.shard.shard_worker`
  already use, so the worker loop runs over it **unchanged**.
* :class:`NodeServer` — the remote end: an accept loop that hosts shard
  (or join-tree) workers as forked child processes, one per accepted
  :data:`MSG_JOIN` handshake.  Workers arm ``PDEATHSIG`` so a killed
  node takes its workers down with it — a whole-machine loss the
  supervised executor recovers from by reconnecting to surviving nodes.
* :class:`SocketExecutor` / :class:`SupervisedSocketExecutor` — the
  parent side: drop-in executors (same interface as the pipe and shm
  paths, including migration barriers, heartbeats, checkpoint/replay and
  elastic ``add_shard``/``retire_shard``) whose workers live in
  ``NodeServer`` processes addressed by ``(host, port)``.
* :class:`DistributedTreeJoin` — the tree-of-binary-joins execution of
  the paper's Sec. V scaled out node-to-node: every
  :class:`~repro.distributed.tree.BinaryJoinNode` becomes a *stage*
  hosted in its own remote worker; base tuples route to the leaf stages
  and intermediate :class:`~repro.distributed.tree.PartialResult`
  composites flow stage-to-stage through the same frame codec
  (:class:`PartialBlock`), with per-port :data:`MSG_CLOSE` propagation
  mirroring :meth:`~repro.distributed.tree.TreeJoinOperator.close_stream`.

Because worker specs cross the wire pickled (no fork inheritance from
the driver), socket-distributed runs require picklable configs — equi
and band predicates qualify; ``ThetaPredicate`` lambdas do not.

Determinism carries over wholesale: the socket transport reuses the
columnar block codec and the executors' message protocol verbatim, so a
4-shard join spread over two NodeServer processes produces byte-identical
result sequences and :class:`~repro.join.mswj.JoinStatistics` to the
single-process pipe executor — including across elastic node joins
(:meth:`~repro.parallel.pipeline.PartitionedPipeline.grow`) and
supervised recovery from a node crash.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import select
import signal
import socket
import struct
import zlib
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from ..core.blocks import PICKLE_PROTOCOL, BlockDecoder, BlockEncoder, TupleBlock
from ..core.pipeline import PipelineConfig
from ..core.tuples import JoinResult, StreamTuple
from ..faults import FaultPlan
from ..faults import plan as _fault_plan_module
from ..join.conditions import JoinCondition
from ..parallel.executors import MultiprocessingExecutor
from ..parallel.shard import (
    MSG_ABORT,
    MSG_BATCH,
    MSG_FLUSH,
    TRANSPORT_SOCKET,
    ShardFailure,
    shard_worker,
)
from ..parallel.supervision import SupervisedExecutor
from .tree import BinaryJoinNode, PartialResult

#: Frame header of the socket transport: ``(seq, length, crc32)``, the
#: same integrity discipline as the shm ring's frames.  ``seq`` is
#: per-direction and strictly monotone — a dropped, duplicated, or
#: reordered frame surfaces as :class:`SocketIntegrityError` instead of
#: silently desynchronizing the protocol.
_FRAME_HEADER = struct.Struct("<QII")

#: Seconds a connecting parent (and the accepting node) will wait on the
#: :data:`MSG_JOIN` handshake before treating the peer as unreachable.
HANDSHAKE_TIMEOUT_S = 10.0

# Socket-runtime extensions of the executor ↔ worker protocol.
#: Parent → node handshake: payload is a :class:`_WorkerSpec`; the node
#: replies ``("ok", node_pid)`` and forks a worker that owns the
#: connection from then on.  Any other opening tag is rejected with
#: ``("error", ...)``.
MSG_JOIN = "join"
#: Driver → tree-stage: payload is the input port (0 or 1) to close.
#: The stage runs :meth:`~repro.distributed.tree.BinaryJoinNode.flush_input`
#: and replies ``("ok", (PartialBlock | None, exhausted))`` — the
#: emissions the closure unlocked (which the driver must forward
#: downstream *before* cascading further closes) plus whether both ports
#: are now closed.
MSG_CLOSE = "close"

#: Worker kinds a :class:`NodeServer` can host.
KIND_SHARD = "shard"
KIND_TREE = "tree-node"


class SocketIntegrityError(OSError):
    """A socket frame failed its sequence or CRC check.

    Subclasses :class:`OSError` so every existing dead/corrupt-peer
    handling path in the executors (which catches ``OSError``) treats a
    torn frame exactly like a broken pipe: typed failure, never a hang.
    """


class SocketConnection:
    """``multiprocessing.Connection``-shaped framing over a TCP socket.

    One pickled message per frame; per-direction sequence numbers and a
    CRC-32 per frame catch reordering, duplication, and corruption.  The
    error surface mirrors a pipe ``Connection``: clean peer shutdown
    raises :class:`EOFError` from ``recv``, everything else is an
    :class:`OSError` — so :func:`~repro.parallel.shard.shard_worker` and
    the executors' polling reply paths run over it unmodified.
    """

    __slots__ = ("_sock", "_send_seq", "_recv_seq", "_closed")

    def __init__(self, sock: socket.socket) -> None:
        self._sock = sock
        self._send_seq = 0
        self._recv_seq = 0
        self._closed = False

    # -- send side -----------------------------------------------------

    def send(self, obj: Any) -> None:
        self.send_bytes(pickle.dumps(obj, protocol=PICKLE_PROTOCOL))

    def send_bytes(self, payload: bytes) -> None:
        self.send_frame(payload)

    def send_frame(self, payload: bytes) -> None:
        """Ship one sequence-numbered, CRC-tagged frame."""
        if self._closed:
            raise OSError("socket connection is closed")
        self._send_seq += 1
        header = _FRAME_HEADER.pack(
            self._send_seq, len(payload), zlib.crc32(payload)
        )
        self._sock.sendall(header + payload)

    # -- receive side --------------------------------------------------

    def recv(self) -> Any:
        return pickle.loads(self.recv_bytes())

    def recv_bytes(self) -> bytes:
        header = self._recv_exact(_FRAME_HEADER.size)
        seq, length, crc = _FRAME_HEADER.unpack(header)
        expected = self._recv_seq + 1
        if seq != expected:
            raise SocketIntegrityError(
                f"frame sequence violation: got {seq}, expected {expected}"
            )
        payload = self._recv_exact(length) if length else b""
        actual = zlib.crc32(payload)
        if actual != crc:
            raise SocketIntegrityError(
                f"frame {seq} fails CRC: stored {crc:#010x}, "
                f"computed {actual:#010x}"
            )
        self._recv_seq = seq
        return payload

    def _recv_exact(self, n: int) -> bytes:
        if self._closed:
            raise OSError("socket connection is closed")
        view = memoryview(bytearray(n))
        got = 0
        while got < n:
            read = self._sock.recv_into(view[got:])
            if read == 0:
                # Clean peer shutdown mid-stream == pipe EOF semantics.
                raise EOFError("socket closed by peer")
            got += read
        return view.obj if isinstance(view.obj, bytes) else bytes(view.obj)

    def poll(self, timeout: float = 0.0) -> bool:
        """Readability check, ``Connection.poll``-compatible.

        Raises :class:`OSError` once locally closed (matching a closed
        pipe handle) — the executors' reply loops rely on poll never
        succeeding against a released connection.
        """
        if self._closed:
            raise OSError("socket connection is closed")
        ready, _, _ = select.select([self._sock], [], [], timeout)
        return bool(ready)

    def fileno(self) -> int:
        return self._sock.fileno()

    # -- lifecycle -----------------------------------------------------

    def close(self) -> None:
        """Tear the connection down for *both* endpoints; idempotent.

        ``shutdown`` pushes an immediate EOF/reset to the peer even if a
        forked child still holds a duplicate of this fd — the lever the
        parent uses to force a remote worker's exit.
        """
        if self._closed:
            return
        self._closed = True
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        self._sock.close()

    def release(self) -> None:
        """Drop only *this process's* fd copy; the connection lives on.

        The post-fork counterpart of :meth:`close`: after a
        :class:`NodeServer` hands an accepted connection to a worker
        child, the node must release its own copy **without** the
        ``shutdown`` (which acts on the shared socket, not the fd, and
        would sever the child's live connection too).
        """
        if self._closed:
            return
        self._closed = True
        self._sock.close()


# ----------------------------------------------------------------------
# node side
# ----------------------------------------------------------------------


@dataclass
class _TreeNodeSpec:
    """Constructor arguments of one remotely-hosted tree stage."""

    window_sizes_ms: List[int]
    condition: JoinCondition
    left_cover: frozenset
    right_cover: frozenset


@dataclass
class _WorkerSpec:
    """The :data:`MSG_JOIN` handshake payload: which worker to host.

    ``config`` is a :class:`~repro.core.pipeline.PipelineConfig` for
    ``kind == KIND_SHARD`` and a :class:`_TreeNodeSpec` for
    ``kind == KIND_TREE``.  Travels pickled, so everything in it must be
    picklable (theta lambdas are not — see the module docstring).
    """

    kind: str
    index: int
    config: Union[PipelineConfig, _TreeNodeSpec]
    transport: str = TRANSPORT_SOCKET
    faults: Optional[FaultPlan] = None
    grant_credits: bool = False


def _arm_pdeathsig() -> None:
    """Ask the kernel to SIGKILL this process when its parent dies.

    Linux ``prctl(PR_SET_PDEATHSIG)`` via ctypes; a best-effort no-op
    elsewhere.  This is what makes a SIGKILLed NodeServer a *whole-node*
    loss: its hosted workers die with it instead of lingering orphaned
    with half-open sockets.
    """
    try:
        import ctypes

        libc = ctypes.CDLL(None, use_errno=True)
        libc.prctl(1, signal.SIGKILL, 0, 0, 0)  # PR_SET_PDEATHSIG == 1
    except (OSError, AttributeError):  # pragma: no cover - non-Linux
        pass


def _node_worker(conn: SocketConnection, spec: _WorkerSpec) -> None:
    """Entry point of a node-hosted worker child (post-fork).

    Arms ``PDEATHSIG`` against the hosting node and publishes the node's
    pid through :data:`repro.faults.plan.NODE_PID` so the
    ``node-sigkill`` fault (whose injector is constructed deep inside
    ``shard_worker``) can find its target, then dispatches on the spec's
    worker kind.
    """
    _arm_pdeathsig()
    _fault_plan_module.NODE_PID = os.getppid()
    if spec.kind == KIND_SHARD:
        shard_worker(
            conn,  # type: ignore[arg-type]  # Connection-shaped by design
            spec.index,
            spec.config,
            transport=spec.transport,
            faults=spec.faults,
            rings=None,
            grant_credits=spec.grant_credits,
        )
    elif spec.kind == KIND_TREE:
        _tree_node_worker(conn, spec.config)
    else:
        try:
            conn.send(("error", f"unknown worker kind {spec.kind!r}"))
        except OSError:
            pass
        conn.close()


def _encode_partials(partials: Sequence[PartialResult]) -> Optional["PartialBlock"]:
    """Pack composites for one hop; ``None`` stands for an empty batch."""
    if not partials:
        return None
    return encode_partials(partials)


class PartialBlock:
    """A batch of :class:`~repro.distributed.tree.PartialResult`
    composites in columnar form — the tree runtime's wire unit.

    Every composite crossing one stage-to-stage hop covers the same
    stream set (the left-deep invariant: a stage's output always carries
    its full cover), so the set travels once as ``streams`` and the
    component tuples flatten into one :class:`~repro.core.blocks.TupleBlock`
    in ``streams`` order, ``len(streams)`` per composite.  ``delays``
    carries each composite's propagated delay annotation; its timestamp
    is recomputed on decode (max component ts — the constructor's own
    rule), so it never travels.  Blocks are self-contained (fresh
    encoder, schema inline): tree hops are per-trigger small, so schema
    renegotiation costs less than stateful pairing would complicate.
    """

    __slots__ = ("streams", "delays", "components")

    def __init__(
        self,
        streams: Tuple[int, ...],
        delays: List[int],
        components: TupleBlock,
    ) -> None:
        self.streams = streams
        self.delays = delays
        self.components = components

    def __len__(self) -> int:
        return len(self.delays)

    def __getstate__(self) -> Tuple[Tuple[int, ...], List[int], TupleBlock]:
        return (self.streams, self.delays, self.components)

    def __setstate__(
        self, state: Tuple[Tuple[int, ...], List[int], TupleBlock]
    ) -> None:
        self.streams, self.delays, self.components = state

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PartialBlock(n={len(self.delays)}, streams={self.streams})"


def encode_partials(partials: Sequence[PartialResult]) -> PartialBlock:
    """Columnar-encode one hop's composites (shared stream set)."""
    streams = tuple(sorted(partials[0].components))
    flat: List[StreamTuple] = []
    delays: List[int] = []
    for partial in partials:
        if tuple(sorted(partial.components)) != streams:
            raise ValueError(
                "composites on one hop must share a stream set: "
                f"{streams} vs {tuple(sorted(partial.components))}"
            )
        delays.append(partial.delay)
        flat.extend(partial.components[s] for s in streams)
    return PartialBlock(streams, delays, BlockEncoder().encode(flat))


def decode_partials(block: PartialBlock) -> List[PartialResult]:
    """Rebuild the composites; ts is recomputed (= max component ts)."""
    components = BlockDecoder().decode(block.components)
    streams = block.streams
    width = len(streams)
    partials: List[PartialResult] = []
    pos = 0
    for delay in block.delays:
        group = dict(zip(streams, components[pos : pos + width]))
        pos += width
        partials.append(PartialResult(group, delay=delay))
    return partials


def _tree_node_worker(conn: SocketConnection, spec: _TreeNodeSpec) -> None:
    """Stage loop hosting one :class:`BinaryJoinNode` behind a socket.

    Protocol (driver → stage): ``(MSG_BATCH, (port, PartialBlock))``
    feeds decoded composites to the node in block order and replies
    ``("ok", PartialBlock | None)`` with whatever the feeds emitted;
    ``(MSG_CLOSE, port)`` closes the port and replies ``("ok",
    (PartialBlock | None, exhausted))``; ``(MSG_FLUSH, None)`` drains
    the node's synchronizer, replies ``("ok", PartialBlock | None)``,
    and ends the stage; ``(MSG_ABORT, None)`` ends it with no reply.
    Unknown tags raise (surfaced as an ``("error", ...)`` reply) —
    dispatch stays exhaustive like the shard worker's.
    """
    emitted: List[PartialResult] = []
    node = BinaryJoinNode(
        spec.window_sizes_ms,
        spec.condition,
        spec.left_cover,
        spec.right_cover,
        output=emitted.append,
    )
    try:
        while True:
            tag, payload = conn.recv()
            if tag == MSG_ABORT:
                return
            if tag == MSG_FLUSH:
                node.flush()
                conn.send(("ok", _encode_partials(emitted)))
                return
            if tag == MSG_CLOSE:
                node.flush_input(payload)
                reply = (_encode_partials(emitted), node.exhausted)
                emitted.clear()
                conn.send(("ok", reply))
                continue
            if tag != MSG_BATCH:
                raise ValueError(f"unknown protocol message tag {tag!r}")
            port, block = payload
            for item in decode_partials(block):
                node.feed(port, item)
            batch_reply = _encode_partials(emitted)
            emitted.clear()
            conn.send(("ok", batch_reply))
    except Exception as exc:  # surfaced by the driver as a RuntimeError
        try:
            conn.send(("error", f"{type(exc).__name__}: {exc}"))
        except OSError:
            pass
    finally:
        conn.close()


class NodeServer:
    """A worker-hosting accept loop — one per (virtual) machine.

    Binds at construction (``port=0`` picks a free port; read
    ``self.address``), then :meth:`serve` accepts connections forever:
    each :data:`MSG_JOIN` handshake is answered with ``("ok", pid)``
    *before* forking the worker, so the forked child inherits a
    :class:`SocketConnection` whose sequence counters already cover the
    handshake — the parent-side executor and the worker stay in lockstep
    from frame one.  After the fork the node releases its fd copy; the
    worker owns the connection outright.

    :meth:`spawn` is the test/deployment convenience: fork a process
    running :meth:`serve` and return ``(process, address)``.  Spawned
    nodes arm ``PDEATHSIG``, so abandoning the driver process cannot
    leak node trees.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0) -> None:
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen()
        #: The bound ``(host, port)`` — what executors take as ``nodes``.
        self.address: Tuple[str, int] = self._listener.getsockname()[:2]

    def serve(self) -> None:
        """Accept and host workers until the listener dies."""
        context = multiprocessing.get_context("fork")
        workers: List[multiprocessing.process.BaseProcess] = []
        try:
            while True:
                try:
                    sock, _peer = self._listener.accept()
                except OSError:
                    return
                conn = SocketConnection(sock)
                sock.settimeout(HANDSHAKE_TIMEOUT_S)
                try:
                    tag, spec = conn.recv()
                except (EOFError, OSError):
                    conn.close()
                    continue
                if tag != MSG_JOIN:
                    try:
                        conn.send(
                            ("error", f"expected a join handshake, got {tag!r}")
                        )
                    except OSError:
                        pass
                    conn.close()
                    continue
                sock.settimeout(None)
                # Reply BEFORE forking: the child's inherited connection
                # then carries send/recv counters that already include
                # the handshake, keeping both directions' frame
                # sequences aligned with the parent's view.
                try:
                    conn.send(("ok", os.getpid()))
                except OSError:
                    conn.close()
                    continue
                process = context.Process(
                    target=_node_worker, args=(conn, spec), daemon=True
                )
                process.start()
                conn.release()
                # is_alive() reaps exited children as a side effect.
                workers = [w for w in workers if w.is_alive()]
                workers.append(process)
        finally:
            self._listener.close()

    def close(self) -> None:
        """Stop accepting (unblocks a concurrent :meth:`serve`)."""
        self._listener.close()

    @classmethod
    def spawn(
        cls, host: str = "127.0.0.1", port: int = 0
    ) -> Tuple[multiprocessing.process.BaseProcess, Tuple[str, int]]:
        """Fork a serving node; return ``(process, bound address)``.

        The listener is bound in the caller (so ``port=0`` resolves
        before the fork) and inherited by the child; the parent then
        closes its own copy.  Stop the node with ``process.terminate()``
        (workers follow via their daemon flag / ``PDEATHSIG``).
        """
        server = cls(host, port)
        context = multiprocessing.get_context("fork")
        process = context.Process(target=server._serve_spawned, daemon=False)
        process.start()
        server._listener.close()
        return process, server.address

    def _serve_spawned(self) -> None:
        """Child entry of :meth:`spawn`: die with the spawning driver."""
        _arm_pdeathsig()
        self.serve()


# ----------------------------------------------------------------------
# parent side
# ----------------------------------------------------------------------


NodeAddress = Tuple[str, int]


def _join_node(address: NodeAddress, spec: _WorkerSpec) -> Tuple[SocketConnection, int]:
    """Dial one node and run the :data:`MSG_JOIN` handshake.

    Returns ``(connection, node_pid)``.  The handshake runs under a
    socket timeout (an unresponsive node must not hang the caller);
    steady-state traffic afterwards is untimed, like a pipe.
    """
    sock = socket.create_connection(address, timeout=HANDSHAKE_TIMEOUT_S)
    conn = SocketConnection(sock)
    try:
        conn.send((MSG_JOIN, spec))
        tag, payload = conn.recv()
    except (EOFError, OSError):
        conn.close()
        raise
    if tag != "ok":
        conn.close()
        raise ConnectionError(f"node at {address} rejected join: {payload}")
    sock.settimeout(None)
    return conn, payload


def connect_worker(
    addresses: Sequence[NodeAddress], spec: _WorkerSpec, preferred: int
) -> Tuple[SocketConnection, int, int]:
    """Place one worker on some node, preferring ``addresses[preferred]``.

    Tries the preferred node first and round-robins through the rest —
    the placement *and* failover policy in one: a dead node refuses the
    dial and the worker lands on the next survivor.  Returns
    ``(connection, node_pid, node_index)``; raises
    :class:`ConnectionError` only when every node refused.
    """
    if not addresses:
        raise ValueError("at least one NodeServer address is required")
    count = len(addresses)
    failures: List[str] = []
    for attempt in range(count):
        index = (preferred + attempt) % count
        try:
            conn, node_pid = _join_node(addresses[index], spec)
        except (EOFError, OSError) as exc:
            failures.append(f"{addresses[index]}: {exc}")
            continue
        return conn, node_pid, index
    raise ConnectionError(
        "no NodeServer accepted the worker: " + "; ".join(failures)
    )


class _RemoteWorker:
    """Process-handle stand-in for a worker living in a remote node.

    The executors track per-shard ``Process`` objects for exitcode-based
    death detection and join/terminate lifecycle.  A remote worker has
    no local handle, so this stub reports "not mine to manage":
    ``exitcode`` stays ``None`` (death detection rides the connection's
    EOF/OSError paths instead, which the polling reply loops already
    handle) and join/terminate are no-ops (closing the connection is
    what actually releases the worker — it exits on EOF).
    """

    __slots__ = ("address", "node_pid")

    def __init__(self, address: NodeAddress, node_pid: int) -> None:
        self.address = address
        self.node_pid = node_pid

    @property
    def exitcode(self) -> Optional[int]:
        return None

    def is_alive(self) -> bool:
        return False

    def join(self, timeout: Optional[float] = None) -> None:
        pass

    def terminate(self) -> None:
        pass

    def kill(self) -> None:
        pass

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"_RemoteWorker(node={self.address}, node_pid={self.node_pid})"


class _SocketPrimitivesMixin:
    """Swap an executor's worker spawning from fork+pipe to dial+join.

    Mixed in *before* :class:`MultiprocessingExecutor` or
    :class:`SupervisedExecutor`: everything above ``_spawn_worker`` —
    batching, credits, migration barriers, supervision cadence,
    elastic resize — is inherited untouched, because the connection
    object speaks the pipe surface and the protocol is unchanged.
    """

    def __init__(self, *args: Any, nodes: Sequence[NodeAddress], **kwargs: Any):
        normalized = [(str(host), int(port)) for host, port in nodes]
        if not normalized:
            raise ValueError(
                "socket executors require at least one NodeServer address"
            )
        self._nodes: List[NodeAddress] = normalized
        #: Which node (index into ``_nodes``) hosts each shard's current
        #: worker incarnation — respawns prefer the incumbent node and
        #: fail over to survivors when it refuses the dial.
        self._node_of: List[int] = []
        transport = kwargs.setdefault("transport", TRANSPORT_SOCKET)
        if transport != TRANSPORT_SOCKET:
            raise ValueError(
                f"socket executors only speak transport={TRANSPORT_SOCKET!r}, "
                f"got {transport!r}"
            )
        super().__init__(*args, **kwargs)

    def add_node(self, address: NodeAddress) -> int:
        """Register a freshly-started NodeServer; return its index.

        The elastic node-join entry point: a registered node becomes a
        placement target for subsequent ``add_shard`` spawns (via
        :meth:`~repro.parallel.pipeline.PartitionedPipeline.grow`) and
        for respawn failover.  Registration alone moves no state — the
        pipeline's drain/handoff migration barrier does that, which is
        what makes joining mid-stream byte-identical to having started
        with the node.
        """
        self._nodes.append((str(address[0]), int(address[1])))
        return len(self._nodes) - 1

    def _spawn_worker(self, shard: int) -> None:
        """Place ``shard``'s worker on a node instead of forking one."""
        self._dispatched[shard] = 0
        self._credited[shard] = 0
        if self._encoders is not None:
            # Same contract as the pipe path: a fresh worker's decoder
            # starts empty, so schema negotiation restarts with it.
            self._encoders[shard] = BlockEncoder()
        if len(self._node_of) <= shard:
            # First placement: least-loaded node (ties break low) — at
            # construction this degenerates to round-robin, and a grown
            # shard lands on a freshly joined (empty) node, which is
            # what makes ``add_node`` + ``grow`` the node-join story.
            loads = [0] * len(self._nodes)
            for node in self._node_of:
                loads[node] += 1
            while len(self._node_of) <= shard:
                self._node_of.append(loads.index(min(loads)))
                loads[self._node_of[-1]] += 1
        spec = _WorkerSpec(
            kind=KIND_SHARD,
            index=shard,
            config=self.config,
            transport=self.transport,
            faults=self._fault_plan_for(shard),
            grant_credits=self._credit_window is not None,
        )
        try:
            conn, node_pid, node_index = connect_worker(
                self._nodes, spec, preferred=self._node_of[shard]
            )
        except ConnectionError as exc:
            raise ShardFailure(shard, str(exc)) from exc
        self._node_of[shard] = node_index
        worker = _RemoteWorker(self._nodes[node_index], node_pid)
        if shard < len(self._connections):
            self._connections[shard] = conn
        else:
            self._connections.append(conn)
        if shard < len(self._processes):
            self._processes[shard] = worker
        else:
            self._processes.append(worker)


class SocketExecutor(_SocketPrimitivesMixin, MultiprocessingExecutor):
    """The process executor with its shard workers on NodeServers.

    Same submission/migration/finish lifecycle, same block codec, same
    batched dispatch — only the carrier differs, so the merged flush
    sequence and summed join statistics are byte-identical to the pipe
    executor's for the same input.  ``nodes`` lists the server
    addresses; shard *i* prefers node ``i % len(nodes)``.
    """


class SupervisedSocketExecutor(_SocketPrimitivesMixin, SupervisedExecutor):
    """Supervised execution over NodeServer-hosted workers.

    Heartbeats, checkpoint/replay, and respawn budgets apply unchanged;
    a respawn re-dials, preferring the shard's incumbent node and
    failing over to surviving nodes when that node is gone — which is
    exactly what recovers a whole-node SIGKILL (every worker on the node
    dies via ``PDEATHSIG``; each is respawned elsewhere from its last
    checkpoint and replay log, byte-identically).
    """


# ----------------------------------------------------------------------
# distributed join tree
# ----------------------------------------------------------------------


class DistributedTreeJoin:
    """A left-deep join tree with every binary node on a NodeServer.

    The distributed twin of
    :class:`~repro.distributed.tree.TreeJoinOperator`: stage *i* hosts
    the node covering streams ``{0..i+1}``; base stream 0 feeds stage
    0's port 0, stream ``s >= 1`` feeds stage ``s-1``'s port 1, and each
    stage's emissions are forwarded — in emission order, before anything
    else happens — to the next stage's port 0, with the root stage's
    emissions materializing as :class:`~repro.core.tuples.JoinResult`
    (components in stream order, the ``_root_sink`` rule).  Because
    every stage applies Alg. 2 on exactly the same composite sequence
    the in-process tree would see, results match it one for one
    (``test_socket_transport`` pins this differentially, close orders
    included).

    Emission is gated by the pairwise-window check
    (:func:`~repro.distributed.tree._pairwise_windows_ok`), which holds
    per composite independent of placement — so key-partitioned stage
    replicas would stay result-set-faithful; this runtime runs one
    replica per stage and leaves replication to the partitioned pipeline
    layer (:class:`SocketExecutor`).
    """

    def __init__(
        self,
        window_sizes_ms: Sequence[int],
        condition: JoinCondition,
        nodes: Sequence[NodeAddress],
        collect_results: bool = True,
    ) -> None:
        if len(window_sizes_ms) < 2:
            raise ValueError("a join tree needs at least two streams")
        self.window_sizes_ms = [int(w) for w in window_sizes_ms]
        self.num_streams = len(window_sizes_ms)
        self._collect = collect_results
        self._results: List[JoinResult] = []
        self._count = 0
        self._closed = [False] * self.num_streams
        self._flushed = False
        self._stages: List[SocketConnection] = []
        self._stage_exhausted = [False] * (self.num_streams - 1)
        addresses = [(str(host), int(port)) for host, port in nodes]
        try:
            left_cover = frozenset({0})
            for index in range(self.num_streams - 1):
                spec = _WorkerSpec(
                    kind=KIND_TREE,
                    index=index,
                    config=_TreeNodeSpec(
                        window_sizes_ms=self.window_sizes_ms,
                        condition=condition,
                        left_cover=left_cover,
                        right_cover=frozenset({index + 1}),
                    ),
                )
                conn, _node_pid, _node_index = connect_worker(
                    addresses, spec, preferred=index % len(addresses)
                )
                self._stages.append(conn)
                left_cover = left_cover | {index + 1}
        except BaseException:
            self.close()
            raise

    # -- driving -------------------------------------------------------

    def process(self, t: StreamTuple) -> Union[List[JoinResult], int]:
        """Feed one base tuple; return results completed by the root."""
        if self._flushed:
            raise RuntimeError("tree already flushed")
        if not 0 <= t.stream < self.num_streams:
            raise ValueError(
                f"tuple stream index {t.stream} outside [0, {self.num_streams})"
            )
        if self._closed[t.stream]:
            raise ValueError(f"stream {t.stream} already closed")
        before = self._count
        if t.stream == 0:
            self._feed(0, 0, [PartialResult.of(t)])
        else:
            self._feed(t.stream - 1, 1, [PartialResult.of(t)])
        return self._drain(before)

    def close_stream(self, stream: int) -> Union[List[JoinResult], int]:
        """Close one base stream; cascade exhaustion down the tree.

        Mirrors :meth:`TreeJoinOperator.close_stream` exactly: the
        closed port's unlocked emissions forward downstream *first*,
        then each exhausted stage closes its successor's port 0, left
        to right, stopping at the first non-exhausted stage.
        """
        if self._flushed:
            raise RuntimeError("tree already flushed")
        if not 0 <= stream < self.num_streams:
            raise ValueError(
                f"stream index {stream} outside [0, {self.num_streams})"
            )
        before = self._count
        if self._closed[stream]:
            return self._drain(before)
        self._closed[stream] = True
        if stream == 0:
            self._close_port(0, 0)
        else:
            self._close_port(stream - 1, 1)
        for index in range(len(self._stages) - 1):
            if self._stage_exhausted[index]:
                self._close_port(index + 1, 0)
            else:
                break
        return self._drain(before)

    def flush(self) -> Union[List[JoinResult], int]:
        """Flush every stage left to right; ends the stage workers."""
        if self._flushed:
            return self._drain(self._count)
        self._flushed = True
        before = self._count
        for index, conn in enumerate(self._stages):
            conn.send((MSG_FLUSH, None))
            block = self._await_ok(index)
            self._emit(index, decode_partials(block) if block is not None else [])
        return self._drain(before)

    def close(self) -> None:
        """Abort every stage without draining (abandoned run)."""
        for conn in self._stages:
            if not self._flushed:
                try:
                    conn.send((MSG_ABORT, None))
                except OSError:
                    pass
            conn.close()
        self._flushed = True

    def __enter__(self) -> "DistributedTreeJoin":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()

    @property
    def results_produced(self) -> int:
        return self._count

    # -- internals -----------------------------------------------------

    def _feed(
        self, stage: int, port: int, partials: Sequence[PartialResult]
    ) -> None:
        conn = self._stages[stage]
        conn.send((MSG_BATCH, (port, encode_partials(partials))))
        block = self._await_ok(stage)
        if block is not None:
            self._emit(stage, decode_partials(block))

    def _close_port(self, stage: int, port: int) -> None:
        conn = self._stages[stage]
        conn.send((MSG_CLOSE, port))
        block, exhausted = self._await_ok(stage)
        self._stage_exhausted[stage] = exhausted
        if block is not None:
            # Forward what the closure unlocked BEFORE any further
            # closes reach the downstream stages (close-order fidelity).
            self._emit(stage, decode_partials(block))

    def _emit(self, stage: int, emissions: List[PartialResult]) -> None:
        if not emissions:
            return
        if stage == len(self._stages) - 1:
            for item in emissions:
                self._count += 1
                if self._collect:
                    components = tuple(
                        item.components[s] for s in range(self.num_streams)
                    )
                    self._results.append(JoinResult(item.ts, components))
        else:
            self._feed(stage + 1, 0, emissions)

    def _await_ok(self, stage: int) -> Any:
        try:
            tag, payload = self._stages[stage].recv()
        except (EOFError, OSError) as exc:
            raise RuntimeError(
                f"tree stage {stage} worker died: {exc}"
            ) from exc
        if tag != "ok":
            raise RuntimeError(f"tree stage {stage} failed: {payload}")
        return payload

    def _drain(self, before: int) -> Union[List[JoinResult], int]:
        if self._collect:
            new = self._results
            self._results = []
            return new
        return self._count - before
