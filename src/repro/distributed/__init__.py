"""Distributed MSWJ applicability (paper Sec. V): binary join trees with per-operator synchronizers."""
