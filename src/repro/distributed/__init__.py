"""Distributed MSWJ applicability (paper Sec. V) and its socket runtime.

Two layers: :mod:`~repro.distributed.tree` decomposes the m-way join
into a left-deep tree of binary joins with per-operator synchronizers
(the paper's distributed applicability argument), and
:mod:`~repro.distributed.runtime` scales both execution models out over
TCP — :class:`~repro.distributed.runtime.NodeServer` worker hosts,
drop-in :class:`~repro.distributed.runtime.SocketExecutor` /
:class:`~repro.distributed.runtime.SupervisedSocketExecutor` backends
for the partitioned pipeline (``transport="socket"``), and
:class:`~repro.distributed.runtime.DistributedTreeJoin`, which places
each tree node in its own remote worker with composite batches flowing
stage to stage through the columnar block codec.
"""

from .runtime import (
    DistributedTreeJoin,
    NodeServer,
    PartialBlock,
    SocketConnection,
    SocketExecutor,
    SocketIntegrityError,
    SupervisedSocketExecutor,
    connect_worker,
    decode_partials,
    encode_partials,
)
from .tree import BinaryJoinNode, PartialResult, TreeJoinOperator

__all__ = [
    "BinaryJoinNode",
    "DistributedTreeJoin",
    "NodeServer",
    "PartialBlock",
    "PartialResult",
    "SocketConnection",
    "SocketExecutor",
    "SocketIntegrityError",
    "SupervisedSocketExecutor",
    "TreeJoinOperator",
    "connect_worker",
    "decode_partials",
    "encode_partials",
]
