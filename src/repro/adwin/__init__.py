"""ADWIN adaptive windowing (Bifet & Gavalda 2007), used by the Statistics Manager."""

from .adwin import Adwin

__all__ = ["Adwin"]
