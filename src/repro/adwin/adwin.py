"""ADWIN: ADaptive WINdowing with change detection (Bifet & Gavaldà 2007).

The paper's Statistics Manager sizes each stream's delay-history window
``R_i^stat`` with "the adaptive window approach proposed in [25]" — ADWIN.
ADWIN maintains a window of the most recent values of a (bounded) signal
and shrinks it whenever two adjacent sub-windows have averages that differ
by more than a threshold derived from the Hoeffding bound; the window
therefore grows on stationary input and collapses to recent data after a
distribution change.

This is the ADWIN2 variant: the window is stored as an exponential
histogram of buckets (at most ``max_buckets`` buckets per capacity level),
so memory is ``O(max_buckets · log(n))`` and each update is amortized
``O(log n)``.  Cut checks are performed every ``clock`` insertions, as in
the reference implementation.

The delta parameter is the change-detector confidence: smaller delta means
fewer false alarms but slower reaction.
"""

from __future__ import annotations

import math
from typing import List


class _Bucket:
    """A bucket holds the sum and variance contribution of 2^level items."""

    __slots__ = ("total", "variance")

    def __init__(self, total: float = 0.0, variance: float = 0.0) -> None:
        self.total = total
        self.variance = variance


class _BucketRow:
    """All buckets of one capacity level (each covering 2^level items)."""

    __slots__ = ("buckets",)

    def __init__(self) -> None:
        self.buckets: List[_Bucket] = []


class Adwin:
    """Adaptive sliding window with Hoeffding-bound change detection.

    Parameters
    ----------
    delta:
        Confidence parameter of the change detector (default 0.002, the
        value used throughout the ADWIN literature).
    max_buckets:
        Maximum number of buckets per exponential-histogram row.
    clock:
        Number of insertions between cut checks (amortizes the scan).
    min_window:
        Do not attempt cuts while the window is smaller than this.
    """

    def __init__(
        self,
        delta: float = 0.002,
        max_buckets: int = 5,
        clock: int = 32,
        min_window: int = 16,
    ) -> None:
        if not 0.0 < delta < 1.0:
            raise ValueError(f"delta must be in (0, 1), got {delta}")
        if max_buckets < 1:
            raise ValueError("max_buckets must be >= 1")
        self.delta = delta
        self.max_buckets = max_buckets
        self.clock = clock
        self.min_window = min_window
        self._rows: List[_BucketRow] = [_BucketRow()]
        self._total = 0.0
        self._variance = 0.0
        self._width = 0
        self._ticks = 0
        self._detections = 0

    # ------------------------------------------------------------------
    # public interface
    # ------------------------------------------------------------------

    @property
    def width(self) -> int:
        """Current window length (number of items)."""
        return self._width

    @property
    def total(self) -> float:
        return self._total

    @property
    def detections(self) -> int:
        """How many distribution changes have been detected so far."""
        return self._detections

    def mean(self) -> float:
        """Average of the items currently in the window (0.0 when empty)."""
        return self._total / self._width if self._width else 0.0

    def variance(self) -> float:
        """Sample variance of the window content (0.0 when empty)."""
        return self._variance / self._width if self._width else 0.0

    def update(self, value: float) -> bool:
        """Insert ``value``; return True if a change was detected (window cut)."""
        self._insert(value)
        self._ticks += 1
        if self._ticks % self.clock != 0 or self._width < self.min_window:
            return False
        return self._detect_and_cut()

    # ------------------------------------------------------------------
    # exponential-histogram maintenance
    # ------------------------------------------------------------------

    def _insert(self, value: float) -> None:
        row0 = self._rows[0]
        row0.buckets.insert(0, _Bucket(total=value, variance=0.0))
        if self._width > 0:
            mean = self._total / self._width
            self._variance += (
                self._width / (self._width + 1.0) * (value - mean) * (value - mean)
            )
        self._width += 1
        self._total += value
        if len(row0.buckets) > self.max_buckets:
            self._compress()

    def _compress(self) -> None:
        level = 0
        while level < len(self._rows):
            row = self._rows[level]
            if len(row.buckets) <= self.max_buckets:
                break
            # Merge the two oldest buckets of this row into the next row.
            older = row.buckets.pop()
            newer = row.buckets.pop()
            capacity = 1 << level
            mean_older = older.total / capacity
            mean_newer = newer.total / capacity
            merged_variance = (
                older.variance
                + newer.variance
                + capacity
                * capacity
                / (2.0 * capacity)
                * (mean_older - mean_newer) ** 2
            )
            merged = _Bucket(total=older.total + newer.total, variance=merged_variance)
            if level + 1 == len(self._rows):
                self._rows.append(_BucketRow())
            self._rows[level + 1].buckets.insert(0, merged)
            level += 1

    def _drop_oldest(self) -> None:
        """Remove the single oldest bucket (the tail of the highest row)."""
        for level in range(len(self._rows) - 1, -1, -1):
            row = self._rows[level]
            if row.buckets:
                bucket = row.buckets.pop()
                capacity = 1 << level
                if self._width > capacity:
                    mean_bucket = bucket.total / capacity
                    mean_rest = (self._total - bucket.total) / (self._width - capacity)
                    self._variance -= bucket.variance + (
                        capacity
                        * (self._width - capacity)
                        / self._width
                        * (mean_bucket - mean_rest) ** 2
                    )
                    self._variance = max(0.0, self._variance)
                else:
                    self._variance = 0.0
                self._width -= capacity
                self._total -= bucket.total
                break
        while len(self._rows) > 1 and not self._rows[-1].buckets:
            self._rows.pop()

    # ------------------------------------------------------------------
    # change detection
    # ------------------------------------------------------------------

    def _detect_and_cut(self) -> bool:
        """Check every bucket boundary for a significant mean difference.

        Scans from the oldest boundary toward the newest; on detection the
        oldest bucket is dropped and the scan restarts, exactly as in the
        reference ADWIN2 pseudocode.
        """
        changed = False
        reduced = True
        sqrt = math.sqrt

        def window_terms():
            n = float(self._width)
            variance = self._variance / n if n else 0.0
            log_term = math.log(2.0 * math.log(max(n, math.e)) / self.delta)
            return (
                self._width,
                self._total,
                log_term,
                2.0 * variance * log_term,
            )

        while reduced:
            reduced = False
            # Window statistics only change on a drop, so the
            # per-boundary Hoeffding terms that depend on them are
            # hoisted out of the walk and refreshed after every drop
            # (either here, when the walk restarts, or inline when a
            # below-min_window drop lets the walk continue) — matching
            # the reference code's live reads at each boundary.
            width, total, log_term, variance_term = window_terms()
            n0 = 0.0
            sum0 = 0.0
            for level in range(len(self._rows) - 1, -1, -1):
                capacity = float(1 << level)
                for bucket in reversed(self._rows[level].buckets):
                    n0 += capacity
                    sum0 += bucket.total
                    n1 = width - n0
                    if n0 < 1 or n1 < 1:
                        continue
                    mean0 = sum0 / n0
                    mean1 = (total - sum0) / n1
                    inv_harmonic = 1.0 / n0 + 1.0 / n1
                    epsilon = (
                        sqrt(variance_term * inv_harmonic)
                        + 2.0 / 3.0 * inv_harmonic * log_term
                    )
                    if abs(mean0 - mean1) > epsilon:
                        self._drop_oldest()
                        self._detections += 1
                        changed = True
                        reduced = self._width > self.min_window
                        if not reduced:
                            width, total, log_term, variance_term = window_terms()
                        break
                if reduced:
                    break
        return changed
