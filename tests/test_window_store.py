"""WindowStore contract tests: TieredStore ≡ InMemoryStore.

The store abstraction's whole promise is that the choice of state
representation changes the memory shape of the join, never its output.
These tests pin that promise at three levels:

* **operation equivalence** (hypothesis) — arbitrary interleavings of
  insert / expire / extract / adopt_frozen leave both stores with the
  same observable surface (length, tuple order, lookups, timestamps);
* **migration round-trips** (hypothesis) — ``extract_state`` at random
  cut points, shipped through ``encode_state``/``decode_state`` and a
  real pickle, adopts into either store kind with identical content
  (including the column fast path that moves cold segments without
  decoding);
* **pipeline byte-identity** — full pipelines over the tiered store
  produce the exact result sequence and ``JoinStatistics`` of the
  in-memory store, across serial/process executors, shard counts, and
  live rebalancing.

Plus unit coverage for the tiered mechanics the equivalence tests rely
on: compaction/freeze accounting, bucket-granular expiry, the decode
cache, summary-based probe skipping, and per-store metrics surfaced
through ``PipelineMetrics``.
"""

import pickle
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    EquiPredicate,
    FixedKPolicy,
    InMemoryStore,
    JoinCondition,
    PartitionedPipeline,
    PipelineConfig,
    PipelineMetrics,
    QualityDrivenPipeline,
    StreamTuple,
    TieredStore,
    TieredStoreConfig,
    make_store,
    seconds,
)
from repro.core.blocks import (
    ColdSegment,
    decode_state,
    encode_state,
    freeze_segment,
    segment_column,
    thaw_segment,
)

ATTRS = ("v",)
DOMAIN = 5

SMALL_TIERED = TieredStoreConfig(hot_budget=8, bucket_span_ms=50, cache_tuples=16)


def make_tuple(ts, value, seq, stream=0):
    return StreamTuple(
        ts=ts, values={"v": value}, stream=stream, seq=seq, arrival=seq
    )


def store_pair(tiered_config=SMALL_TIERED):
    return InMemoryStore(ATTRS), TieredStore(ATTRS, tiered_config)


def observe(store):
    """The full observable surface of one store, as plain data."""
    return {
        "len": len(store),
        "tuples": list(store.tuples()),
        "timestamps": store.timestamps(),
        "min_ts": store.min_ts(),
        "lookups": {
            value: list(store.lookup("v", value)) for value in range(DOMAIN)
        },
    }


def assert_equivalent(memory, tiered):
    assert observe(memory) == observe(tiered)


# ---------------------------------------------------------------------------
# strategies
# ---------------------------------------------------------------------------


@st.composite
def op_sequences(draw, max_ops=60):
    """Arbitrary interleavings of the four state-changing operations."""
    count = draw(st.integers(min_value=1, max_value=max_ops))
    ops = []
    seq = 0
    for _ in range(count):
        kind = draw(
            st.sampled_from(
                ["insert", "insert", "insert", "expire", "extract", "adopt"]
            )
        )
        if kind == "insert":
            ops.append(
                (
                    "insert",
                    draw(st.integers(min_value=0, max_value=400)),
                    draw(st.integers(min_value=0, max_value=DOMAIN - 1)),
                    seq,
                )
            )
            seq += 1
        elif kind == "expire":
            ops.append(("expire", draw(st.integers(min_value=0, max_value=450))))
        elif kind == "extract":
            ops.append(
                ("extract", draw(st.integers(min_value=0, max_value=DOMAIN - 1)))
            )
        else:
            size = draw(st.integers(min_value=1, max_value=5))
            batch = []
            base = draw(st.integers(min_value=0, max_value=350))
            for _ in range(size):
                batch.append(
                    (
                        base + draw(st.integers(min_value=0, max_value=40)),
                        draw(st.integers(min_value=0, max_value=DOMAIN - 1)),
                        seq,
                    )
                )
                seq += 1
            ops.append(("adopt", batch))
    return ops


def apply_op(store, op):
    """Apply one op; return the comparable outcome."""
    if op[0] == "insert":
        store.insert(make_tuple(op[1], op[2], op[3]))
        return None
    if op[0] == "expire":
        return store.expire_before(op[1])
    if op[0] == "extract":
        target = op[1]
        return store.extract(lambda t: t.get("v") == target)
    batch = [make_tuple(ts, value, seq) for ts, value, seq in op[1]]
    slots = list(range(len(batch)))
    store.adopt_frozen(freeze_segment(batch, slots, ATTRS))
    return None


# ---------------------------------------------------------------------------
# hypothesis: operation equivalence
# ---------------------------------------------------------------------------


class TestOperationEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(ops=op_sequences())
    def test_arbitrary_op_interleavings_match_in_memory(self, ops):
        memory, tiered = store_pair()
        for op in ops:
            assert apply_op(memory, op) == apply_op(tiered, op)
            assert_equivalent(memory, tiered)

    @settings(max_examples=30, deadline=None)
    @given(
        ops=op_sequences(),
        budget=st.integers(min_value=1, max_value=32),
        span=st.integers(min_value=10, max_value=200),
        cache=st.integers(min_value=1, max_value=64),
    )
    def test_equivalence_is_config_independent(self, ops, budget, span, cache):
        """Any tier geometry — tiny budgets, tiny caches, odd spans —
        yields the same observable behavior."""
        memory, tiered = store_pair(
            TieredStoreConfig(
                hot_budget=budget, bucket_span_ms=span, cache_tuples=cache
            )
        )
        for op in ops:
            assert apply_op(memory, op) == apply_op(tiered, op)
        assert_equivalent(memory, tiered)

    @settings(max_examples=30, deadline=None)
    @given(ops=op_sequences())
    def test_eviction_counts_and_metrics_track_content(self, ops):
        memory, tiered = store_pair()
        evicted = 0
        for op in ops:
            left = apply_op(memory, op)
            right = apply_op(tiered, op)
            assert left == right
            if op[0] == "expire":
                evicted += left
        for store in (memory, tiered):
            m = store.metrics()
            assert m.evicted == evicted
            assert m.resident_objects >= 0
        tm = tiered.metrics()
        assert tm.hot_objects + tm.cold_tuples == len(tiered)
        assert memory.metrics().resident_objects == len(memory)


# ---------------------------------------------------------------------------
# hypothesis: migration round-trips at random cut points
# ---------------------------------------------------------------------------


@st.composite
def migration_cases(draw):
    count = draw(st.integers(min_value=1, max_value=50))
    inserts = [
        (
            draw(st.integers(min_value=0, max_value=400)),
            draw(st.integers(min_value=0, max_value=DOMAIN - 1)),
            seq,
        )
        for seq in range(count)
    ]
    expire_to = draw(st.integers(min_value=0, max_value=200))
    # The cut: which attribute values migrate, and to which destination.
    cut = {
        value: draw(
            st.sampled_from([None, "d0", "d1"])
        )
        for value in range(DOMAIN)
    }
    return inserts, expire_to, cut


class TestMigrationRoundTrip:
    @settings(max_examples=60, deadline=None)
    @given(case=migration_cases(), column_fast_path=st.booleans())
    def test_extract_state_matches_and_round_trips(self, case, column_fast_path):
        inserts, expire_to, cut = case
        memory, tiered = store_pair()
        for ts, value, seq in inserts:
            memory.insert(make_tuple(ts, value, seq))
            tiered.insert(make_tuple(ts, value, seq))
        memory.expire_before(expire_to)
        tiered.expire_before(expire_to)

        def classify(t):
            return cut[t.get("v")]

        kwargs = (
            {"partition_attr": "v", "value_classifier": cut.get}
            if column_fast_path
            else {}
        )
        mem_groups = memory.extract_state(classify)
        tier_groups = tiered.extract_state(classify, **kwargs)
        # Sources agree after the carve-out.
        assert_equivalent(memory, tiered)
        assert set(mem_groups) == set(tier_groups)
        for group, items in mem_groups.items():
            # The in-memory store moves plain tuples in slot order; the
            # tiered store may ship whole cold segments — flattened,
            # both spell out the same tuple sequence.
            flattened = []
            for item in tier_groups[group]:
                if isinstance(item, ColdSegment):
                    flattened.extend(thaw_segment(item))
                else:
                    flattened.append(item)
            assert flattened == items

            # Ship the tiered group through the real wire path (encode,
            # pickle, decode) and adopt into fresh stores of each kind:
            # both destinations must agree with each other.
            block = encode_state(0, 1, (), tier_groups[group], [])
            window_items, pending = decode_state(
                pickle.loads(pickle.dumps(block, protocol=5))
            )
            assert pending == []
            dest_memory, dest_tiered = store_pair()
            for dest in (dest_memory, dest_tiered):
                for item in window_items:
                    if isinstance(item, ColdSegment):
                        dest.adopt_frozen(item)
                    else:
                        dest.insert(item)
            assert_equivalent(dest_memory, dest_tiered)
            assert list(dest_memory.tuples()) == items

    @settings(max_examples=30, deadline=None)
    @given(case=migration_cases())
    def test_column_fast_path_agrees_with_tuple_classification(self, case):
        """The value-level classifier and the tuple-level classifier
        must carve out identical groups — this is what lets cold
        segments move without decoding."""
        inserts, expire_to, cut = case
        _, with_column = store_pair()
        _, without_column = store_pair()
        for ts, value, seq in inserts:
            with_column.insert(make_tuple(ts, value, seq))
            without_column.insert(make_tuple(ts, value, seq))
        with_column.expire_before(expire_to)
        without_column.expire_before(expire_to)

        def classify(t):
            return cut[t.get("v")]

        fast = with_column.extract_state(
            classify, partition_attr="v", value_classifier=cut.get
        )
        slow = without_column.extract_state(classify)

        def flat(groups):
            out = {}
            for group, items in groups.items():
                tuples = []
                for item in items:
                    if isinstance(item, ColdSegment):
                        tuples.extend(thaw_segment(item))
                    else:
                        tuples.append(item)
                out[group] = tuples
            return out

        assert flat(fast) == flat(slow)
        assert_equivalent(with_column, without_column)


# ---------------------------------------------------------------------------
# pipeline byte-identity (the acceptance bar)
# ---------------------------------------------------------------------------

CONDITION = JoinCondition([EquiPredicate(0, "k", 1, "k")])


def run_pipeline(store, shards=1, executor="serial", rebalance=False,
                 tuples=3000):
    config = PipelineConfig(
        window_sizes_ms=[seconds(3), seconds(3)],
        condition=CONDITION,
        policy=FixedKPolicy(300),
        initial_k_ms=300,
        collect_results=True,
        store=store,
    )
    kwargs = {}
    if rebalance:
        kwargs = dict(rebalance=True, rebalance_interval=400)
    rng = random.Random(11)
    with PartitionedPipeline(
        config, shards, executor=executor, batch_size=64, **kwargs
    ) as pipeline:
        out = []
        for i in range(tuples):
            t = StreamTuple(
                ts=i * 2,
                values={"k": rng.randrange(17)},
                stream=i % 2,
                seq=i // 2,
                arrival=i * 2,
            )
            out.extend(pipeline.process(t))
        out.extend(pipeline.flush())
        stats = pipeline.join_statistics()
        metrics = pipeline.metrics
    return (
        sorted((r.ts, tuple(c.seq for c in r.components)) for r in out),
        stats,
        metrics,
    )


TIERED = TieredStoreConfig(hot_budget=64, bucket_span_ms=200, cache_tuples=128)


class TestPipelineByteIdentity:
    @pytest.fixture(scope="class")
    def baseline(self):
        return run_pipeline(None)

    @pytest.mark.parametrize(
        "shards,executor,rebalance",
        [
            (1, "serial", False),
            (2, "serial", False),
            (4, "serial", False),
            (2, "serial", True),
            (4, "serial", True),
            (2, "process", True),
        ],
    )
    def test_tiered_matches_in_memory(self, baseline, shards, executor,
                                      rebalance):
        results, stats, _ = run_pipeline(
            TIERED, shards=shards, executor=executor, rebalance=rebalance
        )
        assert results == baseline[0]
        assert stats == baseline[1]

    def test_tiered_metrics_report_bounded_hot_tier(self, baseline):
        _, _, metrics = run_pipeline(TIERED)
        caps = TIERED.hot_budget + max(1, TIERED.hot_budget // 8)
        assert len(metrics.stream_hot_objects) == 2
        for hot in metrics.stream_hot_objects:
            # Sampled peak stays within budget + active-bucket slack
            # (bounded here by one bucket of the 2-ms-spaced stream).
            assert hot <= caps + TIERED.bucket_span_ms
        assert any(b > 0 for b in metrics.stream_encoded_bytes)
        assert metrics.decode_misses > 0
        in_memory_metrics = baseline[2]
        assert in_memory_metrics.stream_encoded_bytes in ([0, 0], [])
        # Both stores evict the same expired tuples.
        assert metrics.stream_evicted == in_memory_metrics.stream_evicted

    def test_serial_pipeline_process_equivalence(self, baseline):
        """The plain (non-partitioned) pipeline honors config.store too."""
        config = PipelineConfig(
            window_sizes_ms=[seconds(3), seconds(3)],
            condition=CONDITION,
            policy=FixedKPolicy(300),
            initial_k_ms=300,
            collect_results=True,
            store=TIERED,
        )
        pipeline = QualityDrivenPipeline(config)
        rng = random.Random(11)
        out = []
        for i in range(3000):
            t = StreamTuple(
                ts=i * 2,
                values={"k": rng.randrange(17)},
                stream=i % 2,
                seq=i // 2,
                arrival=i * 2,
            )
            out.extend(pipeline.process(t))
        out.extend(pipeline.flush())
        assert (
            sorted((r.ts, tuple(c.seq for c in r.components)) for r in out)
            == baseline[0]
        )
        assert [w.store.__class__ for w in pipeline.join.windows] == [
            TieredStore, TieredStore
        ]


# ---------------------------------------------------------------------------
# unit coverage: tiered mechanics
# ---------------------------------------------------------------------------


class TestTieredMechanics:
    def test_compaction_freezes_completed_buckets_only(self):
        store = TieredStore(ATTRS, TieredStoreConfig(hot_budget=4,
                                                     bucket_span_ms=100))
        for seq, ts in enumerate([10, 20, 30, 40, 110, 120, 130, 140, 210]):
            store.insert(make_tuple(ts, seq % DOMAIN, seq))
        m = store.metrics()
        assert m.freezes >= 1
        assert m.cold_tuples > 0
        assert m.encoded_bytes > 0
        # The active bucket (ts 210) never freezes.
        assert any(t.ts == 210 for t in [store._hot[s] for s in store._hot])
        assert len(store) == 9

    def test_bucket_granular_expiry_drops_whole_segments(self):
        store = TieredStore(ATTRS, TieredStoreConfig(hot_budget=2,
                                                     bucket_span_ms=100))
        for seq, ts in enumerate([10, 20, 110, 120, 210, 220, 310]):
            store.insert(make_tuple(ts, seq % DOMAIN, seq))
        before = store.metrics()
        assert before.cold_tuples > 0
        removed = store.expire_before(200)
        assert removed == 4
        assert store.timestamps() == [210, 220, 310]
        assert store.metrics().evicted == 4

    def test_straddler_segments_thaw_for_exact_expiry(self):
        store = TieredStore(ATTRS, TieredStoreConfig(hot_budget=2,
                                                     bucket_span_ms=100))
        for seq, ts in enumerate([110, 190, 250, 260, 350]):
            store.insert(make_tuple(ts, seq % DOMAIN, seq))
        # Bucket 1 holds {110, 190}; expiring to 150 straddles it.
        removed = store.expire_before(150)
        assert removed == 1
        assert store.timestamps() == [190, 250, 260, 350]
        assert store.metrics().thaws >= 1

    def test_lookup_skips_segments_via_summaries(self):
        store = TieredStore(ATTRS, TieredStoreConfig(hot_budget=2,
                                                     bucket_span_ms=100))
        for seq, ts in enumerate([10, 20, 30, 40, 150, 260]):
            store.insert(make_tuple(ts, 1, seq))
        store.insert(make_tuple(270, 2, 6))
        misses_before = store.metrics().decode_misses
        # Value 3 appears nowhere: the summaries answer without decoding.
        assert list(store.lookup("v", 3)) == []
        assert store.metrics().decode_misses == misses_before

    def test_decode_cache_hits_on_repeated_probes(self):
        store = TieredStore(ATTRS, TieredStoreConfig(hot_budget=2,
                                                     bucket_span_ms=100,
                                                     cache_tuples=64))
        for seq, ts in enumerate([10, 20, 30, 150, 260]):
            store.insert(make_tuple(ts, 1, seq))
        list(store.lookup("v", 1))
        misses = store.metrics().decode_misses
        list(store.lookup("v", 1))
        after = store.metrics()
        assert after.decode_misses == misses
        assert after.decode_hits > 0

    def test_adopt_frozen_falls_back_without_summaries(self):
        batch = [make_tuple(10, 1, 0), make_tuple(20, 2, 1)]
        segment = freeze_segment(batch, [0, 1], ())  # no summaries
        store = TieredStore(ATTRS, SMALL_TIERED)
        store.adopt_frozen(segment)
        assert list(store.lookup("v", 1)) == [batch[0]]
        assert store.metrics().cold_tuples == 0  # decoded, not kept frozen

    def test_segment_column_and_summaries(self):
        batch = [make_tuple(10, 1, 0), make_tuple(20, 2, 1)]
        segment = freeze_segment(batch, [4, 7], ATTRS)
        assert segment.slots == (4, 7)
        assert segment.min_ts == 10 and segment.max_ts == 20
        assert segment.summaries["v"] == frozenset({1, 2})
        assert segment_column(segment, "v") == [1, 2]
        assert segment_column(segment, "absent") == [None, None]
        assert segment.encoded_bytes > 0
        assert thaw_segment(segment) == batch

    def test_make_store_dispatch(self):
        assert isinstance(make_store(None, ATTRS), InMemoryStore)
        assert isinstance(make_store("memory", ATTRS), InMemoryStore)
        assert isinstance(make_store("tiered", ATTRS), TieredStore)
        tiered = make_store(SMALL_TIERED, ATTRS)
        assert isinstance(tiered, TieredStore)
        assert tiered.config is SMALL_TIERED
        with pytest.raises(ValueError):
            make_store("bogus", ATTRS)

    def test_tiered_config_validation(self):
        with pytest.raises(ValueError):
            TieredStoreConfig(hot_budget=0)
        with pytest.raises(ValueError):
            TieredStoreConfig(bucket_span_ms=0)
        with pytest.raises(ValueError):
            TieredStoreConfig(cache_tuples=-1)
        # 0 is legal: it disables the decode cache (one transient entry).
        assert TieredStoreConfig(cache_tuples=0).cache_tuples == 0

    def test_store_spec_pickles_inside_config(self):
        config = PipelineConfig(
            window_sizes_ms=[seconds(1), seconds(1)],
            condition=CONDITION,
            store=SMALL_TIERED,
        )
        clone = pickle.loads(pickle.dumps(config, protocol=5))
        assert clone.store == SMALL_TIERED


# ---------------------------------------------------------------------------
# metrics plumbing
# ---------------------------------------------------------------------------


class TestMetricsPlumbing:
    def test_merge_sums_stream_state_lists_with_padding(self):
        a = PipelineMetrics(
            stream_resident_objects=[10, 20],
            stream_hot_objects=[5, 6],
            stream_encoded_bytes=[100, 200],
            stream_evicted=[3, 4],
            decode_hits=7,
            decode_misses=9,
        )
        b = PipelineMetrics(
            stream_resident_objects=[1, 2, 3],
            stream_evicted=[1],
            decode_hits=1,
        )
        merged = PipelineMetrics.merge([a, b])
        assert merged.stream_resident_objects == [11, 22, 3]
        assert merged.stream_hot_objects == [5, 6]
        assert merged.stream_encoded_bytes == [100, 200]
        assert merged.stream_evicted == [4, 4]
        assert merged.decode_hits == 8
        assert merged.decode_misses == 9

    def test_window_store_metrics_surface(self):
        memory, tiered = store_pair()
        for seq in range(20):
            memory.insert(make_tuple(seq * 10, seq % DOMAIN, seq))
            tiered.insert(make_tuple(seq * 10, seq % DOMAIN, seq))
        mm, tm = memory.metrics(), tiered.metrics()
        assert mm.resident_objects == mm.hot_objects == 20
        assert mm.encoded_bytes == 0
        assert tm.hot_objects < 20  # bounded: segments froze
        assert tm.hot_objects + tm.cold_tuples == 20
        assert tm.encoded_bytes > 0
