"""Property-based tests (hypothesis) on the core invariants.

Covered invariants:

* K-slack conservation and ordering guarantees;
* the Synchronizer's merge/ordering guarantees;
* Theorem 1 (Same-K policy): per-stream buffer configurations are
  equivalent to one shared buffer size;
* MSWJ correctness against the brute-force reference on arbitrary inputs;
* produced ⊆ true under any disorder-handling configuration;
* model invariants (monotonicity, normalization) on arbitrary pdfs.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    CumulativePdf,
    EquiPredicate,
    FixedKPolicy,
    JoinCondition,
    KSlackBuffer,
    MSWJOperator,
    NexmarkConfig,
    PipelineConfig,
    QualityDrivenPipeline,
    RecallModel,
    StreamModelInput,
    StreamTuple,
    Synchronizer,
    auction_bid_query,
    compute_truth,
    make_auction_bids,
    run_partitioned,
)
from repro.streams.source import Dataset

from .reference import reference_join, result_key_set

# ----------------------------------------------------------------------
# strategies
# ----------------------------------------------------------------------

timestamps = st.lists(st.integers(min_value=0, max_value=300), min_size=1, max_size=60)
small_k = st.integers(min_value=0, max_value=100)


def _stream(ts_list, stream=0):
    return [
        StreamTuple(ts=ts, stream=stream, seq=seq, arrival=seq)
        for seq, ts in enumerate(ts_list)
    ]


@st.composite
def random_dataset(draw, num_streams=2, max_tuples=40, domain=3, span=200):
    count = draw(st.integers(min_value=num_streams, max_value=max_tuples))
    tuples = []
    seqs = [0] * num_streams
    for position in range(count):
        stream = draw(st.integers(min_value=0, max_value=num_streams - 1))
        t = StreamTuple(
            ts=draw(st.integers(min_value=0, max_value=span)),
            values={"v": draw(st.integers(min_value=0, max_value=domain - 1))},
            stream=stream,
            seq=seqs[stream],
            arrival=position,
        )
        seqs[stream] += 1
        tuples.append(t)
    return Dataset(tuples, num_streams=num_streams)


# ----------------------------------------------------------------------
# K-slack properties
# ----------------------------------------------------------------------

class TestKSlackProperties:
    @given(timestamps, small_k)
    @settings(max_examples=200)
    def test_conservation(self, ts_list, k):
        buffer = KSlackBuffer(k)
        out = []
        for t in _stream(ts_list):
            out.extend(buffer.process(t))
        out.extend(buffer.flush())
        assert sorted(x.ts for x in out) == sorted(ts_list)
        assert len(out) == len(ts_list)

    @given(timestamps)
    @settings(max_examples=200)
    def test_k_at_least_max_delay_sorts_fully(self, ts_list):
        local = 0
        max_delay = 0
        for ts in ts_list:
            local = max(local, ts)
            max_delay = max(max_delay, local - ts)
        buffer = KSlackBuffer(max_delay)
        out = []
        for t in _stream(ts_list):
            out.extend(buffer.process(t))
        out.extend(buffer.flush())
        released = [x.ts for x in out]
        assert released == sorted(released)

    @given(timestamps, small_k)
    @settings(max_examples=200)
    def test_residual_delay_bounded(self, ts_list, k):
        """Any tuple's disorder in the output is reduced by at least K."""
        buffer = KSlackBuffer(k)
        out = []
        for t in _stream(ts_list):
            out.extend(buffer.process(t))
        out.extend(buffer.flush())
        # Residual delay in the output stream: max over running high-water.
        high = 0
        for t in out:
            residual = high - t.ts
            if residual > 0:
                assert residual <= max(0, t.delay - k)
            high = max(high, t.ts)

    @given(timestamps, small_k, small_k)
    @settings(max_examples=100)
    def test_release_prefix_independent_of_later_shrink(self, ts_list, k1, k2):
        """Shrinking K mid-stream releases exactly the newly eligible set."""
        big, small = max(k1, k2), min(k1, k2)
        buffer = KSlackBuffer(big)
        for t in _stream(ts_list):
            buffer.process(t)
        released = buffer.set_k(small)
        bound = buffer.local_time - small
        assert all(t.ts + small <= buffer.local_time for t in released)
        assert all(entry[0] > bound for entry in buffer._heap)


# ----------------------------------------------------------------------
# Synchronizer properties
# ----------------------------------------------------------------------

class TestSynchronizerProperties:
    @given(
        st.lists(
            st.tuples(st.integers(0, 1), st.integers(0, 200)),
            min_size=1,
            max_size=60,
        )
    )
    @settings(max_examples=200)
    def test_conservation(self, specs):
        sync = Synchronizer(2)
        seen = []
        for seq, (stream, ts) in enumerate(specs):
            seen.extend(sync.process(StreamTuple(ts=ts, stream=stream, seq=seq)))
        seen.extend(sync.flush())
        assert len(seen) == len(specs)
        assert sorted(t.ts for t in seen) == sorted(ts for _, ts in specs)

    @given(timestamps, timestamps)
    @settings(max_examples=200)
    def test_sorted_inputs_merge_sorted(self, ts_a, ts_b):
        sync = Synchronizer(2)
        a = sorted(ts_a)
        b = sorted(ts_b)
        out = []
        # Interleave arrivals round-robin (each stream internally sorted).
        streams = [list(reversed(a)), list(reversed(b))]
        seq = 0
        while streams[0] or streams[1]:
            for index in (0, 1):
                if streams[index]:
                    ts = streams[index].pop()
                    out.extend(
                        sync.process(StreamTuple(ts=ts, stream=index, seq=seq))
                    )
                    seq += 1
        out.extend(sync.flush())
        released = [t.ts for t in out]
        assert released == sorted(released)


# ----------------------------------------------------------------------
# Theorem 1: the Same-K policy
# ----------------------------------------------------------------------
#
# The theorem's equivalence argument assumes the synchronizer absorbs the
# leading streams' residual disorder in its buffer.  That is exact when
# every stream's residual (post-K-slack) delay stays below its timestamp
# lead over the slowest stream, so no tuple takes Alg. 1's immediate-
# forwarding straggler path; we generate in that regime (leads >= 70 ms,
# jitter <= 20 ms, K <= 30 ms) and require *exact* join-output equality.
# (Outside the regime the equivalence is approximate; see DESIGN.md §4.)

def _skewed_streams(num_streams, offsets, jitter_pattern, steps, step_ms=10):
    """Lock-step streams with constant offsets and periodic disorder."""
    streams = []
    for i in range(num_streams):
        tuples = []
        for n in range(steps):
            arrival = (n + 1) * step_ms
            jitter = jitter_pattern[n % len(jitter_pattern)]
            ts = max(0, arrival - offsets[i] - jitter)
            tuples.append(
                StreamTuple(
                    ts=ts, stream=i, seq=n, arrival=arrival, values={"v": n % 3}
                )
            )
        streams.append(tuples)
    merged = []
    for n in range(steps):
        for i in range(num_streams):
            merged.append(streams[i][n])
    return merged


def _join_output(merged, num_streams, k_values, windows):
    """Full front end (K-slack per stream + Synchronizer) into an MSWJ."""
    buffers = [KSlackBuffer(k) for k in k_values]
    sync = Synchronizer(num_streams)
    condition = JoinCondition(
        [EquiPredicate(i, "v", i + 1, "v") for i in range(num_streams - 1)]
    )
    op = MSWJOperator(windows, condition)
    out = []

    def feed(released):
        for e in released:
            for emitted in sync.process(e):
                out.extend(op.process(emitted))

    for t in merged:
        clone = StreamTuple(
            ts=t.ts, stream=t.stream, seq=t.seq, arrival=t.arrival, values=t.values
        )
        feed(buffers[t.stream].process(clone))
    for i, buffer in enumerate(buffers):
        feed(buffer.flush())
        for emitted in sync.close_stream(i):
            out.extend(op.process(emitted))
    for emitted in sync.flush():
        out.extend(op.process(emitted))
    return result_key_set(out)


class TestSameKTheorem:
    @given(st.integers(0, 1_000_000))
    @settings(max_examples=60, deadline=None)
    def test_per_stream_config_equivalent_to_same_k(self, seed):
        rng = random.Random(seed)
        num_streams = rng.choice([2, 3, 4])
        # Stream 0 is the slowest by a wide margin (lead >= 70 ms).
        offsets = [100] + [rng.randrange(0, 4) * 10 for _ in range(num_streams - 1)]
        jitter_pattern = [0] + [rng.randrange(0, 3) * 10 for _ in range(3)]
        k_values = [rng.randrange(0, 4) * 10 for _ in range(num_streams)]
        merged = _skewed_streams(num_streams, offsets, jitter_pattern, steps=50)

        local = {}
        for t in merged:
            local[t.stream] = max(local.get(t.stream, 0), t.ts)
        i_t = [local[i] for i in range(num_streams)]
        same_k = min(i_t) - min(i_t[i] - k_values[i] for i in range(num_streams))

        windows = [100] * num_streams
        per_stream = _join_output(merged, num_streams, k_values, windows)
        shared = _join_output(merged, num_streams, [same_k] * num_streams, windows)
        assert per_stream == shared


# ----------------------------------------------------------------------
# MSWJ against the reference, and produced ⊆ true
# ----------------------------------------------------------------------

class TestJoinProperties:
    @given(random_dataset())
    @settings(max_examples=60, deadline=None)
    def test_sorted_replay_matches_reference(self, ds):
        windows = [100, 100]
        condition = JoinCondition([EquiPredicate(0, "v", 1, "v")])
        op = MSWJOperator(windows, condition)
        produced = []
        for t in ds.sorted_by_timestamp():
            produced.extend(op.process(t))
        expected = reference_join(ds, windows, condition)
        assert result_key_set(produced) == result_key_set(expected)

    @given(random_dataset(), st.integers(0, 150))
    @settings(max_examples=60, deadline=None)
    def test_produced_is_subset_of_truth(self, ds, k):
        """Under any (incomplete) disorder handling, produced ⊆ true."""
        windows = [100, 100]
        condition = JoinCondition([EquiPredicate(0, "v", 1, "v")])
        truth = compute_truth(ds, windows, condition, keep_keys=True)

        buffers = [KSlackBuffer(k) for _ in range(2)]
        sync = Synchronizer(2)
        op = MSWJOperator(windows, condition)
        produced = []
        for t in ds.arrivals():
            for released in buffers[t.stream].process(t):
                for emitted in sync.process(released):
                    produced.extend(op.process(emitted))
        for i, buffer in enumerate(buffers):
            for released in buffer.flush():
                for emitted in sync.process(released):
                    produced.extend(op.process(emitted))
            for emitted in sync.close_stream(i):
                produced.extend(op.process(emitted))
        for emitted in sync.flush():
            produced.extend(op.process(emitted))

        produced_keys = result_key_set(produced)
        assert produced_keys <= truth.keys
        assert len(produced) == len(produced_keys)  # no duplicates

    @given(random_dataset())
    @settings(max_examples=30, deadline=None)
    def test_large_k_recovers_all_results(self, ds):
        windows = [400, 400]
        condition = JoinCondition([EquiPredicate(0, "v", 1, "v")])
        truth = compute_truth(ds, windows, condition, keep_keys=True)
        k = max(300, ds.max_delay())

        buffers = [KSlackBuffer(k) for _ in range(2)]
        sync = Synchronizer(2)
        op = MSWJOperator(windows, condition)
        produced = []
        for t in ds.arrivals():
            for released in buffers[t.stream].process(t):
                for emitted in sync.process(released):
                    produced.extend(op.process(emitted))
        for i, buffer in enumerate(buffers):
            for released in buffer.flush():
                for emitted in sync.process(released):
                    produced.extend(op.process(emitted))
            for emitted in sync.close_stream(i):
                produced.extend(op.process(emitted))
        for emitted in sync.flush():
            produced.extend(op.process(emitted))
        assert result_key_set(produced) == truth.keys


# ----------------------------------------------------------------------
# NEXMark-style workload configs (repro.streams.nexmark)
# ----------------------------------------------------------------------
#
# The workload suite must uphold the engine's core guarantees on
# *arbitrary* configurations, not just the curated defaults: whatever
# the rates, phases, skews and disorder, (a) a disordered replay
# produces a subset of the true results, and (b) under lossless
# settings the partitioned engine's merged output is identical at any
# shard count.  Sizes are kept small (seconds of stream time, coarse
# gaps) so hypothesis can explore the config space.


@st.composite
def nexmark_configs(draw):
    return NexmarkConfig(
        num_bid_channels=draw(st.integers(min_value=1, max_value=2)),
        num_phases=draw(st.integers(min_value=1, max_value=4)),
        phase_duration_ms=draw(st.sampled_from([600, 1_000, 1_600])),
        seed=draw(st.integers(min_value=0, max_value=10_000)),
        auction_domain=draw(st.integers(min_value=2, max_value=8)),
        auction_gap_ms=draw(st.sampled_from([60, 90])),
        bid_gap_ms=draw(st.sampled_from([40, 70])),
        max_delay_ms=draw(st.sampled_from([0, 150, 400])),
    )


def _nexmark_setup(config):
    dataset = make_auction_bids(config)
    condition = auction_bid_query(config.num_bid_channels)
    windows = [400] * dataset.num_streams
    return dataset, condition, windows


class TestNexmarkWorkloadProperties:
    @given(nexmark_configs(), st.integers(min_value=0, max_value=500))
    @settings(max_examples=15, deadline=None)
    def test_produced_is_subset_of_truth(self, config, k):
        """Any disorder handling on any workload config: produced ⊆ true."""
        dataset, condition, windows = _nexmark_setup(config)
        truth = compute_truth(dataset, windows, condition, keep_keys=True)
        pipeline = QualityDrivenPipeline(
            PipelineConfig(
                window_sizes_ms=windows,
                condition=condition,
                policy=FixedKPolicy(k),
                initial_k_ms=k,
            )
        )
        produced = []
        for t in dataset.arrivals():
            produced.extend(pipeline.process(t))
        produced.extend(pipeline.flush())
        produced_keys = result_key_set(produced)
        assert produced_keys <= truth.keys
        assert len(produced) == len(produced_keys)  # no duplicates

    @given(nexmark_configs())
    @settings(max_examples=10, deadline=None)
    def test_shard_count_output_identity(self, config):
        """Lossless K: merged output identical at shards 1/2/3."""
        dataset, condition, windows = _nexmark_setup(config)
        k = dataset.max_delay()

        def lossless():
            return PipelineConfig(
                window_sizes_ms=windows,
                condition=condition,
                policy=FixedKPolicy(k),
                initial_k_ms=k,
            )

        def canonical(results):
            return sorted((r.ts, r.key()) for r in results)

        reference = None
        for shards in (1, 2, 3):
            outputs, _ = run_partitioned(
                dataset, lossless(), shards, chunk_size=64
            )
            if reference is None:
                reference = canonical(outputs)
            else:
                assert canonical(outputs) == reference


# ----------------------------------------------------------------------
# Output-side operators
# ----------------------------------------------------------------------

class TestResultSorterProperties:
    @given(timestamps, small_k)
    @settings(max_examples=150)
    def test_output_always_ordered_and_conserved(self, ts_list, k):
        from repro import JoinResult, ResultSorter

        sorter = ResultSorter(k)
        emitted = []
        for seq, ts in enumerate(ts_list):
            result = JoinResult(ts, (StreamTuple(ts=ts, stream=0, seq=seq),))
            emitted.extend(sorter.process(result))
        emitted.extend(sorter.flush())
        released = [r.ts for r in emitted]
        # In-order contract and conservation (emitted + discarded = input).
        assert released == sorted(released)
        assert len(emitted) + sorter.discarded == len(ts_list)

    @given(timestamps)
    @settings(max_examples=100)
    def test_large_k_discards_nothing(self, ts_list):
        from repro import JoinResult, ResultSorter

        span = max(ts_list) if ts_list else 0
        sorter = ResultSorter(span + 1)
        for seq, ts in enumerate(ts_list):
            sorter.process(JoinResult(ts, (StreamTuple(ts=ts, stream=0, seq=seq),)))
        sorter.flush()
        assert sorter.discarded == 0


class TestWatermarkProperties:
    @given(timestamps, small_k)
    @settings(max_examples=150)
    def test_conservation(self, ts_list, bound):
        from repro.core.watermarks import WatermarkFrontEnd

        front = WatermarkFrontEnd(num_streams=1, bound_ms=bound)
        out = []
        for seq, ts in enumerate(ts_list):
            out.extend(front.process(StreamTuple(ts=ts, stream=0, seq=seq)))
        out.extend(front.flush(0))
        assert sorted(t.ts for t in out) == sorted(ts_list)

    @given(timestamps)
    @settings(max_examples=100)
    def test_bound_at_max_delay_sorts_fully(self, ts_list):
        from repro.core.watermarks import WatermarkFrontEnd

        local = 0
        max_delay = 0
        for ts in ts_list:
            local = max(local, ts)
            max_delay = max(max_delay, local - ts)
        front = WatermarkFrontEnd(num_streams=1, bound_ms=max_delay)
        out = []
        for seq, ts in enumerate(ts_list):
            out.extend(front.process(StreamTuple(ts=ts, stream=0, seq=seq)))
        out.extend(front.flush(0))
        released = [t.ts for t in out]
        assert released == sorted(released)


# ----------------------------------------------------------------------
# Model properties
# ----------------------------------------------------------------------

pdf_strategy = st.lists(
    st.floats(min_value=0.0, max_value=1.0, allow_nan=False), min_size=1, max_size=30
).filter(lambda ws: sum(ws) > 0)


class TestModelProperties:
    @given(pdf_strategy)
    @settings(max_examples=100)
    def test_cdf_monotone_and_bounded(self, weights):
        total = sum(weights)
        pdf = [w / total for w in weights]
        c = CumulativePdf(pdf)
        values = [c.cdf(x) for x in range(-2, len(pdf) + 5)]
        assert all(0.0 <= v <= 1.0 + 1e-9 for v in values)
        assert all(a <= b + 1e-12 for a, b in zip(values, values[1:]))

    @given(pdf_strategy, pdf_strategy)
    @settings(max_examples=60)
    def test_gamma_monotone_in_k(self, weights_a, weights_b):
        def normalize(ws):
            total = sum(ws)
            return [w / total for w in ws]

        inputs = [
            StreamModelInput(normalize(weights_a), 0.0, 0.01, 500),
            StreamModelInput(normalize(weights_b), 0.0, 0.02, 700),
        ]
        model = RecallModel(inputs, basic_window_ms=10, granularity_ms=10)
        gammas = [model.gamma(k) for k in range(0, 400, 10)]
        assert all(a <= b + 1e-9 for a, b in zip(gammas, gammas[1:]))
        assert all(0.0 <= g <= 1.0 for g in gammas)
