"""Unit tests for the Result-Size Monitor and Eq. 7 (repro.core.result_monitor)."""

import pytest

from repro import ResultSizeMonitor


class TestProducedWindow:
    def test_counts_within_window(self):
        monitor = ResultSizeMonitor(period_ms=10_000, interval_ms=1_000)
        monitor.record_produced(1_000, 5)
        monitor.record_produced(5_000, 3)
        # Window is P-L = 9000 ms: at t=9000, bound is 0 → both inside.
        assert monitor.produced_in_window(9_000) == 8

    def test_old_results_age_out(self):
        monitor = ResultSizeMonitor(period_ms=10_000, interval_ms=1_000)
        monitor.record_produced(1_000, 5)
        monitor.record_produced(5_000, 3)
        # At t=10_500 the bound is 1_500: the ts-1000 batch ages out.
        assert monitor.produced_in_window(10_500) == 3

    def test_boundary_is_exclusive(self):
        monitor = ResultSizeMonitor(period_ms=2_000, interval_ms=1_000)
        monitor.record_produced(1_000, 1)
        # Window (t - 1000, t]; at t=2000 the ts-1000 result is out.
        assert monitor.produced_in_window(2_000) == 0

    def test_zero_count_ignored(self):
        monitor = ResultSizeMonitor(period_ms=2_000, interval_ms=1_000)
        monitor.record_produced(100, 0)
        assert monitor.produced_in_window(100) == 0


class TestTrueHistory:
    def test_history_sums_last_intervals(self):
        monitor = ResultSizeMonitor(period_ms=4_000, interval_ms=1_000)
        for value in (10.0, 20.0, 30.0):
            monitor.record_true_estimate(value)
        assert monitor.true_in_window() == pytest.approx(60.0)

    def test_history_bounded_to_p_minus_l_intervals(self):
        # (P-L)/L = 3 intervals retained.
        monitor = ResultSizeMonitor(period_ms=4_000, interval_ms=1_000)
        for value in (10.0, 20.0, 30.0, 40.0):
            monitor.record_true_estimate(value)
        assert monitor.true_in_window() == pytest.approx(90.0)

    def test_p_equal_l_keeps_no_history(self):
        monitor = ResultSizeMonitor(period_ms=1_000, interval_ms=1_000)
        monitor.record_true_estimate(50.0)
        assert monitor.true_in_window() == 0.0

    def test_negative_estimates_clamped(self):
        monitor = ResultSizeMonitor(period_ms=3_000, interval_ms=1_000)
        monitor.record_true_estimate(-5.0)
        assert monitor.true_in_window() == 0.0


class TestInstantRequirement:
    def test_eq7_hand_computed(self):
        # P=3L; window P-L holds: produced 80 of true 100.
        # Γ=0.9, next true 50: Γ' = (0.9*(100+50) - 80)/50 = 1.1 → clamp 1.0
        monitor = ResultSizeMonitor(period_ms=3_000, interval_ms=1_000)
        monitor.record_true_estimate(50.0)
        monitor.record_true_estimate(50.0)
        monitor.record_produced(1_500, 80)
        assert monitor.instant_requirement(0.9, 50.0, 2_000) == pytest.approx(1.0)

    def test_overshoot_relaxes_requirement(self):
        # Produced matches truth fully → next interval may relax below Γ.
        monitor = ResultSizeMonitor(period_ms=3_000, interval_ms=1_000)
        monitor.record_true_estimate(50.0)
        monitor.record_true_estimate(50.0)
        monitor.record_produced(1_500, 100)
        # Γ' = (0.9*150 - 100)/50 = 0.7
        assert monitor.instant_requirement(0.9, 50.0, 2_000) == pytest.approx(0.7)

    def test_undershoot_tightens_requirement(self):
        monitor = ResultSizeMonitor(period_ms=3_000, interval_ms=1_000)
        monitor.record_true_estimate(50.0)
        monitor.record_true_estimate(50.0)
        monitor.record_produced(1_500, 85)
        # Γ' = (0.9*150 - 85)/50 = 1.0
        assert monitor.instant_requirement(0.9, 50.0, 2_000) == pytest.approx(1.0)

    def test_clamped_to_zero(self):
        monitor = ResultSizeMonitor(period_ms=3_000, interval_ms=1_000)
        monitor.record_true_estimate(10.0)
        monitor.record_produced(1_500, 1_000)  # far more than needed
        assert monitor.instant_requirement(0.9, 10.0, 2_000) == 0.0

    def test_no_estimate_falls_back_to_gamma(self):
        monitor = ResultSizeMonitor(period_ms=3_000, interval_ms=1_000)
        assert monitor.instant_requirement(0.95, 0.0, 1_000) == pytest.approx(0.95)

    def test_fresh_monitor_requires_gamma(self):
        # Nothing produced, no history: Γ' = Γ (first interval must meet Γ).
        monitor = ResultSizeMonitor(period_ms=3_000, interval_ms=1_000)
        assert monitor.instant_requirement(0.9, 50.0, 0) == pytest.approx(0.9)


class TestValidation:
    def test_interval_exceeding_period_rejected(self):
        with pytest.raises(ValueError):
            ResultSizeMonitor(period_ms=500, interval_ms=1_000)

    def test_nonpositive_interval_rejected(self):
        with pytest.raises(ValueError):
            ResultSizeMonitor(period_ms=1_000, interval_ms=0)
