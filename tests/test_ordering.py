"""Unit tests for probe-order policies (repro.join.ordering)."""

from repro import (
    EquiPredicate,
    IndexAwareOrder,
    JoinCondition,
    SlidingWindow,
    SmallestWindowFirst,
    StreamTuple,
    ThetaPredicate,
)
from repro.join.ordering import default_policy


def _windows(cardinalities, indexed=()):
    windows = []
    for index, count in enumerate(cardinalities):
        attrs = indexed[index] if indexed else ()
        w = SlidingWindow(1_000_000, indexed_attributes=attrs)
        for seq in range(count):
            w.insert(StreamTuple(ts=seq + 1, stream=index, seq=seq))
        windows.append(w)
    return windows


class TestSmallestWindowFirst:
    def test_orders_by_cardinality(self):
        windows = _windows([5, 1, 3])
        order = SmallestWindowFirst().order(0, windows, JoinCondition())
        assert order == [1, 2]

    def test_excludes_trigger(self):
        windows = _windows([5, 1, 3])
        order = SmallestWindowFirst().order(1, windows, JoinCondition())
        assert 1 not in order
        assert order == [2, 0]

    def test_ties_broken_by_stream_index(self):
        windows = _windows([2, 2, 2])
        assert SmallestWindowFirst().order(2, windows, JoinCondition()) == [0, 1]


class TestIndexAwareOrder:
    def test_prefers_connected_streams(self):
        # Chain 0-1-2: from trigger 0, stream 1 is index-reachable but
        # stream 2 is not (until 1 is bound), even if 2 has fewer tuples.
        condition = JoinCondition(
            [EquiPredicate(0, "a", 1, "a"), EquiPredicate(1, "b", 2, "b")]
        )
        windows = _windows([3, 5, 1], indexed=[["a"], ["a", "b"], ["b"]])
        order = IndexAwareOrder().order(0, windows, condition)
        assert order == [1, 2]

    def test_smallest_among_connected(self):
        # Star centered at 0: both 1 and 2 reachable; pick the smaller.
        condition = JoinCondition(
            [EquiPredicate(0, "a", 1, "a"), EquiPredicate(0, "b", 2, "b")]
        )
        windows = _windows([3, 5, 1], indexed=[["a", "b"], ["a"], ["b"]])
        order = IndexAwareOrder().order(0, windows, condition)
        assert order == [2, 1]

    def test_unconnected_streams_last(self):
        condition = JoinCondition([EquiPredicate(0, "a", 1, "a")])
        windows = _windows([3, 5, 1], indexed=[["a"], ["a"], []])
        order = IndexAwareOrder().order(0, windows, condition)
        assert order == [1, 2]


class TestDefaultPolicy:
    def test_equi_condition_gets_index_aware(self):
        condition = JoinCondition([EquiPredicate(0, "a", 1, "a")])
        assert isinstance(default_policy(condition), IndexAwareOrder)

    def test_theta_condition_gets_smallest_window(self):
        condition = JoinCondition([ThetaPredicate((0, 1), lambda a, b: True)])
        assert isinstance(default_policy(condition), SmallestWindowFirst)

    def test_cross_join_gets_smallest_window(self):
        assert isinstance(default_policy(JoinCondition()), SmallestWindowFirst)
