"""Unit tests for the Buffer-Size Manager policies, Alg. 3 (repro.core.adaptation)."""

import pytest

from repro import (
    AdaptationContext,
    EqSel,
    FixedKPolicy,
    MaxKSlackPolicy,
    ModelBasedPolicy,
    NoKSlackPolicy,
    NonEqSel,
    ResultSizeMonitor,
    StatisticsManager,
    StreamTuple,
)
from repro.core.adaptation import build_recall_model
from repro.core.profiler import ProfileSnapshot


def _observe(stats, stream, ts, arrival, delay):
    t = StreamTuple(ts=ts, stream=stream, seq=0, arrival=arrival)
    t.delay = delay
    stats.observe_arrival(t)


def _stats_two_streams(delays_per_stream, granularity=10, gap=100):
    """Two synchronized streams with given delay sequences."""
    stats = StatisticsManager(2, granularity_ms=granularity)
    clock = 0
    for position, (d0, d1) in enumerate(zip(*delays_per_stream)):
        clock += gap
        _observe(stats, 0, ts=clock, arrival=clock, delay=d0)
        _observe(stats, 1, ts=clock, arrival=clock, delay=d1)
    return stats


def _context(stats, profile=None, gamma=0.9, monitor=None, g=10, b=10,
             windows=(1_000, 1_000), interval=1_000, now=10_000):
    return AdaptationContext(
        statistics=stats,
        profile=profile,
        monitor=monitor or ResultSizeMonitor(period_ms=60_000, interval_ms=interval),
        gamma_target=gamma,
        interval_ms=interval,
        basic_window_ms=b,
        granularity_ms=g,
        window_sizes_ms=list(windows),
        now_ts=now,
        current_k_ms=0,
    )


class TestBaselinePolicies:
    def test_no_k_slack_always_zero(self):
        stats = _stats_two_streams([[0, 500, 0], [0, 0, 900]])
        assert NoKSlackPolicy().decide(_context(stats)) == 0

    def test_fixed_k_returns_constant(self):
        stats = _stats_two_streams([[0, 0], [0, 0]])
        assert FixedKPolicy(420).decide(_context(stats)) == 420

    def test_fixed_k_rejects_negative(self):
        with pytest.raises(ValueError):
            FixedKPolicy(-1)

    def test_max_k_slack_tracks_running_maximum(self):
        policy = MaxKSlackPolicy()
        t = StreamTuple(ts=0, stream=0, seq=0)
        t.delay = 120
        assert policy.on_arrival(t) == 120
        t2 = StreamTuple(ts=0, stream=0, seq=1)
        t2.delay = 80
        assert policy.on_arrival(t2) is None  # no increase
        t3 = StreamTuple(ts=0, stream=0, seq=2)
        t3.delay = 300
        assert policy.on_arrival(t3) == 300
        stats = _stats_two_streams([[0], [0]])
        assert policy.decide(_context(stats)) == 300

    def test_interval_policies_ignore_arrivals(self):
        t = StreamTuple(ts=0, stream=0, seq=0)
        t.delay = 999
        assert NoKSlackPolicy().on_arrival(t) is None
        assert FixedKPolicy(5).on_arrival(t) is None


class TestModelBasedPolicy:
    def test_zero_k_when_streams_in_order(self):
        stats = _stats_two_streams([[0] * 50, [0] * 50])
        policy = ModelBasedPolicy(EqSel())
        assert policy.decide(_context(stats, gamma=0.999)) == 0

    def test_finds_k_covering_delay_mass(self):
        # Half the tuples of each stream are delayed by exactly 200 ms.
        # With Γ close to 1, K must cover (most of) that delay.
        delays = [0, 200] * 100
        stats = _stats_two_streams([delays, delays])
        policy = ModelBasedPolicy(EqSel())
        k = policy.decide(_context(stats, gamma=0.999))
        assert 100 <= k <= 210

    def test_lower_gamma_gives_smaller_k(self):
        delays = [0, 0, 0, 500] * 50  # 25% delayed by 500 ms
        stats = _stats_two_streams([delays, delays])
        high = ModelBasedPolicy(EqSel()).decide(_context(stats, gamma=0.999))
        low = ModelBasedPolicy(EqSel()).decide(_context(stats, gamma=0.7))
        assert low <= high
        assert low < 500

    def test_search_granularity_respected(self):
        delays = [0, 130] * 100
        stats = _stats_two_streams([delays, delays], granularity=50)
        policy = ModelBasedPolicy(EqSel())
        k = policy.decide(_context(stats, gamma=0.999, g=50))
        assert k % 50 == 0

    def test_search_stops_beyond_max_delay(self):
        delays = [0, 400] * 100
        stats = _stats_two_streams([delays, delays])
        policy = ModelBasedPolicy(EqSel())
        k = policy.decide(_context(stats, gamma=0.999))
        max_dh = stats.max_delay_ms()
        assert k <= max_dh + 10  # Alg. 3 exits at k* > MaxDH

    def test_overshoot_relaxes_next_interval(self):
        delays = [0, 300] * 100
        stats = _stats_two_streams([delays, delays])
        # Past intervals produced everything → instant requirement drops.
        monitor = ResultSizeMonitor(period_ms=10_000, interval_ms=1_000)
        for _ in range(9):
            monitor.record_true_estimate(100.0)
        monitor.record_produced(9_900, 900)
        profile = ProfileSnapshot({0: 1_000.0}, {0: 100.0})
        relaxed = ModelBasedPolicy(EqSel()).decide(
            _context(stats, profile=profile, gamma=0.95, monitor=monitor)
        )
        strict = ModelBasedPolicy(EqSel()).decide(_context(stats, gamma=0.95))
        assert relaxed <= strict

    def test_noneqsel_uses_learned_ratio(self):
        # Delayed tuples are *more* productive than punctual ones: the
        # NonEqSel ratio at small K is < 1, so NonEqSel needs a larger K
        # than EqSel to reach the same requirement.
        delays = [0, 300] * 100
        stats = _stats_two_streams([delays, delays])
        profile = ProfileSnapshot(
            {0: 1_000.0, 30: 1_000.0},  # equal cross sizes
            {0: 10.0, 30: 90.0},        # late tuples derive 9x the results
        )
        k_eq = ModelBasedPolicy(EqSel()).decide(
            _context(stats, profile=profile, gamma=0.9)
        )
        k_noneq = ModelBasedPolicy(NonEqSel()).decide(
            _context(stats, profile=profile, gamma=0.9)
        )
        assert k_noneq >= k_eq

    def test_diagnostics_exposed(self):
        delays = [0, 100] * 50
        stats = _stats_two_streams([delays, delays])
        policy = ModelBasedPolicy(EqSel())
        policy.decide(_context(stats, gamma=0.95))
        assert policy.last_search_steps >= 1
        assert 0.0 <= policy.last_instant_requirement <= 1.0


class TestShrinkDamping:
    def test_growth_is_instantaneous(self):
        delays = [0, 500] * 100
        stats = _stats_two_streams([delays, delays])
        policy = ModelBasedPolicy(EqSel(), shrink_damping=0.5)
        context = _context(stats, gamma=0.999)
        context.current_k_ms = 0
        k = policy.decide(context)
        assert k == policy.last_undamped_k  # no floor from K=0

    def test_shrink_limited_to_damping_floor(self):
        # In-order streams: the undamped search returns 0, but the floor
        # keeps half of the previous K.
        stats = _stats_two_streams([[0] * 50, [0] * 50])
        policy = ModelBasedPolicy(EqSel(), shrink_damping=0.5)
        context = _context(stats, gamma=0.9)
        context.current_k_ms = 1_000
        assert policy.decide(context) == 500
        assert policy.last_undamped_k == 0

    def test_zero_damping_is_paper_literal(self):
        stats = _stats_two_streams([[0] * 50, [0] * 50])
        policy = ModelBasedPolicy(EqSel(), shrink_damping=0.0)
        context = _context(stats, gamma=0.9)
        context.current_k_ms = 10_000
        assert policy.decide(context) == 0

    def test_invalid_damping_rejected(self):
        with pytest.raises(ValueError):
            ModelBasedPolicy(EqSel(), shrink_damping=1.0)
        with pytest.raises(ValueError):
            ModelBasedPolicy(EqSel(), shrink_damping=-0.5)

    def test_repeated_shrinks_decay_geometrically(self):
        stats = _stats_two_streams([[0] * 50, [0] * 50])
        policy = ModelBasedPolicy(EqSel(), shrink_damping=0.5)
        k = 8_000
        trajectory = []
        for _ in range(5):
            context = _context(stats, gamma=0.9)
            context.current_k_ms = k
            k = policy.decide(context)
            trajectory.append(k)
        assert trajectory == [4_000, 2_000, 1_000, 500, 250]


class TestBinarySearch:
    """The future-work search variant must agree with the Alg. 3 scan."""

    def _policies(self):
        return (
            ModelBasedPolicy(EqSel(), shrink_damping=0.0, search="linear"),
            ModelBasedPolicy(EqSel(), shrink_damping=0.0, search="binary"),
        )

    @pytest.mark.parametrize("gamma", [0.7, 0.9, 0.99, 0.999])
    def test_matches_linear_scan_under_eqsel(self, gamma):
        delays = [0, 150, 0, 400] * 50
        stats = _stats_two_streams([delays, delays])
        linear, binary = self._policies()
        k_linear = linear.decide(_context(stats, gamma=gamma))
        k_binary = binary.decide(_context(stats, gamma=gamma))
        assert k_binary == k_linear

    def test_zero_k_short_circuit(self):
        stats = _stats_two_streams([[0] * 50, [0] * 50])
        policy = ModelBasedPolicy(EqSel(), shrink_damping=0.0, search="binary")
        assert policy.decide(_context(stats, gamma=0.99)) == 0
        assert policy.last_search_steps == 1

    def test_binary_uses_fewer_evaluations(self):
        delays = [0, 2_000] * 100  # MaxDH = 2000 → linear scan ~200 steps
        stats = _stats_two_streams([delays, delays])
        linear, binary = self._policies()
        linear.decide(_context(stats, gamma=0.999))
        binary.decide(_context(stats, gamma=0.999))
        assert binary.last_search_steps < linear.last_search_steps / 4

    def test_unknown_search_rejected(self):
        with pytest.raises(ValueError):
            ModelBasedPolicy(EqSel(), search="newton")


class TestBuildRecallModel:
    def test_model_reflects_statistics(self):
        delays = [0, 0, 0, 0] * 25
        stats = _stats_two_streams([delays, delays])
        model = build_recall_model(_context(stats))
        assert model.in_order_probability(0, 0) == pytest.approx(1.0)
        # Rate: 2 streams at one tuple per 100 ms → 0.01/ms.
        assert model.inputs[0].rate_per_ms == pytest.approx(0.01, rel=0.05)
