"""Unit tests for the ADWIN change detector (repro.adwin)."""

import random

from repro.adwin import Adwin


class TestAdwinBasics:
    def test_empty_window(self):
        adwin = Adwin()
        assert adwin.width == 0
        assert adwin.mean() == 0.0
        assert adwin.variance() == 0.0

    def test_width_counts_inserts(self):
        adwin = Adwin()
        for value in range(10):
            adwin.update(float(value))
        assert adwin.width == 10

    def test_mean_matches_arithmetic_mean(self):
        adwin = Adwin()
        values = [1.0, 2.0, 3.0, 4.0]
        for value in values:
            adwin.update(value)
        assert abs(adwin.mean() - 2.5) < 1e-9

    def test_total_tracks_sum(self):
        adwin = Adwin()
        for value in (5.0, 7.0, 9.0):
            adwin.update(value)
        assert abs(adwin.total - 21.0) < 1e-9

    def test_variance_zero_for_constant_signal(self):
        adwin = Adwin()
        for _ in range(100):
            adwin.update(3.0)
        assert adwin.variance() < 1e-9

    def test_invalid_delta_rejected(self):
        import pytest

        with pytest.raises(ValueError):
            Adwin(delta=0.0)
        with pytest.raises(ValueError):
            Adwin(delta=1.5)


class TestAdwinBehaviour:
    def test_grows_on_stationary_input(self):
        rng = random.Random(1)
        adwin = Adwin()
        for _ in range(3_000):
            adwin.update(rng.gauss(10.0, 1.0))
        # On stationary data the window should keep (most of) the history.
        assert adwin.width > 2_000
        assert adwin.detections <= 2  # rare false alarms allowed

    def test_detects_abrupt_mean_shift(self):
        rng = random.Random(2)
        adwin = Adwin()
        for _ in range(1_500):
            adwin.update(rng.gauss(0.0, 0.5))
        width_before = adwin.width
        for _ in range(1_500):
            adwin.update(rng.gauss(50.0, 0.5))
        assert adwin.detections >= 1
        # Window must have been cut: far smaller than 3000 and the mean
        # must now reflect the new regime.
        assert adwin.width < width_before + 1_500
        assert adwin.mean() > 25.0

    def test_window_converges_to_new_regime(self):
        rng = random.Random(3)
        adwin = Adwin()
        for _ in range(2_000):
            adwin.update(rng.gauss(100.0, 2.0))
        for _ in range(2_000):
            adwin.update(rng.gauss(0.0, 2.0))
        assert adwin.mean() < 20.0

    def test_no_detection_for_tiny_drift(self):
        rng = random.Random(4)
        adwin = Adwin()
        for step in range(2_000):
            adwin.update(rng.gauss(10.0 + step * 1e-5, 1.0))
        assert adwin.detections <= 3

    def test_compression_bounds_bucket_count(self):
        adwin = Adwin(max_buckets=5)
        rng = random.Random(5)
        for _ in range(10_000):
            adwin.update(rng.random())
        total_buckets = sum(len(row.buckets) for row in adwin._rows)
        # max_buckets+1 per level, ~log2(n) levels.
        assert total_buckets <= (5 + 1) * 20

    def test_variance_positive_for_noisy_signal(self):
        rng = random.Random(6)
        adwin = Adwin()
        for _ in range(1_000):
            adwin.update(rng.gauss(0.0, 5.0))
        assert adwin.variance() > 1.0
