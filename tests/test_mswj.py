"""Unit tests for the MSWJ operator, Alg. 2 (repro.join.mswj)."""

import random

import pytest

from repro import (
    EquiPredicate,
    JoinCondition,
    MSWJOperator,
    StreamTuple,
    ThetaPredicate,
    equi_join_chain,
)
from repro.streams.source import Dataset

from .reference import reference_join, result_key_set


def _t(stream, ts, seq=None, **values):
    return StreamTuple(ts=ts, values=values, stream=stream, seq=ts if seq is None else seq)


def _equi2(attr="v"):
    return JoinCondition([EquiPredicate(0, attr, 1, attr)])


class TestInOrderExecution:
    def test_simple_match(self):
        op = MSWJOperator([1000, 1000], _equi2())
        op.process(_t(0, 10, v=1))
        results = op.process(_t(1, 20, v=1))
        assert len(results) == 1
        assert results[0].ts == 20

    def test_no_match_on_different_values(self):
        op = MSWJOperator([1000, 1000], _equi2())
        op.process(_t(0, 10, v=1))
        assert op.process(_t(1, 20, v=2)) == []

    def test_result_timestamp_is_trigger_timestamp(self):
        op = MSWJOperator([1000, 1000], _equi2())
        op.process(_t(0, 10, v=1))
        op.process(_t(0, 15, seq=11, v=1))
        results = op.process(_t(1, 20, v=1))
        assert {r.ts for r in results} == {20}
        assert len(results) == 2

    def test_window_expiration_prevents_old_matches(self):
        op = MSWJOperator([100, 100], _equi2())
        op.process(_t(0, 10, v=1))
        # Trigger at ts 200: the ts-10 tuple is outside [100, 200].
        assert op.process(_t(1, 200, v=1)) == []

    def test_boundary_tuple_still_joins(self):
        op = MSWJOperator([100, 100], _equi2())
        op.process(_t(0, 100, v=1))
        # ts 200 - W 100 = 100; expiration removes ts < 100 only.
        assert len(op.process(_t(1, 200, v=1))) == 1

    def test_asymmetric_windows(self):
        # W0=50 (on stream 0's window), W1=500.
        op = MSWJOperator([50, 500], _equi2())
        op.process(_t(0, 100, v=1))
        # Trigger from S1 at 300: S0 window of 50 → 100 < 250 expired.
        assert op.process(_t(1, 300, v=1)) == []
        op2 = MSWJOperator([500, 50], _equi2())
        op2.process(_t(0, 100, v=1))
        # Now S0's window is 500: 100 >= 300-500 still alive.
        assert len(op2.process(_t(1, 300, v=1))) == 1

    def test_cross_join_counts_products(self):
        op = MSWJOperator([1000, 1000], JoinCondition())
        op.process(_t(0, 1))
        op.process(_t(0, 2, seq=12))
        results = op.process(_t(1, 3))
        assert len(results) == 2


class TestOutOfOrderHandling:
    def test_out_of_order_tuple_skips_probe(self):
        op = MSWJOperator([1000, 1000], _equi2())
        op.process(_t(0, 100, v=1))
        op.process(_t(1, 100, v=1))  # onT = 100 (1 result)
        # ts 50 < onT: no probe, no results, even though v matches.
        assert op.process(_t(1, 50, seq=13, v=1)) == []
        assert op.stats.tuples_out_of_order_kept == 1

    def test_out_of_order_tuple_contributes_later(self):
        op = MSWJOperator([1000, 1000], _equi2())
        op.process(_t(0, 100, v=1))
        op.process(_t(1, 50, v=1))  # in order at this point? ts 50 < onT=100 → out of order
        results = op.process(_t(0, 120, seq=21, v=1))
        # The kept out-of-order S1 tuple at ts 50 joins with the new trigger.
        assert len(results) == 1

    def test_expired_out_of_order_tuple_dropped(self):
        op = MSWJOperator([100, 100], _equi2())
        op.process(_t(0, 500, v=1))
        op.process(_t(1, 300, v=1))  # 300 <= 500-100 → outside window scope
        assert op.stats.tuples_dropped == 1
        # It must not contribute later either.
        assert op.process(_t(0, 501, seq=31, v=1)) == []

    def test_boundary_out_of_order_scope(self):
        # ei.ts > onT - Wi is strict: equality is dropped.
        op = MSWJOperator([100, 100], _equi2())
        op.process(_t(0, 500, v=1))
        op.process(_t(1, 400, v=1))
        assert op.stats.tuples_dropped == 1

    def test_on_t_tracks_maximum(self):
        op = MSWJOperator([100, 100], JoinCondition())
        op.process(_t(0, 10))
        op.process(_t(1, 5))
        assert op.on_t == 10
        op.process(_t(1, 30, seq=31))
        assert op.on_t == 30

    def test_equal_timestamp_is_in_order(self):
        op = MSWJOperator([1000, 1000], _equi2())
        op.process(_t(0, 100, v=1))
        results = op.process(_t(1, 100, v=1))
        assert len(results) == 1
        assert op.stats.tuples_in_order == 2


class TestProductivityCallback:
    def test_in_order_counts(self):
        records = []
        op = MSWJOperator(
            [1000, 1000],
            _equi2(),
            productivity_callback=lambda t, nx, non, ok: records.append(
                (t.ts, nx, non, ok)
            ),
        )
        op.process(_t(0, 10, v=1))
        op.process(_t(0, 11, seq=11, v=2))
        op.process(_t(1, 20, v=1))
        assert records[0] == (10, 0, 0, True)  # S1 window empty: cross size 0
        # At the S1 arrival, S0 window holds 2 tuples; 1 matches.
        assert records[2] == (20, 2, 1, True)

    def test_out_of_order_reports_none(self):
        records = []
        op = MSWJOperator(
            [1000, 1000],
            _equi2(),
            productivity_callback=lambda t, nx, non, ok: records.append(
                (nx, non, ok)
            ),
        )
        op.process(_t(0, 100, v=1))
        op.process(_t(1, 50, v=1))
        assert records[-1] == (None, None, False)


class TestCountOnlyMode:
    def test_counts_match_collected_results(self):
        rng = random.Random(1)
        tuples = [
            _t(rng.randrange(2), rng.randrange(0, 500), seq=i, v=rng.randrange(4))
            for i in range(120)
        ]
        collect = MSWJOperator([200, 200], _equi2())
        count = MSWJOperator([200, 200], _equi2(), collect_results=False)
        total_collected = 0
        total_counted = 0
        for t in tuples:
            total_collected += len(collect.process(t))
        for t in tuples:
            total_counted += count.process(t)
        assert total_collected == total_counted

    def test_count_mode_returns_int(self):
        op = MSWJOperator([100, 100], _equi2(), collect_results=False)
        assert op.process(_t(0, 1, v=1)) == 0
        assert op.process(_t(1, 2, v=1)) == 1


class TestAgainstReference:
    def _run_ordered(self, dataset, windows, condition):
        op = MSWJOperator(windows, condition)
        produced = []
        for t in dataset.sorted_by_timestamp():
            produced.extend(op.process(t))
        return produced

    def _random_dataset(self, num_streams, count, seed, domain=3, span=400):
        rng = random.Random(seed)
        tuples = []
        seqs = [0] * num_streams
        for position in range(count):
            stream = rng.randrange(num_streams)
            t = StreamTuple(
                ts=rng.randrange(span),
                values={"v": rng.randrange(domain)},
                stream=stream,
                seq=seqs[stream],
                arrival=position,
            )
            seqs[stream] += 1
            tuples.append(t)
        return Dataset(tuples, num_streams=num_streams)

    def test_two_way_equi_matches_reference(self):
        ds = self._random_dataset(2, 80, seed=5)
        windows = [150, 150]
        condition = _equi2()
        produced = self._run_ordered(ds, windows, condition)
        expected = reference_join(ds, windows, condition)
        assert result_key_set(produced) == result_key_set(expected)
        assert len(produced) == len(expected)

    def test_three_way_chain_matches_reference(self):
        ds = self._random_dataset(3, 60, seed=7)
        windows = [120, 150, 100]
        condition = equi_join_chain("v", 3)
        produced = self._run_ordered(ds, windows, condition)
        expected = reference_join(ds, windows, condition)
        assert result_key_set(produced) == result_key_set(expected)

    def test_theta_join_matches_reference(self):
        ds = self._random_dataset(2, 70, seed=9, domain=10)
        windows = [100, 200]
        condition = JoinCondition(
            [ThetaPredicate((0, 1), lambda a, b: abs(a["v"] - b["v"]) <= 2)]
        )
        produced = self._run_ordered(ds, windows, condition)
        expected = reference_join(ds, windows, condition)
        assert result_key_set(produced) == result_key_set(expected)

    def test_cross_join_matches_reference(self):
        ds = self._random_dataset(2, 40, seed=11)
        windows = [80, 80]
        condition = JoinCondition()
        produced = self._run_ordered(ds, windows, condition)
        expected = reference_join(ds, windows, condition)
        assert len(produced) == len(expected)
        assert result_key_set(produced) == result_key_set(expected)


class TestValidation:
    def test_needs_two_streams(self):
        with pytest.raises(ValueError):
            MSWJOperator([100], JoinCondition())

    def test_condition_stream_bounds_checked(self):
        with pytest.raises(ValueError):
            MSWJOperator([100, 100], JoinCondition([EquiPredicate(0, "v", 5, "v")]))

    def test_bad_tuple_stream_rejected(self):
        op = MSWJOperator([100, 100], JoinCondition())
        with pytest.raises(ValueError):
            op.process(_t(7, 1))

    def test_reset(self):
        op = MSWJOperator([1000, 1000], _equi2())
        op.process(_t(0, 10, v=1))
        op.process(_t(1, 20, v=1))
        op.reset()
        assert op.on_t == 0
        assert op.window_cardinalities() == [0, 0]
        assert op.stats.results_produced == 0
